//! Cross-crate integration: every transport protocol completes flows
//! end-to-end over the packet simulator, with protocol-appropriate
//! behaviours observable (ECN marks for DCTCP, priority completion for
//! Homa, loss recovery for all).

use dcn_sim::config::{FlowSizeDist, SimConfig};
use dcn_sim::simulator::Simulation;
use dcn_transport::Protocol;

fn base_cfg() -> SimConfig {
    let mut cfg = SimConfig::small_scale();
    cfg.duration_s = 0.5;
    cfg.seed = 21;
    cfg
}

fn run(p: Protocol, mut cfg: SimConfig) -> dcn_sim::instrument::Metrics {
    cfg.queue = p.queue_setup(cfg.queue);
    let mut sim = Simulation::with_transport(cfg, p.factory());
    sim.run()
}

#[test]
fn all_protocols_complete_flows() {
    for p in [
        Protocol::NewReno,
        Protocol::Dctcp { k: 20 },
        Protocol::Vegas,
        Protocol::Westwood,
        Protocol::Homa,
    ] {
        let m = run(p, base_cfg());
        assert!(
            m.flows_completed() > 5,
            "{}: only {} of {} flows completed",
            p.name(),
            m.flows_completed(),
            m.flows_started(),
        );
        for fct in m.fct_samples(|_| true) {
            assert!(fct > 0.0, "{}: nonpositive FCT", p.name());
        }
        assert!(m.total_delivered_bytes() > 0, "{}: nothing delivered", p.name());
    }
}

#[test]
fn dctcp_marks_and_newreno_does_not() {
    let mut cfg = base_cfg();
    cfg.traffic.load = 1.0; // enough pressure to cross K
    let m_dctcp = run(Protocol::Dctcp { k: 5 }, cfg);
    assert!(m_dctcp.ecn_marks > 0, "DCTCP run produced no CE marks");
    let m_reno = run(Protocol::NewReno, cfg);
    assert_eq!(m_reno.ecn_marks, 0, "New Reno packets are not ECN-capable");
}

#[test]
fn protocols_recover_from_heavy_congestion() {
    // Small buffers + high load force drops; flows must still finish.
    let mut cfg = base_cfg();
    cfg.queue.capacity_bytes = 20_000;
    cfg.traffic.load = 1.0;
    cfg.traffic.size = FlowSizeDist::Fixed { bytes: 50_000 };
    for p in [Protocol::NewReno, Protocol::Westwood, Protocol::Vegas, Protocol::Homa] {
        let m = run(p, cfg);
        assert!(
            m.queue_drops > 0,
            "{}: expected drops under pressure",
            p.name()
        );
        assert!(
            m.flows_completed() > 0,
            "{}: no flow survived congestion",
            p.name()
        );
    }
}

#[test]
fn dctcp_keeps_queues_shorter_than_newreno() {
    // DCTCP's raison d'être: same load, earlier congestion signal, lower
    // queueing latency. Compare RTT tails.
    let mut cfg = base_cfg();
    cfg.traffic.load = 0.9;
    cfg.duration_s = 1.0;
    let reno = run(Protocol::NewReno, cfg);
    let dctcp = run(Protocol::Dctcp { k: 10 }, cfg);
    let p90 = |m: &dcn_sim::instrument::Metrics| {
        dcn_sim::stats::percentile(&m.rtt_samples(|_| true), 90.0)
    };
    let (r, d) = (p90(&reno), p90(&dctcp));
    assert!(
        d < r,
        "DCTCP p90 RTT {d} should be below New Reno's {r}"
    );
}

#[test]
fn dctcp_bounds_queue_occupancy_near_k() {
    // The whole point of the marking threshold: with K = 10 the switch
    // queues should rarely grow far beyond ~K packets, while New Reno
    // fills the buffer.
    let mut cfg = base_cfg();
    cfg.traffic.load = 0.9;
    cfg.duration_s = 1.0;
    let reno = run(Protocol::NewReno, cfg);
    let dctcp = run(Protocol::Dctcp { k: 10 }, cfg);
    assert!(
        dctcp.max_queue_depth() < reno.max_queue_depth(),
        "DCTCP max depth {} vs Reno {}",
        dctcp.max_queue_depth(),
        reno.max_queue_depth()
    );
}

#[test]
fn vegas_is_latency_sensitive() {
    // Vegas should keep RTTs near the propagation floor compared to Reno.
    let mut cfg = base_cfg();
    cfg.traffic.load = 0.9;
    cfg.duration_s = 1.0;
    let reno = run(Protocol::NewReno, cfg);
    let vegas = run(Protocol::Vegas, cfg);
    let mean = |m: &dcn_sim::instrument::Metrics| dcn_sim::stats::mean(&m.rtt_samples(|_| true));
    assert!(
        mean(&vegas) <= mean(&reno),
        "Vegas mean RTT {} vs Reno {}",
        mean(&vegas),
        mean(&reno)
    );
}

#[test]
fn homa_favors_short_messages() {
    // With priorities, short messages should see better normalized FCTs
    // than under New Reno at the same (heavy) load.
    let mut cfg = base_cfg();
    cfg.traffic.load = 0.9;
    cfg.duration_s = 1.0;
    let reno = run(Protocol::NewReno, cfg);
    let homa = run(Protocol::Homa, cfg);
    let short_fct_p90 = |m: &dcn_sim::instrument::Metrics| {
        dcn_sim::stats::percentile(&m.fct_samples(|f| f.size_bytes <= 10_000), 90.0)
    };
    let (r, h) = (short_fct_p90(&reno), short_fct_p90(&homa));
    assert!(h > 0.0 && r > 0.0);
    assert!(
        h <= r * 1.5,
        "Homa short-flow p90 {h} should not be much worse than Reno {r}"
    );
}
