//! Integration tests of the flow-level baseline against the packet-level
//! simulator: same workload, systematic differences the paper relies on.

use dcn_sim::config::SimConfig;
use dcn_sim::simulator::Simulation;
use dcn_sim::stats::mean;
use dcn_transport::Protocol;
use flow_sim::FlowSim;

fn cfg() -> SimConfig {
    let mut c = SimConfig::small_scale();
    c.duration_s = 1.0;
    c.seed = 17;
    c
}

#[test]
fn fluid_and_packet_complete_comparable_flow_counts() {
    let fm = FlowSim::new(cfg()).run();
    let mut c = cfg();
    c.queue = Protocol::NewReno.queue_setup(c.queue);
    let pm = Simulation::with_transport(c, Protocol::NewReno.factory()).run();
    let ratio = fm.flows_completed() as f64 / pm.flows_completed().max(1) as f64;
    assert!(
        (0.6..=2.0).contains(&ratio),
        "fluid {} vs packet {} completions",
        fm.flows_completed(),
        pm.flows_completed()
    );
}

#[test]
fn fluid_fcts_lack_packet_effects() {
    // The flow-level simulator misses slow start, RTTs, and retransmits;
    // its FCT distribution should be shifted low — the mismatch the paper
    // quantifies with W1 in Figures 1 and 7.
    let fm = FlowSim::new(cfg()).run();
    let mut c = cfg();
    c.queue = Protocol::NewReno.queue_setup(c.queue);
    let pm = Simulation::with_transport(c, Protocol::NewReno.factory()).run();
    let f_mean = mean(&fm.fct_samples(|_| true));
    let p_mean = mean(&pm.fct_samples(|_| true));
    assert!(
        f_mean < p_mean,
        "fluid mean FCT {f_mean} should undercut packet {p_mean}"
    );
    // And the W1 distance should be substantial relative to the packet mean.
    let w1 = dcn_sim::cdf::wasserstein1(&fm.fct_samples(|_| true), &pm.fct_samples(|_| true));
    assert!(w1 > 0.05 * p_mean, "W1 {w1} suspiciously small");
}

#[test]
fn fluid_work_scales_with_cluster_count() {
    // SimGrid-style simulators still track every flow — cost grows with
    // network size (the reason MimicNet beats them at 128 clusters).
    let recompute_at = |n: u32| {
        let mut c = cfg();
        c.topo.clusters = n;
        c.duration_s = 0.4;
        FlowSim::new(c).run().recomputes
    };
    let r2 = recompute_at(2);
    let r8 = recompute_at(8);
    assert!(
        r8 > r2 * 3,
        "recomputes: 2 clusters {r2}, 8 clusters {r8}"
    );
}

#[test]
fn fluid_throughput_respects_capacity() {
    let fm = FlowSim::new(cfg()).run();
    for s in fm.throughput_samples(|_| true) {
        // No host can receive faster than its 10 Mbps access link.
        assert!(s <= 10e6 / 8.0 * 1.001, "sample {s} exceeds line rate");
    }
}
