//! End-to-end MimicNet pipeline integration: train on 2 clusters, compose
//! at larger scales, and verify both the accuracy claim (better than the
//! small-scale and flow-level baselines) and the speed claim (fewer
//! events than ground truth).

use dcn_sim::cdf::wasserstein1;
use dcn_sim::stats::mean;
use dcn_transport::Protocol;
use mimicnet::compose::OBSERVABLE;
use mimicnet::metrics::{compare, fct_mse_intersection, observed};
use mimicnet::pipeline::{Pipeline, PipelineConfig};

fn quick_cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::default();
    cfg.base.duration_s = 0.6;
    cfg.base.seed = 2024;
    cfg.hidden = 16;
    cfg.train.epochs = 3;
    cfg.train.window = 6;
    cfg
}

#[test]
fn trained_mimic_estimates_are_usable_at_scale() {
    let mut pipe = Pipeline::new(quick_cfg());
    let trained = pipe.train();
    // Validate at 4 clusters: compare against the ground truth.
    let (report, _mw, _tw) = pipe.validate(&trained, 4);
    let (truth, _, _) = pipe.run_ground_truth(4);
    let mean_fct = mean(&truth.fct);
    assert!(report.w1_fct.is_finite());
    assert!(
        report.w1_fct < mean_fct,
        "W1(FCT) {} exceeds the truth's mean FCT {mean_fct}",
        report.w1_fct
    );
    assert!(report.w1_rtt.is_finite());
    // p99 estimates should be the right order of magnitude (factor 3).
    assert!(report.fct_p99_approx > report.fct_p99_truth / 3.0);
    assert!(report.fct_p99_approx < report.fct_p99_truth * 3.0);
}

#[test]
fn mimicnet_beats_small_scale_extrapolation() {
    // The paper's Figure 1 comparison: using 2-cluster results as a stand-
    // in for a larger network is worse than MimicNet's composition.
    let mut pipe = Pipeline::new(quick_cfg());
    let trained = pipe.train();
    let n = 4;
    let (truth, _, _) = pipe.run_ground_truth(n);
    let est = pipe.estimate(&trained, n);
    // Small-scale "prediction": the 2-cluster ground truth (training run).
    let (small, _, _) = pipe.run_ground_truth(2);
    let w1_mimic = wasserstein1(&truth.fct, &est.samples.fct);
    let w1_small = wasserstein1(&truth.fct, &small.fct);
    // MimicNet should not be (much) worse than the small-scale hypothesis;
    // typically it is substantially better.
    assert!(
        w1_mimic < w1_small * 1.5,
        "w1 mimic {w1_mimic} vs small-scale {w1_small}"
    );
}

#[test]
fn mimicnet_is_cheaper_than_ground_truth_in_events() {
    let mut pipe = Pipeline::new(quick_cfg());
    let trained = pipe.train();
    let n = 6;
    let est = pipe.estimate(&trained, n);
    let (_, truth_metrics, _) = pipe.run_ground_truth(n);
    assert!(
        est.metrics.events_processed * 2 < truth_metrics.events_processed,
        "composition {} vs truth {} events",
        est.metrics.events_processed,
        truth_metrics.events_processed
    );
}

#[test]
fn per_flow_mse_gate_applies() {
    // The observable workload matches by construction, so the completed-
    // flow overlap should pass the 80% gate and give a finite MSE.
    let mut pipe = Pipeline::new(quick_cfg());
    let trained = pipe.train();
    let est = pipe.estimate(&trained, 3);
    let (_, truth_metrics, _) = pipe.run_ground_truth(3);
    // Filter both to observable flows before intersecting: mimic runs
    // only have observable flows anyway.
    match fct_mse_intersection(&truth_metrics, &est.metrics, 0.2) {
        Some(mse) => assert!(mse.is_finite() && mse >= 0.0),
        None => panic!("no usable flow intersection"),
    }
}

#[test]
fn bundle_survives_serialization_roundtrip() {
    let mut pipe = Pipeline::new(quick_cfg());
    let trained = pipe.train();
    let json = trained.to_json();
    let back = mimicnet::mimic::TrainedMimic::from_json(&json).unwrap();
    // Composing with the deserialized bundle reproduces the identical run.
    let a = pipe.estimate(&trained, 3);
    let b = pipe.estimate(&back, 3);
    assert_eq!(
        a.metrics.total_delivered_bytes(),
        b.metrics.total_delivered_bytes()
    );
    assert_eq!(a.metrics.flows_completed(), b.metrics.flows_completed());
}

#[test]
fn hybrid_direction_isolation_mode_runs() {
    // Appendix B: ingress-only and egress-only hybrid clusters for
    // debugging one direction at a time.
    use dcn_sim::simulator::Simulation;
    let mut pipe = Pipeline::new(quick_cfg());
    let trained = pipe.train();
    let mut cfg = quick_cfg().base;
    cfg.topo.clusters = 2;
    cfg.duration_s = 0.3;
    for (ingress, egress) in [(true, false), (false, true)] {
        let mut sim = Simulation::with_transport(cfg, Protocol::NewReno.factory());
        let mimic = mimicnet::LearnedMimic::new(trained.clone(), cfg.topo, 2, 7);
        sim.set_cluster_model_dirs(1, Box::new(mimic), ingress, egress);
        let m = sim.run();
        assert!(
            m.flows_completed() > 0,
            "hybrid (ingress={ingress}) completed nothing"
        );
        assert!(m.mimic_drops == 0 || m.mimic_drops < m.flows_started() as u64 * 100);
    }
}

#[test]
fn observed_filtering_matches_compose_invariant() {
    // All flows in a composition touch the observable cluster, so the
    // unfiltered and filtered FCT sample sets coincide.
    let mut pipe = Pipeline::new(quick_cfg());
    let trained = pipe.train();
    let est = pipe.estimate(&trained, 4);
    let topo = dcn_sim::topology::FatTree::new({
        let mut t = quick_cfg().base.topo;
        t.clusters = 4;
        t
    });
    let obs = observed(&est.metrics, &topo, OBSERVABLE);
    let all = est.metrics.fct_samples(|_| true);
    assert_eq!(obs.fct.len(), all.len());
    // compare() of identical sample sets is exactly zero.
    let r = compare(&obs, &est.samples);
    assert_eq!(r.w1_fct, 0.0);
}
