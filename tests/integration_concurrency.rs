//! Concurrency-determinism suite: the pipeline's parallel training fan-out
//! and the engine's overlapped (off-thread) batched flushing are pure
//! wall-clock optimizations — results must be bit-identical to their
//! serial/synchronous counterparts at every worker count, partition
//! count, and kernel mode. `RUST_TEST_THREADS` variation in CI re-runs
//! this binary under contention to shake out scheduling sensitivity.

use dcn_sim::config::SimConfig;
use dcn_transport::Protocol;
use mimicnet::pipeline::{Pipeline, PipelineConfig};

fn quick_cfg(seed: u64) -> PipelineConfig {
    let mut cfg = PipelineConfig::default();
    cfg.base.duration_s = 0.25;
    cfg.base.seed = seed;
    cfg.hidden = 8;
    cfg.train.epochs = 1;
    cfg.train.window = 4;
    cfg
}

fn assert_identical(
    seq: &dcn_sim::instrument::Metrics,
    par: &dcn_sim::instrument::Metrics,
    label: &str,
) {
    assert_eq!(seq.flows_started(), par.flows_started(), "{label}: flows started");
    assert_eq!(
        seq.flows_completed(),
        par.flows_completed(),
        "{label}: flows completed"
    );
    assert_eq!(
        seq.total_delivered_bytes(),
        par.total_delivered_bytes(),
        "{label}: delivered bytes"
    );
    assert_eq!(seq.queue_drops, par.queue_drops, "{label}: drops");
    assert_eq!(seq.ecn_marks, par.ecn_marks, "{label}: marks");
    assert_eq!(seq.mimic_drops, par.mimic_drops, "{label}: mimic drops");
    for (id, rec) in &seq.flows {
        let other = par.flows.get(id).unwrap_or_else(|| panic!("{label}: flow {id:?} missing"));
        assert_eq!(rec.end, other.end, "{label}: FCT of {id:?}");
    }
}

// ---------------------------------------------------------------------
// Parallel training: the per-direction and per-bundle fan-outs must be
// bit-identical to serial training at any worker budget.
// ---------------------------------------------------------------------

#[test]
fn direction_fanout_matches_serial_training() {
    let serial = Pipeline::new(quick_cfg(91)).train().to_json();
    for workers in [2usize, 4, 8] {
        let mut cfg = quick_cfg(91);
        cfg.train.workers = workers;
        let parallel = Pipeline::new(cfg).train().to_json();
        assert_eq!(serial, parallel, "direction fan-out diverged at {workers} workers");
    }
}

#[test]
fn bundle_fanout_matches_serial_training() {
    let cfgs = [quick_cfg(17), quick_cfg(23)];
    let serial: Vec<String> = Pipeline::try_train_bundles(&cfgs, 1)
        .expect("serial bundle training")
        .iter()
        .map(|t| t.to_json())
        .collect();
    for workers in [2usize, 4, 8] {
        let parallel: Vec<String> = Pipeline::try_train_bundles(&cfgs, workers)
            .expect("parallel bundle training")
            .iter()
            .map(|t| t.to_json())
            .collect();
        assert_eq!(serial, parallel, "bundle fan-out diverged at {workers} workers");
    }
}

// ---------------------------------------------------------------------
// Overlapped flushing: off-thread batched inference must leave composed
// trajectories byte-identical to the synchronous path — sequentially,
// across PDES partition counts, and under either matrix kernel mode.
// ---------------------------------------------------------------------

fn quick_trained() -> (mimicnet::mimic::TrainedMimic, SimConfig) {
    use mimicnet::datagen::{generate, DataGenConfig};
    use mimicnet::internal_model::InternalModel;

    let mut dg = DataGenConfig::default();
    dg.sim.duration_s = 0.3;
    dg.sim.seed = 55;
    let td = generate(&dg);
    let tc = mimic_ml::train::TrainConfig {
        epochs: 1,
        window: 4,
        ..mimic_ml::train::TrainConfig::default()
    };
    let (ing, _) = InternalModel::train_new(&td.ingress, td.ingress_disc, 8, &tc)
        .expect("valid training setup");
    let (eg, _) = InternalModel::train_new(&td.egress, td.egress_disc, 8, &tc)
        .expect("valid training setup");
    (
        mimicnet::mimic::TrainedMimic {
            ingress: ing,
            egress: eg,
            feature_cfg: td.feature_cfg,
            feeder: td.feeder,
            envelope: None,
        },
        dg.sim,
    )
}

#[test]
fn overlapped_compose_matches_synchronous() {
    use mimicnet::compose::{
        run_composed_partitioned_overlapped, try_compose_batched, try_compose_batched_overlapped,
    };

    let (trained, mut base) = quick_trained();
    base.duration_s = 0.25;
    base.seed = 31;
    let p = Protocol::NewReno;
    let sync = try_compose_batched(base, 4, p, &trained)
        .expect("valid composition")
        .run();
    assert!(sync.flows_completed() > 0, "composition made no progress");
    let overlap = try_compose_batched_overlapped(base, 4, p, &trained)
        .expect("valid composition")
        .run();
    assert_identical(&sync, &overlap, "sequential overlap");
    assert_eq!(
        sync.events_processed, overlap.events_processed,
        "sequential overlap: event count"
    );
    for parts in [1usize, 2, 4] {
        let par = run_composed_partitioned_overlapped(base, 4, p, &trained, parts)
            .expect("valid composition");
        assert_identical(&sync, &par, &format!("overlapped pdes x{parts}"));
    }
}

#[test]
fn overlapped_compose_kernel_mode_invariant() {
    use mimic_ml::matrix::{set_kernel_mode, KernelMode};
    use mimicnet::compose::{try_compose_batched, try_compose_batched_overlapped};

    let (trained, mut base) = quick_trained();
    base.duration_s = 0.2;
    base.seed = 7;
    let p = Protocol::NewReno;
    // Both kernel modes are bit-identical by construction, so flipping the
    // process-wide mode mid-suite cannot perturb concurrently running
    // tests; restore the default anyway.
    let mut runs = Vec::new();
    for mode in [KernelMode::Naive, KernelMode::Blocked] {
        set_kernel_mode(mode);
        let sync = try_compose_batched(base, 4, p, &trained)
            .expect("valid composition")
            .run();
        let overlap = try_compose_batched_overlapped(base, 4, p, &trained)
            .expect("valid composition")
            .run();
        assert_identical(&sync, &overlap, &format!("overlap under {mode:?}"));
        runs.push(sync);
    }
    set_kernel_mode(KernelMode::Blocked);
    assert_identical(&runs[0], &runs[1], "kernel modes");
}
