//! Integration tests of the adaptive fidelity-tier subsystem: the
//! tier-equivalence matrix (every tier vs packet-level ground truth under
//! a declared W1(FCT) bound), determinism of the promote/demote schedule
//! (bit-identical across partition counts per seed), and byte-identity of
//! checkpoint/restore when a cut coincides with a tier-transition epoch
//! barrier.
//!
//! Scenarios mirror the canonical fig02 shape: the small-scale training
//! config, re-composed at 2/4/8 clusters with every other parameter held
//! constant.

use dcn_sim::mimic::{BatchClusterModel, FidelityTier};
use dcn_sim::pdes::{tier_epoch_count, CheckpointPlan, TierPlan};
use dcn_sim::time::SimDuration;
use mimicnet::compose::{
    adaptive_fleet, ground_truth, run_composed_adaptive, run_composed_adaptive_checkpointed,
    run_composed_partitioned, OBSERVABLE,
};
use mimicnet::degrade::AccuracyBudget;
use mimicnet::metrics::{observed, w1_fct_relative};
use mimicnet::mimic::TrainedMimic;
use mimicnet::pipeline::{Pipeline, PipelineConfig};
use std::path::PathBuf;
use std::sync::OnceLock;

/// Per-tier W1(FCT) bounds, in units of the ground truth's mean FCT.
/// The Mimic bound matches the pipeline's end-to-end accuracy gate; the
/// Flow tier is an analytic rate-share approximation, so its declared
/// envelope is wider. Adaptive runs must stay within the looser of the
/// two tiers they blend.
const MIMIC_W1_BOUND: f64 = 1.0;
const FLOW_W1_BOUND: f64 = 2.5;

fn quick_cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::default();
    cfg.base.duration_s = 0.3;
    cfg.base.seed = 5;
    cfg.hidden = 8;
    cfg.train.epochs = 1;
    cfg.train.window = 4;
    cfg
}

/// One trained bundle shared by every test in this file (training is the
/// expensive part and its output is deterministic in the config).
fn trained() -> &'static TrainedMimic {
    static TRAINED: OnceLock<TrainedMimic> = OnceLock::new();
    TRAINED.get_or_init(|| Pipeline::new(quick_cfg()).train())
}

/// Pin every managed cluster at the Flow tier for the whole run: start
/// there and make promotion unreachable.
fn all_flow_budget() -> AccuracyBudget {
    AccuracyBudget {
        start: FidelityTier::Flow,
        promote_above: f64::INFINITY,
        ..AccuracyBudget::default()
    }
}

/// Guarantee tier transitions: start at Mimic with patience 1, so every
/// cluster demotes at the first epoch barrier (an unmonitored epoch counts
/// as calm), and promote on any observed drift, so warmed-up clusters
/// oscillate back — a schedule rich enough to exercise mixed-tier state.
fn switching_budget() -> AccuracyBudget {
    AccuracyBudget {
        start: FidelityTier::Mimic,
        demote_below: f64::INFINITY,
        patience: 1,
        promote_above: 0.0,
        ..AccuracyBudget::default()
    }
}

/// The conservative PDES window the adaptive runner derives for this
/// composition — epoch barriers land at multiples of
/// `window * plan.every_windows`.
fn adaptive_window(n_clusters: u32) -> SimDuration {
    let cfg = quick_cfg();
    let mut scaled = cfg.base;
    scaled.topo.clusters = n_clusters;
    scaled.queue = cfg.protocol.queue_setup(scaled.queue);
    let floor = adaptive_fleet(&scaled, n_clusters, trained(), &all_flow_budget(), None)
        .latency_floor();
    scaled.link.latency.min(floor)
}

fn ckpt_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mimicnet-tier-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Tier equivalence on the canonical scenarios: each tier's observable
/// FCT distribution must sit within its declared W1 bound of the
/// packet-level ground truth, and the adaptive blend within the looser
/// bound of the tiers it mixes.
#[test]
fn every_tier_is_within_its_declared_w1_bound() {
    let cfg = quick_cfg();
    let plan = TierPlan { every_windows: 32 };
    for n_clusters in [2u32, 4, 8] {
        let label = format!("{n_clusters} clusters");
        let topo = dcn_sim::topology::FatTree::new({
            let mut t = cfg.base.topo;
            t.clusters = n_clusters;
            t
        });
        let truth = observed(
            &ground_truth(cfg.base, n_clusters, cfg.protocol).run(),
            &topo,
            OBSERVABLE,
        );
        assert!(!truth.fct.is_empty(), "{label}: ground truth saw no flows");

        let mimic = observed(
            &run_composed_partitioned(cfg.base, n_clusters, cfg.protocol, trained(), 1)
                .expect("all-Mimic run"),
            &topo,
            OBSERVABLE,
        );
        let flow = observed(
            &run_composed_adaptive(
                cfg.base,
                n_clusters,
                cfg.protocol,
                trained(),
                1,
                &all_flow_budget(),
                &plan,
                None,
            )
            .expect("all-Flow run"),
            &topo,
            OBSERVABLE,
        );
        let adaptive = observed(
            &run_composed_adaptive(
                cfg.base,
                n_clusters,
                cfg.protocol,
                trained(),
                1,
                &AccuracyBudget::default(),
                &plan,
                None,
            )
            .expect("adaptive run"),
            &topo,
            OBSERVABLE,
        );

        let rel_mimic = w1_fct_relative(&truth.fct, &mimic.fct);
        let rel_flow = w1_fct_relative(&truth.fct, &flow.fct);
        let rel_adaptive = w1_fct_relative(&truth.fct, &adaptive.fct);
        assert!(
            rel_mimic < MIMIC_W1_BOUND,
            "{label}: Mimic tier W1(FCT) {rel_mimic:.3} outside bound {MIMIC_W1_BOUND}"
        );
        assert!(
            rel_flow < FLOW_W1_BOUND,
            "{label}: Flow tier W1(FCT) {rel_flow:.3} outside bound {FLOW_W1_BOUND}"
        );
        assert!(
            rel_adaptive < FLOW_W1_BOUND,
            "{label}: adaptive W1(FCT) {rel_adaptive:.3} outside bound {FLOW_W1_BOUND}"
        );
    }
}

/// The promote/demote schedule is a deterministic function of the seed and
/// invariant to the partition count: the full merged metrics (including
/// the recorded `TierSwitch` log) are bit-identical at 1/2/4 partitions.
#[test]
fn adaptive_schedule_is_deterministic_and_partition_invariant() {
    let cfg = quick_cfg();
    let plan = TierPlan { every_windows: 16 };
    let budget = switching_budget();
    for seed in [5u64, 6, 7] {
        let mut base = cfg.base;
        base.seed = seed;
        let runs: Vec<_> = [1usize, 2, 4]
            .iter()
            .map(|&partitions| {
                run_composed_adaptive(
                    base,
                    4,
                    cfg.protocol,
                    trained(),
                    partitions,
                    &budget,
                    &plan,
                    None,
                )
                .unwrap_or_else(|e| panic!("seed {seed} x{partitions}: {e}"))
            })
            .collect();
        assert!(
            !runs[0].tier_switches.is_empty(),
            "seed {seed}: switching budget produced no transitions"
        );
        // Re-running at the same seed and partition count must also be
        // bit-identical (determinism proper, not just invariance).
        let again = run_composed_adaptive(
            base,
            4,
            cfg.protocol,
            trained(),
            1,
            &budget,
            &plan,
            None,
        )
        .expect("repeat run");
        let reference = runs[0].canonical_bytes();
        assert_eq!(
            reference,
            again.canonical_bytes(),
            "seed {seed}: same-seed re-run diverged"
        );
        for (partitions, m) in [1usize, 2, 4].iter().zip(&runs) {
            assert_eq!(
                reference,
                m.canonical_bytes(),
                "seed {seed}: x{partitions} diverged from sequential"
            );
            assert_eq!(
                runs[0].tier_switches, m.tier_switches,
                "seed {seed}: x{partitions} tier schedule diverged"
            );
        }
    }
}

/// A checkpoint cut at a tier-transition barrier restores byte-identically:
/// the checkpoint cadence is aligned to the epoch stride, so every cut
/// lands at a barrier where the ledger may just have moved clusters, and
/// the resumed run must replay neither the epoch nor diverge after it.
#[test]
fn checkpoint_at_tier_transition_restores_byte_identically() {
    let cfg = quick_cfg();
    let n_clusters = 4u32;
    let plan = TierPlan { every_windows: 16 };
    let budget = switching_budget();
    let window = adaptive_window(n_clusters);
    let stride = SimDuration::from_nanos(window.as_nanos() * plan.every_windows);
    let epochs = tier_epoch_count(cfg.base.duration_s, window, &plan);
    assert!(epochs >= 2, "scenario too short to host tier epochs");

    let run = |checkpoint: Option<&CheckpointPlan>, resume: Option<&std::path::Path>| {
        run_composed_adaptive_checkpointed(
            cfg.base,
            n_clusters,
            cfg.protocol,
            trained(),
            2,
            false,
            &budget,
            &plan,
            None,
            checkpoint,
            resume,
        )
        .expect("adaptive checkpointed run")
    };

    let plain = run(None, None);
    assert!(
        !plain.tier_switches.is_empty(),
        "no tier transitions; the test would not exercise the barrier"
    );
    // Every switch sits on an epoch barrier the checkpoint cadence hits:
    // cuts land at t = k * stride, epochs at the same multiples.
    for sw in &plain.tier_switches {
        assert!(sw.epoch >= 1 && sw.epoch <= epochs, "switch {sw:?} off-barrier");
    }

    let dir = ckpt_dir("transition");
    let ckpt_plan = CheckpointPlan {
        dir: dir.clone(),
        every: stride,
        keep: 1,
    };
    let ckpt = run(Some(&ckpt_plan), None);
    assert_eq!(
        plain.canonical_bytes(),
        ckpt.canonical_bytes(),
        "checkpointing at tier barriers changed the trajectory"
    );

    let resumed = run(None, Some(&dir));
    assert_eq!(
        plain.canonical_bytes(),
        resumed.canonical_bytes(),
        "resume from a tier-transition cut diverged"
    );
    assert_eq!(plain.tier_switches, resumed.tier_switches);
    let _ = std::fs::remove_dir_all(&dir);
}

mod schedule_props {
    use super::*;
    use mimicnet::degrade::BudgetLedger;
    use proptest::prelude::*;

    const CLUSTERS: usize = 6;
    const EPOCHS: usize = 12;

    fn budget(promote: f64, demote: f64, patience: u32, cap: usize, start_flow: bool) -> AccuracyBudget {
        AccuracyBudget {
            promote_above: promote,
            demote_below: demote,
            patience,
            max_above_flow: cap,
            start: if start_flow {
                FidelityTier::Flow
            } else {
                FidelityTier::Mimic
            },
            baseline: Vec::new(),
        }
    }

    /// Decode a flat sample into an epoch-by-cluster drift history;
    /// negative draws become unmonitored (`None`) epochs.
    fn drift_history(raw: &[f64]) -> Vec<Vec<Option<f64>>> {
        raw.chunks(CLUSTERS)
            .map(|chunk| chunk.iter().map(|&v| (v >= 0.0).then_some(v)).collect())
            .collect()
    }

    proptest! {
        /// The ledger's schedule is a pure function of its inputs: replay
        /// the same drift history through two independent replicas (as
        /// every PDES partition does) and the switch logs and final tier
        /// assignments agree exactly.
        #[test]
        fn replicated_ledgers_stay_in_lockstep(
            promote in 0.0f64..2.0,
            demote in 0.0f64..2.0,
            patience in 1u32..4,
            cap in 0usize..6,
            start_flow in any::<bool>(),
            raw in proptest::collection::vec(-1.0f64..4.0, CLUSTERS * EPOCHS),
        ) {
            let bgt = budget(promote, demote, patience, cap, start_flow);
            let managed: Vec<u32> = (1..CLUSTERS as u32).collect();
            let mut a = BudgetLedger::new(bgt.clone(), CLUSTERS as u32, &managed);
            let mut b = BudgetLedger::new(bgt, CLUSTERS as u32, &managed);
            for (epoch, d) in drift_history(&raw).iter().enumerate() {
                let sa = a.on_epoch(epoch as u64, d);
                let sb = b.on_epoch(epoch as u64, d);
                prop_assert_eq!(sa, sb, "epoch {} diverged", epoch);
            }
            for c in 0..CLUSTERS as u32 {
                prop_assert_eq!(a.tier(c), b.tier(c));
            }
        }

        /// Snapshotting a ledger mid-history and replaying the rest on the
        /// restored copy matches the uninterrupted ledger — the property
        /// that makes checkpoint cuts at epoch barriers safe.
        #[test]
        fn ledger_restore_resumes_the_same_schedule(
            promote in 0.0f64..2.0,
            demote in 0.0f64..2.0,
            patience in 1u32..4,
            cap in 0usize..6,
            start_flow in any::<bool>(),
            raw in proptest::collection::vec(-1.0f64..4.0, CLUSTERS * EPOCHS),
            cut in 0usize..12,
        ) {
            let bgt = budget(promote, demote, patience, cap, start_flow);
            let managed: Vec<u32> = (1..CLUSTERS as u32).collect();
            let mut live = BudgetLedger::new(bgt.clone(), CLUSTERS as u32, &managed);
            let mut restored = None;
            for (epoch, d) in drift_history(&raw).iter().enumerate() {
                if epoch == cut {
                    let mut w = dcn_sim::snapshot::SnapWriter::new();
                    live.save_state(&mut w);
                    let bytes = w.into_bytes();
                    let mut copy = BudgetLedger::new(bgt.clone(), CLUSTERS as u32, &managed);
                    let mut r = dcn_sim::snapshot::SnapReader::new(&bytes);
                    copy.load_state(&mut r).expect("valid ledger snapshot");
                    restored = Some(copy);
                }
                let s_live = live.on_epoch(epoch as u64, d);
                if let Some(copy) = restored.as_mut() {
                    let s_copy = copy.on_epoch(epoch as u64, d);
                    prop_assert_eq!(s_live, s_copy, "epoch {} diverged after restore", epoch);
                }
            }
            if let Some(copy) = restored {
                for c in 0..CLUSTERS as u32 {
                    prop_assert_eq!(live.tier(c), copy.tier(c));
                }
            }
        }
    }
}

