//! Integration tests of the packet-level simulator as a whole system:
//! conservation laws, load tracking, congestion behaviour, and the
//! boundary instrumentation MimicNet depends on.

use dcn_sim::config::{FlowSizeDist, SimConfig};
use dcn_sim::instrument::BoundaryPhase;
use dcn_sim::mimic::BoundaryDir;
use dcn_sim::simulator::Simulation;
use dcn_sim::stats::mean;
use dcn_sim::topology::FatTree;
use dcn_transport::Protocol;

fn run(cfg: SimConfig, p: Protocol) -> dcn_sim::instrument::Metrics {
    let mut c = cfg;
    c.queue = p.queue_setup(c.queue);
    Simulation::with_transport(c, p.factory()).run()
}

#[test]
fn offered_load_is_delivered_at_moderate_load() {
    let mut cfg = SimConfig::small_scale();
    cfg.duration_s = 2.0;
    cfg.seed = 3;
    cfg.traffic.load = 0.5;
    // Fixed flow sizes: the web-search tail makes 2-second byte counts far
    // too noisy for a utilization assertion (a single elephant dominates).
    cfg.traffic.size = FlowSizeDist::Fixed { bytes: 40_000 };
    let m = run(cfg, Protocol::NewReno);
    // Delivered goodput should be a large fraction of the offered load
    // (0.5 * 10 Mbps * 8 hosts / 8 bits = 5 MB/s aggregate).
    let offered_bps = 0.5 * 10e6 * 8.0;
    let delivered_bps = m.total_delivered_bytes() as f64 * 8.0 / 2.0;
    assert!(
        delivered_bps > offered_bps * 0.5,
        "delivered {delivered_bps} of offered {offered_bps}"
    );
    assert!(
        delivered_bps < offered_bps * 1.2,
        "delivered more than offered?!"
    );
}

#[test]
fn fct_grows_with_load() {
    let fct_at = |load: f64| {
        let mut cfg = SimConfig::small_scale();
        cfg.duration_s = 1.5;
        cfg.seed = 4;
        cfg.traffic.load = load;
        let m = run(cfg, Protocol::NewReno);
        mean(&m.fct_samples(|_| true))
    };
    let light = fct_at(0.2);
    let heavy = fct_at(0.9);
    assert!(
        heavy > light,
        "mean FCT should grow with load: {light} -> {heavy}"
    );
}

#[test]
fn rtt_inflates_under_congestion() {
    let rtt_p99_at = |load: f64| {
        let mut cfg = SimConfig::small_scale();
        cfg.duration_s = 1.0;
        cfg.seed = 5;
        cfg.traffic.load = load;
        let m = run(cfg, Protocol::NewReno);
        dcn_sim::stats::percentile(&m.rtt_samples(|_| true), 99.0)
    };
    assert!(rtt_p99_at(0.9) > rtt_p99_at(0.1));
}

#[test]
fn larger_network_same_per_host_behaviour() {
    // The paper's scalability restriction: per-host workload is size-
    // independent, so per-host delivered bytes should be roughly stable
    // as clusters are added.
    let per_host = |clusters: u32| {
        let mut cfg = SimConfig::with_clusters(clusters);
        cfg.duration_s = 1.0;
        cfg.seed = 6;
        let m = run(cfg, Protocol::NewReno);
        m.total_delivered_bytes() as f64 / (8 * clusters) as f64
    };
    let at2 = per_host(2);
    let at6 = per_host(6);
    assert!(
        (at2 - at6).abs() / at2 < 0.3,
        "per-host bytes diverged: {at2} vs {at6}"
    );
}

#[test]
fn boundary_trace_has_all_four_record_types() {
    let mut cfg = SimConfig::small_scale();
    cfg.duration_s = 0.5;
    cfg.seed = 7;
    cfg.traffic.inter_cluster_fraction = 0.8;
    let mut sim = Simulation::new(cfg);
    sim.trace_cluster(1);
    let m = sim.run();
    let count = |d: BoundaryDir, p: BoundaryPhase| {
        m.boundary.iter().filter(|r| r.dir == d && r.phase == p).count()
    };
    assert!(count(BoundaryDir::Ingress, BoundaryPhase::Enter) > 0);
    assert!(count(BoundaryDir::Ingress, BoundaryPhase::Exit) > 0);
    assert!(count(BoundaryDir::Egress, BoundaryPhase::Enter) > 0);
    assert!(count(BoundaryDir::Egress, BoundaryPhase::Exit) > 0);
    // Exits never exceed enters.
    assert!(
        count(BoundaryDir::Ingress, BoundaryPhase::Exit)
            <= count(BoundaryDir::Ingress, BoundaryPhase::Enter)
    );
}

#[test]
fn fan_in_congestion_drops_at_small_buffers() {
    // The paper's fan-in assumption: drive many senders into one rack and
    // confirm losses materialize (and are recovered from).
    let mut cfg = SimConfig::small_scale();
    cfg.duration_s = 1.0;
    cfg.seed = 8;
    cfg.queue.capacity_bytes = 10_000;
    cfg.traffic.load = 1.2;
    cfg.traffic.size = FlowSizeDist::Fixed { bytes: 100_000 };
    let m = run(cfg, Protocol::NewReno);
    assert!(m.queue_drops > 0);
    assert!(m.flows_completed() > 0);
}

#[test]
fn events_scale_superlinearly_with_clusters() {
    // Inter-cluster paths lengthen and multiply: total events grow faster
    // than linearly in cluster count for a fixed per-host workload.
    let events = |clusters: u32| {
        let mut cfg = SimConfig::with_clusters(clusters);
        cfg.duration_s = 0.4;
        cfg.seed = 9;
        run(cfg, Protocol::NewReno).events_processed as f64
    };
    let e2 = events(2);
    let e8 = events(8);
    assert!(
        e8 > e2 * 3.5,
        "events: 2 clusters {e2}, 8 clusters {e8} — expected ≳4x"
    );
}

#[test]
fn ttl_suffices_for_all_paths() {
    // No packet should ever die of TTL in a healthy FatTree.
    let mut cfg = SimConfig::with_clusters(4);
    cfg.duration_s = 0.5;
    cfg.seed = 10;
    let topo = FatTree::new(cfg.topo);
    let m = run(cfg, Protocol::NewReno);
    // Sanity: network actually spanned all tiers.
    assert!(topo.params.num_cores() > 0);
    // Every completed flow implies full traversal; TTL drops would stall
    // completions and show as huge incompletion rates.
    let completion = m.flows_completed() as f64 / m.flows_started().max(1) as f64;
    assert!(completion > 0.5, "completion rate {completion}");
}
