//! Integration tests of the checkpoint/restore subsystem: a composed
//! MimicNet run that is checkpointed mid-flight — or killed and resumed
//! from the committed checkpoint — must produce metrics byte-identical to
//! an uninterrupted run, at every partition count and compose mode. And a
//! damaged checkpoint must surface as a typed [`SnapshotError`], never a
//! panic.

use dcn_sim::mimic::FidelityTier;
use dcn_sim::pdes::{read_manifest, CheckpointPlan, TierPlan, MANIFEST_FILE};
use dcn_sim::snapshot::{
    read_snapshot_file, SnapReader, SnapWriter, SnapshotError, FORMAT_VERSION,
};
use dcn_sim::time::SimDuration;
use mimicnet::compose::{run_composed_adaptive_checkpointed, run_composed_partitioned_checkpointed};
use mimicnet::degrade::{AccuracyBudget, BudgetLedger};
use mimicnet::error::ComposeRunError;
use mimicnet::mimic::TrainedMimic;
use mimicnet::pipeline::{Pipeline, PipelineConfig};
use std::path::PathBuf;
use std::sync::OnceLock;

fn quick_cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::default();
    cfg.base.duration_s = 0.3;
    cfg.base.seed = 77;
    cfg.hidden = 8;
    cfg.train.epochs = 2;
    cfg.train.window = 4;
    cfg
}

/// One trained bundle shared by every test in this file (training is the
/// expensive part and its output is deterministic in the config).
fn trained() -> &'static TrainedMimic {
    static TRAINED: OnceLock<TrainedMimic> = OnceLock::new();
    TRAINED.get_or_init(|| Pipeline::new(quick_cfg()).train())
}

fn ckpt_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mimicnet-snap-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run the composed simulation at `partitions`, optionally overlapped,
/// optionally checkpointing into `plan` / resuming from `resume`.
fn composed(
    partitions: usize,
    overlap: bool,
    plan: Option<&CheckpointPlan>,
    resume: Option<&std::path::Path>,
) -> Result<dcn_sim::instrument::Metrics, ComposeRunError> {
    let cfg = quick_cfg();
    run_composed_partitioned_checkpointed(
        cfg.base,
        4,
        cfg.protocol,
        trained(),
        partitions,
        overlap,
        plan,
        resume,
    )
}

#[test]
fn checkpointed_and_resumed_runs_are_byte_identical_across_modes() {
    // The acceptance matrix: 1/2/4 partitions (1 is the sequential
    // engine), with the batched fleet flushed synchronously and with the
    // overlapped (helper-thread) flush path.
    for partitions in [1usize, 2, 4] {
        for overlap in [false, true] {
            let label = format!("x{partitions} overlap={overlap}");
            let plain = composed(partitions, overlap, None, None)
                .unwrap_or_else(|e| panic!("{label}: uninterrupted run failed: {e}"));

            let dir = ckpt_dir(&format!("id-{partitions}-{overlap}"));
            let plan = CheckpointPlan {
                dir: dir.clone(),
                every: SimDuration::from_millis(80),
                keep: 1,
            };
            let ckpt = composed(partitions, overlap, Some(&plan), None)
                .unwrap_or_else(|e| panic!("{label}: checkpointed run failed: {e}"));
            assert_eq!(
                plain.canonical_bytes(),
                ckpt.canonical_bytes(),
                "{label}: checkpointing changed the trajectory"
            );

            // The run completed, so a committed checkpoint must exist —
            // resume from it as a crashed process would.
            let manifest = read_manifest(&dir)
                .unwrap_or_else(|e| panic!("{label}: no committed manifest: {e}"));
            assert_eq!(manifest.partitions as usize, partitions, "{label}");
            let resumed = composed(partitions, overlap, None, Some(&dir))
                .unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));
            assert_eq!(
                plain.canonical_bytes(),
                resumed.canonical_bytes(),
                "{label}: resumed run diverged from uninterrupted"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// The committed generation's partition files from a finished
/// checkpointed run — real snapshot bytes to corrupt.
fn committed_part_file(tag: &str) -> (PathBuf, PathBuf) {
    let dir = ckpt_dir(tag);
    let plan = CheckpointPlan {
        dir: dir.clone(),
        every: SimDuration::from_millis(80),
        keep: 1,
    };
    composed(1, false, Some(&plan), None).expect("checkpointed run");
    let manifest = read_manifest(&dir).expect("committed manifest");
    let part = dir.join(&manifest.generation).join("part-0.snap");
    assert!(part.exists(), "committed partition file missing");
    (dir, part)
}

/// Like [`committed_part_file`], but from an *adaptive* run whose
/// snapshots additionally carry the per-cluster fidelity state: the
/// accuracy-budget ledger (tier assignment + calm accounting) and the
/// Flow-tier share estimators.
fn committed_adaptive_part_file(tag: &str) -> (PathBuf, PathBuf) {
    let dir = ckpt_dir(tag);
    let plan = CheckpointPlan {
        dir: dir.clone(),
        every: SimDuration::from_millis(80),
        keep: 1,
    };
    adaptive(Some(&plan), None).expect("adaptive checkpointed run");
    let manifest = read_manifest(&dir).expect("committed manifest");
    let part = dir.join(&manifest.generation).join("part-0.snap");
    assert!(part.exists(), "committed partition file missing");
    (dir, part)
}

/// Adaptive run with a budget guaranteed to demote every managed cluster
/// at the first epoch barrier, so the snapshot holds mixed fidelity state.
fn adaptive(
    plan: Option<&CheckpointPlan>,
    resume: Option<&std::path::Path>,
) -> Result<dcn_sim::instrument::Metrics, ComposeRunError> {
    let cfg = quick_cfg();
    let budget = AccuracyBudget {
        start: FidelityTier::Mimic,
        demote_below: f64::INFINITY,
        patience: 1,
        ..AccuracyBudget::default()
    };
    run_composed_adaptive_checkpointed(
        cfg.base,
        4,
        cfg.protocol,
        trained(),
        1,
        false,
        &budget,
        &TierPlan { every_windows: 16 },
        None,
        plan,
        resume,
    )
}

#[test]
fn adaptive_snapshot_corruption_is_a_typed_error() {
    // The adaptive part file embeds the ledger and estimator state; any
    // bit damage must still surface as a checksum mismatch, and the
    // adaptive resume path must propagate it typed, never panic.
    let (dir, part) = committed_adaptive_part_file("adaptive-flip");
    let mut bytes = std::fs::read(&part).expect("read snapshot");
    let payload_at = bytes.len() - 1;
    bytes[payload_at] ^= 0x10;
    std::fs::write(&part, &bytes).expect("write corrupted snapshot");
    match read_snapshot_file(&part) {
        Err(SnapshotError::ChecksumMismatch { expected, actual }) => {
            assert_ne!(expected, actual)
        }
        other => panic!("bit flip must fail the checksum, got {other:?}"),
    }
    match adaptive(None, Some(&dir)) {
        Err(ComposeRunError::Snapshot(SnapshotError::ChecksumMismatch { .. })) => {}
        Ok(_) => panic!("adaptive resume from a corrupted snapshot must fail"),
        Err(e) => panic!("wrong error for corrupted adaptive snapshot: {e}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn adaptive_checkpoint_resumes_byte_identically() {
    // Sanity anchor for the corruption tests: the *intact* adaptive
    // checkpoint restores byte-identically, switches included.
    let plain = adaptive(None, None).expect("uninterrupted adaptive run");
    assert!(!plain.tier_switches.is_empty(), "budget produced no demotions");
    let (dir, _part) = committed_adaptive_part_file("adaptive-ok");
    let resumed = adaptive(None, Some(&dir)).expect("adaptive resume");
    assert_eq!(plain.canonical_bytes(), resumed.canonical_bytes());
    assert_eq!(plain.tier_switches, resumed.tier_switches);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Budget-ledger codec: the per-cluster tier byte is validated on load —
/// an out-of-range ordinal (a fourth tier that does not exist) is a
/// `Corrupt` error, truncation is `Truncated`, and a count mismatch
/// against the configured cluster count is `Corrupt`.
#[test]
fn ledger_fidelity_state_corruption_is_typed() {
    let budget = AccuracyBudget::default();
    let mut ledger = BudgetLedger::new(budget.clone(), 4, &[1, 2, 3]);
    // Advance the accounting so the snapshot holds non-trivial state.
    ledger.on_epoch(1, &[None, Some(0.1), None, Some(2.0)]);
    ledger.on_epoch(2, &[None, Some(0.2), None, None]);
    let mut w = SnapWriter::new();
    ledger.save_state(&mut w);
    let bytes = w.into_bytes();

    // Layout: u64 cluster count, then per cluster [u8 tier, u8 managed,
    // u32 calm]. Corrupt cluster 1's tier byte (offset 8 + 6*1).
    let mut bad = bytes.clone();
    bad[8 + 6] = FidelityTier::COUNT as u8;
    let mut fresh = BudgetLedger::new(budget.clone(), 4, &[1, 2, 3]);
    match fresh.load_state(&mut SnapReader::new(&bad)) {
        Err(SnapshotError::Corrupt(msg)) => {
            assert!(msg.contains("FidelityTier"), "unexpected message: {msg}")
        }
        other => panic!("bad tier byte must be Corrupt, got {other:?}"),
    }

    let mut fresh = BudgetLedger::new(budget.clone(), 4, &[1, 2, 3]);
    match fresh.load_state(&mut SnapReader::new(&bytes[..bytes.len() - 3])) {
        Err(SnapshotError::Truncated) => {}
        other => panic!("truncated ledger must be Truncated, got {other:?}"),
    }

    // A snapshot from a differently-sized fleet must not load.
    let mut wrong_size = BudgetLedger::new(budget.clone(), 6, &[1, 2, 3, 4, 5]);
    match wrong_size.load_state(&mut SnapReader::new(&bytes)) {
        Err(SnapshotError::Corrupt(_)) => {}
        other => panic!("cluster-count mismatch must be Corrupt, got {other:?}"),
    }

    // And the intact bytes round-trip canonically.
    let mut good = BudgetLedger::new(budget, 4, &[1, 2, 3]);
    good.load_state(&mut SnapReader::new(&bytes)).expect("intact ledger loads");
    let mut w2 = SnapWriter::new();
    good.save_state(&mut w2);
    assert_eq!(bytes, w2.into_bytes(), "ledger re-serialization not canonical");
}

/// Flow-tier share-estimator codec: truncated estimator state is a typed
/// error, and intact state round-trips canonically.
#[test]
fn share_estimator_corruption_is_typed() {
    use dcn_sim::packet::FlowId;
    use dcn_sim::time::SimTime;
    use flow_sim::boundary::ShareEstimator;

    let mut est = ShareEstimator::new(10_000_000, SimDuration::from_millis(1), SimDuration::from_millis(10));
    for i in 0..5u64 {
        est.observe(FlowId(i), SimTime::from_secs_f64(0.001 * i as f64), 1500);
    }
    est.clamp_exit(SimTime::from_secs_f64(0.02));
    let mut w = SnapWriter::new();
    est.save_state(&mut w);
    let bytes = w.into_bytes();

    let mut fresh = ShareEstimator::new(10_000_000, SimDuration::from_millis(1), SimDuration::from_millis(10));
    match fresh.load_state(&mut SnapReader::new(&bytes[..bytes.len() / 2])) {
        Err(SnapshotError::Truncated) => {}
        other => panic!("truncated estimator must be Truncated, got {other:?}"),
    }

    let mut good = ShareEstimator::new(10_000_000, SimDuration::from_millis(1), SimDuration::from_millis(10));
    good.load_state(&mut SnapReader::new(&bytes)).expect("intact estimator loads");
    let mut w2 = SnapWriter::new();
    good.save_state(&mut w2);
    assert_eq!(bytes, w2.into_bytes(), "estimator re-serialization not canonical");
}

#[test]
fn bit_flipped_snapshot_is_a_checksum_error() {
    let (dir, part) = committed_part_file("flip");
    let mut bytes = std::fs::read(&part).expect("read snapshot");
    let payload_at = bytes.len() - 1; // last payload byte, well past the header
    bytes[payload_at] ^= 0x40;
    std::fs::write(&part, &bytes).expect("write corrupted snapshot");
    match read_snapshot_file(&part) {
        Err(SnapshotError::ChecksumMismatch { expected, actual }) => {
            assert_ne!(expected, actual)
        }
        other => panic!("bit flip must fail the checksum, got {other:?}"),
    }
    // The whole resume path must surface the same typed error, not panic.
    match composed(1, false, None, Some(&dir)) {
        Err(ComposeRunError::Snapshot(SnapshotError::ChecksumMismatch { .. })) => {}
        Ok(_) => panic!("resume from a corrupted snapshot must fail"),
        Err(e) => panic!("wrong error for corrupted snapshot: {e}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_snapshot_is_a_typed_error() {
    let (dir, part) = committed_part_file("trunc");
    let bytes = std::fs::read(&part).expect("read snapshot");
    std::fs::write(&part, &bytes[..bytes.len() / 2]).expect("truncate snapshot");
    match read_snapshot_file(&part) {
        Err(SnapshotError::Truncated) => {}
        other => panic!("truncation must be typed, got {other:?}"),
    }
    match composed(1, false, None, Some(&dir)) {
        Err(ComposeRunError::Snapshot(SnapshotError::Truncated)) => {}
        Ok(_) => panic!("resume from a truncated snapshot must fail"),
        Err(e) => panic!("wrong error for truncated snapshot: {e}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_skew_is_a_typed_error() {
    let (dir, part) = committed_part_file("skew");
    let mut bytes = std::fs::read(&part).expect("read snapshot");
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    std::fs::write(&part, &bytes).expect("write skewed snapshot");
    match read_snapshot_file(&part) {
        Err(SnapshotError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("version skew must be typed, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_manifest_is_a_typed_error_on_resume() {
    let (dir, _part) = committed_part_file("manifest");
    std::fs::write(dir.join(MANIFEST_FILE), b"{definitely not json")
        .expect("clobber manifest");
    match composed(1, false, None, Some(&dir)) {
        Err(ComposeRunError::Snapshot(SnapshotError::Corrupt(_))) => {}
        Ok(_) => panic!("resume from a clobbered manifest must fail"),
        Err(e) => panic!("wrong error for clobbered manifest: {e}"),
    }
    // A missing directory is an I/O error, also typed.
    let gone = ckpt_dir("missing");
    match composed(1, false, None, Some(&gone)) {
        Err(ComposeRunError::Snapshot(SnapshotError::Io(_))) => {}
        Ok(_) => panic!("resume from a missing directory must fail"),
        Err(e) => panic!("wrong error for missing directory: {e}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

mod codec_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn scalar_fields_round_trip(
            a in any::<u64>(),
            b in any::<i64>(),
            c in any::<u32>(),
            d in any::<u16>(),
            e in any::<u8>(),
            f in any::<bool>(),
            s in proptest::collection::vec(32u8..127, 0..64),
        ) {
            let s = String::from_utf8(s).expect("printable ASCII");
            let mut w = SnapWriter::new();
            w.put_u64(a);
            w.put_i64(b);
            w.put_u32(c);
            w.put_u16(d);
            w.put_u8(e);
            w.put_bool(f);
            w.put_str(&s);
            let bytes = w.into_bytes();
            let mut r = SnapReader::new(&bytes);
            prop_assert_eq!(r.get_u64().unwrap(), a);
            prop_assert_eq!(r.get_i64().unwrap(), b);
            prop_assert_eq!(r.get_u32().unwrap(), c);
            prop_assert_eq!(r.get_u16().unwrap(), d);
            prop_assert_eq!(r.get_u8().unwrap(), e);
            prop_assert_eq!(r.get_bool().unwrap(), f);
            prop_assert_eq!(r.get_str().unwrap(), s);
            r.finish().unwrap();
        }

        #[test]
        fn slices_and_options_round_trip(
            xs in proptest::collection::vec(any::<f64>(), 0..64),
            ys in proptest::collection::vec(any::<f32>(), 0..64),
            zs in proptest::collection::vec(any::<u64>(), 0..64),
            opt_a in (any::<bool>(), any::<u64>()),
            opt_b in (any::<bool>(), any::<f64>()),
        ) {
            let opt_a = opt_a.0.then_some(opt_a.1);
            let opt_b = opt_b.0.then_some(opt_b.1);
            let mut w = SnapWriter::new();
            w.put_f64_slice(&xs);
            w.put_f32_slice(&ys);
            w.put_u64_slice(&zs);
            w.put_opt_u64(opt_a);
            w.put_opt_f64(opt_b);
            let bytes = w.into_bytes();
            let mut r = SnapReader::new(&bytes);
            // Bit-compare floats: NaN payloads must survive verbatim.
            let back: Vec<u64> = r.get_f64_vec().unwrap().iter().map(|v| v.to_bits()).collect();
            let want: Vec<u64> = xs.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(back, want);
            let back: Vec<u32> = r.get_f32_vec().unwrap().iter().map(|v| v.to_bits()).collect();
            let want: Vec<u32> = ys.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(back, want);
            prop_assert_eq!(r.get_u64_vec().unwrap(), zs);
            prop_assert_eq!(r.get_opt_u64().unwrap(), opt_a);
            prop_assert_eq!(
                r.get_opt_f64().unwrap().map(f64::to_bits),
                opt_b.map(f64::to_bits)
            );
            r.finish().unwrap();
        }

        #[test]
        fn truncated_payloads_never_panic(
            xs in proptest::collection::vec(any::<u64>(), 1..32),
            cut_frac in 0.0f64..1.0,
        ) {
            let mut w = SnapWriter::new();
            w.put_u64_slice(&xs);
            w.put_str("trailer");
            let bytes = w.into_bytes();
            let cut = (bytes.len() as f64 * cut_frac) as usize;
            // Decoding any prefix returns a typed error (or succeeds on a
            // field boundary) — it must never panic or over-allocate.
            let mut r = SnapReader::new(&bytes[..cut.min(bytes.len())]);
            let _ = r.get_u64_vec().and_then(|_| r.get_str().map(|_| ()));
        }
    }
}
