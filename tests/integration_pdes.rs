//! Integration tests of the conservative PDES engine: exact agreement
//! with sequential execution across protocols and partition counts.

use dcn_sim::config::SimConfig;
use dcn_sim::pdes::run_partitioned;
use dcn_sim::simulator::Simulation;
use dcn_transport::Protocol;

fn cfg(clusters: u32) -> SimConfig {
    let mut c = SimConfig::with_clusters(clusters);
    c.duration_s = 0.25;
    c.seed = 31;
    c
}

fn assert_identical(
    seq: &dcn_sim::instrument::Metrics,
    par: &dcn_sim::instrument::Metrics,
    label: &str,
) {
    assert_eq!(seq.flows_started(), par.flows_started(), "{label}: flows started");
    assert_eq!(
        seq.flows_completed(),
        par.flows_completed(),
        "{label}: flows completed"
    );
    assert_eq!(
        seq.total_delivered_bytes(),
        par.total_delivered_bytes(),
        "{label}: delivered bytes"
    );
    assert_eq!(seq.queue_drops, par.queue_drops, "{label}: drops");
    assert_eq!(seq.ecn_marks, par.ecn_marks, "{label}: marks");
    for (id, rec) in &seq.flows {
        let other = par.flows.get(id).unwrap_or_else(|| panic!("{label}: flow {id:?} missing"));
        assert_eq!(rec.end, other.end, "{label}: FCT of {id:?}");
    }
}

#[test]
fn pdes_matches_sequential_newreno() {
    let c = cfg(4);
    let p = Protocol::NewReno;
    let mut base = c;
    base.queue = p.queue_setup(base.queue);
    let seq = Simulation::with_transport(base, p.factory()).run();
    for parts in [2usize, 3, 4] {
        let par = run_partitioned(base, parts, &|| p.factory());
        assert_identical(&seq, &par, &format!("newreno x{parts}"));
    }
}

#[test]
fn pdes_matches_sequential_dctcp() {
    let c = cfg(4);
    let p = Protocol::Dctcp { k: 10 };
    let mut base = c;
    base.queue = p.queue_setup(base.queue);
    let seq = Simulation::with_transport(base, p.factory()).run();
    let par = run_partitioned(base, 4, &|| p.factory());
    assert_identical(&seq, &par, "dctcp x4");
}

#[test]
fn pdes_matches_sequential_homa() {
    let c = cfg(4);
    let p = Protocol::Homa;
    let mut base = c;
    base.queue = p.queue_setup(base.queue);
    let seq = Simulation::with_transport(base, p.factory()).run();
    let par = run_partitioned(base, 2, &|| p.factory());
    assert_identical(&seq, &par, "homa x2");
}

#[test]
fn pdes_more_partitions_than_clusters() {
    // Degenerate but legal: extra partitions simply idle.
    let c = cfg(2);
    let p = Protocol::NewReno;
    let seq = Simulation::with_transport(c, p.factory()).run();
    let par = run_partitioned(c, 5, &|| p.factory());
    assert_identical(&seq, &par, "overpartitioned");
}

#[test]
fn pdes_larger_network() {
    let c = cfg(8);
    let p = Protocol::NewReno;
    let seq = Simulation::with_transport(c, p.factory()).run();
    let par = run_partitioned(c, 4, &|| p.factory());
    assert_identical(&seq, &par, "8 clusters x4");
}
