//! Integration tests of the conservative PDES engine: exact agreement
//! with sequential execution across protocols and partition counts.

use dcn_sim::config::SimConfig;
use dcn_sim::pdes::run_partitioned;
use dcn_sim::simulator::Simulation;
use dcn_transport::Protocol;

fn cfg(clusters: u32) -> SimConfig {
    let mut c = SimConfig::with_clusters(clusters);
    c.duration_s = 0.25;
    c.seed = 31;
    c
}

fn assert_identical(
    seq: &dcn_sim::instrument::Metrics,
    par: &dcn_sim::instrument::Metrics,
    label: &str,
) {
    assert_eq!(seq.flows_started(), par.flows_started(), "{label}: flows started");
    assert_eq!(
        seq.flows_completed(),
        par.flows_completed(),
        "{label}: flows completed"
    );
    assert_eq!(
        seq.total_delivered_bytes(),
        par.total_delivered_bytes(),
        "{label}: delivered bytes"
    );
    assert_eq!(seq.queue_drops, par.queue_drops, "{label}: drops");
    assert_eq!(seq.ecn_marks, par.ecn_marks, "{label}: marks");
    for (id, rec) in &seq.flows {
        let other = par.flows.get(id).unwrap_or_else(|| panic!("{label}: flow {id:?} missing"));
        assert_eq!(rec.end, other.end, "{label}: FCT of {id:?}");
    }
}

#[test]
fn pdes_matches_sequential_newreno() {
    let c = cfg(4);
    let p = Protocol::NewReno;
    let mut base = c;
    base.queue = p.queue_setup(base.queue);
    let seq = Simulation::with_transport(base, p.factory()).run();
    for parts in [2usize, 3, 4] {
        let par = run_partitioned(base, parts, &|| p.factory());
        assert_identical(&seq, &par, &format!("newreno x{parts}"));
    }
}

#[test]
fn pdes_matches_sequential_dctcp() {
    let c = cfg(4);
    let p = Protocol::Dctcp { k: 10 };
    let mut base = c;
    base.queue = p.queue_setup(base.queue);
    let seq = Simulation::with_transport(base, p.factory()).run();
    let par = run_partitioned(base, 4, &|| p.factory());
    assert_identical(&seq, &par, "dctcp x4");
}

#[test]
fn pdes_matches_sequential_homa() {
    let c = cfg(4);
    let p = Protocol::Homa;
    let mut base = c;
    base.queue = p.queue_setup(base.queue);
    let seq = Simulation::with_transport(base, p.factory()).run();
    let par = run_partitioned(base, 2, &|| p.factory());
    assert_identical(&seq, &par, "homa x2");
}

#[test]
fn pdes_more_partitions_than_clusters() {
    // Degenerate but legal: extra partitions simply idle.
    let c = cfg(2);
    let p = Protocol::NewReno;
    let seq = Simulation::with_transport(c, p.factory()).run();
    let par = run_partitioned(c, 5, &|| p.factory());
    assert_identical(&seq, &par, "overpartitioned");
}

#[test]
fn pdes_larger_network() {
    let c = cfg(8);
    let p = Protocol::NewReno;
    let seq = Simulation::with_transport(c, p.factory()).run();
    let par = run_partitioned(c, 4, &|| p.factory());
    assert_identical(&seq, &par, "8 clusters x4");
}

// ---------------------------------------------------------------------
// Composed (batched Mimic) PDES: the batched aggregation point must keep
// partitioned runs bit-identical to the sequential composition, and the
// learned drops must survive the metric merge.
// ---------------------------------------------------------------------

fn quick_trained() -> (mimicnet::mimic::TrainedMimic, SimConfig) {
    use mimicnet::datagen::{generate, DataGenConfig};
    use mimicnet::internal_model::InternalModel;

    let mut dg = DataGenConfig::default();
    dg.sim.duration_s = 0.3;
    dg.sim.seed = 55;
    let td = generate(&dg);
    let tc = mimic_ml::train::TrainConfig {
        epochs: 1,
        window: 4,
        ..mimic_ml::train::TrainConfig::default()
    };
    let (ing, _) = InternalModel::train_new(&td.ingress, td.ingress_disc, 8, &tc)
        .expect("valid training setup");
    let (eg, _) = InternalModel::train_new(&td.egress, td.egress_disc, 8, &tc)
        .expect("valid training setup");
    (
        mimicnet::mimic::TrainedMimic {
            ingress: ing,
            egress: eg,
            feature_cfg: td.feature_cfg,
            feeder: td.feeder,
            envelope: None,
        },
        dg.sim,
    )
}

#[test]
fn composed_batched_pdes_matches_sequential() {
    use mimicnet::compose::{compose_batched, run_composed_partitioned};

    let (trained, mut base) = quick_trained();
    base.duration_s = 0.25;
    base.seed = 31;
    let p = Protocol::NewReno;
    let seq = compose_batched(base, 4, p, &trained).run();
    assert!(seq.flows_completed() > 0, "composition made no progress");
    for parts in [1usize, 2, 4] {
        let par = run_composed_partitioned(base, 4, p, &trained, parts)
            .expect("valid composition");
        assert_identical(&seq, &par, &format!("composed batched x{parts}"));
        assert_eq!(
            seq.mimic_drops, par.mimic_drops,
            "composed batched x{parts}: mimic drops"
        );
    }
}

#[test]
fn composed_batched_pdes_larger_network() {
    use mimicnet::compose::{compose_batched, run_composed_partitioned};

    let (trained, mut base) = quick_trained();
    base.duration_s = 0.2;
    base.seed = 7;
    let p = Protocol::NewReno;
    let seq = compose_batched(base, 8, p, &trained).run();
    let par = run_composed_partitioned(base, 8, p, &trained, 4).expect("valid composition");
    assert_identical(&seq, &par, "composed batched 8 clusters x4");
    assert_eq!(seq.mimic_drops, par.mimic_drops, "composed: mimic drops");
}
