//! Integration tests of the observability layer end to end: a traced
//! composed PDES run must emit a well-formed report (engine counters,
//! flush histograms, fleet telemetry, near-total span coverage) without
//! perturbing the simulated trajectory, and the pipeline recorder must
//! stitch training and estimation telemetry into one exportable snapshot.

use dcn_sim::config::SimConfig;
use dcn_transport::Protocol;
use mimicnet::compose::{run_composed_partitioned, run_composed_partitioned_obs};
use mimicnet::mimic::TrainedMimic;
use mimicnet::pipeline::{Pipeline, PipelineConfig};

fn quick_trained() -> (TrainedMimic, SimConfig) {
    use mimicnet::datagen::{generate, DataGenConfig};
    use mimicnet::internal_model::InternalModel;

    let mut dg = DataGenConfig::default();
    dg.sim.duration_s = 0.3;
    dg.sim.seed = 55;
    let td = generate(&dg);
    let tc = mimic_ml::train::TrainConfig {
        epochs: 1,
        window: 4,
        ..mimic_ml::train::TrainConfig::default()
    };
    let (ing, _) = InternalModel::train_new(&td.ingress, td.ingress_disc, 8, &tc)
        .expect("valid training setup");
    let (eg, _) = InternalModel::train_new(&td.egress, td.egress_disc, 8, &tc)
        .expect("valid training setup");
    (
        TrainedMimic {
            ingress: ing,
            egress: eg,
            feature_cfg: td.feature_cfg,
            feeder: td.feeder,
            envelope: None,
        },
        dg.sim,
    )
}

#[test]
fn traced_composed_run_emits_full_report_without_perturbing_results() {
    let (trained, mut base) = quick_trained();
    base.duration_s = 0.25;
    base.seed = 31;
    let p = Protocol::NewReno;

    let plain = run_composed_partitioned(base, 4, p, &trained, 2).expect("valid composition");
    let traced =
        run_composed_partitioned_obs(base, 4, p, &trained, 2, true).expect("valid composition");

    // Tracing must not change the trajectory.
    assert_eq!(plain.total_delivered_bytes(), traced.total_delivered_bytes());
    assert_eq!(plain.flows_completed(), traced.flows_completed());
    assert_eq!(plain.mimic_drops, traced.mimic_drops);
    assert!(plain.obs.is_none(), "untraced run must carry no report");

    let r = traced.obs.as_ref().expect("traced run carries a report");
    // Engine counters.
    assert!(r.counter("sim.events.total") > 0);
    assert_eq!(r.counter("sim.events.total"), traced.events_processed);
    assert!(r.counter("sim.windows") > 0);
    assert_eq!(r.counter("pdes.partitions"), 2);
    // Batched-inference telemetry: flush count, batch sizes, and the
    // fleet's own lane-occupancy/packets counters.
    assert!(r.counter("mimic.flush.count") > 0);
    let batch = &r.hists["mimic.flush.batch_size"];
    assert!(batch.count > 0 && batch.max >= 1);
    let lanes = &r.hists["mimic.flush.lane_occupancy"];
    assert!(lanes.count > 0);
    assert_eq!(r.counter("mimic.fleet.packets_seen"), batch.sum);
    assert!(r.counter("mimic.fleet.rounds") >= lanes.count);
    // The pdes.lp spans wrap each LP loop, so the merged timeline has no
    // coverage gaps (acceptance: >= 95% of the traced wall extent).
    let coverage = r.span_coverage();
    assert!(coverage >= 0.95, "span coverage {coverage}");
    // Both LPs contributed spans on distinct tracks.
    let tracks: std::collections::HashSet<u32> = r.spans.iter().map(|s| s.track).collect();
    assert_eq!(tracks.len(), 2);
}

#[test]
fn pipeline_obs_stitches_training_and_estimation_into_one_snapshot() {
    let mut cfg = PipelineConfig::default();
    cfg.base.duration_s = 0.3;
    cfg.base.seed = 12;
    cfg.hidden = 8;
    cfg.train.epochs = 2;
    cfg.train.window = 4;

    let mut pipe = Pipeline::new(cfg).with_obs();
    let trained = pipe.train();
    let est = pipe.estimate(&trained, 3);
    assert!(est.fct_p99 > 0.0);
    assert!(
        est.metrics.obs.is_none(),
        "engine report should have been absorbed by the pipeline recorder"
    );

    let r = pipe.obs.take_report().expect("obs was on");
    // Phase spans.
    for phase in [
        "pipeline.datagen",
        "pipeline.train.ingress",
        "pipeline.train.egress",
        "pipeline.estimate",
    ] {
        assert!(
            r.spans.iter().any(|s| s.name == phase),
            "missing span {phase}"
        );
    }
    // Per-direction training series, one entry per epoch.
    assert_eq!(r.series["train.ingress.epoch_loss"].len(), 2);
    assert_eq!(r.series["train.egress.epoch_loss"].len(), 2);
    assert!(r.hists["train.ingress.grad_norm_milli"].count > 0);
    // Engine-side telemetry from the estimate folded into the same report.
    assert!(r.counter("sim.events.total") > 0);
    assert!(r.counter("sim.windows") > 0);

    // The snapshot exports cleanly: JSON parses and the Chrome trace is a
    // valid event array naming the phase spans.
    let snap: serde_json::Value = serde_json::from_str(&r.to_json_string()).expect("snapshot parses");
    assert!(snap.as_object().is_some());
    let trace: serde_json::Value = serde_json::from_str(&r.to_chrome_trace()).expect("trace parses");
    let events = trace.as_array().expect("trace is an array");
    assert!(events
        .iter()
        .any(|e| e.as_object().and_then(|o| {
            o.iter().find(|(k, _)| k == "name").map(|(_, v)| v.as_str() == Some("pipeline.estimate"))
        }) == Some(true)));
}

#[test]
fn flight_ring_wraps_keeping_only_the_most_recent_events() {
    use dcn_sim::pdes::{FlightPlan, PdesRunOpts};
    use mimicnet::compose::run_composed_partitioned_opts;

    let (trained, mut base) = quick_trained();
    base.duration_s = 0.2;
    base.seed = 44;
    let opts = PdesRunOpts {
        flight: Some(FlightPlan {
            capacity: 64,
            ..FlightPlan::default()
        }),
        ..PdesRunOpts::default()
    };
    let m = run_composed_partitioned_opts(base, 3, Protocol::NewReno, &trained, 2, false, &opts)
        .expect("valid composition");
    let r = m.obs.as_ref().expect("flight ring rides in the obs report");
    // Two LPs, 64 slots each: the retained history is bounded while the
    // recorded-total counter keeps the true event count.
    assert!(!r.flight.is_empty(), "ring captured events");
    assert!(r.flight.len() <= 128, "ring bounded: {}", r.flight.len());
    assert!(
        r.counter("flight.recorded") > r.flight.len() as u64,
        "ring wrapped: recorded {} kept {}",
        r.counter("flight.recorded"),
        r.flight.len()
    );
    // Retained events are the most recent ones: each LP's tail, so every
    // kept timestamp lands in the final stretch of the run, and within an
    // LP the order is non-decreasing in sim time.
    let mut per_lp: std::collections::BTreeMap<u32, Vec<u64>> = Default::default();
    for ev in &r.flight {
        per_lp.entry(ev.lp).or_default().push(ev.sim_ns);
    }
    assert_eq!(per_lp.len(), 2, "both LPs recorded");
    for (lp, times) in per_lp {
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "LP {lp} ring out of order"
        );
    }
}

#[test]
fn crash_drill_dumps_flight_ring_through_atomic_write() {
    use dcn_sim::pdes::{FlightPlan, PdesRunOpts};
    use mimicnet::compose::run_composed_partitioned_opts;

    let dir = std::env::temp_dir().join(format!("obs-crash-dump-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (trained, mut base) = quick_trained();
    base.duration_s = 0.2;
    base.seed = 45;
    let opts = PdesRunOpts {
        crash_at_window: Some(40),
        flight: Some(FlightPlan {
            capacity: 256,
            dump_dir: Some(dir.clone()),
            ..FlightPlan::default()
        }),
        ..PdesRunOpts::default()
    };
    let err =
        match run_composed_partitioned_opts(base, 3, Protocol::NewReno, &trained, 2, false, &opts)
        {
            Ok(_) => panic!("crash drill must fail the run"),
            Err(e) => e,
        };
    let msg = format!("{err}");
    assert!(msg.contains("crash drill"), "typed error carries the panic: {msg}");

    // The post-mortem landed as a complete JSON file (atomic_write: no
    // truncated artifacts on the panic path) naming the reason and the
    // ring contents.
    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .expect("dump dir exists")
        .map(|e| e.expect("entry").path())
        .collect();
    assert!(!dumps.is_empty(), "at least one post-mortem file");
    let text = std::fs::read_to_string(&dumps[0]).expect("dump readable");
    let v: serde_json::Value = serde_json::from_str(&text).expect("dump is complete JSON");
    let obj = v.as_object().expect("dump is an object");
    let reason = obj
        .iter()
        .find(|(k, _)| k == "reason")
        .and_then(|(_, v)| v.as_str())
        .expect("dump names a reason");
    assert!(reason.contains("panic"), "reason records the panic: {reason}");
    assert!(
        obj.iter().any(|(k, _)| k == "flight"),
        "dump carries the flight ring"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn digest_timeline_is_partition_count_invariant() {
    use dcn_sim::pdes::PdesRunOpts;
    use mimicnet::compose::run_composed_partitioned_opts;

    let (trained, mut base) = quick_trained();
    base.duration_s = 0.2;
    for seed in [46u64, 97] {
        base.seed = seed;
        let timeline = |partitions: usize| {
            let opts = PdesRunOpts {
                digest_stride: Some(4),
                ..PdesRunOpts::default()
            };
            let m = run_composed_partitioned_opts(
                base,
                4,
                Protocol::NewReno,
                &trained,
                partitions,
                false,
                &opts,
            )
            .expect("valid composition");
            let r = m.obs.expect("digests imply an obs report");
            (
                r.gauges["digest.first_window"],
                r.digests["digest.window"].clone(),
            )
        };
        let (fw1, d1) = timeline(1);
        let (fw2, d2) = timeline(2);
        let (fw4, d4) = timeline(4);
        assert!(!d1.is_empty(), "seed {seed}: digests recorded");
        assert_eq!(fw1, fw2, "seed {seed}: first window 1 vs 2 partitions");
        assert_eq!(fw1, fw4, "seed {seed}: first window 1 vs 4 partitions");
        assert_eq!(d1, d2, "seed {seed}: timeline 1 vs 2 partitions");
        assert_eq!(d1, d4, "seed {seed}: timeline 1 vs 4 partitions");
    }
}

#[test]
fn diagnostics_do_not_perturb_the_trajectory() {
    use dcn_sim::pdes::{FlightPlan, PdesRunOpts};
    use mimicnet::compose::run_composed_partitioned_opts;

    let (trained, mut base) = quick_trained();
    base.duration_s = 0.2;
    base.seed = 48;
    let run = |opts: &PdesRunOpts| {
        run_composed_partitioned_opts(base, 3, Protocol::NewReno, &trained, 2, false, opts)
            .expect("valid composition")
    };
    let plain = run(&PdesRunOpts::default());
    let diagnosed = run(&PdesRunOpts {
        obs: true,
        digest_stride: Some(1),
        flight: Some(FlightPlan {
            capacity: 1024,
            ..FlightPlan::default()
        }),
        ..PdesRunOpts::default()
    });
    // Full diagnostics (timed obs + stride-1 digests + flight ring) must
    // leave the simulated trajectory bit-identical.
    assert_eq!(
        plain.total_delivered_bytes(),
        diagnosed.total_delivered_bytes()
    );
    assert_eq!(plain.flows_completed(), diagnosed.flows_completed());
    assert_eq!(plain.queue_drops, diagnosed.queue_drops);
    assert_eq!(plain.mimic_drops, diagnosed.mimic_drops);
    for (id, rec) in &plain.flows {
        let other = diagnosed.flows.get(id).expect("flow present in both runs");
        assert_eq!(rec.end, other.end, "FCT mismatch for {id:?}");
    }
}
