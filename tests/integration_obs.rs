//! Integration tests of the observability layer end to end: a traced
//! composed PDES run must emit a well-formed report (engine counters,
//! flush histograms, fleet telemetry, near-total span coverage) without
//! perturbing the simulated trajectory, and the pipeline recorder must
//! stitch training and estimation telemetry into one exportable snapshot.

use dcn_sim::config::SimConfig;
use dcn_transport::Protocol;
use mimicnet::compose::{run_composed_partitioned, run_composed_partitioned_obs};
use mimicnet::mimic::TrainedMimic;
use mimicnet::pipeline::{Pipeline, PipelineConfig};

fn quick_trained() -> (TrainedMimic, SimConfig) {
    use mimicnet::datagen::{generate, DataGenConfig};
    use mimicnet::internal_model::InternalModel;

    let mut dg = DataGenConfig::default();
    dg.sim.duration_s = 0.3;
    dg.sim.seed = 55;
    let td = generate(&dg);
    let tc = mimic_ml::train::TrainConfig {
        epochs: 1,
        window: 4,
        ..mimic_ml::train::TrainConfig::default()
    };
    let (ing, _) = InternalModel::train_new(&td.ingress, td.ingress_disc, 8, &tc)
        .expect("valid training setup");
    let (eg, _) = InternalModel::train_new(&td.egress, td.egress_disc, 8, &tc)
        .expect("valid training setup");
    (
        TrainedMimic {
            ingress: ing,
            egress: eg,
            feature_cfg: td.feature_cfg,
            feeder: td.feeder,
            envelope: None,
        },
        dg.sim,
    )
}

#[test]
fn traced_composed_run_emits_full_report_without_perturbing_results() {
    let (trained, mut base) = quick_trained();
    base.duration_s = 0.25;
    base.seed = 31;
    let p = Protocol::NewReno;

    let plain = run_composed_partitioned(base, 4, p, &trained, 2).expect("valid composition");
    let traced =
        run_composed_partitioned_obs(base, 4, p, &trained, 2, true).expect("valid composition");

    // Tracing must not change the trajectory.
    assert_eq!(plain.total_delivered_bytes(), traced.total_delivered_bytes());
    assert_eq!(plain.flows_completed(), traced.flows_completed());
    assert_eq!(plain.mimic_drops, traced.mimic_drops);
    assert!(plain.obs.is_none(), "untraced run must carry no report");

    let r = traced.obs.as_ref().expect("traced run carries a report");
    // Engine counters.
    assert!(r.counter("sim.events.total") > 0);
    assert_eq!(r.counter("sim.events.total"), traced.events_processed);
    assert!(r.counter("sim.windows") > 0);
    assert_eq!(r.counter("pdes.partitions"), 2);
    // Batched-inference telemetry: flush count, batch sizes, and the
    // fleet's own lane-occupancy/packets counters.
    assert!(r.counter("mimic.flush.count") > 0);
    let batch = &r.hists["mimic.flush.batch_size"];
    assert!(batch.count > 0 && batch.max >= 1);
    let lanes = &r.hists["mimic.flush.lane_occupancy"];
    assert!(lanes.count > 0);
    assert_eq!(r.counter("mimic.fleet.packets_seen"), batch.sum);
    assert!(r.counter("mimic.fleet.rounds") >= lanes.count);
    // The pdes.lp spans wrap each LP loop, so the merged timeline has no
    // coverage gaps (acceptance: >= 95% of the traced wall extent).
    let coverage = r.span_coverage();
    assert!(coverage >= 0.95, "span coverage {coverage}");
    // Both LPs contributed spans on distinct tracks.
    let tracks: std::collections::HashSet<u32> = r.spans.iter().map(|s| s.track).collect();
    assert_eq!(tracks.len(), 2);
}

#[test]
fn pipeline_obs_stitches_training_and_estimation_into_one_snapshot() {
    let mut cfg = PipelineConfig::default();
    cfg.base.duration_s = 0.3;
    cfg.base.seed = 12;
    cfg.hidden = 8;
    cfg.train.epochs = 2;
    cfg.train.window = 4;

    let mut pipe = Pipeline::new(cfg).with_obs();
    let trained = pipe.train();
    let est = pipe.estimate(&trained, 3);
    assert!(est.fct_p99 > 0.0);
    assert!(
        est.metrics.obs.is_none(),
        "engine report should have been absorbed by the pipeline recorder"
    );

    let r = pipe.obs.take_report().expect("obs was on");
    // Phase spans.
    for phase in [
        "pipeline.datagen",
        "pipeline.train.ingress",
        "pipeline.train.egress",
        "pipeline.estimate",
    ] {
        assert!(
            r.spans.iter().any(|s| s.name == phase),
            "missing span {phase}"
        );
    }
    // Per-direction training series, one entry per epoch.
    assert_eq!(r.series["train.ingress.epoch_loss"].len(), 2);
    assert_eq!(r.series["train.egress.epoch_loss"].len(), 2);
    assert!(r.hists["train.ingress.grad_norm_milli"].count > 0);
    // Engine-side telemetry from the estimate folded into the same report.
    assert!(r.counter("sim.events.total") > 0);
    assert!(r.counter("sim.windows") > 0);

    // The snapshot exports cleanly: JSON parses and the Chrome trace is a
    // valid event array naming the phase spans.
    let snap: serde_json::Value = serde_json::from_str(&r.to_json_string()).expect("snapshot parses");
    assert!(snap.as_object().is_some());
    let trace: serde_json::Value = serde_json::from_str(&r.to_chrome_trace()).expect("trace parses");
    let events = trace.as_array().expect("trace is an array");
    assert!(events
        .iter()
        .any(|e| e.as_object().and_then(|o| {
            o.iter().find(|(k, _)| k == "name").map(|(_, v)| v.as_str() == Some("pipeline.estimate"))
        }) == Some(true)));
}
