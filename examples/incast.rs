//! Incast: the fan-in stress case behind the paper's §4.2 assumption
//! that "the majority of congestion occurs on fan-in toward the
//! destination".
//!
//! Runs the same offered load under the uniform pattern and under incast
//! (every flow converges on one sink host per cluster), showing how queue
//! occupancy and FCT tails concentrate at the fan-in point — and that a
//! Mimic trained on the matching pattern still tracks ground truth.
//!
//! ```sh
//! cargo run --release --example incast
//! ```

use dcn_sim::config::{SimConfig, TrafficPattern};
use dcn_sim::simulator::Simulation;
use dcn_sim::stats::percentile;
use dcn_transport::Protocol;
use mimicnet::metrics::compare;
use mimicnet::pipeline::{Pipeline, PipelineConfig};

fn run_pattern(pattern: TrafficPattern) -> dcn_sim::instrument::Metrics {
    let mut cfg = SimConfig::with_clusters(4);
    cfg.duration_s = 1.0;
    cfg.seed = 13;
    cfg.traffic.load = 0.6;
    cfg.traffic.pattern = pattern;
    Simulation::with_transport(cfg, Protocol::NewReno.factory()).run()
}

fn main() {
    println!("== Fan-in stress: uniform vs incast destinations ==\n");
    for (name, pattern) in [
        ("uniform", TrafficPattern::Uniform),
        ("incast(1 sink)", TrafficPattern::Incast { sinks: 1 }),
    ] {
        let m = run_pattern(pattern);
        let fct = m.fct_samples(|_| true);
        println!("{name:>15}:");
        println!("  flows completed   {}", m.flows_completed());
        println!("  p50 / p99 FCT     {:.4}s / {:.4}s", percentile(&fct, 50.0), percentile(&fct, 99.0));
        println!("  queue drops       {}", m.queue_drops);
        println!("  max queue depth   {} pkts", m.max_queue_depth());
    }

    println!("\n== MimicNet under incast ==");
    let mut cfg = PipelineConfig::default();
    cfg.base.duration_s = 1.0;
    cfg.base.seed = 13;
    cfg.base.traffic.load = 0.6;
    cfg.base.traffic.pattern = TrafficPattern::Incast { sinks: 1 };
    let mut pipe = Pipeline::new(cfg);
    let trained = pipe.train();
    let est = pipe.estimate(&trained, 4);
    let (truth, _, _) = pipe.run_ground_truth(4);
    let r = compare(&truth, &est.samples);
    println!("W1(FCT) = {:.4} (truth mean FCT {:.4})", r.w1_fct, dcn_sim::stats::mean(&truth.fct));
    println!(
        "p99 FCT: truth {:.4}s vs mimic {:.4}s",
        r.fct_p99_truth, r.fct_p99_approx
    );
    println!("\n(the fan-in assumption is why MimicNet focuses its modeling on\nthe destination-side of clusters — §4.2)");
}
