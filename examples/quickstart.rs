//! Quickstart: the full MimicNet workflow on one page.
//!
//! Trains a Mimic from a 2-cluster full-fidelity simulation, composes a
//! larger data center from it, and prints the headline estimates next to
//! the (still affordable at this scale) ground truth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mimicnet::metrics::compare;
use mimicnet::pipeline::{Pipeline, PipelineConfig};

fn main() {
    // 1. Configure: a scaled-down version of the paper's setup (see
    //    DESIGN.md §1 for the substitution table). Everything below is
    //    deterministic in the seed.
    let mut cfg = PipelineConfig::default();
    cfg.base.duration_s = 1.0; // seconds of simulated time for training
    cfg.base.seed = 42;
    cfg.train.epochs = 3;

    println!("== MimicNet quickstart ==");
    println!(
        "small-scale: {} clusters x {} racks x {} hosts, protocol {}",
        cfg.base.topo.clusters,
        cfg.base.topo.racks_per_cluster,
        cfg.base.topo.hosts_per_rack,
        cfg.protocol.name()
    );

    // 2. Phases 1-2: observe small, train models.
    let mut pipe = Pipeline::new(cfg);
    let trained = pipe.train();
    println!(
        "trained ingress+egress LSTMs ({} params each) in {:?} (+{:?} sim)",
        trained.ingress.model.param_count(),
        pipe.timings.training,
        pipe.timings.small_scale_sim,
    );

    // 3. Phase 5: estimate a larger data center.
    let n = 8;
    let est = pipe.estimate(&trained, n);
    println!("\n-- {n}-cluster estimate ({:?} wall) --", est.wall);
    println!("observable flows completed: {}", est.samples.fct.len());
    println!("p99 FCT        ~ {:.4} s", est.fct_p99);
    println!("p99 throughput ~ {:.0} B/s", est.throughput_p99);
    println!("p99 RTT        ~ {:.4} s", est.rtt_p99);

    // 4. Sanity-check against ground truth (possible at this small scale).
    let (truth, truth_metrics, truth_wall) = pipe.run_ground_truth(n);
    let report = compare(&truth, &est.samples);
    println!("\n-- vs ground truth ({truth_wall:?} wall) --");
    println!("W1(FCT)        = {:.4}", report.w1_fct);
    println!("W1(throughput) = {:.0}", report.w1_throughput);
    println!("W1(RTT)        = {:.5}", report.w1_rtt);
    println!(
        "p99 FCT: truth {:.4} s vs mimic {:.4} s ({:.1}% off)",
        report.fct_p99_truth,
        report.fct_p99_approx,
        report.fct_p99_rel_err() * 100.0
    );
    println!(
        "events processed: truth {} vs mimic {} ({:.1}x fewer)",
        truth_metrics.events_processed,
        est.metrics.events_processed,
        truth_metrics.events_processed as f64 / est.metrics.events_processed.max(1) as f64
    );
    println!(
        "drops: truth queues {} | mimic run: queues {} + model-predicted {}",
        truth_metrics.queue_drops, est.metrics.queue_drops, est.metrics.mimic_drops
    );
}
