//! Configuration tuning with MimicNet (paper §9.4.1, Figure 13).
//!
//! DCTCP's ECN marking threshold `K` trades latency against throughput,
//! and — the paper's point — the best `K` at small scale is *not* the best
//! `K` at large scale. This example sweeps `K`, measuring the 90th-
//! percentile FCT three ways:
//!
//!   1. the 2-cluster (small-scale) simulation,
//!   2. the large-scale ground truth,
//!   3. MimicNet's composition (trained once per `K`).
//!
//! ```sh
//! cargo run --release --example dctcp_tuning
//! ```

use dcn_sim::stats::percentile;
use dcn_transport::Protocol;
use mimicnet::pipeline::{Pipeline, PipelineConfig};

fn main() {
    // Keep the sweep affordable: 4-cluster "large" network, short runs.
    let large_n = 4;
    let ks = [5u32, 10, 20, 40, 60];

    println!("== DCTCP ECN-threshold tuning (paper Fig. 13, scaled) ==");
    println!("{:>4} | {:>14} | {:>14} | {:>14}", "K", "2-cluster p90", "truth p90", "mimic p90");

    let mut best = (0u32, f64::INFINITY, "");
    for k in ks {
        let mut cfg = PipelineConfig {
            protocol: Protocol::Dctcp { k },
            ..PipelineConfig::default()
        };
        cfg.base.duration_s = 0.8;
        cfg.base.seed = 7;
        cfg.train.epochs = 2;
        cfg.hidden = 16;

        let mut pipe = Pipeline::new(cfg);
        let trained = pipe.train();

        // Small-scale answer: the training run's own FCTs.
        let (small, _, _) = pipe.run_ground_truth(2);
        let p90_small = percentile(&small.fct, 90.0);

        // Large-scale ground truth and MimicNet estimate.
        let (truth, _, _) = pipe.run_ground_truth(large_n);
        let p90_truth = percentile(&truth.fct, 90.0);
        let est = pipe.estimate(&trained, large_n);
        let p90_mimic = percentile(&est.samples.fct, 90.0);

        println!("{k:>4} | {p90_small:>13.4}s | {p90_truth:>13.4}s | {p90_mimic:>13.4}s");
        if p90_mimic < best.1 {
            best = (k, p90_mimic, "mimic");
        }
    }
    println!(
        "\nMimicNet's prescription at {large_n} clusters: K = {} (p90 FCT {:.4} s)",
        best.0, best.1
    );
    println!("Compare with the K the 2-cluster column would have chosen —");
    println!("the paper's point is that they can differ (its Fig. 13: K=60 vs K=20).");
}
