//! Parallel DES does not rescue tightly coupled simulations (paper §2.2,
//! Figure 2) — and Mimic compositions parallelize far better (§8).
//!
//! Measures events/second of the sequential engine against the
//! conservative barrier-synchronous PDES at 1/2/4 logical processes, for
//! a sweep of network sizes; then shows the event-count reduction a Mimic
//! composition achieves, which is what actually buys speed.
//!
//! ```sh
//! cargo run --release --example pdes_speed
//! ```

use dcn_sim::config::SimConfig;
use dcn_sim::pdes::run_partitioned;
use dcn_sim::simulator::Simulation;
use dcn_transport::Protocol;
use mimicnet::pipeline::{Pipeline, PipelineConfig};
use std::time::Instant;

fn main() {
    println!("== PDES scaling (paper Fig. 2, scaled) ==");
    println!(
        "{:>9} | {:>14} | {:>14} | {:>14}",
        "clusters", "1 LP (ev/s)", "2 LPs (ev/s)", "4 LPs (ev/s)"
    );
    for clusters in [2u32, 4, 8] {
        let mut cfg = SimConfig::with_clusters(clusters);
        cfg.duration_s = 0.3;
        cfg.seed = 5;

        let mut row = Vec::new();
        for parts in [1usize, 2, 4] {
            let t0 = Instant::now();
            let m = if parts == 1 {
                Simulation::with_transport(cfg, Protocol::NewReno.factory()).run()
            } else {
                run_partitioned(cfg, parts, &|| Protocol::NewReno.factory())
            };
            let dt = t0.elapsed().as_secs_f64();
            row.push(m.events_processed as f64 / dt);
        }
        println!(
            "{clusters:>9} | {:>14.0} | {:>14.0} | {:>14.0}",
            row[0], row[1], row[2]
        );
    }
    println!("(synchronization every link-latency window typically erases the win)");

    println!("\n== Where the speedup really comes from: fewer events ==");
    let mut pcfg = PipelineConfig::default();
    pcfg.base.duration_s = 0.4;
    pcfg.train.epochs = 1;
    pcfg.hidden = 8;
    let mut pipe = Pipeline::new(pcfg);
    let trained = pipe.train();
    println!("{:>9} | {:>14} | {:>14} | {:>8}", "clusters", "truth events", "mimic events", "ratio");
    for n in [2u32, 4, 8] {
        let (_, truth, _) = pipe.run_ground_truth(n);
        let est = pipe.estimate(&trained, n);
        println!(
            "{n:>9} | {:>14} | {:>14} | {:>7.1}x",
            truth.events_processed,
            est.metrics.events_processed,
            truth.events_processed as f64 / est.metrics.events_processed.max(1) as f64
        );
    }
}
