//! Comparing transport protocols with MimicNet (paper §9.4.2, Figure 14).
//!
//! Runs the full pipeline for Homa, DCTCP, TCP Vegas, and TCP Westwood —
//! each trained on its own small-scale data, since the Mimic must learn
//! each protocol's distinct cluster dynamics — and compares their FCT
//! distributions at a larger scale, MimicNet estimates vs. ground truth.
//!
//! ```sh
//! cargo run --release --example protocol_comparison
//! ```

use dcn_sim::stats::percentile;
use dcn_transport::Protocol;
use mimicnet::pipeline::{Pipeline, PipelineConfig};

fn main() {
    let protocols = [
        Protocol::Homa,
        Protocol::Dctcp { k: 20 },
        Protocol::Vegas,
        Protocol::Westwood,
    ];
    let n = 4;

    println!("== Protocol comparison at {n} clusters (paper Fig. 14, scaled) ==");
    println!(
        "{:>14} | {:>12} {:>12} | {:>12} {:>12}",
        "protocol", "truth p50", "truth p90", "mimic p50", "mimic p90"
    );

    let mut rank_truth: Vec<(String, f64)> = Vec::new();
    let mut rank_mimic: Vec<(String, f64)> = Vec::new();
    for p in protocols {
        let mut cfg = PipelineConfig {
            protocol: p,
            ..PipelineConfig::default()
        };
        cfg.base.duration_s = 0.8;
        cfg.base.seed = 11;
        cfg.train.epochs = 2;
        cfg.hidden = 16;

        let mut pipe = Pipeline::new(cfg);
        let trained = pipe.train();
        let (truth, _, _) = pipe.run_ground_truth(n);
        let est = pipe.estimate(&trained, n);

        let t50 = percentile(&truth.fct, 50.0);
        let t90 = percentile(&truth.fct, 90.0);
        let m50 = percentile(&est.samples.fct, 50.0);
        let m90 = percentile(&est.samples.fct, 90.0);
        println!(
            "{:>14} | {:>11.4}s {:>11.4}s | {:>11.4}s {:>11.4}s",
            p.name(),
            t50,
            t90,
            m50,
            m90
        );
        rank_truth.push((p.name().to_string(), t90));
        rank_mimic.push((p.name().to_string(), m90));
    }

    let order = |mut v: Vec<(String, f64)>| {
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        v.into_iter().map(|(n, _)| n).collect::<Vec<_>>()
    };
    println!("\np90-FCT ranking, ground truth: {:?}", order(rank_truth));
    println!("p90-FCT ranking, MimicNet:     {:?}", order(rank_mimic));
    println!("(the paper's claim: MimicNet preserves the ranking and ballpark values)");
}
