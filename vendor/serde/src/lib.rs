//! Vendored stand-in for the `serde` crate so the workspace builds with no
//! network access. It implements a JSON-oriented value model plus derive
//! macros covering exactly what this repository needs: non-generic structs
//! (named, tuple, or unit) and enums with unit or struct variants, with no
//! `#[serde(...)]` attributes. The derive macros live in the companion
//! `serde_derive` crate and are re-exported here under the usual names.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::VecDeque;
use std::fmt;

/// A parsed/serializable JSON-like value. Integers keep their own variants
/// so `u64` seeds and IDs round-trip exactly (an `f64` cannot hold every
/// `u64`).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs (this workspace never relies on
    /// map semantics, only field lookup).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(u) => Some(u),
            Value::I64(i) if i >= 0 => Some(i as u64),
            Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(i) => Some(i),
            Value::U64(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(f) => Some(f),
            Value::U64(u) => Some(u as f64),
            Value::I64(i) => Some(i as f64),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Convenience free function (used by generated code and `serde_json`).
pub fn to_value<T: Serialize + ?Sized>(t: &T) -> Value {
    t.to_value()
}

/// Field lookup helper for derive-generated `Deserialize` impls.
pub fn field<'a>(obj: &'a [(String, Value)], name: &'static str) -> Result<&'a Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{name}`")))
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let u = v.as_u64().ok_or_else(|| {
                    DeError::new(format!("expected unsigned integer, got {v:?}"))
                })?;
                <$t>::try_from(u).map_err(|_| DeError::new(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let i = v.as_i64().ok_or_else(|| {
                    DeError::new(format!("expected integer, got {v:?}"))
                })?;
                <$t>::try_from(i).map_err(|_| DeError::new(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                // JSON has no NaN/Inf literal; the writer emits `null` for
                // non-finite floats, so accept it back as NaN.
                if matches!(v, Value::Null) {
                    return Ok(<$t>::NAN);
                }
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::new(format!("expected number, got {v:?}")))
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::new(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        v.as_str()
            .map(|s| s.to_string())
            .ok_or_else(|| DeError::new(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<VecDeque<T>, DeError> {
        Ok(Vec::<T>::from_value(v)?.into())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], DeError> {
        let a = v
            .as_array()
            .ok_or_else(|| DeError::new(format!("expected array, got {v:?}")))?;
        if a.len() != N {
            return Err(DeError::new(format!("expected [_; {N}], got {} elements", a.len())));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(a) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v
                    .as_array()
                    .ok_or_else(|| DeError::new(format!("expected tuple array, got {v:?}")))?;
                let want = [$($n),+].len();
                if a.len() != want {
                    return Err(DeError::new(format!("expected {want}-tuple, got {} elements", a.len())));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let v = 0xC0DE_0000_DEAD_BEEFu64.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), 0xC0DE_0000_DEAD_BEEF);
        let v = (-42i64).to_value();
        assert_eq!(i64::from_value(&v).unwrap(), -42);
        let v = 0.1f32.to_value();
        assert_eq!(f32::from_value(&v).unwrap(), 0.1f32);
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![(1.5f64, 2.5f64), (3.0, 4.0)];
        let v = xs.to_value();
        assert_eq!(Vec::<(f64, f64)>::from_value(&v).unwrap(), xs);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn nan_round_trips_via_null() {
        let v = f64::NAN.to_value();
        // Writers emit null for non-finite; simulate that here.
        let back = f64::from_value(&Value::Null).unwrap();
        assert!(back.is_nan());
        assert!(matches!(v, Value::F64(f) if f.is_nan()));
    }
}
