//! Vendored stand-in for `proptest` so the workspace's property tests run
//! with no network access. Cases are generated deterministically from a
//! per-test seed (FNV-1a of the test name), so failures reproduce exactly
//! across runs. Supported surface — the subset this workspace uses:
//!
//! * range strategies (`0u64..100`, `1u64..=10`, `0.0f64..1.0`)
//! * `any::<T>()` for primitive `T`
//! * tuple strategies up to arity 4
//! * `proptest::collection::vec(strategy, size_range)`
//! * `proptest!`, `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`,
//!   `prop_assume!`
//!
//! Case count defaults to 64 and honors `PROPTEST_CASES`.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Why a test case did not pass: a genuine failure or a `prop_assume!`
/// rejection (mirrors real proptest's `TestCaseError`).
#[derive(Clone, Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject => write!(f, "case rejected by prop_assume!"),
        }
    }
}

impl From<String> for TestCaseError {
    fn from(m: String) -> TestCaseError {
        TestCaseError::Fail(m)
    }
}

impl From<&str> for TestCaseError {
    fn from(m: &str) -> TestCaseError {
        TestCaseError::Fail(m.to_string())
    }
}

/// Number of cases per property (env-overridable).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// SplitMix64 — deterministic, seedable, and good enough for test-case
/// generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Per-test seed from the test's name (stable across runs/platforms).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                ((self.start as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                assert!(span > 0, "empty range strategy");
                ((*self.start() as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

/// Types `any::<T>()` can produce.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric; proptest's default also avoids NaN/Inf.
        (rng.next_f64() - 0.5) * 2e9
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

pub struct AnyStrategy<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for `vec`, inclusive of `lo`, exclusive of `hi`.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a test running [`cases()`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __prop_cases = $crate::cases();
                let mut __prop_rng = $crate::TestRng::from_name(stringify!($name));
                for __prop_case in 0..__prop_cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __prop_rng);)+
                    let __prop_result = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __prop_result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__m)) => panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            __prop_case + 1,
                            __prop_cases,
                            __m
                        ),
                    }
                }
            }
        )+
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let __a = &$a;
        let __b = &$b;
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = &$a;
        let __b = &$b;
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let __a = &$a;
        let __b = &$b;
        if __a == __b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a), stringify!($b), __a
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, cases, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        Arbitrary, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 1u32..=3, f in 0.5f64..1.5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((1..=3).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vec_respects_size(xs in crate::collection::vec((0u64..5, any::<bool>()), 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            for (v, _) in &xs {
                prop_assert!(*v < 5);
            }
        }

        #[test]
        fn assume_rejects(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("abc");
        let mut b = TestRng::from_name("abc");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
