//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored serde
//! stand-in. Parses the item with `proc_macro` alone (no syn/quote) and
//! supports exactly the shapes this workspace uses:
//!
//! * non-generic structs with named fields, tuple fields, or no fields
//! * non-generic enums with unit, struct, or tuple variants
//! * `#[serde(default)]` on named fields (missing field → `Default::default()`);
//!   no other `#[serde(...)]` attributes
//!
//! Single-field tuple structs serialize transparently as their inner value
//! (mirroring serde's newtype behavior) so `SimTime(u64)` is just a number.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// `#[serde(default)]`: a missing field deserializes to `Default::default()`.
    default: bool,
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Item {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported by the vendored derive");
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unsupported enum body: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

/// Skip attributes and visibility; reports whether `#[serde(default)]`
/// was among the skipped attributes.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    loop {
        match tokens.get(*i) {
            // `#[...]` attribute (doc comments included).
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Bracket {
                        has_default |= is_serde_default(g.stream());
                        *i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` etc.
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return has_default,
        }
    }
}

/// Does an attribute body (the tokens inside `#[...]`) read `serde(default)`?
fn is_serde_default(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            g.stream()
                .into_iter()
                .any(|tt| matches!(&tt, TokenTree::Ident(id) if id.to_string() == "default"))
        }
        _ => false,
    }
}

/// Skip a type expression until a top-level comma, tracking `<...>` depth
/// (parens/brackets/braces arrive as opaque groups already).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(tt) = tokens.get(*i) {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&tokens, &mut i);
        i += 1; // the comma (or one past the end)
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        i += 1;
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        // Skip discriminant (`= expr`) if present, then the comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", entries.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string())"
                        ),
                        VariantFields::Named(fields) => {
                            let binds = fields
                                .iter()
                                .map(|f| f.name.clone())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let entries: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))])",
                                binds.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}\n"
    )
}

/// Initializer for one named field when deserializing from object `obj`.
/// `#[serde(default)]` fields fall back to `Default::default()` when the
/// key is absent (e.g. artifacts serialized before the field existed).
fn field_init_from(f: &Field, obj: &str) -> String {
    let name = &f.name;
    if f.default {
        format!(
            "{name}: match ::serde::field({obj}, \"{name}\") {{ \
             ::std::result::Result::Ok(__x) => ::serde::Deserialize::from_value(__x)?, \
             ::std::result::Result::Err(_) => ::std::default::Default::default() }}"
        )
    } else {
        format!("{name}: ::serde::Deserialize::from_value(::serde::field({obj}, \"{name}\")?)?")
    }
}

fn field_init(f: &Field) -> String {
    field_init_from(f, "__obj")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields.iter().map(field_init).collect();
            format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::DeError::new(\"expected object for {name}\"))?;\n        Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array for {name}\"))?;\n        if __arr.len() != {n} {{ return Err(::serde::DeError::new(\"wrong arity for {name}\")); }}\n        Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| format!("\"{vn}\" => return Ok({name}::{vn}),", vn = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| field_init_from(f, "__inner"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let __inner = __val.as_object().ok_or_else(|| ::serde::DeError::new(\"expected object for variant {vn}\"))?; return Ok({name}::{vn} {{ {} }}); }}",
                                inits.join(", ")
                            ))
                        }
                        VariantFields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__inner[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let __inner = __val.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array for variant {vn}\"))?; if __inner.len() != {n} {{ return Err(::serde::DeError::new(\"wrong arity for variant {vn}\")); }} return Ok({name}::{vn}({})); }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            let mut branches = String::new();
            if !unit_arms.is_empty() {
                branches.push_str(&format!(
                    "if let Some(__s) = __v.as_str() {{ match __s {{ {} _ => {{}} }} }}\n        ",
                    unit_arms.join(" ")
                ));
            }
            if !data_arms.is_empty() {
                branches.push_str(&format!(
                    "if let Some(__obj) = __v.as_object() {{\n            if __obj.len() == 1 {{\n                let (__tag, __val) = (&__obj[0].0, &__obj[0].1);\n                match __tag.as_str() {{ {} _ => {{}} }}\n            }}\n        }}\n        ",
                    data_arms.join(" ")
                ));
            }
            format!(
                "{branches}Err(::serde::DeError::new(format!(\"unrecognized value for enum {name}: {{__v:?}}\")))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n    fn from_value(__v: &::serde::Value) -> ::std::result::Result<{name}, ::serde::DeError> {{\n        {body}\n    }}\n}}\n"
    )
}
