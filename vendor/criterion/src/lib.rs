//! Vendored stand-in for `criterion` so `harness = false` benches build and
//! run offline. Implements the API surface this workspace uses: groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, sample/measurement
//! configuration, and `criterion_group!`/`criterion_main!`. Measurement is
//! a simple warm-up + repeated-sample mean/min report on stdout — good
//! enough for relative, local comparisons.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.clone(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            config: self.clone(),
        }
    }
}

pub struct BenchmarkGroup {
    name: String,
    config: Criterion,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.config.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut BenchmarkGroup {
        self.config.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut BenchmarkGroup {
        self.config.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut BenchmarkGroup
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.config.clone(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut BenchmarkGroup
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id.0), self.config.clone(), |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }
}

pub struct Bencher {
    /// Mean nanoseconds per iteration over the best sample.
    samples: Vec<f64>,
    config: Criterion,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate per-iteration cost.
        let warm_until = Instant::now() + self.config.warm_up_time;
        let mut per_iter = Duration::from_nanos(1);
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_until {
            black_box(f());
            warm_iters += 1;
        }
        if warm_iters > 0 {
            per_iter = warm_start.elapsed() / warm_iters as u32;
        }
        // Choose a batch size so one sample is ~measurement_time/sample_size.
        let budget = self.config.measurement_time / self.config.sample_size as u32;
        let batch = (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u32::MAX as u128) as u32;
        for _ in 0..self.config.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            self.samples.push(dt.as_nanos() as f64 / batch as f64);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, config: Criterion, mut f: F) {
    // `cargo test` runs bench binaries with `--test`; skip measuring there.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let mut b = Bencher {
        samples: Vec::new(),
        config,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{name:<50} mean {:>12}  min {:>12}  ({} samples)",
        fmt_ns(mean),
        fmt_ns(min),
        b.samples.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// `criterion_group!(name, target...)` or the struct-ish form with
/// `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut __c: $crate::Criterion = $config;
            $($target(&mut __c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut __c = $crate::Criterion::default();
            $($target(&mut __c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
