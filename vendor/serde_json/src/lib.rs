//! Vendored stand-in for `serde_json`: a JSON writer and recursive-descent
//! parser over the stand-in `serde::Value` model. Floats are printed with
//! Rust's shortest round-trip formatting so `f32`/`f64` model weights
//! survive a save/load cycle bit-exactly; non-finite floats serialize as
//! `null` (matching serde_json) and parse back as NaN.

pub use serde::Value;
pub use serde::to_value;

use std::fmt;

/// Serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    pub fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to human-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Build a `Value` object literal: `json!({"key": expr, ...})`.
///
/// Supports flat objects/arrays with literal keys and arbitrary expression
/// values — the shapes this workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::to_value(&$val))),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::to_value(&$val)),*])
    };
    ($val:expr) => { $crate::to_value(&$val) };
}

// ---------------------------------------------------------------- writer

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` is the shortest representation that round-trips.
                let s = format!("{f:?}");
                out.push_str(&s);
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {:?}", other)))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::I64(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Value::Object(vec![
            ("seed".to_string(), Value::U64(0xDEAD_BEEF_0000_0001)),
            ("x".to_string(), Value::F64(0.30000000000000004)),
            (
                "arr".to_string(),
                Value::Array(vec![Value::Null, Value::Bool(true), Value::I64(-3)]),
            ),
            ("s".to_string(), Value::Str("a\"b\\c\nd".to_string())),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn f32_weights_round_trip_exactly() {
        let xs: Vec<f32> = vec![0.1, -1.5e-7, 3.4e38, f32::MIN_POSITIVE];
        let s = to_string(&xs).unwrap();
        let back: Vec<f32> = from_str(&s).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn json_macro_builds_objects() {
        let n = 4usize;
        let v = json!({ "clusters": n, "ratio": 1.5 });
        let s = to_string(&v).unwrap();
        assert!(s.contains("\"clusters\":4"));
        assert!(s.contains("\"ratio\":1.5"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("nulll").is_err());
    }
}
