#!/usr/bin/env bash
# Regenerate every table/figure of the paper and save outputs to results/.
# SCALE=quick (default) or SCALE=full.
set -uo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
BINS=$(ls crates/bench/src/bin | sed 's/\.rs$//')
cargo build --release -p mimicnet-bench --bins
for b in $BINS; do
  echo "=== $b ==="
  cargo run --release -q -p mimicnet-bench --bin "$b" | tee "results/$b.txt"
done
