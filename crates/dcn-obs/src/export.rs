//! Exporters: JSON snapshot, Chrome trace-event file, human-readable
//! end-of-run report.
//!
//! The Chrome trace output is a plain array of complete (`ph: "X"`)
//! trace events, loadable in `chrome://tracing` or Perfetto. Timestamps
//! are microseconds (float) since the process obs epoch; partition tracks
//! map to `tid` so PDES partitions render as parallel lanes.

use crate::{FlightEvent, Hist, ObsReport, SpanEvent};
use serde_json::Value;

impl ObsReport {
    /// Full registry + span log as a JSON value.
    pub fn to_json(&self) -> Value {
        let counters = Value::Object(
            self.counters
                .iter()
                .map(|(k, v)| (k.to_string(), Value::U64(*v)))
                .collect(),
        );
        let gauges = Value::Object(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Value::F64(*v)))
                .collect(),
        );
        let hists = Value::Object(
            self.hists
                .iter()
                .map(|(k, h)| (k.to_string(), hist_json(h)))
                .collect(),
        );
        let series = Value::Object(
            self.series
                .iter()
                .map(|(k, s)| {
                    (
                        k.to_string(),
                        Value::Array(s.iter().map(|v| Value::F64(*v)).collect()),
                    )
                })
                .collect(),
        );
        let spans = Value::Array(self.spans.iter().map(span_json).collect());
        // Digests are emitted as exact u64s: the diverge tooling compares
        // these values bit-for-bit, so they must not round-trip through f64.
        let digests = Value::Object(
            self.digests
                .iter()
                .map(|(k, d)| {
                    (
                        k.to_string(),
                        Value::Array(d.iter().map(|&v| Value::U64(v)).collect()),
                    )
                })
                .collect(),
        );
        let flight = Value::Array(self.flight.iter().map(flight_json).collect());
        Value::Object(vec![
            ("counters".to_string(), counters),
            ("gauges".to_string(), gauges),
            ("hists".to_string(), hists),
            ("series".to_string(), series),
            ("digests".to_string(), digests),
            ("flight".to_string(), flight),
            ("spans".to_string(), spans),
            (
                "span_coverage".to_string(),
                Value::F64(self.span_coverage()),
            ),
        ])
    }

    /// Pretty-printed JSON snapshot.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(&self.to_json()).expect("obs json")
    }

    /// Chrome trace-event JSON (array format): one complete event per
    /// span. Open the file in `chrome://tracing` or https://ui.perfetto.dev.
    pub fn to_chrome_trace(&self) -> String {
        let mut events: Vec<Value> = Vec::with_capacity(self.spans.len());
        for s in &self.spans {
            let mut args = Vec::new();
            if let Some(t) = s.sim_start_ns {
                args.push(("sim_start_us".to_string(), Value::F64(t as f64 / 1e3)));
            }
            if let Some(t) = s.sim_end_ns {
                args.push(("sim_end_us".to_string(), Value::F64(t as f64 / 1e3)));
            }
            events.push(Value::Object(vec![
                ("name".to_string(), Value::Str(s.name.to_string())),
                ("cat".to_string(), Value::Str(s.cat.to_string())),
                ("ph".to_string(), Value::Str("X".to_string())),
                ("ts".to_string(), Value::F64(s.start_ns as f64 / 1e3)),
                ("dur".to_string(), Value::F64(s.dur_ns as f64 / 1e3)),
                ("pid".to_string(), Value::U64(1)),
                ("tid".to_string(), Value::U64(s.track as u64)),
                ("args".to_string(), Value::Object(args)),
            ]));
        }
        serde_json::to_string(&Value::Array(events)).expect("chrome trace json")
    }

    /// Human-readable end-of-run report (printed by `mimicnet --report`).
    pub fn render_report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "== observability report ==");
        if !self.spans.is_empty() {
            let _ = writeln!(
                out,
                "spans: {} recorded, coverage {:.1}% of wall extent",
                self.spans.len(),
                self.span_coverage() * 100.0
            );
            // Aggregate wall time by span name.
            let mut by_name: Vec<(&'static str, u64, u64)> = Vec::new();
            for s in &self.spans {
                match by_name.iter_mut().find(|(n, _, _)| *n == s.name) {
                    Some((_, count, ns)) => {
                        *count += 1;
                        *ns += s.dur_ns;
                    }
                    None => by_name.push((s.name, 1, s.dur_ns)),
                }
            }
            by_name.sort_by_key(|e| std::cmp::Reverse(e.2));
            for (name, count, ns) in &by_name {
                let _ = writeln!(
                    out,
                    "  {:<32} {:>8}x {:>12.3} ms",
                    name,
                    count,
                    *ns as f64 / 1e6
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<40} {v}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k:<40} {v:.6}");
            }
        }
        if !self.hists.is_empty() {
            let _ = writeln!(out, "histograms (count / mean / p50 / p99 / max):");
            for (k, h) in &self.hists {
                let _ = writeln!(
                    out,
                    "  {:<32} {:>8} / {:>10.2} / {:>6} / {:>6} / {}",
                    k,
                    h.count,
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.99),
                    h.max
                );
            }
        }
        if !self.series.is_empty() {
            let _ = writeln!(out, "series (first..last):");
            for (k, s) in &self.series {
                match (s.first(), s.last()) {
                    (Some(a), Some(b)) => {
                        let _ = writeln!(out, "  {:<32} n={} {:.6} .. {:.6}", k, s.len(), a, b);
                    }
                    _ => {
                        let _ = writeln!(out, "  {:<32} n=0", k);
                    }
                }
            }
        }
        if !self.digests.is_empty() {
            let _ = writeln!(out, "state digests (windows / first / last):");
            for (k, d) in &self.digests {
                match (d.first(), d.last()) {
                    (Some(a), Some(b)) => {
                        let _ = writeln!(
                            out,
                            "  {:<32} n={} {:016x} .. {:016x}",
                            k,
                            d.len(),
                            a,
                            b
                        );
                    }
                    _ => {
                        let _ = writeln!(out, "  {:<32} n=0", k);
                    }
                }
            }
        }
        if !self.flight.is_empty() {
            let _ = writeln!(out, "flight recorder: {} retained events", self.flight.len());
            let lps: std::collections::BTreeSet<u32> =
                self.flight.iter().map(|e| e.lp).collect();
            for lp in lps {
                let evs: Vec<&FlightEvent> =
                    self.flight.iter().filter(|e| e.lp == lp).collect();
                let last = evs.last().unwrap();
                let _ = writeln!(
                    out,
                    "  lp {:<3} {:>7} events, last: {} @ {} ns (pkt {}, depth {})",
                    lp,
                    evs.len(),
                    last.kind_name,
                    last.sim_ns,
                    if last.packet_id == u64::MAX {
                        "-".to_string()
                    } else {
                        last.packet_id.to_string()
                    },
                    last.queue_depth
                );
            }
        }
        self.render_tier_telemetry(&mut out);
        out
    }

    /// Adaptive-tier telemetry: the tier-switch timeline plus a
    /// per-cluster time-in-tier summary, rendered from the
    /// `tier.switch.*` series folded in by the engine (empty unless the
    /// run used the adaptive fleet and recorded at least one epoch).
    fn render_tier_telemetry(&self, out: &mut String) {
        use std::fmt::Write;
        let (Some(epochs), Some(clusters), Some(froms), Some(tos)) = (
            self.series.get("tier.switch.epoch"),
            self.series.get("tier.switch.cluster"),
            self.series.get("tier.switch.from"),
            self.series.get("tier.switch.to"),
        ) else {
            return;
        };
        let n = epochs.len().min(clusters.len()).min(froms.len()).min(tos.len());
        let total_epochs = self.gauges.get("tier.epochs_total").copied().unwrap_or(0.0);
        let _ = writeln!(
            out,
            "adaptive tiers: {} switches over {} epochs",
            n, total_epochs as u64
        );
        // Timeline, ordered by (epoch, cluster).
        let mut switches: Vec<(u64, u32, u8, u8)> = (0..n)
            .map(|i| {
                (
                    epochs[i] as u64,
                    clusters[i] as u32,
                    froms[i] as u8,
                    tos[i] as u8,
                )
            })
            .collect();
        switches.sort_unstable();
        for &(epoch, cluster, from, to) in &switches {
            let _ = writeln!(
                out,
                "  epoch {:>5}  cluster {:<3} {} -> {}",
                epoch,
                cluster,
                tier_name(from),
                tier_name(to)
            );
        }
        // Per-cluster time-in-tier, in epochs: walk each cluster's
        // switches; before its first switch the cluster sat in that
        // switch's `from` tier (clusters that never switch spent every
        // epoch in the fleet's starting tier, which the engine records as
        // the `tier.initial` gauge — mimic if absent).
        let total = total_epochs as u64;
        if total == 0 {
            return;
        }
        let initial = self.gauges.get("tier.initial").copied().unwrap_or(1.0) as u8;
        let all_clusters: std::collections::BTreeSet<u32> = (0..self
            .gauges
            .get("tier.clusters")
            .copied()
            .unwrap_or(0.0) as u32)
            .chain(switches.iter().map(|s| s.1))
            .collect();
        let _ = writeln!(out, "time-in-tier (epochs per cluster):");
        for c in all_clusters {
            let mut per_tier = [0u64; 3];
            let mut epoch = 0u64;
            let mut tier = initial;
            for &(e, cl, from, to) in &switches {
                if cl != c {
                    continue;
                }
                if epoch == 0 {
                    tier = from;
                }
                let e = e.min(total);
                per_tier[(tier as usize).min(2)] += e.saturating_sub(epoch);
                epoch = e;
                tier = to;
            }
            per_tier[(tier as usize).min(2)] += total.saturating_sub(epoch);
            let _ = writeln!(
                out,
                "  cluster {:<3} packet={:<6} mimic={:<6} flow={:<6}",
                c, per_tier[0], per_tier[1], per_tier[2]
            );
        }
    }
}

fn tier_name(idx: u8) -> &'static str {
    match idx {
        0 => "packet",
        1 => "mimic",
        2 => "flow",
        _ => "?",
    }
}

fn flight_json(e: &FlightEvent) -> Value {
    Value::Object(vec![
        ("lp".to_string(), Value::U64(e.lp as u64)),
        ("sim_ns".to_string(), Value::U64(e.sim_ns)),
        ("kind".to_string(), Value::U64(e.kind as u64)),
        (
            "kind_name".to_string(),
            Value::Str(e.kind_name.to_string()),
        ),
        ("packet_id".to_string(), Value::U64(e.packet_id)),
        ("queue_depth".to_string(), Value::U64(e.queue_depth as u64)),
    ])
}

fn hist_json(h: &Hist) -> Value {
    Value::Object(vec![
        ("count".to_string(), Value::U64(h.count)),
        ("sum".to_string(), Value::U64(h.sum)),
        ("max".to_string(), Value::U64(h.max)),
        ("mean".to_string(), Value::F64(h.mean())),
        ("p50".to_string(), Value::U64(h.quantile(0.5))),
        ("p99".to_string(), Value::U64(h.quantile(0.99))),
        (
            "buckets".to_string(),
            Value::Array(h.buckets.iter().map(|&b| Value::U64(b)).collect()),
        ),
    ])
}

fn span_json(s: &SpanEvent) -> Value {
    let mut fields = vec![
        ("name".to_string(), Value::Str(s.name.to_string())),
        ("cat".to_string(), Value::Str(s.cat.to_string())),
        ("start_ns".to_string(), Value::U64(s.start_ns)),
        ("dur_ns".to_string(), Value::U64(s.dur_ns)),
        ("track".to_string(), Value::U64(s.track as u64)),
    ];
    if let Some(t) = s.sim_start_ns {
        fields.push(("sim_start_ns".to_string(), Value::U64(t)));
    }
    if let Some(t) = s.sim_end_ns {
        fields.push(("sim_end_ns".to_string(), Value::U64(t)));
    }
    Value::Object(fields)
}

/// Fraction of the wall-clock extent (earliest span start to latest span
/// end, across all tracks) covered by the union of span intervals.
/// Returns 0.0 with no spans. Used by the acceptance gate requiring spans
/// to cover >= 95% of measured wall time.
pub fn span_coverage(spans: &[SpanEvent]) -> f64 {
    if spans.is_empty() {
        return 0.0;
    }
    let mut intervals: Vec<(u64, u64)> = spans
        .iter()
        .map(|s| (s.start_ns, s.start_ns + s.dur_ns))
        .collect();
    intervals.sort_unstable();
    let lo = intervals[0].0;
    let hi = intervals.iter().map(|&(_, e)| e).max().unwrap();
    if hi == lo {
        return 1.0;
    }
    let mut covered = 0u64;
    let (mut cur_s, mut cur_e) = intervals[0];
    for &(s, e) in &intervals[1..] {
        if s <= cur_e {
            cur_e = cur_e.max(e);
        } else {
            covered += cur_e - cur_s;
            cur_s = s;
            cur_e = e;
        }
    }
    covered += cur_e - cur_s;
    covered as f64 / (hi - lo) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    fn sample_report() -> ObsReport {
        let mut o = Obs::on();
        o.begin("phase", "test", Some(0));
        o.counter_add("sim.events.arrive", 10);
        o.hist_observe("mimic.flush.batch_size", 32);
        o.series_push("train.epoch_loss", 0.5);
        o.gauge_set("drift.cluster.0", 0.1);
        o.end(Some(1000));
        o.take_report().unwrap()
    }

    #[test]
    fn json_snapshot_round_trips_and_names_present() {
        let r = sample_report();
        let s = r.to_json_string();
        let v: Value = serde_json::from_str(&s).unwrap();
        let obj = v.as_object().unwrap();
        let counters = obj
            .iter()
            .find(|(k, _)| k == "counters")
            .map(|(_, v)| v)
            .unwrap();
        assert!(counters
            .as_object()
            .unwrap()
            .iter()
            .any(|(k, _)| k == "sim.events.arrive"));
        assert!(s.contains("mimic.flush.batch_size"));
        assert!(s.contains("train.epoch_loss"));
        assert!(s.contains("drift.cluster.0"));
        assert!(s.contains("span_coverage"));
    }

    #[test]
    fn chrome_trace_is_valid_event_array() {
        let r = sample_report();
        let s = r.to_chrome_trace();
        let v: Value = serde_json::from_str(&s).unwrap();
        let events = v.as_array().unwrap();
        assert_eq!(events.len(), 1);
        let ev = events[0].as_object().unwrap();
        let get = |name: &str| ev.iter().find(|(k, _)| k == name).map(|(_, v)| v).unwrap();
        assert_eq!(get("ph").as_str().unwrap(), "X");
        assert_eq!(get("name").as_str().unwrap(), "phase");
        assert!(get("ts").as_f64().is_some());
        assert!(get("dur").as_f64().is_some());
    }

    #[test]
    fn coverage_unions_overlapping_spans() {
        let mk = |start_ns, dur_ns| SpanEvent {
            name: "s",
            cat: "t",
            start_ns,
            dur_ns,
            sim_start_ns: None,
            sim_end_ns: None,
            track: 0,
        };
        // [0,10) and [5,15): union 15 over extent 15 -> 1.0.
        assert!((span_coverage(&[mk(0, 10), mk(5, 10)]) - 1.0).abs() < 1e-12);
        // [0,10) and [20,30): union 20 over extent 30 -> 2/3.
        let c = span_coverage(&[mk(0, 10), mk(20, 10)]);
        assert!((c - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(span_coverage(&[]), 0.0);
    }

    #[test]
    fn report_renders_all_sections() {
        let r = sample_report();
        let text = r.render_report();
        assert!(text.contains("observability report"));
        assert!(text.contains("sim.events.arrive"));
        assert!(text.contains("mimic.flush.batch_size"));
        assert!(text.contains("train.epoch_loss"));
        assert!(text.contains("drift.cluster.0"));
        assert!(text.contains("coverage"));
    }
}
