//! Hand-rolled FNV-1a 64-bit digest (DESIGN.md §14): the per-window state
//! fingerprint primitive. No dependencies, stable across platforms — the
//! digest of a given byte stream is part of the obs snapshot contract, so
//! the constants below must never change.
//!
//! Two layers:
//!
//! * [`Fnv64`] — a streaming hasher over one *item* (an event, a
//!   transmitter, a host). All multi-byte integers are fed little-endian,
//!   matching the snapshot codec's byte order.
//! * Multiset combination — per-item digests are combined with
//!   `wrapping_add`, which is commutative and associative, so a digest
//!   over a set of items is independent of iteration order *and* of how
//!   the items are split across PDES partitions. This is what makes the
//!   window digest partition-count-invariant: each item is digested by
//!   exactly one owning LP and the per-LP sums are added at merge time.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64-bit hasher for one digest item.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

impl Fnv64 {
    pub fn new() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }

    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
    }

    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    #[inline]
    pub fn write_u16(&mut self, v: u16) {
        self.write_bytes(&v.to_le_bytes());
    }

    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    #[inline]
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        self.write_bytes(&v.to_bits().to_le_bytes());
    }

    #[inline]
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// The digest of everything written so far.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a 64 over a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_bytes(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Canonical FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn integer_writes_are_little_endian() {
        let mut h = Fnv64::new();
        h.write_u64(0x0102_0304_0506_0708);
        assert_eq!(
            h.finish(),
            fnv64(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01])
        );
    }

    #[test]
    fn multiset_combination_is_order_invariant() {
        let items: [&[u8]; 3] = [b"alpha", b"beta", b"gamma"];
        let fwd = items
            .iter()
            .fold(0u64, |acc, i| acc.wrapping_add(fnv64(i)));
        let rev = items
            .iter()
            .rev()
            .fold(0u64, |acc, i| acc.wrapping_add(fnv64(i)));
        assert_eq!(fwd, rev);
    }
}
