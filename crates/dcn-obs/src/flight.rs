//! Flight recorder: a bounded ring buffer of the most recent engine
//! events, kept per LP with the same `Option<Box<_>>` one-null-check
//! discipline as [`crate::Obs`] (DESIGN.md §14). When a run panics, trips
//! an SLO floor, or returns an error, the ring is drained into the obs
//! report / a post-mortem dump so every failed CI run carries the last
//! moments before the failure.

/// One recorded engine event. Plain nanoseconds and small integers so
/// this crate stays dependency-free; `kind` is the engine's event-kind
/// index and `kind_name` its stable name (both recorded so dumps remain
/// readable without the engine's enum).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// PDES partition (LP) that processed the event.
    pub lp: u32,
    /// Simulated time of the event, ns.
    pub sim_ns: u64,
    /// Engine event-kind index.
    pub kind: u8,
    /// Stable event-kind name (e.g. "arrive", "tx_done").
    pub kind_name: &'static str,
    /// Packet id when the event carries one, else `u64::MAX`.
    pub packet_id: u64,
    /// Event-queue depth observed *after* popping this event.
    pub queue_depth: u32,
}

impl FlightEvent {
    /// Sort key for cross-LP merges: simulated time, then kind, then
    /// packet id, then LP — a deterministic order for diffing two runs.
    pub fn sort_key(&self) -> (u64, u8, u64, u32) {
        (self.sim_ns, self.kind, self.packet_id, self.lp)
    }
}

/// Bounded ring of the last `capacity` [`FlightEvent`]s. `record` is the
/// hot-path method: one bounds-masked store, no allocation after the ring
/// fills, no branches beyond the wrap check.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    buf: Vec<FlightEvent>,
    capacity: usize,
    /// Next write position in `buf` once the ring is full.
    head: usize,
    /// Total events ever recorded (so reports can say how many were
    /// dropped by the ring bound).
    total: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            total: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded, including ones the ring dropped.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    #[inline]
    pub fn record(&mut self, ev: FlightEvent) {
        self.total += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            // Branch instead of `% capacity`: capacity is not required to
            // be a power of two, and an integer division per event is the
            // single biggest cost in this hot path.
            self.buf[self.head] = ev;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
        }
    }

    /// The retained events in recording order (oldest first), leaving the
    /// recorder empty but reusable.
    pub fn drain_ordered(&mut self) -> Vec<FlightEvent> {
        let head = self.head;
        let mut out = std::mem::take(&mut self.buf);
        let n = head.min(out.len());
        out.rotate_left(n);
        self.head = 0;
        out
    }

    /// The retained events in recording order without draining.
    pub fn snapshot_ordered(&self) -> Vec<FlightEvent> {
        let mut out = self.buf.clone();
        let n = self.head.min(out.len());
        out.rotate_left(n);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(sim_ns: u64) -> FlightEvent {
        FlightEvent {
            lp: 0,
            sim_ns,
            kind: 2,
            kind_name: "arrive",
            packet_id: sim_ns * 10,
            queue_depth: 4,
        }
    }

    #[test]
    fn fills_then_wraps_keeping_most_recent() {
        let mut r = FlightRecorder::new(4);
        for t in 0..10 {
            r.record(ev(t));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total_recorded(), 10);
        let kept: Vec<u64> = r.drain_ordered().iter().map(|e| e.sim_ns).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
        // Reusable after drain.
        r.record(ev(42));
        assert_eq!(r.len(), 1);
        assert_eq!(r.snapshot_ordered()[0].sim_ns, 42);
    }

    #[test]
    fn partial_fill_keeps_order() {
        let mut r = FlightRecorder::new(8);
        for t in [3, 1, 4] {
            r.record(ev(t));
        }
        let kept: Vec<u64> = r.snapshot_ordered().iter().map(|e| e.sim_ns).collect();
        assert_eq!(kept, vec![3, 1, 4]);
        assert_eq!(r.total_recorded(), 3);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = FlightRecorder::new(0);
        r.record(ev(1));
        r.record(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.snapshot_ordered()[0].sim_ns, 2);
    }
}
