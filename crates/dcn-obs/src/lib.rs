//! Observability layer for the MimicNet workspace: hierarchical spans with
//! wall-clock *and* virtual-time attribution, plus a registry of counters,
//! gauges, log2 histograms, and per-epoch series.
//!
//! Design constraints (DESIGN.md §9):
//!
//! * **Zero-cost when disabled.** The live handle [`Obs`] is a single
//!   `Option<Box<_>>`; every recording method is one branch on `None` when
//!   observability is off. Hot per-packet loops carry no obs code at all —
//!   recording happens at flush/window/epoch granularity.
//! * **Mergeable across PDES partitions.** [`ObsReport`] merges exactly
//!   like `dcn-sim`'s `Metrics::merge`: counters and histograms sum,
//!   gauges overwrite-if-present (the `cluster_drift` rule), series and
//!   spans concatenate. Wall timestamps come from one process-global epoch
//!   so spans from different partition threads land on a shared timeline.
//! * **No dependencies** beyond the vendored `serde`/`serde_json`
//!   stand-ins, used only by the exporters in [`export`].
//!
//! Registry keys are owned `String`s for flexibility (dynamic names like
//! `drift.cluster.3` or per-direction training prefixes); every registry
//! write happens at window/flush/epoch/fold granularity, never per packet,
//! so the allocation cost is irrelevant. Span names stay `&'static str` —
//! spans are the only record produced inside the event loop.

pub mod digest;
mod export;
mod flight;

pub use export::span_coverage;
pub use flight::{FlightEvent, FlightRecorder};

use std::collections::BTreeMap;
use std::sync::OnceLock;
use std::time::Instant;

/// Process-global wall-clock epoch. All spans across all threads measure
/// from here, so per-partition reports merge onto one coherent timeline.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-global observability epoch. The first
/// call anchors the epoch.
pub fn wall_now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Log2 histogram over `u64` observations: bucket `i` counts values with
/// `2^i <= v < 2^(i+1)` (bucket 0 counts 0 and 1), same idiom as
/// `QueueStats::depth_hist` in `dcn-sim`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Hist {
    pub buckets: [u64; 32],
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl Hist {
    pub fn observe(&mut self, v: u64) {
        let bucket = (64 - v.max(1).leading_zeros() as u64 - 1).min(31) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile from the histogram (upper bucket bound),
    /// e.g. `quantile(0.99)`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (self.count as f64 * q).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return 1u64 << (i + 1).min(63);
            }
        }
        self.max
    }

    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// One completed span: a named phase with wall-clock extent and optional
/// virtual `SimTime` attribution (plain nanoseconds, so this crate does
/// not depend on `dcn-sim`).
#[derive(Clone, Debug)]
pub struct SpanEvent {
    pub name: &'static str,
    /// Category, e.g. "pipeline", "pdes", "train" — becomes `cat` in the
    /// Chrome trace.
    pub cat: &'static str,
    /// Wall-clock start, ns since the process epoch ([`wall_now_ns`]).
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Virtual sim-time extent covered by this span, if meaningful.
    pub sim_start_ns: Option<u64>,
    pub sim_end_ns: Option<u64>,
    /// Timeline lane: the PDES partition id (or 0). Becomes `tid` in the
    /// Chrome trace so partitions render as parallel tracks.
    pub track: u32,
}

/// Snapshot of everything recorded: the mergeable registry plus the span
/// log. Produced by [`Obs::take_report`] and merged across partitions.
#[derive(Clone, Debug, Default)]
pub struct ObsReport {
    pub spans: Vec<SpanEvent>,
    pub counters: BTreeMap<String, u64>,
    /// Gauges overwrite-if-present on merge (last writer wins), mirroring
    /// `Metrics::merge`'s `cluster_drift` semantics. Owned keys: gauges
    /// are set at fold time, never on a hot path.
    pub gauges: BTreeMap<String, f64>,
    pub hists: BTreeMap<String, Hist>,
    /// Ordered samples (e.g. per-epoch training losses); concatenated on
    /// merge.
    pub series: BTreeMap<String, Vec<f64>>,
    /// Per-window state-digest timelines (DESIGN.md §14). Unlike `series`
    /// these keep full `u64` precision, and merge *element-wise with
    /// `wrapping_add`*: each LP contributes the multiset digest of the
    /// state it owns at window `i`, so the merged entry `i` is the
    /// partition-count-invariant digest of the whole simulation at that
    /// window.
    pub digests: BTreeMap<String, Vec<u64>>,
    /// Flight-recorder drain: the last events each LP processed before
    /// the report was taken (empty unless the recorder was enabled).
    /// Concatenated on merge.
    pub flight: Vec<FlightEvent>,
}

impl ObsReport {
    /// Merge another partition's report into this one. Mirrors
    /// `Metrics::merge`: counters/histograms sum, gauges overwrite when
    /// the other side has a value, series and spans concatenate.
    pub fn merge(&mut self, other: ObsReport) {
        self.spans.extend(other.spans);
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.gauges {
            self.gauges.insert(k, v);
        }
        for (k, v) in other.hists {
            self.hists.entry(k).or_default().merge(&v);
        }
        for (k, v) in other.series {
            self.series.entry(k).or_default().extend(v);
        }
        for (k, v) in other.digests {
            let mine = self.digests.entry(k).or_default();
            if mine.len() < v.len() {
                mine.resize(v.len(), 0);
            }
            for (a, b) in mine.iter_mut().zip(v) {
                *a = a.wrapping_add(b);
            }
        }
        self.flight.extend(other.flight);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Fraction of the report's wall-clock extent covered by the union of
    /// its span intervals. See [`span_coverage`].
    pub fn span_coverage(&self) -> f64 {
        span_coverage(&self.spans)
    }
}

struct OpenSpan {
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    sim_start_ns: Option<u64>,
}

struct ObsInner {
    report: ObsReport,
    stack: Vec<OpenSpan>,
    track: u32,
}

/// Live recording handle. `Obs::off()` is the no-op recorder: every method
/// is a single branch and records nothing. Constructed once per
/// `Simulation`/`Pipeline`; reports are extracted with [`Obs::take_report`]
/// and merged across partitions via [`ObsReport::merge`].
pub struct Obs(Option<Box<ObsInner>>);

impl Default for Obs {
    fn default() -> Obs {
        Obs::off()
    }
}

impl Obs {
    /// The no-op recorder.
    pub fn off() -> Obs {
        Obs(None)
    }

    /// A live recorder.
    pub fn on() -> Obs {
        Obs(Some(Box::new(ObsInner {
            report: ObsReport::default(),
            stack: Vec::new(),
            track: 0,
        })))
    }

    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Set the timeline lane for subsequently recorded spans (the PDES
    /// partition id).
    pub fn set_track(&mut self, track: u32) {
        if let Some(inner) = &mut self.0 {
            inner.track = track;
        }
    }

    /// Open a span. Pair with [`Obs::end`]; spans nest (LIFO).
    pub fn begin(&mut self, name: &'static str, cat: &'static str, sim_ns: Option<u64>) {
        if let Some(inner) = &mut self.0 {
            inner.stack.push(OpenSpan {
                name,
                cat,
                start_ns: wall_now_ns(),
                sim_start_ns: sim_ns,
            });
        }
    }

    /// Close the innermost open span.
    pub fn end(&mut self, sim_ns: Option<u64>) {
        if let Some(inner) = &mut self.0 {
            if let Some(open) = inner.stack.pop() {
                let now = wall_now_ns();
                inner.report.spans.push(SpanEvent {
                    name: open.name,
                    cat: open.cat,
                    start_ns: open.start_ns,
                    dur_ns: now.saturating_sub(open.start_ns),
                    sim_start_ns: open.sim_start_ns,
                    sim_end_ns: sim_ns,
                    track: inner.track,
                });
            }
        }
    }

    /// Record a span around a closure (no sim-time attribution).
    pub fn span<R>(&mut self, name: &'static str, cat: &'static str, f: impl FnOnce(&mut Obs) -> R) -> R {
        self.begin(name, cat, None);
        let r = f(self);
        self.end(None);
        r
    }

    pub fn counter_add(&mut self, name: impl Into<String>, v: u64) {
        if let Some(inner) = &mut self.0 {
            *inner.report.counters.entry(name.into()).or_insert(0) += v;
        }
    }

    pub fn gauge_set(&mut self, name: impl Into<String>, v: f64) {
        if let Some(inner) = &mut self.0 {
            inner.report.gauges.insert(name.into(), v);
        }
    }

    pub fn hist_observe(&mut self, name: impl Into<String>, v: u64) {
        if let Some(inner) = &mut self.0 {
            inner.report.hists.entry(name.into()).or_default().observe(v);
        }
    }

    /// Merge a whole pre-built histogram under `name` (used when a hot
    /// component keeps its own `Hist` and hands it over at fold time).
    pub fn hist_merge(&mut self, name: impl Into<String>, h: &Hist) {
        if let Some(inner) = &mut self.0 {
            inner.report.hists.entry(name.into()).or_default().merge(h);
        }
    }

    pub fn series_push(&mut self, name: impl Into<String>, v: f64) {
        if let Some(inner) = &mut self.0 {
            inner.report.series.entry(name.into()).or_default().push(v);
        }
    }

    /// Append one window digest to the named digest timeline (full `u64`
    /// precision; see [`ObsReport::digests`]).
    pub fn digest_push(&mut self, name: impl Into<String>, v: u64) {
        if let Some(inner) = &mut self.0 {
            inner.report.digests.entry(name.into()).or_default().push(v);
        }
    }

    /// Hand a flight-recorder drain over to the report.
    pub fn flight_extend(&mut self, events: Vec<FlightEvent>) {
        if let Some(inner) = &mut self.0 {
            inner.report.flight.extend(events);
        }
    }

    /// Fold another report into this recorder (e.g. a simulation's
    /// engine-side report absorbed by the pipeline's recorder).
    pub fn merge_report(&mut self, other: ObsReport) {
        if let Some(inner) = &mut self.0 {
            inner.report.merge(other);
        }
    }

    /// Extract the recorded report, leaving the recorder live but empty.
    /// Returns `None` for the no-op recorder. Any still-open spans are
    /// closed at the current wall time.
    pub fn take_report(&mut self) -> Option<ObsReport> {
        let inner = self.0.as_mut()?;
        // Close dangling spans so the report is self-consistent.
        while let Some(open) = inner.stack.pop() {
            let now = wall_now_ns();
            let track = inner.track;
            inner.report.spans.push(SpanEvent {
                name: open.name,
                cat: open.cat,
                start_ns: open.start_ns,
                dur_ns: now.saturating_sub(open.start_ns),
                sim_start_ns: open.sim_start_ns,
                sim_end_ns: None,
                track,
            });
        }
        Some(std::mem::take(&mut inner.report))
    }

    /// Read-only view of the report accumulated so far (`None` when off).
    pub fn report(&self) -> Option<&ObsReport> {
        self.0.as_deref().map(|inner| &inner.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_records_nothing() {
        let mut o = Obs::off();
        o.begin("a", "t", None);
        o.counter_add("c", 3);
        o.hist_observe("h", 7);
        o.series_push("s", 1.0);
        o.gauge_set("g", 2.0);
        o.end(None);
        assert!(!o.is_on());
        assert!(o.take_report().is_none());
    }

    #[test]
    fn hist_buckets_match_queue_stats_idiom() {
        let mut h = Hist::default();
        for v in [0u64, 1, 1, 3, 7, 64] {
            h.observe(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.max, 64);
        assert_eq!(h.buckets[0], 3); // 0 and 1
        assert_eq!(h.buckets[1], 1); // 3
        assert_eq!(h.buckets[2], 1); // 7
        assert_eq!(h.buckets[6], 1); // 64
        assert_eq!(h.quantile(0.5), 2);
        assert!(h.quantile(1.0) >= 64);
        assert!((h.mean() - 76.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn spans_nest_and_attribute_sim_time() {
        let mut o = Obs::on();
        o.set_track(3);
        o.begin("outer", "test", Some(100));
        o.begin("inner", "test", None);
        o.end(None);
        o.end(Some(900));
        let r = o.take_report().unwrap();
        assert_eq!(r.spans.len(), 2);
        let inner = &r.spans[0];
        let outer = &r.spans[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.sim_start_ns, Some(100));
        assert_eq!(outer.sim_end_ns, Some(900));
        assert!(outer.start_ns <= inner.start_ns);
        assert!(outer.start_ns + outer.dur_ns >= inner.start_ns + inner.dur_ns);
        assert_eq!(outer.track, 3);
    }

    #[test]
    fn report_merge_matches_metrics_merge_semantics() {
        let mut a = ObsReport::default();
        a.counters.insert("n".into(), 2);
        a.gauges.insert("g".into(), 1.0);
        a.gauges.insert("only_a".into(), 5.0);
        a.hists.entry("h".into()).or_default().observe(4);
        a.series.insert("s".into(), vec![1.0, 2.0]);

        let mut b = ObsReport::default();
        b.counters.insert("n".into(), 3);
        b.counters.insert("m".into(), 1);
        b.gauges.insert("g".into(), 9.0); // overwrites, like cluster_drift
        b.hists.entry("h".into()).or_default().observe(8);
        b.series.insert("s".into(), vec![3.0]);

        a.merge(b);
        assert_eq!(a.counter("n"), 5);
        assert_eq!(a.counter("m"), 1);
        assert_eq!(a.gauges["g"], 9.0);
        assert_eq!(a.gauges["only_a"], 5.0);
        assert_eq!(a.hists["h"].count, 2);
        assert_eq!(a.hists["h"].sum, 12);
        assert_eq!(a.series["s"], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn take_report_closes_dangling_spans() {
        let mut o = Obs::on();
        o.begin("dangling", "t", Some(5));
        let r = o.take_report().unwrap();
        assert_eq!(r.spans.len(), 1);
        assert_eq!(r.spans[0].name, "dangling");
        // Recorder stays live after take.
        o.counter_add("c", 1);
        assert_eq!(o.take_report().unwrap().counter("c"), 1);
    }
}
