//! Figure 6: latency prediction under MAE vs. MSE vs. Huber loss.
//!
//! Paper: "Unfortunately, using MAE directly as the loss function fails to
//! capture outliers. Instead, Huber produces more realistic results and a
//! better eventual MAE score." (Their MAEs: MAE-trained 1.4e-4,
//! MSE-trained 3.3e-4, Huber-trained 1.1e-4; Huber also cut the 99-pct
//! latency error from 13.2% to 2.6%.)

use dcn_sim::stats::percentile;
use mimic_ml::loss::RegLoss;
use mimic_ml::model::OUT_LATENCY;
use mimic_ml::train::TrainConfig;
use mimicnet_bench::{header, pipeline_config, Scale};
use mimicnet::datagen::{generate, DataGenConfig};
use mimicnet::internal_model::InternalModel;

fn main() {
    let scale = Scale::from_env();
    header(
        "Figure 6",
        "latency regression under MAE vs MSE vs Huber: test MAE and p99 error",
    );

    let mut dg = DataGenConfig {
        sim: pipeline_config(scale, 91).base,
        ..DataGenConfig::default()
    };
    dg.sim.traffic.load = 0.95; // induce latency outliers
    dg.sim.duration_s = scale.duration_s() * 4.0;
    let td = generate(&dg);
    let (train_set, test_set) = td.ingress.split(0.7);

    // Ground-truth stats on the (normalized) test targets.
    let truth: Vec<f64> = test_set.targets.iter().map(|t| t.latency as f64).collect();
    let truth_p99 = percentile(&truth, 99.0);
    println!(
        "trace: {} ingress packets; normalized-latency p99 (truth) = {truth_p99:.4}",
        td.ingress.len()
    );
    println!(
        "{:>14} | {:>12} | {:>12} | {:>14}",
        "loss", "test MAE", "pred p99", "p99 error"
    );

    // Targets are normalized to [0,1], so the Huber knee sits at 0.1 of
    // the range (the paper's delta=1 is relative to *its* latency units).
    for (name, loss) in [
        ("MAE", RegLoss::Mae),
        ("MSE", RegLoss::Mse),
        ("Huber d=0.1", RegLoss::Huber { delta: 0.1 }),
    ] {
        let mut tc = TrainConfig {
            epochs: scale.epochs() + 1,
            window: 8,
            seed: 5,
            ..TrainConfig::default()
        };
        tc.loss.latency = loss;
        tc.loss.w_latency = 1.0;
        tc.loss.w_drop = 0.0;
        tc.loss.w_ecn = 0.0;
        let (model, _) = InternalModel::train_new(&train_set, td.ingress_disc, 16, &tc)
            .expect("training data");
        let mut state = model.init_state();
        let mut abs_err = 0.0f64;
        let mut preds = Vec::with_capacity(test_set.len());
        for (f, t) in test_set.features.iter().zip(&test_set.targets) {
            let out = model.model.step(f, &mut state);
            let p = out[OUT_LATENCY].clamp(0.0, 1.0) as f64;
            abs_err += (p - t.latency as f64).abs();
            preds.push(p);
        }
        let mae = abs_err / test_set.len() as f64;
        let p99 = percentile(&preds, 99.0);
        println!(
            "{name:>14} | {mae:>12.5} | {p99:>12.4} | {:>13.1}%",
            (p99 - truth_p99).abs() / truth_p99.max(1e-9) * 100.0
        );
    }
    println!(
        "\npaper shape: Huber attains the best test MAE *and* the smallest\n\
         p99 error; MSE over-reacts to outliers, MAE ignores them."
    );
}
