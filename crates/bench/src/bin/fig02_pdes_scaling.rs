//! Figure 2: event throughput of packet-level simulation vs. topology
//! size and parallelism.
//!
//! Paper: "OMNeT++ performance on leaf-spine topologies of various size.
//! Even for these small cases, 5 mins of simulation time can take multiple
//! days to process" — and crucially, adding threads (parallel DES) often
//! *lowers* simulated-seconds-per-second because LPs must synchronize
//! every lookahead window.

use dcn_sim::config::SimConfig;
use dcn_sim::pdes::run_partitioned;
use dcn_sim::simulator::Simulation;
use dcn_transport::Protocol;
use mimic_ml::train::TrainConfig;
use mimicnet::compose::{compose_batched, run_composed_partitioned};
use mimicnet::datagen::{generate, DataGenConfig};
use mimicnet::internal_model::InternalModel;
use mimicnet::mimic::TrainedMimic;
use mimicnet_bench::{header, Scale};
use std::time::Instant;

/// A small trained bundle, just enough to drive the batched compose path;
/// the figure measures simulator throughput, not model quality.
fn quick_trained() -> TrainedMimic {
    let mut dg = DataGenConfig::default();
    dg.sim.duration_s = 0.3;
    dg.sim.seed = 55;
    let td = generate(&dg);
    let tc = TrainConfig {
        epochs: 1,
        window: 4,
        ..TrainConfig::default()
    };
    let (ing, _) = InternalModel::train_new(&td.ingress, td.ingress_disc, 8, &tc)
        .expect("valid training setup");
    let (eg, _) = InternalModel::train_new(&td.egress, td.egress_disc, 8, &tc)
        .expect("valid training setup");
    TrainedMimic {
        ingress: ing,
        egress: eg,
        feature_cfg: td.feature_cfg,
        feeder: td.feeder,
        envelope: None,
    }
}

fn main() {
    let scale = Scale::from_env();
    header(
        "Figure 2",
        "simulated seconds per wall second vs. topology size, 1/2/4 logical processes",
    );
    let sizes: Vec<u32> = match scale {
        Scale::Quick => vec![2, 4, 8],
        Scale::Full => vec![2, 4, 8, 16, 32],
    };
    let trained = quick_trained();
    println!(
        "{:>9} {:>7} | {:>12} | {:>12} | {:>12} | {:>12} | {:>12} | {:>14}",
        "clusters", "hosts", "1 LP", "2 LPs", "4 LPs", "mimic 1 LP", "mimic 4 LPs", "events (1 LP)"
    );
    for clusters in sizes {
        let mut cfg = SimConfig::with_clusters(clusters);
        cfg.duration_s = scale.duration_s() * 0.6;
        cfg.seed = 5;
        let mut cells = Vec::new();
        let mut events1 = 0;
        for parts in [1usize, 2, 4] {
            let t0 = Instant::now();
            let m = if parts == 1 {
                Simulation::with_transport(cfg, Protocol::NewReno.factory()).run()
            } else {
                run_partitioned(cfg, parts, &|| Protocol::NewReno.factory())
            };
            let wall = t0.elapsed().as_secs_f64();
            if parts == 1 {
                events1 = m.events_processed;
            }
            cells.push(cfg.duration_s / wall); // simulated secs per second
        }
        // Batched Mimic composition of the same topology: one observable
        // cluster simulated packet-level, the rest served by the batched
        // inference aggregation point — sequential and 4-way partitioned.
        let t0 = Instant::now();
        let seq = compose_batched(cfg, clusters, Protocol::NewReno, &trained).run();
        cells.push(cfg.duration_s / t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let par = run_composed_partitioned(cfg, clusters, Protocol::NewReno, &trained, 4)
            .expect("valid composition");
        cells.push(cfg.duration_s / t0.elapsed().as_secs_f64());
        assert_eq!(
            seq.flows_completed(),
            par.flows_completed(),
            "composed PDES must match sequential composition"
        );
        println!(
            "{clusters:>9} {:>7} | {:>11.2}x | {:>11.2}x | {:>11.2}x | {:>11.2}x | {:>11.2}x | {events1:>14}",
            cfg.num_hosts(),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            cells[4]
        );
    }
    println!(
        "\npaper shape: throughput falls with size; 2/4 threads do NOT beat 1\n\
         (synchronization per link-latency window dominates). Mimic columns\n\
         compose the same topology with batched-inference clusters: the\n\
         throughput advantage over packet-level widens with size because\n\
         only one cluster runs packet-level."
    );
}
