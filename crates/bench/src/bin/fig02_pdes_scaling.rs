//! Figure 2: event throughput of packet-level simulation vs. topology
//! size and parallelism.
//!
//! Paper: "OMNeT++ performance on leaf-spine topologies of various size.
//! Even for these small cases, 5 mins of simulation time can take multiple
//! days to process" — and crucially, adding threads (parallel DES) often
//! *lowers* simulated-seconds-per-second because LPs must synchronize
//! every lookahead window.

use dcn_sim::config::SimConfig;
use dcn_sim::pdes::run_partitioned;
use dcn_sim::simulator::Simulation;
use dcn_transport::Protocol;
use mimicnet_bench::{header, Scale};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    header(
        "Figure 2",
        "simulated seconds per wall second vs. topology size, 1/2/4 logical processes",
    );
    let sizes: Vec<u32> = match scale {
        Scale::Quick => vec![2, 4, 8],
        Scale::Full => vec![2, 4, 8, 16, 32],
    };
    println!(
        "{:>9} {:>7} | {:>12} | {:>12} | {:>12} | {:>14}",
        "clusters", "hosts", "1 LP", "2 LPs", "4 LPs", "events (1 LP)"
    );
    for clusters in sizes {
        let mut cfg = SimConfig::with_clusters(clusters);
        cfg.duration_s = scale.duration_s() * 0.6;
        cfg.seed = 5;
        let mut cells = Vec::new();
        let mut events1 = 0;
        for parts in [1usize, 2, 4] {
            let t0 = Instant::now();
            let m = if parts == 1 {
                Simulation::with_transport(cfg, Protocol::NewReno.factory()).run()
            } else {
                run_partitioned(cfg, parts, &|| Protocol::NewReno.factory())
            };
            let wall = t0.elapsed().as_secs_f64();
            if parts == 1 {
                events1 = m.events_processed;
            }
            cells.push(cfg.duration_s / wall); // simulated secs per second
        }
        println!(
            "{clusters:>9} {:>7} | {:>11.2}x | {:>11.2}x | {:>11.2}x | {events1:>14}",
            cfg.num_hosts(),
            cells[0],
            cells[1],
            cells[2]
        );
    }
    println!(
        "\npaper shape: throughput falls with size; 2/4 threads do NOT beat 1\n\
         (synchronization per link-latency window dominates)."
    );
}
