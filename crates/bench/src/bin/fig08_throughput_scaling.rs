//! Figure 8: throughput-distribution accuracy vs. network size.
//!
//! Paper: W1 of the per-server throughput distribution for small-scale
//! extrapolation vs MimicNet across 4–128 clusters; MimicNet averages 78%
//! lower error and lower variance across workloads.

use dcn_sim::cdf::wasserstein1;
use mimicnet_bench::{header, pipeline_config, Scale};
use mimicnet::pipeline::Pipeline;

fn main() {
    let scale = Scale::from_env();
    header(
        "Figure 8",
        "W1(per-server throughput) to ground truth vs #clusters",
    );
    let mut pipe = Pipeline::new(pipeline_config(scale, 42));
    let trained = pipe.train();
    let (small, _, _) = pipe.run_ground_truth(2);

    println!("{:>9} | {:>15} | {:>15}", "clusters", "small-scale", "MimicNet");
    let (mut s_sum, mut m_sum, mut n) = (0.0, 0.0, 0);
    for clusters in scale.cluster_sweep() {
        let (truth, _, _) = pipe.run_ground_truth(clusters);
        let est = pipe.estimate(&trained, clusters);
        let w_small = wasserstein1(&truth.throughput, &small.throughput);
        let w_mimic = wasserstein1(&truth.throughput, &est.samples.throughput);
        println!("{clusters:>9} | {w_small:>15.0} | {w_mimic:>15.0}");
        // Skip the degenerate 2-cluster point (small-scale == truth there).
        if clusters > 2 {
            s_sum += w_small;
            m_sum += w_mimic;
            n += 1;
        }
    }
    println!("-------------------------------------------------");
    println!(
        "{:>9} | {:>15.0} | {:>15.0}   ({:.0}% lower)",
        "mean>2",
        s_sum / n as f64,
        m_sum / n as f64,
        (1.0 - (m_sum / s_sum)) * 100.0
    );
    println!("\npaper shape: MimicNet's W1 is consistently below the small-scale\nhypothesis (78% lower on average in the paper).");
}
