//! Figures 16 & 17 (Appendices C): impact of the LSTM window size on
//! modeling accuracy and speed.
//!
//! Paper: "a window size of only 1 packet performs very poorly … training
//! accuracy is quickly improved with additional packets, but this comes
//! with diminishing returns after the window size reaches the BDP of the
//! network (around 12 packets)"; training and inference latency grow with
//! the window, so "using BDP as the window size strikes a good balance".

use mimic_ml::train::{evaluate, TrainConfig};
use mimicnet_bench::{header, pipeline_config, Scale};
use mimicnet::datagen::{generate, DataGenConfig};
use mimicnet::internal_model::InternalModel;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    header(
        "Figures 16/17",
        "training/validation loss and train/inference latency vs window size",
    );
    let mut dg = DataGenConfig {
        sim: pipeline_config(scale, 31).base,
        ..DataGenConfig::default()
    };
    // Window sweeps want a meaty trace; small-scale time is cheap.
    dg.sim.duration_s *= 8.0;
    dg.sim.traffic.inter_cluster_fraction = 0.7;
    let td = generate(&dg);
    let (train_set, val_set) = td.egress.split(0.75);
    println!("trace: {} egress packets (train {} / val {})", td.egress.len(), train_set.len(), val_set.len());
    println!(
        "{:>7} | {:>12} | {:>12} | {:>13} | {:>15}",
        "window", "train loss", "val loss", "train ms/ep", "infer us/pkt"
    );
    let windows: Vec<usize> = vec![1, 2, 5, 10, 12, 20];
    for w in windows {
        let tc = TrainConfig {
            epochs: scale.epochs(),
            window: w,
            seed: 3,
            ..TrainConfig::default()
        };
        let t0 = Instant::now();
        let (model, report) = InternalModel::train_new(&train_set, td.egress_disc, 16, &tc)
            .expect("training data");
        let train_ms = t0.elapsed().as_secs_f64() * 1e3 / tc.epochs as f64;
        let val = evaluate(&model.model, &val_set, &tc);
        // Inference latency per packet, window-forward style (the paper's
        // engine re-runs the window per packet; our simulator instead
        // carries hidden state, which is O(1) in the window — we measure
        // the windowed form here to reproduce the figure's shape).
        let n = val_set.len().min(1000).max(w);
        let t1 = Instant::now();
        for i in 0..n {
            let xs: Vec<mimic_ml::Matrix> = (0..w)
                .map(|t| {
                    let idx = (i + t).saturating_sub(w - 1).min(val_set.len() - 1);
                    mimic_ml::Matrix::from_rows(&[val_set.features[idx].clone()])
                })
                .collect();
            let _ = model.model.forward_window(&xs);
        }
        let infer_us = t1.elapsed().as_secs_f64() * 1e6 / n as f64;
        println!(
            "{w:>7} | {:>12.5} | {val:>12.5} | {train_ms:>13.1} | {infer_us:>15.2}",
            report.epoch_losses.last().unwrap()
        );
    }
    println!(
        "\npaper shape: losses drop sharply from window=1 and plateau near\n\
         the BDP (~12 packets paper / ~5-10 here); per-epoch training time\n\
         grows with the window; inference cost rises past the BDP."
    );
}
