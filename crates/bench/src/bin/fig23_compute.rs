//! Figure 23 (Appendix G): compute-resource consumption (FLOPs).
//!
//! Paper: "MimicNet shows significant computational load, primarily
//! because of the use of GPUs for training and inference. This makes its
//! compute consumption higher than full simulations when the network …
//! is small … However, in large networks, e.g. 128 clusters, the use of
//! deep learning models in MimicNet pays off … its total compute
//! consumption is lower than full simulations even with the … training
//! overhead."
//!
//! We count FLOPs analytically: simulator events at a calibrated
//! per-event cost, plus exact LSTM training/inference math.

use mimic_ml::flops::{inference_step_flops, train_step_flops, SIM_EVENT_FLOPS};
use mimicnet_bench::{header, pipeline_config, Scale};
use mimicnet::pipeline::Pipeline;

fn main() {
    let scale = Scale::from_env();
    header(
        "Figure 23",
        "compute consumption (GFLOP-equivalents): full sim vs MimicNet (with/without training)",
    );
    let mut pipe = Pipeline::new(pipeline_config(scale, 42));
    let (trained, data) = pipe.train_with_data();
    let f = trained.feature_cfg.width();
    let h = trained.ingress.model.hidden_dim();
    let window = pipe.cfg.train.window;
    let batch = pipe.cfg.train.batch_size;
    // Training cost: steps over both directions' datasets, all epochs.
    let steps = |n: usize| n.div_ceil(batch) * pipe.cfg.train.epochs;
    let train_flops = (steps(data.ingress.len()) + steps(data.egress.len())) as u64
        * train_step_flops(f, h, 3, window, batch);
    // Small-scale simulation cost.
    let small_sim_flops = data.metrics.events_processed * SIM_EVENT_FLOPS;

    println!(
        "model: {f} features x {h} hidden; window {window}; one-time cost = small sim {:.2} GF + training {:.2} GF",
        small_sim_flops as f64 / 1e9,
        train_flops as f64 / 1e9
    );
    println!(
        "\n{:>9} | {:>12} | {:>14} | {:>14}",
        "clusters", "full sim", "mimic (run)", "mimic (+train)"
    );
    for clusters in scale.cluster_sweep() {
        let (_, truth_metrics, _) = pipe.run_ground_truth(clusters);
        let full = truth_metrics.events_processed * SIM_EVENT_FLOPS;
        let est = pipe.estimate(&trained, clusters);
        // Composition cost: events + one inference per boundary packet
        // (real + feeder) per mimic.
        let inference_packets: u64 = est.metrics.hops_forwarded; // proxy for boundary crossings
        let mimic_run = est.metrics.events_processed * SIM_EVENT_FLOPS
            + inference_packets * inference_step_flops(f, h, 3);
        let mimic_total = mimic_run + train_flops + small_sim_flops;
        println!(
            "{clusters:>9} | {:>12.3} | {:>14.3} | {:>14.3}",
            full as f64 / 1e9,
            mimic_run as f64 / 1e9,
            mimic_total as f64 / 1e9
        );
    }
    println!(
        "\npaper shape: at small sizes MimicNet's model math makes it the\n\
         more expensive option; as the network grows the full simulation's\n\
         event count explodes and MimicNet wins even including training."
    );
}
