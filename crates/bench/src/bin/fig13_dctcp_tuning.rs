//! Figure 13: tuning DCTCP's ECN marking threshold `K` with MimicNet.
//!
//! Paper: "the configuration that achieves the lowest 90-pct FCT is
//! different between 2 clusters (K=60) and 32 clusters (K=20). MimicNet
//! provides the same answer as the full simulation for 32 clusters, but it
//! is 12× faster."

use dcn_sim::stats::percentile;
use dcn_transport::Protocol;
use mimicnet_bench::{header, pipeline_config, Scale};
use mimicnet::pipeline::Pipeline;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    header(
        "Figure 13",
        "90-pct FCT vs DCTCP marking threshold K: 2-cluster vs large truth vs MimicNet",
    );
    let large = scale.large();
    let ks: Vec<u32> = match scale {
        Scale::Quick => vec![5, 10, 20, 40, 60],
        Scale::Full => vec![5, 10, 20, 40, 60, 80],
    };

    println!(
        "{:>4} | {:>14} | {:>14} | {:>14}",
        "K", "2 clusters", format!("{large} truth"), format!("{large} mimic")
    );
    let mut best_small = (0u32, f64::INFINITY);
    let mut best_truth = (0u32, f64::INFINITY);
    let mut best_mimic = (0u32, f64::INFINITY);
    let mut wall_truth = 0.0;
    let mut wall_mimic = 0.0;
    for &k in &ks {
        let mut cfg = pipeline_config(scale, 7);
        // The latency/throughput tension K controls only binds under
        // pressure; run hot so the sweep has signal.
        cfg.base.traffic.load = 0.9;
        cfg.base.duration_s = scale.duration_s() * 1.5;
        cfg.protocol = Protocol::Dctcp { k };
        let mut pipe = Pipeline::new(cfg);
        let trained = pipe.train();
        let (small, _, _) = pipe.run_ground_truth(2);
        let p_small = percentile(&small.fct, 90.0);
        let t0 = Instant::now();
        let (truth, _, _) = pipe.run_ground_truth(large);
        wall_truth += t0.elapsed().as_secs_f64();
        let p_truth = percentile(&truth.fct, 90.0);
        let est = pipe.estimate(&trained, large);
        wall_mimic += est.wall.as_secs_f64();
        let p_mimic = percentile(&est.samples.fct, 90.0);
        println!("{k:>4} | {p_small:>13.4}s | {p_truth:>13.4}s | {p_mimic:>13.4}s");
        if p_small < best_small.1 {
            best_small = (k, p_small);
        }
        if p_truth < best_truth.1 {
            best_truth = (k, p_truth);
        }
        if p_mimic < best_mimic.1 {
            best_mimic = (k, p_mimic);
        }
    }
    println!("------------------------------------------------------------------");
    println!(
        "best K:  2-cluster -> {}   |   {large}-truth -> {}   |   mimic -> {}",
        best_small.0, best_truth.0, best_mimic.0
    );
    println!(
        "sweep wall time: truth {wall_truth:.2}s vs mimic {wall_mimic:.2}s ({:.1}x faster)",
        wall_truth / wall_mimic.max(1e-9)
    );
    println!(
        "\npaper shape: small-scale prescribes a different (worse) K than the\n\
         large-scale truth; MimicNet recovers the truth's choice at a\n\
         fraction of the cost (12x in the paper)."
    );
}
