//! Figure 11: time-to-results ("simulation latency") for five execution
//! strategies across network sizes.
//!
//! Paper strategies, for N cores and S simulated seconds: (1) single full
//! simulation of S; (2) single MimicNet including training; (3) single
//! MimicNet reusing a model; (4) partitioned simulation — N full sims of
//! S/N each; (5) partitioned MimicNet — N compositions of S/N each. At
//! small sizes training overhead dominates; from ~64 clusters MimicNet
//! wins outright; at 128 clusters it is 2–3 orders of magnitude faster.

use mimicnet_bench::{header, pipeline_config, Scale};
use mimicnet::pipeline::Pipeline;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    header(
        "Figure 11",
        "simulation latency (s) for 5 strategies vs #clusters (lower is better)",
    );
    let cores = 4usize; // the paper uses its 20-core machines; we use 4
    println!(
        "{:>9} | {:>11} | {:>13} | {:>11} | {:>12} | {:>12}",
        "clusters", "single sim", "mimic+train", "single mimic", "part. sim", "part. mimic"
    );
    for clusters in scale.cluster_sweep() {
        // Train fresh to time the full train-included strategy.
        let mut pipe = Pipeline::new(pipeline_config(scale, 42));
        let t_train0 = Instant::now();
        let trained = pipe.train();
        let train_cost = t_train0.elapsed().as_secs_f64();

        // (1) single full simulation.
        let t0 = Instant::now();
        let (_, _m, _) = pipe.run_ground_truth(clusters);
        let single_sim = t0.elapsed().as_secs_f64();

        // (3) single MimicNet (reusing the model).
        let est = pipe.estimate(&trained, clusters);
        let single_mimic = est.wall.as_secs_f64();

        // (2) single MimicNet with training.
        let mimic_with_training = train_cost + single_mimic;

        // (4) partitioned simulation: N instances of S/N seconds run in
        // parallel on N cores -> latency = time of one S/N chunk.
        let mut chunk_cfg = pipe.cfg;
        chunk_cfg.base.duration_s /= cores as f64;
        let chunk_pipe = Pipeline::new(chunk_cfg);
        let t1 = Instant::now();
        let _ = chunk_pipe.run_ground_truth(clusters);
        let part_sim = t1.elapsed().as_secs_f64();

        // (5) partitioned MimicNet.
        let mut chunk_mimic_pipe = Pipeline::new(chunk_cfg);
        let est_chunk = chunk_mimic_pipe.estimate(&trained, clusters);
        let part_mimic = est_chunk.wall.as_secs_f64();

        println!(
            "{clusters:>9} | {single_sim:>11.3} | {mimic_with_training:>13.3} | {single_mimic:>11.3} | {part_sim:>12.3} | {part_mimic:>12.3}"
        );
    }
    println!(
        "\npaper shape: at small sizes 'mimic+train' exceeds 'single sim';\n\
         as size grows both mimic strategies drop far below both\n\
         simulation strategies (2-3 orders of magnitude at 128 clusters)."
    );
}
