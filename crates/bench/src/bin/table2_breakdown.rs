//! Table 2: running-time breakdown of the MimicNet workflow vs. full
//! simulation.
//!
//! Paper (128 clusters, 1024 hosts, 20 simulated seconds):
//!
//! | factor | time |
//! |---|---|
//! | small-scale simulation | 1h 3m |
//! | training + hyper-tuning | 7h 10m |
//! | large-scale simulation | 25m |
//! | **full simulation** | **1w 4d 22h 25m** |
//!
//! "Benefits of MimicNet increase with simulated time as the first two
//! values … are constant."

use mimicnet_bench::{header, pipeline_config, secs, Scale};
use mimicnet::pipeline::Pipeline;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let large = scale.large();
    header(
        "Table 2",
        "wall-clock breakdown of the workflow vs full simulation",
    );
    let mut pipe = Pipeline::new(pipeline_config(scale, 42));
    let trained = pipe.train();
    let est = pipe.estimate(&trained, large);
    let t0 = Instant::now();
    let _ = pipe.run_ground_truth(large);
    let full = t0.elapsed();

    println!("target: {large} clusters, {} hosts, {} simulated seconds\n", {
        let mut t = pipe.cfg.base.topo;
        t.clusters = large;
        t.num_hosts()
    }, pipe.cfg.base.duration_s);
    println!("{:<42} {:>10}", "factor", "time");
    println!("{:<42} {:>10}", "MimicNet: small-scale simulation", secs(pipe.timings.small_scale_sim));
    println!("{:<42} {:>10}", "MimicNet: training (ingress + egress)", secs(pipe.timings.training));
    println!("{:<42} {:>10}", "MimicNet: large-scale simulation", secs(est.wall));
    let total = pipe.timings.small_scale_sim + pipe.timings.training + est.wall;
    println!("{:<42} {:>10}", "MimicNet: total", secs(total));
    println!("{:<42} {:>10}", "Full simulation", secs(full));
    println!(
        "\nend-to-end speedup: {:.1}x (excluding training: {:.1}x)",
        full.as_secs_f64() / total.as_secs_f64().max(1e-9),
        full.as_secs_f64() / est.wall.as_secs_f64().max(1e-9)
    );
    println!(
        "\npaper shape: the one-time small-scale + training cost amortizes;\n\
         the recurring large-scale phase is a small fraction of the full\n\
         simulation (25m vs 1w4d22h at the paper's scale, a 34x total win)."
    );
}
