//! Figure 1: accuracy of FCT-distribution predictions vs. network size.
//!
//! Paper: "Accuracy for MimicNet's predictions of the FCT distribution for
//! a range of data center sizes … quantified via the Wasserstein distance
//! (W1) to the distribution observed in the original simulation. Lower is
//! better. Also shown are the accuracy of a flow-level simulator (SimGrid)
//! and the accuracy of assuming a small (2-cluster) simulation's results
//! are representative." MimicNet is reported 4.1× more accurate on
//! average; its W1 stays roughly flat while the baselines' W1 grows.

use dcn_sim::cdf::wasserstein1;
use dcn_sim::topology::FatTree;
use mimicnet_bench::{header, pipeline_config, Scale};
use mimicnet::pipeline::Pipeline;

fn main() {
    let scale = Scale::from_env();
    header(
        "Figure 1",
        "W1(FCT) to ground truth vs. #clusters: small-scale vs flow-level vs MimicNet",
    );

    let mut pipe = Pipeline::new(pipeline_config(scale, 42));
    let trained = pipe.train();
    // The small-scale hypothesis: 2-cluster results stand in for any size.
    let (small, _, _) = pipe.run_ground_truth(2);

    println!(
        "{:>9} | {:>13} | {:>13} | {:>13}",
        "clusters", "small-scale", "flow-level", "MimicNet"
    );
    let (mut sum_small, mut sum_flow, mut sum_mimic, mut n) = (0.0, 0.0, 0.0, 0);
    for clusters in scale.cluster_sweep() {
        let (truth, _, _) = pipe.run_ground_truth(clusters);

        // Flow-level baseline on the same workload.
        let mut fl_cfg = pipe.cfg.base;
        fl_cfg.topo.clusters = clusters;
        let fm = flow_sim::FlowSim::new(fl_cfg).run();
        let topo = FatTree::new(fl_cfg.topo);
        let flow_fct =
            fm.fct_samples(|f| topo.cluster_of(f.src) == Some(0) || topo.cluster_of(f.dst) == Some(0));

        let est = pipe.estimate(&trained, clusters);

        let w_small = wasserstein1(&truth.fct, &small.fct);
        let w_flow = wasserstein1(&truth.fct, &flow_fct);
        let w_mimic = wasserstein1(&truth.fct, &est.samples.fct);
        println!("{clusters:>9} | {w_small:>13.5} | {w_flow:>13.5} | {w_mimic:>13.5}");
        // The 2-cluster point is degenerate for the small-scale baseline
        // (it *is* the ground truth there); the paper's sweep starts at 4.
        if clusters > 2 {
            sum_small += w_small;
            sum_flow += w_flow;
            sum_mimic += w_mimic;
            n += 1;
        }
    }
    println!("------------------------------------------------------------------");
    println!(
        "{:>9} | {:>13.5} | {:>13.5} | {:>13.5}",
        "mean>2",
        sum_small / n as f64,
        sum_flow / n as f64,
        sum_mimic / n as f64
    );
    println!(
        "\npaper shape: MimicNet's W1 stays low/flat; baselines grow with size\n\
         (paper reports MimicNet 4.1x more accurate on average)."
    );
}
