//! Appendix H: model reuse and incremental retraining.
//!
//! Paper: "the models … can be safely reused to evaluate the network at
//! any scale … if any factor in the data and steps for generating the
//! models changes, the models should be updated … we would like to
//! explore techniques that can minimize the overhead of model retraining
//! … whether it is possible or how easily to transfer knowledge between
//! models and how MimicNet supports such incremental model updates."
//!
//! We measure exactly that: after a workload shift (70% → 90% load),
//! compare (a) reusing the stale model, (b) fine-tuning it briefly on new
//! data, and (c) training from scratch — on held-out loss and wall time.

use mimic_ml::train::{evaluate, TrainConfig};
use mimicnet_bench::{header, pipeline_config, Scale};
use mimicnet::datagen::{generate, DataGenConfig};
use mimicnet::internal_model::InternalModel;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    header(
        "Appendix H",
        "incremental model updates after a workload shift (70% -> 90% load)",
    );
    let base_cfg = pipeline_config(scale, 42);
    // Old workload data + model.
    let mut dg_old = DataGenConfig {
        sim: base_cfg.base,
        ..DataGenConfig::default()
    };
    dg_old.sim.duration_s *= 4.0;
    let old = generate(&dg_old);
    let tc_full = TrainConfig {
        epochs: scale.epochs() + 2,
        window: 8,
        ..TrainConfig::default()
    };
    let (old_model, _) =
        InternalModel::train_new(&old.egress, old.egress_disc, base_cfg.hidden, &tc_full)
            .expect("training data");

    // New workload (heavier).
    let mut dg_new = dg_old;
    dg_new.sim.traffic.load = 0.9;
    dg_new.sim.seed ^= 0xD1F7;
    let new = generate(&dg_new);
    let (train_new, test_new) = new.egress.split(0.8);

    let tc_short = TrainConfig {
        epochs: 2,
        window: 8,
        ..TrainConfig::default()
    };
    println!(
        "{:>26} | {:>13} | {:>11}",
        "strategy", "held-out loss", "update time"
    );

    // (a) reuse stale.
    let stale_loss = evaluate(&old_model.model, &test_new, &tc_short);
    println!("{:>26} | {stale_loss:>13.5} | {:>11}", "reuse stale model", "0.00s");

    // (b) fine-tune 2 epochs.
    let mut tuned = old_model.clone();
    let t0 = Instant::now();
    tuned.fine_tune(&train_new, &tc_short).expect("training data");
    let tune_wall = t0.elapsed().as_secs_f64();
    let tuned_loss = evaluate(&tuned.model, &test_new, &tc_short);
    println!(
        "{:>26} | {tuned_loss:>13.5} | {tune_wall:>10.2}s",
        "fine-tune (2 epochs)"
    );

    // (c) scratch, same short budget.
    let t1 = Instant::now();
    let (scratch_short, _) =
        InternalModel::train_new(&train_new, new.egress_disc, base_cfg.hidden, &tc_short)
            .expect("training data");
    let scratch_short_wall = t1.elapsed().as_secs_f64();
    let scratch_short_loss = evaluate(&scratch_short.model, &test_new, &tc_short);
    println!(
        "{:>26} | {scratch_short_loss:>13.5} | {scratch_short_wall:>10.2}s",
        "scratch (2 epochs)"
    );

    // (d) scratch, full budget.
    let t2 = Instant::now();
    let (scratch_full, _) =
        InternalModel::train_new(&train_new, new.egress_disc, base_cfg.hidden, &tc_full)
            .expect("training data");
    let scratch_full_wall = t2.elapsed().as_secs_f64();
    let scratch_full_loss = evaluate(&scratch_full.model, &test_new, &tc_short);
    println!(
        "{:>26} | {scratch_full_loss:>13.5} | {scratch_full_wall:>10.2}s",
        format!("scratch ({} epochs)", tc_full.epochs)
    );

    println!(
        "\nexpected: fine-tuning closes most of the stale-model gap at a\n\
         fraction of the from-scratch budget — the knowledge-transfer\n\
         opportunity Appendix H calls out."
    );
}
