//! Figures 21 & 22 (Appendix F): simulation latency and throughput vs.
//! simulation length.
//!
//! Paper: "the relative simulation speeds of different approaches barely
//! change with the simulation length … the latency of full simulations
//! increases slightly slower than that of MimicNet because the constant
//! setup overhead in full simulations is significantly higher … the
//! simulation throughput does not change at all with the simulation
//! length."

use mimicnet_bench::{header, pipeline_config, Scale};
use mimicnet::pipeline::Pipeline;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let n = scale.large();
    header(
        "Figures 21/22",
        "latency and throughput vs simulated length, full sim vs MimicNet",
    );
    let lengths: Vec<f64> = match scale {
        Scale::Quick => vec![0.2, 0.4, 0.8],
        Scale::Full => vec![0.5, 1.0, 2.0],
    };
    // Train once (model reuse across lengths, as the paper notes).
    let mut pipe = Pipeline::new(pipeline_config(scale, 42));
    let trained = pipe.train();
    println!(
        "{:>9} | {:>12} {:>12} | {:>14} {:>14}",
        "sim secs", "full lat(s)", "mimic lat(s)", "full tput", "mimic tput"
    );
    for s in lengths {
        pipe.cfg.base.duration_s = s;
        let t0 = Instant::now();
        let _ = pipe.run_ground_truth(n);
        let full = t0.elapsed().as_secs_f64();
        let est = pipe.estimate(&trained, n);
        let mimic = est.wall.as_secs_f64();
        println!(
            "{s:>9.2} | {full:>12.3} {mimic:>12.3} | {:>14.4} {:>14.4}",
            s / full,
            s / mimic
        );
    }
    println!(
        "\npaper shape: latency scales ~linearly with length for both; the\n\
         throughput columns stay ~constant per approach, with MimicNet's\n\
         well above the full simulation's."
    );
}
