//! Figure 20 (Appendix E): accuracy under heavier network load.
//!
//! Paper: at 90% aggregate load and 32 clusters "MimicNet provides high
//! accuracy in approximating the ground truth: the overall W1 score is low
//! at 0.15[4], and the shape is maintained. MimicNet completes the
//! execution 10.4x faster than the full simulation."

use dcn_sim::cdf::wasserstein1;
use mimicnet_bench::{header, pipeline_config, q, Scale};
use mimicnet::pipeline::Pipeline;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let large = scale.large();
    header(
        "Figure 20",
        "FCT accuracy at 90% load (heavy aggregation-network pressure)",
    );
    let mut cfg = pipeline_config(scale, 23);
    cfg.base.traffic.load = 0.9;
    let mut pipe = Pipeline::new(cfg);
    let trained = pipe.train();
    let t0 = Instant::now();
    let (truth, _, _) = pipe.run_ground_truth(large);
    let truth_wall = t0.elapsed().as_secs_f64();
    let est = pipe.estimate(&trained, large);

    let tq = q(&truth.fct);
    let mq = q(&est.samples.fct);
    println!("{large} clusters at 90% load:");
    println!("{:>14} | {:>9} {:>9} {:>9} {:>9}", "source", "p10", "p50", "p90", "p99");
    println!("{:>14} | {:>9.4} {:>9.4} {:>9.4} {:>9.4}", "ground truth", tq[0], tq[1], tq[2], tq[3]);
    println!("{:>14} | {:>9.4} {:>9.4} {:>9.4} {:>9.4}", "MimicNet", mq[0], mq[1], mq[2], mq[3]);
    let w1 = wasserstein1(&truth.fct, &est.samples.fct);
    let mean = dcn_sim::stats::mean(&truth.fct);
    println!(
        "\nW1(FCT) = {w1:.4}  (truth mean FCT {mean:.4}; normalized {:.2})",
        w1 / mean.max(1e-12)
    );
    println!(
        "wall: truth {truth_wall:.2}s vs mimic {:.2}s ({:.1}x faster)",
        est.wall.as_secs_f64(),
        truth_wall / est.wall.as_secs_f64().max(1e-9)
    );
    println!("\npaper shape: low W1 with the CDF shape maintained, and ~10x speedup.");
}
