//! Figure 12: aggregate simulation throughput (simulated seconds per wall
//! second) for five strategies.
//!
//! Paper: single full simulation slows ~5 orders below real time at 128
//! clusters; N parallel instances multiply throughput ×N but a single
//! MimicNet instance overtakes even that from 32 clusters because the
//! amount of observable traffic is roughly constant in network size.

use mimicnet_bench::{header, pipeline_config, Scale};
use mimicnet::pipeline::Pipeline;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    header(
        "Figure 12",
        "simulation throughput (sim-seconds/second) for 5 strategies vs #clusters",
    );
    let cores = 4usize;
    println!(
        "{:>9} | {:>11} | {:>13} | {:>12} | {:>13} | {:>14}",
        "clusters", "single sim", "mimic+train", "single mimic", "parallel sim", "parallel mimic"
    );
    for clusters in scale.cluster_sweep() {
        let mut pipe = Pipeline::new(pipeline_config(scale, 42));
        let t_train0 = Instant::now();
        let trained = pipe.train();
        let train_cost = t_train0.elapsed().as_secs_f64();
        let sim_secs = pipe.cfg.base.duration_s;

        let t0 = Instant::now();
        let _ = pipe.run_ground_truth(clusters);
        let single_sim_wall = t0.elapsed().as_secs_f64();

        let est = pipe.estimate(&trained, clusters);
        let single_mimic_wall = est.wall.as_secs_f64();

        let tput_single_sim = sim_secs / single_sim_wall;
        let tput_mimic_train = sim_secs / (train_cost + single_mimic_wall);
        let tput_single_mimic = sim_secs / single_mimic_wall;
        // Parallel strategies: N instances each simulating S seconds run
        // concurrently on N cores — aggregate throughput is N x single
        // (the paper's observation; we model perfect core scaling).
        let tput_parallel_sim = tput_single_sim * cores as f64;
        let tput_parallel_mimic = tput_single_mimic * cores as f64;

        println!(
            "{clusters:>9} | {tput_single_sim:>11.3} | {tput_mimic_train:>13.3} | {tput_single_mimic:>12.3} | {tput_parallel_sim:>13.3} | {tput_parallel_mimic:>14.3}"
        );
    }
    println!(
        "\npaper shape: mimic throughput is roughly flat in network size\n\
         (observable traffic is constant); full-sim throughput collapses,\n\
         and a single mimic eventually overtakes even N parallel sims."
    );
}
