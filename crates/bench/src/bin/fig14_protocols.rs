//! Figure 14: comparing transport protocols — FCT distributions of Homa,
//! DCTCP, TCP Vegas, and TCP Westwood, ground truth vs. MimicNet.
//!
//! Paper: "for all protocols, MimicNet can match the FCT of the
//! full-fidelity simulation closely … the approximated 90-pct and 99-pct
//! tails by MimicNet are within 5% of the ground truth" and the protocol
//! ranking is preserved (Homa best 90-pct FCT, Vegas worst), 12× faster.

use dcn_sim::cdf::wasserstein1;
use dcn_transport::Protocol;
use mimicnet_bench::{header, pipeline_config, q, Scale};
use mimicnet::pipeline::Pipeline;

fn main() {
    let scale = Scale::from_env();
    let large = scale.large();
    header(
        "Figure 14",
        "FCT distributions per protocol: ground truth vs MimicNet composition",
    );
    println!(
        "{:>14} | {:>7} | {:>9} {:>9} {:>9} | {:>9}",
        "protocol", "source", "p50", "p90", "p99", "W1"
    );
    let mut rank_truth: Vec<(String, f64)> = Vec::new();
    let mut rank_mimic: Vec<(String, f64)> = Vec::new();
    for p in [
        Protocol::Homa,
        Protocol::Dctcp { k: 20 },
        Protocol::Vegas,
        Protocol::Westwood,
    ] {
        let mut cfg = pipeline_config(scale, 11);
        cfg.protocol = p;
        let mut pipe = Pipeline::new(cfg);
        let trained = pipe.train();
        let (truth, _, _) = pipe.run_ground_truth(large);
        let est = pipe.estimate(&trained, large);
        let tq = q(&truth.fct);
        let mq = q(&est.samples.fct);
        let w1 = wasserstein1(&truth.fct, &est.samples.fct);
        println!(
            "{:>14} | {:>7} | {:>9.4} {:>9.4} {:>9.4} |",
            p.name(),
            "truth",
            tq[1],
            tq[2],
            tq[3]
        );
        println!(
            "{:>14} | {:>7} | {:>9.4} {:>9.4} {:>9.4} | {w1:>9.5}",
            "", "mimic", mq[1], mq[2], mq[3]
        );
        rank_truth.push((p.name().to_string(), tq[2]));
        rank_mimic.push((p.name().to_string(), mq[2]));
    }
    let order = |mut v: Vec<(String, f64)>| {
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        v.into_iter().map(|(n, _)| n).collect::<Vec<_>>()
    };
    println!("\np90 ranking truth: {:?}", order(rank_truth));
    println!("p90 ranking mimic: {:?}", order(rank_mimic));
    println!(
        "\npaper shape: per-protocol CDFs match closely (tails within ~5%),\n\
         and the relative protocol ordering is preserved."
    );
}
