//! Appendix A stress test: violating the failure-free FatTree assumption.
//!
//! Paper §4.2 restricts MimicNet to "Failure-free FatTrees"; Appendix A
//! speculates that failures "could likely be modelled" but leaves it to
//! future work. This experiment quantifies the cost of the assumption and
//! exercises the robustness layer built on top of it:
//!
//! 1. A Mimic trained on a healthy network is composed against ground
//!    truths running the *same* seeded [`FaultPlan`] (gray loss across the
//!    fabric) at increasing severity.
//! 2. Each Mimic's drift monitor scores its live ingress features against
//!    the training envelope. A healthy shakedown run calibrates the
//!    per-cluster baseline (even a healthy large composition sits slightly
//!    off the small-scale training distribution); the reported *excess*
//!    drift should be zero when healthy and grow with the injected loss.
//! 3. At the highest severity, a [`DegradationPolicy`] carrying that
//!    baseline swaps drifted clusters back to packet-level simulation; the
//!    degraded estimate should recover most of the accuracy gap.
//!
//! The composition is kept modest (every Mimic must see enough boundary
//! traffic for its monitor to report) — the point here is robustness
//! behaviour, not scale.

use dcn_sim::cdf::wasserstein1;
use dcn_sim::fault::FaultPlan;
use dcn_sim::time::SimTime;
use mimicnet::degrade::DegradationPolicy;
use mimicnet::pipeline::Pipeline;
use mimicnet_bench::{header, pipeline_config, Scale};

/// Excess drift of each Mimic cluster over the healthy baseline.
fn excess(drift: &[Option<f64>], baseline: &[f64]) -> Vec<f64> {
    drift
        .iter()
        .enumerate()
        .map(|(c, d)| (d.unwrap_or(0.0) - baseline.get(c).copied().unwrap_or(0.0)).max(0.0))
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let n = match scale {
        Scale::Quick => 4,
        Scale::Full => 8,
    };
    header(
        "Appendix A stress",
        "failure-free-trained Mimics vs seeded fault plans: drift + degradation",
    );
    let cfg = pipeline_config(scale, 42);
    let duration = cfg.base.duration_s;
    let mut pipe = Pipeline::new(cfg);
    let trained = pipe.train(); // trained on a healthy network

    // Gray loss across the whole fabric for the middle 80% of the run.
    let plan_at = |loss: f64| {
        FaultPlan::new(7).gray_loss_all(
            SimTime::from_secs_f64(0.1 * duration),
            SimTime::from_secs_f64(0.9 * duration),
            loss,
            true,
        )
    };
    let losses = [0.0, 0.01, 0.05, 0.1];

    // Healthy shakedown: per-cluster baseline drift (the scale shift).
    let probe = pipe
        .try_estimate(&trained, n, None)
        .expect("healthy probe runs");
    let baseline: Vec<f64> = probe
        .metrics
        .cluster_drift
        .iter()
        .map(|d| d.unwrap_or(0.0))
        .collect();

    println!(
        "{:>8} | {:>11} | {:>12} | {:>11} | {:>13}",
        "loss", "truth drops", "drift excess", "W1(FCT)", "norm. W1(FCT)"
    );
    let mut excesses = Vec::new();
    let mut last = None;
    for loss in losses {
        let plan = plan_at(loss);
        let faults = (loss > 0.0).then_some(&plan);
        let (truth, tm, _) = pipe
            .run_ground_truth_with_faults(n, faults)
            .expect("ground truth runs");
        let est = pipe
            .try_estimate(&trained, n, faults)
            .expect("estimate runs");
        let e = excess(&est.metrics.cluster_drift, &baseline);
        let worst = e.iter().cloned().fold(0.0f64, f64::max);
        let w1 = wasserstein1(&truth.fct, &est.samples.fct);
        let mean = dcn_sim::stats::mean(&truth.fct).max(1e-12);
        println!(
            "{loss:>8.3} | {:>11} | {worst:>12.4} | {w1:>11.5} | {:>13.3}",
            tm.fault_drops,
            w1 / mean
        );
        excesses.push(worst);
        last = Some((plan, truth, w1, mean));
    }

    // Degradation at the highest severity. Per-cluster fallback triggers
    // at a fifth of the worst observed excess; on top of that, excess at
    // half the worst level on *any* cluster is treated as a network-wide
    // event (which a fabric-wide gray failure is) and reverts the whole
    // composition to packet level — including clusters whose monitors saw
    // too little traffic to report.
    let (plan, truth, w1_mimic, mean) = last.expect("at least one loss level");
    let worst_excess = excesses.iter().cloned().fold(0.0f64, f64::max).max(1e-9);
    let policy = DegradationPolicy {
        annotate_above: 0.05 * worst_excess,
        widen_above: 0.10 * worst_excess,
        fallback_above: 0.20 * worst_excess,
        max_fallbacks: n as usize,
        global_fallback_above: 0.50 * worst_excess,
        baseline,
    };
    let degraded = pipe
        .estimate_with_policy(&trained, n, Some(&plan), &policy)
        .expect("degraded estimate runs");
    let decision = degraded.degradation.as_ref().expect("policy evaluated");
    let w1_deg = wasserstein1(&truth.fct, &degraded.samples.fct);
    let recovered = if w1_mimic > 1e-12 {
        (w1_mimic - w1_deg) / w1_mimic
    } else {
        1.0
    };
    let fell_back = decision
        .fallback_clusters()
        .iter()
        .filter(|&&c| c != mimicnet::compose::OBSERVABLE)
        .count();
    println!(
        "\ndegradation at loss {:.3}: {} of {} Mimic clusters fell back",
        losses[losses.len() - 1],
        fell_back,
        n - 1
    );
    println!(
        "  W1(FCT) {w1_mimic:.5} -> {w1_deg:.5} (normalized {:.3} -> {:.3}), gap recovered: {:.0}%",
        w1_mimic / mean,
        w1_deg / mean,
        100.0 * recovered
    );
    println!(
        "  uncertainty factor: {:.2}",
        degraded.uncertainty_factor()
    );
    println!(
        "\nexpected: zero excess drift and near-baseline accuracy when healthy;\n\
         excess drift growing with injected loss (the quantitative form of the\n\
         paper's failure-free restriction); fallback recovering at least half\n\
         of the accuracy gap at the highest severity."
    );
}
