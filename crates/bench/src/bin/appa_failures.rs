//! Appendix A stress test: violating the failure-free FatTree assumption.
//!
//! Paper §4.2 restricts MimicNet to "Failure-free FatTrees"; Appendix A
//! speculates that failures "could likely be modelled" but leaves it to
//! future work. This experiment quantifies the cost of the assumption:
//! a Mimic trained on a healthy network is composed against ground truths
//! with increasing injected link-loss rates. Accuracy should degrade
//! gracefully at tiny loss rates and visibly at gray-failure levels.

use dcn_sim::cdf::wasserstein1;
use dcn_sim::topology::FatTree;
use mimicnet_bench::{header, pipeline_config, Scale};
use mimicnet::compose::compose;
use mimicnet::metrics::observed;
use mimicnet::pipeline::Pipeline;

fn main() {
    let scale = Scale::from_env();
    let n = scale.large();
    header(
        "Appendix A stress",
        "accuracy of a failure-free-trained Mimic vs ground truths with link faults",
    );
    let cfg = pipeline_config(scale, 42);
    let mut pipe = Pipeline::new(cfg);
    let trained = pipe.train(); // trained on loss_prob = 0

    println!(
        "{:>10} | {:>12} | {:>11} | {:>13}",
        "loss rate", "truth drops", "W1(FCT)", "norm. W1(FCT)"
    );
    for loss in [0.0, 0.001, 0.005, 0.02] {
        // Ground truth with faults.
        let mut truth_cfg = cfg.base;
        truth_cfg.topo.clusters = n;
        truth_cfg.link.loss_prob = loss;
        truth_cfg.queue = cfg.protocol.queue_setup(truth_cfg.queue);
        let mut truth_sim = dcn_sim::simulator::Simulation::with_transport(
            truth_cfg,
            cfg.protocol.factory(),
        );
        let tm = truth_sim.run();
        let topo = FatTree::new(truth_cfg.topo);
        let truth = observed(&tm, &topo, 0);

        // The Mimic composition: the observable cluster and core links
        // share the fault model, but the Mimics (trained healthy) cannot
        // reproduce faults inside remote clusters.
        let mut mimic_base = cfg.base;
        mimic_base.link.loss_prob = loss;
        let mm = compose(mimic_base, n, cfg.protocol, &trained).run();
        let est = observed(&mm, &topo, 0);

        let w1 = wasserstein1(&truth.fct, &est.fct);
        let mean = dcn_sim::stats::mean(&truth.fct).max(1e-12);
        println!(
            "{loss:>10.3} | {:>12} | {w1:>11.5} | {:>13.3}",
            tm.fault_drops,
            w1 / mean
        );
    }
    println!(
        "\nexpected: near-baseline accuracy at negligible loss; growing\n\
         normalized W1 as failures violate the training distribution —\n\
         the quantitative form of the paper's failure-free restriction."
    );
}
