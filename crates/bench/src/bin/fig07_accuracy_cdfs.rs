//! Figure 7: FCT / throughput / RTT distributions — ground truth vs.
//! MimicNet vs. flow-level vs. the small-scale hypothesis, at 2 clusters
//! and at the largest affordable size.
//!
//! Paper: at 2 clusters MimicNet's CDFs "adhere closely to the ground
//! truth"; at 128 clusters the W1s are 0.113 (FCT), 7561 (throughput),
//! 0.00158 (RTT), with small-scale and SimGrid errors 311%/457%/70%
//! higher; the p99s of FCT/throughput/RTT land within 1.8%/3.3%/2%.

use dcn_sim::cdf::wasserstein1;
use dcn_sim::topology::FatTree;
use mimicnet_bench::{header, pipeline_config, q, Scale};
use mimicnet::pipeline::Pipeline;

fn print_q(label: &str, xs: &[f64], w1: Option<f64>) {
    let v = q(xs);
    match w1 {
        Some(w) => println!(
            "  {label:<14} p10 {:>9.4}  p50 {:>9.4}  p90 {:>9.4}  p99 {:>9.4}  (W1 {w:.5})",
            v[0], v[1], v[2], v[3]
        ),
        None => println!(
            "  {label:<14} p10 {:>9.4}  p50 {:>9.4}  p90 {:>9.4}  p99 {:>9.4}",
            v[0], v[1], v[2], v[3]
        ),
    }
}

fn main() {
    let scale = Scale::from_env();
    header(
        "Figure 7",
        "FCT / throughput / RTT distributions: truth vs MimicNet vs flow-level vs small-scale",
    );

    let mut pipe = Pipeline::new(pipeline_config(scale, 42));
    let trained = pipe.train();
    let (small, _, _) = pipe.run_ground_truth(2);

    for clusters in [2u32, scale.large()] {
        let (truth, _, _) = pipe.run_ground_truth(clusters);
        let est = pipe.estimate(&trained, clusters);
        let mut fl_cfg = pipe.cfg.base;
        fl_cfg.topo.clusters = clusters;
        let fm = flow_sim::FlowSim::new(fl_cfg).run();
        let topo = FatTree::new(fl_cfg.topo);
        let fl_fct = fm
            .fct_samples(|f| topo.cluster_of(f.src) == Some(0) || topo.cluster_of(f.dst) == Some(0));
        let fl_tput = fm.throughput_samples(|h| topo.cluster_of(h) == Some(0));

        println!("\n================ {clusters} clusters ================");
        println!("FCT (s):");
        print_q("ground truth", &truth.fct, None);
        print_q("MimicNet", &est.samples.fct, Some(wasserstein1(&truth.fct, &est.samples.fct)));
        print_q("flow-level", &fl_fct, Some(wasserstein1(&truth.fct, &fl_fct)));
        if clusters != 2 {
            print_q("small-scale", &small.fct, Some(wasserstein1(&truth.fct, &small.fct)));
        }
        println!("Throughput (B/s):");
        print_q("ground truth", &truth.throughput, None);
        print_q(
            "MimicNet",
            &est.samples.throughput,
            Some(wasserstein1(&truth.throughput, &est.samples.throughput)),
        );
        print_q(
            "flow-level",
            &fl_tput,
            Some(wasserstein1(&truth.throughput, &fl_tput)),
        );
        if clusters != 2 {
            print_q(
                "small-scale",
                &small.throughput,
                Some(wasserstein1(&truth.throughput, &small.throughput)),
            );
        }
        println!("RTT (s): [flow-level cannot produce RTTs — as in the paper]");
        print_q("ground truth", &truth.rtt, None);
        print_q(
            "MimicNet",
            &est.samples.rtt,
            Some(wasserstein1(&truth.rtt, &est.samples.rtt)),
        );
        if clusters != 2 {
            print_q(
                "small-scale",
                &small.rtt,
                Some(wasserstein1(&truth.rtt, &small.rtt)),
            );
        }
    }
    println!(
        "\npaper shape: MimicNet hugs the truth CDFs at both sizes and keeps\n\
         tail (p99) errors within a few percent; baselines drift with scale."
    );
}
