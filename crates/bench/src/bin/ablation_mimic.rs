//! Ablations of MimicNet's design choices (DESIGN.md §3).
//!
//! The paper motivates several choices without always isolating them:
//! the congestion-state feature augmentation (§5.5), the ingress/egress
//! decomposition (§5.5), and generative (sampled) drop decisions
//! (Figure 5 reads off realized rates). This binary measures each
//! variant's end-to-end W1(FCT)/W1(RTT) against ground truth.

use dcn_sim::cdf::wasserstein1;
use mimic_ml::train::TrainConfig;
use mimicnet_bench::{header, pipeline_config, Scale};
use mimicnet::compose::compose;
use mimicnet::datagen::{generate, DataGenConfig};
use mimicnet::internal_model::InternalModel;
use mimicnet::metrics::observed;
use mimicnet::mimic::{DecisionMode, LearnedMimic, TrainedMimic};
use mimicnet::pipeline::Pipeline;

fn train_bundle(dg: &DataGenConfig, tc: &TrainConfig, hidden: usize, unified: bool) -> TrainedMimic {
    let td = generate(dg);
    if unified {
        // One model for both directions, trained on the concatenated
        // traces (the alternative §5.5 rejects).
        let mut combined = td.ingress.clone();
        for (f, t) in td.egress.features.iter().zip(&td.egress.targets) {
            combined.push(f.clone(), *t);
        }
        let disc = td.ingress_disc; // shared latency range approximation
        let (m, _) = InternalModel::train_new(&combined, disc, hidden, tc).expect("training data");
        TrainedMimic {
            ingress: m.clone(),
            egress: m,
            feature_cfg: td.feature_cfg,
            envelope: mimicnet::drift::FeatureEnvelope::fit(&td.ingress.features),
            feeder: td.feeder,
        }
    } else {
        let (ing, _) =
            InternalModel::train_new(&td.ingress, td.ingress_disc, hidden, tc).expect("training data");
        let (eg, _) =
            InternalModel::train_new(&td.egress, td.egress_disc, hidden, tc).expect("training data");
        TrainedMimic {
            ingress: ing,
            egress: eg,
            feature_cfg: td.feature_cfg,
            envelope: mimicnet::drift::FeatureEnvelope::fit(&td.ingress.features),
            feeder: td.feeder,
        }
    }
}

fn main() {
    let scale = Scale::from_env();
    let n = scale.large();
    header(
        "Ablations",
        "end-to-end accuracy of design-choice variants (vs ground truth)",
    );
    let cfg = pipeline_config(scale, 42);
    let pipe = Pipeline::new(cfg);
    let (truth, _, _) = pipe.run_ground_truth(n);

    let mut dg_sim = cfg.base;
    dg_sim.duration_s *= 4.0;
    let base_dg = DataGenConfig {
        sim: dg_sim,
        protocol: cfg.protocol,
        ..DataGenConfig::default()
    };

    println!(
        "{:>26} | {:>11} | {:>11} | {:>13}",
        "variant", "W1(FCT)", "W1(RTT)", "W1(tput)"
    );
    let variants: Vec<(&str, DataGenConfig, bool, DecisionMode)> = vec![
        ("full (paper design)", base_dg, false, DecisionMode::Sample),
        (
            "no congestion feature",
            DataGenConfig {
                congestion_feature: false,
                ..base_dg
            },
            false,
            DecisionMode::Sample,
        ),
        ("unified direction model", base_dg, true, DecisionMode::Sample),
        ("threshold drops", base_dg, false, DecisionMode::Threshold),
    ];
    for (name, dg, unified, mode) in variants {
        let trained = train_bundle(&dg, &cfg.train, cfg.hidden, unified);
        // Compose manually so the decision mode can be set.
        let mut sim_cfg = cfg.base;
        sim_cfg.topo.clusters = n;
        let mut sim = dcn_sim::simulator::Simulation::with_transport(
            sim_cfg,
            cfg.protocol.factory(),
        );
        for c in 1..n {
            let mimic = LearnedMimic::new(
                trained.clone(),
                sim_cfg.topo,
                n,
                sim_cfg.seed ^ (0xAB1A_0000 + c as u64),
            )
            .with_mode(mode);
            sim.set_cluster_model(c, Box::new(mimic));
        }
        let m = sim.run();
        let topo = dcn_sim::topology::FatTree::new(sim_cfg.topo);
        let obs = observed(&m, &topo, 0);
        println!(
            "{name:>26} | {:>11.5} | {:>11.6} | {:>13.0}",
            wasserstein1(&truth.fct, &obs.fct),
            wasserstein1(&truth.rtt, &obs.rtt),
            wasserstein1(&truth.throughput, &obs.throughput),
        );
    }
    // Sanity anchor: compose() (the default path) matches the "full" row.
    let trained = train_bundle(&base_dg, &cfg.train, cfg.hidden, false);
    let m = compose(cfg.base, n, cfg.protocol, &trained).run();
    let topo = dcn_sim::topology::FatTree::new({
        let mut t = cfg.base.topo;
        t.clusters = n;
        t
    });
    let obs = observed(&m, &topo, 0);
    println!(
        "{:>26} | {:>11.5} | {:>11.6} | {:>13.0}",
        "(compose() default)",
        wasserstein1(&truth.fct, &obs.fct),
        wasserstein1(&truth.rtt, &obs.rtt),
        wasserstein1(&truth.throughput, &obs.throughput),
    );
    println!(
        "\nexpected: the full design is at least as accurate as each ablation\n\
         (congestion features help tails; per-direction models beat unified;\n\
         sampled drops track realized loss rates better than thresholding)."
    );
}
