//! CI observability smoke test (DESIGN.md §9, ISSUE PR 4).
//!
//! Runs the full observed workflow at quick scale — data generation,
//! ingress/egress training, then a *traced* composed PDES run — and
//! validates the exported artifacts end to end:
//!
//! * the JSON snapshot parses and carries the expected counters,
//!   histograms and per-epoch training series;
//! * the Chrome trace-event file parses as an event array naming the
//!   engine and pipeline spans;
//! * span coverage of the traced wall extent is >= 95% (the acceptance
//!   bar for the observability layer).
//!
//! Any violated check prints `FAIL: ...` and exits nonzero, so the CI
//! perf-smoke job can gate on it directly. Artifact paths default to
//! `obs_trace.json` / `obs_snapshot.json` in the working directory and
//! can be overridden with `TRACE_OUT` / `SNAP_OUT`.

use mimicnet::compose::run_composed_partitioned_obs;
use mimicnet::pipeline::{Pipeline, PipelineConfig};

fn check(cond: bool, what: &str) {
    if cond {
        println!("ok   {what}");
    } else {
        eprintln!("FAIL {what}");
        std::process::exit(1);
    }
}

fn main() {
    mimicnet_bench::header("obs smoke", "traced composed run + snapshot/trace validation");

    let mut cfg = PipelineConfig::default();
    cfg.base.duration_s = 0.3;
    cfg.base.seed = 12;
    cfg.hidden = 8;
    cfg.train.epochs = 2;
    cfg.train.window = 4;
    let protocol = cfg.protocol;
    let base = cfg.base;

    let mut pipe = Pipeline::new(cfg).with_obs();
    let trained = pipe.train();

    // Traced composed PDES run; its merged engine report is stitched into
    // the pipeline recorder alongside the training telemetry.
    pipe.obs.begin("pipeline.estimate", "pipeline", None);
    let mut metrics = run_composed_partitioned_obs(base, 4, protocol, &trained, 2, true)
        .expect("valid composition");
    pipe.obs.end(None);
    let engine_report = metrics.obs.take().expect("traced run carries a report");
    pipe.obs.merge_report(*engine_report);

    let report = pipe.obs.take_report().expect("obs was on");

    // --- structural checks on the in-memory report -------------------
    check(report.counter("sim.events.total") == metrics.events_processed, "sim.events.total matches events_processed");
    check(report.counter("sim.windows") > 0, "sim.windows > 0");
    check(report.counter("pdes.partitions") == 2, "pdes.partitions == 2");
    check(report.counter("mimic.flush.count") > 0, "mimic.flush.count > 0");
    check(
        report.hists.get("mimic.flush.batch_size").map_or(0, |h| h.count) > 0,
        "mimic.flush.batch_size histogram populated",
    );
    check(
        report.series.get("train.ingress.epoch_loss").map_or(0, |s| s.len()) == 2,
        "train.ingress.epoch_loss has one entry per epoch",
    );
    for span in ["pipeline.datagen", "pipeline.train.ingress", "pipeline.train.egress", "pipeline.estimate", "sim.window", "pdes.lp"] {
        check(report.spans.iter().any(|s| s.name == span), &format!("span {span} present"));
    }
    let coverage = report.span_coverage();
    check(coverage >= 0.95, &format!("span coverage {coverage:.3} >= 0.95"));

    // --- exported artifacts ------------------------------------------
    let trace_path = std::env::var("TRACE_OUT").unwrap_or_else(|_| "obs_trace.json".into());
    let snap_path = std::env::var("SNAP_OUT").unwrap_or_else(|_| "obs_snapshot.json".into());
    dcn_sim::snapshot::atomic_write(trace_path.as_ref(), report.to_chrome_trace().as_bytes())
        .expect("write trace");
    dcn_sim::snapshot::atomic_write(snap_path.as_ref(), report.to_json_string().as_bytes())
        .expect("write snapshot");

    let snap_text = std::fs::read_to_string(&snap_path).expect("read snapshot back");
    let snap: Result<serde_json::Value, _> = serde_json::from_str(&snap_text);
    let snap = match snap {
        Ok(v) => v,
        Err(e) => {
            eprintln!("FAIL snapshot JSON does not parse: {e:?}");
            std::process::exit(1);
        }
    };
    let top = snap.as_object();
    check(top.is_some(), "snapshot is a JSON object");
    let top = top.unwrap();
    for section in ["counters", "gauges", "hists", "series", "spans"] {
        check(top.iter().any(|(k, _)| k == section), &format!("snapshot has `{section}` section"));
    }

    let trace_text = std::fs::read_to_string(&trace_path).expect("read trace back");
    let trace: Result<serde_json::Value, _> = serde_json::from_str(&trace_text);
    let trace = match trace {
        Ok(v) => v,
        Err(e) => {
            eprintln!("FAIL chrome trace does not parse: {e:?}");
            std::process::exit(1);
        }
    };
    let events = trace.as_array();
    check(events.is_some(), "chrome trace is a JSON array");
    let events = events.unwrap();
    check(!events.is_empty(), "chrome trace has events");
    check(
        events.iter().any(|e| {
            e.as_object()
                .and_then(|o| o.iter().find(|(k, _)| k == "name"))
                .map(|(_, v)| v.as_str() == Some("pdes.lp"))
                == Some(true)
        }),
        "chrome trace names the pdes.lp span",
    );

    println!("obs smoke passed — trace: {trace_path}, snapshot: {snap_path}");
    println!("  spans: {}, coverage: {:.1}%", report.spans.len(), coverage * 100.0);
}
