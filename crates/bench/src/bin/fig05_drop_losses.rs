//! Figure 5: drop prediction under BCE vs. weighted BCE.
//!
//! Paper: "Ground truth and LSTM-predicted drops for a one-second test set
//! using different loss functions. … Ground truth has 0.3% drop rate and
//! BCE loss has 0.01%. WBCE results in more realistic drop rates depending
//! on the weight (w=0.6: 0.14%; w=0.9: 0.49%)." Plain BCE learns "never
//! drop" because of class imbalance; the positive-class weight restores
//! realistic rates (and overshoots when set too high).

use dcn_sim::rng::SplitMix64;
use mimic_ml::loss::{sigmoid, ClsLoss};
use mimic_ml::model::OUT_DROP;
use mimic_ml::train::TrainConfig;
use mimicnet_bench::{header, pipeline_config, Scale};
use mimicnet::datagen::{generate, DataGenConfig};
use mimicnet::internal_model::InternalModel;

fn main() {
    let scale = Scale::from_env();
    header(
        "Figure 5",
        "predicted drop rates under BCE vs WBCE(0.6) vs WBCE(0.9)",
    );

    // One shared trace with meaningful (but rare) drops: raise the load
    // and shrink buffers a little.
    let mut dg = DataGenConfig {
        sim: pipeline_config(scale, 77).base,
        ..DataGenConfig::default()
    };
    // Stress the cluster enough that the trace carries real (but rare)
    // drops, like the paper's 0.3%-drop-rate example trace.
    dg.sim.traffic.load = 1.1;
    dg.sim.queue.capacity_bytes = 15_000;
    dg.sim.traffic.inter_cluster_fraction = 0.7;
    dg.sim.duration_s = scale.duration_s() * 6.0;
    let td = generate(&dg);
    let (train_set, test_set) = td.egress.split(0.7);
    let truth_rate = test_set.drop_rate();
    println!("trace: {} egress packets, ground-truth drop rate {:.3}%", td.egress.len(), truth_rate * 100.0);
    println!("{:>12} | {:>17} | {:>14}", "loss", "pred drop rate", "rate ratio");

    for (name, loss) in [
        ("BCE", ClsLoss::Bce),
        ("WBCE w=0.6", ClsLoss::Wbce { w: 0.6 }),
        ("WBCE w=0.9", ClsLoss::Wbce { w: 0.9 }),
    ] {
        let mut tc = TrainConfig {
            epochs: scale.epochs() + 1,
            window: 8,
            seed: 3,
            ..TrainConfig::default()
        };
        tc.loss.drop = loss;
        // Isolate the drop task so the comparison is clean.
        tc.loss.w_drop = 1.0;
        tc.loss.w_latency = 0.25;
        tc.loss.w_ecn = 0.0;
        let (model, _) = InternalModel::train_new(&train_set, td.egress_disc, 16, &tc)
            .expect("training data");
        // Generatively sample drops over the held-out set (the paper's
        // realized drop-rate comparison).
        let mut state = model.init_state();
        let mut rng = SplitMix64::new(9);
        let mut drops = 0usize;
        for f in &test_set.features {
            let out = model.model.step(f, &mut state);
            if rng.bernoulli(sigmoid(out[OUT_DROP]) as f64) {
                drops += 1;
            }
        }
        let rate = drops as f64 / test_set.len() as f64;
        println!(
            "{name:>12} | {:>16.3}% | {:>13.2}x",
            rate * 100.0,
            rate / truth_rate.max(1e-9)
        );
    }
    println!(
        "\npaper shape: BCE massively under-predicts the drop rate; WBCE 0.6\n\
         lands near truth; WBCE 0.9 overshoots."
    );
}
