//! Figure 10: simulation running-time speedup of MimicNet over full
//! simulation, across data center sizes and racks-per-cluster.
//!
//! Paper: speedups grow with size — 1.9–6.1× at 8 clusters up to 675× at
//! 128 clusters (2 racks/cluster), where "MimicNet reduces the simulation
//! time from 12 days to under 30 minutes"; beyond that, full fidelity did
//! not finish in 3 months. Speedups here exclude the fixed training cost
//! (as in the paper's figure; see `table2_breakdown` for the total).

use mimicnet_bench::{header, pipeline_config, Scale};
use mimicnet::pipeline::Pipeline;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    header(
        "Figure 10",
        "wall-clock speedup of the composed simulation vs full fidelity",
    );
    let racks_options: Vec<u32> = match scale {
        Scale::Quick => vec![2],
        Scale::Full => vec![2, 4],
    };
    for racks in racks_options {
        println!("\n--- {racks} racks/cluster ---");
        let mut cfg = pipeline_config(scale, 42);
        cfg.base.topo.racks_per_cluster = racks;
        let mut pipe = Pipeline::new(cfg);
        let trained = pipe.train();
        println!(
            "{:>9} | {:>12} | {:>12} | {:>9} | {:>11}",
            "clusters", "full (s)", "mimic (s)", "speedup", "event ratio"
        );
        for clusters in scale.cluster_sweep() {
            let t0 = Instant::now();
            let (_, truth_metrics, _) = pipe.run_ground_truth(clusters);
            let full_wall = t0.elapsed().as_secs_f64();
            let est = pipe.estimate(&trained, clusters);
            let mimic_wall = est.wall.as_secs_f64();
            println!(
                "{clusters:>9} | {full_wall:>12.3} | {mimic_wall:>12.3} | {:>8.1}x | {:>10.1}x",
                full_wall / mimic_wall.max(1e-9),
                truth_metrics.events_processed as f64
                    / est.metrics.events_processed.max(1) as f64
            );
        }
    }
    println!(
        "\npaper shape: speedup grows steeply with cluster count (the\n\
         composition's event count is ~T/N + Tp vs the full T), and holds\n\
         across racks-per-cluster."
    );
}
