//! Figures 18 & 19 (Appendix D): protocol comparison on throughput and
//! RTT distributions, ground truth vs. MimicNet.
//!
//! Paper: "MimicNet can closely match the throughput and RTT of a real
//! simulation for all protocols … TCP Westwood achieves the best
//! 90-percentile throughput … [but] the highest 90-percentile latency,
//! while DCTCP performs the best — this comparison is also correctly
//! predicted by MimicNet."

use dcn_sim::cdf::wasserstein1;
use dcn_sim::stats::percentile;
use dcn_transport::Protocol;
use mimicnet_bench::{header, pipeline_config, Scale};
use mimicnet::pipeline::Pipeline;

fn main() {
    let scale = Scale::from_env();
    let large = scale.large();
    header(
        "Figures 18/19",
        "per-protocol throughput and RTT: ground truth vs MimicNet",
    );
    println!(
        "{:>14} | {:>13} {:>13} | {:>11} {:>11} | {:>11} {:>11}",
        "protocol", "tput p90 T", "tput p90 M", "rtt p90 T", "rtt p90 M", "W1 tput", "W1 rtt"
    );
    let mut tput_rank_t: Vec<(String, f64)> = Vec::new();
    let mut tput_rank_m: Vec<(String, f64)> = Vec::new();
    let mut rtt_rank_t: Vec<(String, f64)> = Vec::new();
    let mut rtt_rank_m: Vec<(String, f64)> = Vec::new();
    for p in [
        Protocol::Homa,
        Protocol::Dctcp { k: 20 },
        Protocol::Vegas,
        Protocol::Westwood,
    ] {
        let mut cfg = pipeline_config(scale, 11);
        cfg.protocol = p;
        let mut pipe = Pipeline::new(cfg);
        let trained = pipe.train();
        let (truth, _, _) = pipe.run_ground_truth(large);
        let est = pipe.estimate(&trained, large);
        let t_t90 = percentile(&truth.throughput, 90.0);
        let m_t90 = percentile(&est.samples.throughput, 90.0);
        let t_r90 = percentile(&truth.rtt, 90.0);
        let m_r90 = percentile(&est.samples.rtt, 90.0);
        println!(
            "{:>14} | {t_t90:>13.0} {m_t90:>13.0} | {t_r90:>11.4} {m_r90:>11.4} | {:>11.0} {:>11.5}",
            p.name(),
            wasserstein1(&truth.throughput, &est.samples.throughput),
            wasserstein1(&truth.rtt, &est.samples.rtt),
        );
        tput_rank_t.push((p.name().to_string(), t_t90));
        tput_rank_m.push((p.name().to_string(), m_t90));
        rtt_rank_t.push((p.name().to_string(), t_r90));
        rtt_rank_m.push((p.name().to_string(), m_r90));
    }
    let order = |mut v: Vec<(String, f64)>, desc: bool| {
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        if desc {
            v.reverse();
        }
        v.into_iter().map(|(n, _)| n).collect::<Vec<_>>()
    };
    println!("\nbest->worst p90 throughput, truth: {:?}", order(tput_rank_t, true));
    println!("best->worst p90 throughput, mimic: {:?}", order(tput_rank_m, true));
    println!("best->worst p90 RTT, truth:        {:?}", order(rtt_rank_t, false));
    println!("best->worst p90 RTT, mimic:        {:?}", order(rtt_rank_m, false));
    println!("\npaper shape: distributions match per protocol and the protocol\norderings at p90 are preserved by MimicNet.");
}
