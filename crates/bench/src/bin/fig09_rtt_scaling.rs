//! Figure 9: RTT-distribution accuracy vs. network size.
//!
//! Paper: W1 of per-packet RTT for small-scale extrapolation vs MimicNet;
//! flow-level simulation is excluded because it "is too coarse-grained to
//! provide this metric". MimicNet averages 43% lower error.

use dcn_sim::cdf::wasserstein1;
use mimicnet_bench::{header, pipeline_config, Scale};
use mimicnet::pipeline::Pipeline;

fn main() {
    let scale = Scale::from_env();
    header("Figure 9", "W1(packet RTT) to ground truth vs #clusters");
    let mut pipe = Pipeline::new(pipeline_config(scale, 42));
    let trained = pipe.train();
    let (small, _, _) = pipe.run_ground_truth(2);

    println!("{:>9} | {:>13} | {:>13}", "clusters", "small-scale", "MimicNet");
    let (mut s_sum, mut m_sum, mut n) = (0.0, 0.0, 0);
    for clusters in scale.cluster_sweep() {
        let (truth, _, _) = pipe.run_ground_truth(clusters);
        let est = pipe.estimate(&trained, clusters);
        let w_small = wasserstein1(&truth.rtt, &small.rtt);
        let w_mimic = wasserstein1(&truth.rtt, &est.samples.rtt);
        println!("{clusters:>9} | {w_small:>13.6} | {w_mimic:>13.6}");
        // Skip the degenerate 2-cluster point (small-scale == truth there).
        if clusters > 2 {
            s_sum += w_small;
            m_sum += w_mimic;
            n += 1;
        }
    }
    println!("---------------------------------------------");
    println!(
        "{:>9} | {:>13.6} | {:>13.6}   ({:.0}% lower)",
        "mean>2",
        s_sum / n as f64,
        m_sum / n as f64,
        (1.0 - (m_sum / s_sum)) * 100.0
    );
    println!("\npaper shape: MimicNet below small-scale at every size (43% lower\non average in the paper); flow-level cannot produce RTTs at all.");
}
