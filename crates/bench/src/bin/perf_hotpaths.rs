//! ML hot-path benchmark: the tracked performance baseline behind
//! `BENCH_mlperf.json`.
//!
//! Measures the three costs that dominate the MimicNet workflow's
//! wall-clock (paper Table 2, Figure 23):
//!
//! 1. **Inference ns/packet** — the per-packet `SeqModel::step` price, for
//!    (a) the pre-optimization baseline (allocating, zero-skipping,
//!    strided-head step, reimplemented here verbatim), (b) the optimized
//!    allocation-free step, and (c) the full `LearnedMimic::on_packet`
//!    shim path.
//! 2. **Training samples/sec** — the mini-batch loop with naive kernels at
//!    1 worker (the old configuration), blocked kernels at 1 worker, and
//!    blocked kernels at 4 workers (bit-identical parameters by
//!    construction; verified here at runtime).
//! 3. **End-to-end pipeline seconds** — small-scale sim + training + one
//!    large-scale estimate.
//!
//! Environment:
//! * `OUT` — output JSON path (default `BENCH_mlperf.json`).
//! * `BASELINE` — path to a committed baseline JSON; if the optimized
//!   inference ns/packet regresses by more than 25% against it, the
//!   binary exits non-zero (the CI perf-smoke gate).
//! * `SCALE` — `quick` (default) or `full`, as for every bench binary.

use mimic_ml::dataset::PacketDataset;
use mimic_ml::loss::Target;
use mimic_ml::matrix::{set_kernel_mode, KernelMode};
use mimic_ml::model::{ModelState, SeqModel, OUTPUTS};
use mimic_ml::rng::MlRng;
use mimic_ml::train::{train, TrainConfig};
use mimicnet_bench::{header, pipeline_config, Scale};
use mimicnet::pipeline::Pipeline;
use serde::{Deserialize, Serialize};
use std::time::Instant;

const FEATURES: usize = 21; // width of the default feature config
const HIDDEN: usize = 32;

#[derive(Serialize, Deserialize)]
struct BenchConfig {
    scale: String,
    /// CPU cores visible to the benchmark. Wall-clock speedups from the
    /// worker fan-out and the overlap thread are only meaningful when this
    /// is at least the worker budget; on a single-core runner they
    /// degenerate to ~1x while the bit-identity checks still bind.
    #[serde(default)]
    cores: usize,
    features: usize,
    hidden: usize,
    inference_iters: usize,
    train_samples: usize,
    train_epochs: usize,
    train_batch: usize,
    train_window: usize,
}

#[derive(Serialize, Deserialize, Default)]
struct EventEngineNumbers {
    /// `BinaryHeap<Event>` reference queue: ns per pop+reschedule pair at
    /// steady state.
    heap_ns_per_event: f64,
    /// Slab-pooled index-heap queue, same workload.
    pooled_ns_per_event: f64,
    heap_events_per_sec: f64,
    pooled_events_per_sec: f64,
    /// heap / pooled (the arena tentpole's ≥1.3× acceptance number).
    speedup: f64,
    /// Events resident in the queue throughout the measurement.
    hold: usize,
    /// Pop+reschedule pairs measured per engine.
    events: usize,
}

#[derive(Serialize, Deserialize)]
struct InferenceNumbers {
    /// Pre-optimization step: per-packet allocation + zero-skip + strided head.
    naive_ns_per_packet: f64,
    /// Allocation-free blocked step.
    optimized_ns_per_packet: f64,
    /// naive / optimized.
    speedup: f64,
    /// Full shim path: feature extraction + drift + predict + decision.
    mimic_on_packet_ns: f64,
}

#[derive(Serialize, Deserialize)]
struct TrainingNumbers {
    naive_1w_samples_per_sec: f64,
    blocked_1w_samples_per_sec: f64,
    blocked_4w_samples_per_sec: f64,
    /// blocked@1 / naive@1.
    speedup_blocked_1w: f64,
    /// blocked@4 / naive@1.
    speedup_blocked_4w: f64,
    /// Runtime check: serialized params of the 1- and 4-worker runs match.
    parallel_bit_identical: bool,
}

#[derive(Serialize, Deserialize, Default)]
struct ComposedNumbers {
    /// Scalar path: one `LearnedMimic::on_packet` per boundary packet.
    scalar_ns_per_packet: f64,
    /// Batched path: `BatchedMimicFleet::infer_batch` over the same trace.
    batched_ns_per_packet: f64,
    /// scalar / batched (the tentpole's ≥2× acceptance number).
    speedup: f64,
    /// Mimic'ed clusters in the composed workload.
    mimic_clusters: usize,
    /// Items per flush fed to the batched path.
    flush_size: usize,
    /// LSTM width of the composed bundle.
    hidden: usize,
}

#[derive(Serialize, Deserialize, Default)]
struct ObsNumbers {
    /// Composed sequential run with obs off: min-of-N wall seconds.
    off_s: f64,
    /// A second, identical obs-off configuration, interleaved run-for-run
    /// with the first (an A/A measurement).
    off_repeat_s: f64,
    /// The same run with engine tracing enabled: min-of-N wall seconds.
    on_s: f64,
    /// `|off - off_repeat| / min(off, off_repeat)`: the A/A resolution
    /// floor. The disabled obs path differs from an obs-free build by one
    /// null-check branch per event dispatch, so its true overhead is
    /// bounded by this measurement floor; the CI gate requires it < 1%.
    disabled_overhead_bound_frac: f64,
    /// `on/off - 1` (informational — recording is cheap, not free).
    enabled_overhead_frac: f64,
    /// The same composed run through the one-LP PDES driver with no
    /// diagnostics: the reference for the digest/flight overhead gate.
    /// Serde default keeps baselines recorded before the diagnostics
    /// existed readable; a zeroed value disables the gate.
    #[serde(default)]
    pdes_off_s: f64,
    /// PDES driver run carrying the diverge-debugging diagnostics: a
    /// flight ring plus state digests at the amortized stride below
    /// (which light-enables obs counters, but not per-event wall
    /// timing — that is the separately-measured `enabled_overhead_frac`).
    #[serde(default)]
    pdes_diag_s: f64,
    /// `pdes_diag/pdes_off - 1`: what the flight recorder + amortized
    /// digests cost on the real driver path; the CI gate requires < 2%.
    /// The disabled-path cost is covered by the A/A bound above — with
    /// diagnostics off the driver sees one `Option` check per window.
    #[serde(default)]
    diag_overhead_frac: f64,
    /// Digest stride used by the diag run. Each digest costs
    /// `digest_ns`, so overhead scales inversely with the stride; this
    /// value amortizes digests to a handful per run, mirroring
    /// checkpoint-cadence production use (`dcn diverge` replays refine
    /// to stride 1 only between two checkpoints).
    #[serde(default)]
    diag_digest_stride: u64,
    /// One full `window_digest` (queue + links + hosts) on the composed
    /// engine at mid-run state, nanoseconds (min-of-N microbench).
    #[serde(default)]
    digest_ns: f64,
    repeats: usize,
}

#[derive(Serialize, Deserialize, Default)]
struct AdaptiveNumbers {
    /// Composed clusters in the adaptive workload (1 packet-level
    /// observable + clusters-1 managed).
    clusters: usize,
    /// Simulated seconds per measured run.
    duration_s: f64,
    all_mimic_wall_s: f64,
    all_flow_wall_s: f64,
    adaptive_wall_s: f64,
    all_mimic_events_per_sec: f64,
    all_flow_events_per_sec: f64,
    adaptive_events_per_sec: f64,
    /// W1(FCT) of the all-Flow run against the all-Mimic reference, in
    /// units of the reference's mean FCT (observable cluster only).
    all_flow_w1_rel: f64,
    /// Same distance for the adaptive run — it should land at or inside
    /// the all-Flow distance while running near all-Flow speed.
    adaptive_w1_rel: f64,
    /// Promote/demote transitions the adaptive budget executed.
    tier_switches: usize,
    /// adaptive / all-Mimic events-per-second.
    speedup_vs_all_mimic: f64,
    /// The acceptance number: the adaptive run clears the all-Mimic
    /// event rate.
    beats_all_mimic: bool,
}

#[derive(Serialize, Deserialize)]
struct PipelineNumbers {
    small_scale_sim_s: f64,
    training_s: f64,
    large_scale_sim_s: f64,
    total_s: f64,
    workers: usize,
}

#[derive(Serialize, Deserialize, Default)]
struct TrainingParallelNumbers {
    /// Pipeline training phase (both direction models), serial: workers=1.
    serial_training_s: f64,
    /// Same phase at a 4-worker budget: the per-direction fan-out runs
    /// ingress and egress concurrently, each on a 2-worker shard split.
    fanout_4w_training_s: f64,
    /// serial / fanout (the tentpole's ≥1.5× acceptance number).
    speedup: f64,
    /// Runtime check: both budgets produce the same bundle, bit for bit.
    bit_identical: bool,
    workers: usize,
}

#[derive(Serialize, Deserialize, Default)]
struct OverlapNumbers {
    /// Composed sequential run, synchronous batched flushes: min-of-N wall
    /// seconds (the event thread runs every `infer_batch` itself).
    sync_s: f64,
    /// Same run with flushes overlapped onto the helper thread.
    overlap_s: f64,
    /// sync / overlap.
    speedup: f64,
    /// Boundary packets the fleet served (identical in both modes).
    boundary_packets: u64,
    /// Event-thread wall per boundary packet, synchronous flushes.
    sync_ns_per_boundary_pkt: f64,
    /// Event-thread wall per boundary packet with inference off-thread.
    overlap_ns_per_boundary_pkt: f64,
    repeats: usize,
}

#[derive(Serialize, Deserialize)]
struct BenchReport {
    config: BenchConfig,
    /// Core event-engine throughput: pooled index-heap queue vs the
    /// `BinaryHeap` reference. Serde default keeps baselines recorded
    /// before the section existed readable; a zeroed section disables its
    /// gate.
    #[serde(default)]
    event_engine: EventEngineNumbers,
    inference: InferenceNumbers,
    /// Composed (batched fleet vs scalar Mimic) boundary inference. Serde
    /// default keeps baselines recorded before the section existed
    /// readable; a zeroed section disables its gate.
    #[serde(default)]
    composed: ComposedNumbers,
    /// Observability overhead (disabled-path A/A bound + enabled cost).
    /// Serde default keeps pre-obs baselines readable; a zeroed section
    /// disables its gate.
    #[serde(default)]
    obs: ObsNumbers,
    training: TrainingNumbers,
    /// Model-level training fan-out (per-direction concurrency on top of
    /// the sharded data parallelism). Serde default keeps older baselines
    /// readable; a zeroed section disables its gate.
    #[serde(default)]
    training_parallel: TrainingParallelNumbers,
    /// Off-thread (overlapped) batched boundary inference vs the
    /// synchronous flush path. Serde default as above.
    #[serde(default)]
    overlap: OverlapNumbers,
    /// Adaptive fidelity-tier composition (all-Mimic vs all-Flow vs
    /// budget-driven adaptive) at the large composed shape. Serde default
    /// as above.
    #[serde(default)]
    adaptive: AdaptiveNumbers,
    pipeline: PipelineNumbers,
    /// Speedup gates that were skipped on this run, with the reason —
    /// empty when every gate was enforced. Recorded so a green CI run
    /// states in the artifact itself which numbers were not checked.
    #[serde(default)]
    gate_skips: Vec<String>,
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// The pre-optimization stateful step, verbatim: one `Vec` allocation for
/// the gate pre-activations per layer, one `to_vec`/`clone` per layer for
/// the input hand-off, zero-skip branches in both matrix passes, and a
/// column-strided head. Kept as the benchmark's reference point.
fn naive_step(model: &SeqModel, x: &[f32], hc: &mut [(Vec<f32>, Vec<f32>)]) -> [f32; OUTPUTS] {
    let mut input = x.to_vec();
    for (lstm, (h, c)) in model.lstms.iter().zip(hc.iter_mut()) {
        let hsz = lstm.hidden;
        let mut z = lstm.b.clone();
        for (k, &a) in input.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let row = &lstm.wx.data[k * 4 * hsz..(k + 1) * 4 * hsz];
            for (zv, &w) in z.iter_mut().zip(row) {
                *zv += a * w;
            }
        }
        for (k, &a) in h.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let row = &lstm.wh.data[k * 4 * hsz..(k + 1) * 4 * hsz];
            for (zv, &w) in z.iter_mut().zip(row) {
                *zv += a * w;
            }
        }
        for j in 0..hsz {
            let i_g = sigmoid(z[j]);
            let f_g = sigmoid(z[hsz + j]);
            let g_g = z[2 * hsz + j].tanh();
            let o_g = sigmoid(z[3 * hsz + j]);
            let cv = f_g * c[j] + i_g * g_g;
            c[j] = cv;
            h[j] = o_g * cv.tanh();
        }
        input = h.clone();
    }
    let h = &hc.last().expect("nonempty stack").0;
    let mut out = [0.0f32; OUTPUTS];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = model.head.b[k];
        for (j, &hj) in h.iter().enumerate() {
            acc += hj * model.head.w.data[j * OUTPUTS + k];
        }
        *o = acc;
    }
    out
}

/// Feature vectors with realistic Mimic sparsity: mostly one-hot location
/// encodings plus a few continuous fields.
fn feature_pool(n: usize) -> Vec<Vec<f32>> {
    let mut rng = MlRng::new(0xFEED);
    (0..n)
        .map(|_| {
            let mut v = vec![0.0f32; FEATURES];
            // Four one-hot groups of 4, then 5 continuous tail features.
            for g in 0..4 {
                let hot = (rng.next_f64() * 4.0) as usize % 4;
                v[g * 4 + hot] = 1.0;
            }
            for f in v.iter_mut().skip(16) {
                *f = rng.uniform_sym(1.0) as f32;
            }
            v
        })
        .collect()
}

/// Event-engine throughput at simulation steady state: a hold-K queue
/// (pop one, reschedule one) over the engine's real event mix — half
/// packet-carrying `Arrive` events, the rest `TxDone`/`Timer` bookkeeping.
/// The identical workload runs against the pooled index-heap queue and the
/// `BinaryHeap<Event>` reference; the pooled engine's entire case is that
/// sifting 4-byte indices beats memmoving whole `Event` values (a `Packet`
/// payload rides in every `Arrive`).
fn bench_event_engine(iters: usize) -> EventEngineNumbers {
    use dcn_sim::event::{EventKind, EventQueue};
    use dcn_sim::link::Dir;
    use dcn_sim::packet::{FlowId, Packet};
    use dcn_sim::time::SimTime;
    use dcn_sim::topology::{LinkId, NodeId};

    const HOLD: usize = 8192;

    let kind = |i: u64| -> EventKind {
        match i % 4 {
            0 | 1 => EventKind::Arrive {
                node: NodeId((i % 64) as u32),
                packet: Packet::data(
                    i,
                    FlowId(i % 256),
                    NodeId((i % 64) as u32),
                    NodeId(((i + 1) % 64) as u32),
                    i % 1000,
                    1460,
                    true,
                    SimTime(i),
                ),
            },
            2 => EventKind::TxDone {
                link: LinkId((i % 96) as u32),
                dir: if i.is_multiple_of(2) { Dir::Up } else { Dir::Down },
            },
            _ => EventKind::Timer {
                host: NodeId((i % 64) as u32),
                flow: FlowId(i % 256),
                token: i,
            },
        }
    };

    let run = |mut q: EventQueue| -> f64 {
        for i in 0..HOLD as u64 {
            let t = i.wrapping_mul(0x9E3779B97F4A7C15) % 1_000_000;
            q.schedule(SimTime(t), kind(i));
        }
        // Warm the pool/heap to steady-state capacity before timing.
        for i in 0..(HOLD as u64 * 4) {
            let e = q.pop().expect("queue primed");
            q.schedule(SimTime(e.time.0 + 100 + (i % 97)), kind(i));
        }
        let t0 = Instant::now();
        for i in 0..iters as u64 {
            let e = q.pop().expect("queue primed");
            std::hint::black_box(e.time.0);
            q.schedule(SimTime(e.time.0 + 100 + (i % 97)), kind(i));
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        std::hint::black_box(q.len());
        ns
    };

    let heap_ns = run(EventQueue::new_reference());
    let pooled_ns = run(EventQueue::new());
    EventEngineNumbers {
        heap_ns_per_event: heap_ns,
        pooled_ns_per_event: pooled_ns,
        heap_events_per_sec: 1e9 / heap_ns.max(1e-9),
        pooled_events_per_sec: 1e9 / pooled_ns.max(1e-9),
        speedup: heap_ns / pooled_ns.max(1e-9),
        hold: HOLD,
        events: iters,
    }
}

fn bench_inference(iters: usize) -> InferenceNumbers {
    let model = SeqModel::new(FEATURES, HIDDEN, 7);
    let pool = feature_pool(512);

    // Pre-optimization baseline.
    let mut hc: Vec<(Vec<f32>, Vec<f32>)> = model
        .lstms
        .iter()
        .map(|l| (vec![0.0; l.hidden], vec![0.0; l.hidden]))
        .collect();
    for x in pool.iter().cycle().take(1000) {
        std::hint::black_box(naive_step(&model, x, &mut hc));
    }
    let t0 = Instant::now();
    for x in pool.iter().cycle().take(iters) {
        std::hint::black_box(naive_step(&model, x, &mut hc));
    }
    let naive_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

    // Optimized allocation-free step.
    let mut state: ModelState = model.init_state();
    for x in pool.iter().cycle().take(1000) {
        std::hint::black_box(model.step(x, &mut state));
    }
    let t0 = Instant::now();
    for x in pool.iter().cycle().take(iters) {
        std::hint::black_box(model.step(x, &mut state));
    }
    let opt_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

    // Full shim path through a trained bundle.
    let mimic_ns = bench_on_packet(iters / 10);

    InferenceNumbers {
        naive_ns_per_packet: naive_ns,
        optimized_ns_per_packet: opt_ns,
        speedup: naive_ns / opt_ns.max(1e-9),
        mimic_on_packet_ns: mimic_ns,
    }
}

fn bench_on_packet(iters: usize) -> f64 {
    use dcn_sim::mimic::{BoundaryDir, ClusterModel};
    use dcn_sim::packet::{FlowId, Packet};
    use dcn_sim::time::SimTime;
    use dcn_sim::topology::FatTree;
    use mimicnet::datagen::{generate, DataGenConfig};
    use mimicnet::drift::FeatureEnvelope;
    use mimicnet::internal_model::InternalModel;
    use mimicnet::mimic::{LearnedMimic, TrainedMimic};

    let mut cfg = DataGenConfig::default();
    cfg.sim.duration_s = 0.3;
    cfg.sim.seed = 77;
    let td = generate(&cfg);
    let tc = TrainConfig {
        epochs: 1,
        window: 4,
        ..TrainConfig::default()
    };
    let (ing, _) = InternalModel::train_new(&td.ingress, td.ingress_disc, HIDDEN, &tc)
        .expect("valid training setup");
    let (eg, _) = InternalModel::train_new(&td.egress, td.egress_disc, HIDDEN, &tc)
        .expect("valid training setup");
    let bundle = TrainedMimic {
        ingress: ing,
        egress: eg,
        feature_cfg: td.feature_cfg,
        feeder: td.feeder,
        envelope: FeatureEnvelope::fit(&td.ingress.features),
    };
    let mut topo = cfg.sim.topo;
    topo.clusters = 4;
    let t = FatTree::new(topo);
    let mut m = LearnedMimic::new(bundle, topo, 4, 9);
    let pkt = Packet::data(
        1,
        FlowId(5),
        t.host(1, 0, 0),
        t.host(0, 1, 1),
        0,
        1460,
        true,
        SimTime::from_secs_f64(0.01),
    );
    let at = |i: usize| SimTime::from_secs_f64(0.01 + i as f64 * 1e-6);
    for i in 0..1000 {
        let dir = if i % 2 == 0 { BoundaryDir::Ingress } else { BoundaryDir::Egress };
        std::hint::black_box(m.on_packet(dir, &pkt, at(i)));
    }
    let t0 = Instant::now();
    for i in 0..iters {
        let dir = if i % 2 == 0 { BoundaryDir::Ingress } else { BoundaryDir::Egress };
        std::hint::black_box(m.on_packet(dir, &pkt, at(1000 + i)));
    }
    t0.elapsed().as_nanos() as f64 / iters.max(1) as f64
}

/// Composed boundary inference: the same boundary-packet trace through the
/// scalar per-cluster Mimics and through the batched fleet, on the
/// `fig02_pdes_scaling` composed shape (small-scale config at 8 clusters:
/// 7 Mimic'ed lanes per direction). The bundle is an untrained
/// `COMPOSED_HIDDEN`-unit model — weights at the width compositions
/// actually deploy, where streaming them once per batched round instead of
/// once per packet is the entire contest.
fn bench_composed(iters: usize) -> ComposedNumbers {
    use dcn_sim::mimic::{BatchClusterModel, BoundaryDir, BoundaryItem, ClusterModel, Verdict};
    use dcn_sim::packet::{FlowId, Packet};
    use dcn_sim::time::SimTime;
    use dcn_sim::topology::FatTree;
    use mimic_ml::discretize::Discretizer;
    use mimicnet::batch::BatchedMimicFleet;
    use mimicnet::features::FeatureConfig;
    use mimicnet::feeder::{DirFit, FeederFit};
    use mimicnet::internal_model::InternalModel;
    use mimicnet::mimic::{LearnedMimic, TrainedMimic};

    const COMPOSED_HIDDEN: usize = 384;
    const CLUSTERS: u32 = 8;
    const FLUSH: usize = 64;

    let mut topo = dcn_sim::config::SimConfig::small_scale().topo;
    topo.clusters = CLUSTERS;
    let fc = FeatureConfig::from_topology(&topo);
    let disc = Discretizer::new(2e-5, 1e-3, 100);
    let mk = |seed| InternalModel {
        model: SeqModel::new_stacked(fc.width(), COMPOSED_HIDDEN, 1, seed),
        disc,
    };
    let fit = DirFit::fit(&[1e-4, 2e-4, 3e-4, 5e-4], &[320.0, 1460.0, 1460.0]);
    let bundle = TrainedMimic {
        ingress: mk(7),
        egress: mk(8),
        feature_cfg: fc,
        feeder: FeederFit {
            ingress: fit.clone(),
            egress: fit,
        },
        envelope: None,
    };

    let t = FatTree::new(topo);
    let obs = t.host(0, 0, 0);
    let item = |i: u64| {
        let cluster = 1 + (i % (CLUSTERS as u64 - 1)) as u32;
        let flow = FlowId(1 + i % 24);
        let local = t.host(cluster, (i % 2) as u32, ((i / 2) % 2) as u32);
        let dir = if i.is_multiple_of(2) { BoundaryDir::Ingress } else { BoundaryDir::Egress };
        let (src, dst) = match dir {
            BoundaryDir::Ingress => (obs, local),
            BoundaryDir::Egress => (local, obs),
        };
        let at = SimTime(10_000_000 + i * 400);
        BoundaryItem {
            cluster,
            dir,
            pkt: Packet::data(i + 1, flow, src, dst, i * 1460, 1460, i.is_multiple_of(3), at),
            enqueued_at: at,
        }
    };

    // Scalar path: one LearnedMimic per Mimic'ed cluster.
    let mut scalars: Vec<LearnedMimic> = (1..CLUSTERS)
        .map(|c| LearnedMimic::new(bundle.clone(), topo, CLUSTERS, 9 ^ (0xC0DE_0000 + c as u64)))
        .collect();
    let scalar_shot = |ms: &mut [LearnedMimic], i: u64| {
        let it = item(i);
        std::hint::black_box(ms[it.cluster as usize - 1].on_packet(it.dir, &it.pkt, it.enqueued_at))
    };
    for i in 0..2_000 {
        let _: Verdict = scalar_shot(&mut scalars, i);
    }
    let t0 = Instant::now();
    for i in 0..iters as u64 {
        scalar_shot(&mut scalars, 2_000 + i);
    }
    let scalar_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

    // Batched path: the fleet over the identical trace, flushed in
    // window-sized chunks.
    let seeds: Vec<(u32, u64)> = (1..CLUSTERS).map(|c| (c, 9 ^ (0xC0DE_0000 + c as u64))).collect();
    let mut fleet = BatchedMimicFleet::new(bundle, topo, CLUSTERS, &seeds);
    let mut items = Vec::with_capacity(FLUSH);
    let mut verdicts = Vec::new();
    let mut run_flushes = |fleet: &mut BatchedMimicFleet, start: u64, n: usize| {
        let mut i = start;
        let end = start + n as u64;
        while i < end {
            items.clear();
            for _ in 0..FLUSH.min((end - i) as usize) {
                items.push(item(i));
                i += 1;
            }
            fleet.infer_batch(&items, &mut verdicts);
            std::hint::black_box(verdicts.last());
        }
    };
    run_flushes(&mut fleet, 0, 2_000);
    let t0 = Instant::now();
    run_flushes(&mut fleet, 2_000, iters);
    let batched_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

    ComposedNumbers {
        scalar_ns_per_packet: scalar_ns,
        batched_ns_per_packet: batched_ns,
        speedup: scalar_ns / batched_ns.max(1e-9),
        mimic_clusters: CLUSTERS as usize - 1,
        flush_size: FLUSH,
        hidden: COMPOSED_HIDDEN,
    }
}

/// Observability overhead on a composed sequential run. Three interleaved
/// min-of-N series over identical simulations: obs off (A), obs off again
/// (A/A control), and obs on. The A/A delta bounds what the disabled obs
/// branches can possibly cost (they are one null check per event dispatch,
/// far below run-to-run noise); off-vs-on prices actual recording.
fn bench_obs(repeats: usize) -> ObsNumbers {
    use dcn_transport::Protocol;
    use mimic_ml::discretize::Discretizer;
    use mimicnet::compose::compose_batched;
    use mimicnet::features::FeatureConfig;
    use mimicnet::feeder::{DirFit, FeederFit};
    use mimicnet::internal_model::InternalModel;
    use mimicnet::mimic::TrainedMimic;

    const CLUSTERS: u32 = 4;
    let mut base = dcn_sim::config::SimConfig::small_scale();
    // Long enough that one run takes tens of milliseconds: the A/A bound
    // below is pure timing noise, and on millisecond-scale runs scheduler
    // jitter alone can approach the 1% gate.
    base.duration_s = 2.0;
    base.seed = 42;
    let mut topo = base.topo;
    topo.clusters = CLUSTERS;
    let fc = FeatureConfig::from_topology(&topo);
    let disc = Discretizer::new(2e-5, 1e-3, 100);
    let mk = |seed| InternalModel {
        model: SeqModel::new_stacked(fc.width(), HIDDEN, 1, seed),
        disc,
    };
    let fit = DirFit::fit(&[1e-4, 2e-4, 3e-4, 5e-4], &[320.0, 1460.0, 1460.0]);
    let bundle = TrainedMimic {
        ingress: mk(7),
        egress: mk(8),
        feature_cfg: fc,
        feeder: FeederFit {
            ingress: fit.clone(),
            egress: fit,
        },
        envelope: None,
    };

    let run_once = |trace: bool| -> f64 {
        let mut sim = compose_batched(base, CLUSTERS, Protocol::NewReno, &bundle);
        if trace {
            sim.enable_obs();
        }
        let t0 = Instant::now();
        let m = sim.run();
        let s = t0.elapsed().as_secs_f64();
        std::hint::black_box(m.events_processed);
        s
    };

    run_once(false); // warm caches and the page allocator
    let (mut off_a, mut off_b, mut on) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..repeats {
        off_a = off_a.min(run_once(false));
        off_b = off_b.min(run_once(false));
        on = on.min(run_once(true));
    }

    // Flight-recorder + digest cost on the real driver path: the same
    // composed workload through the one-LP PDES loop, bare vs. carrying
    // the diverge diagnostics (flight ring + digests at an amortized
    // stride; digests light-enable obs counters without per-event wall
    // timing). Interleaved min-of-N like the series above.
    use dcn_sim::pdes::{FlightPlan, PdesRunOpts};
    use mimicnet::compose::run_composed_partitioned_opts;
    let run_pdes = |opts: &PdesRunOpts| -> f64 {
        let t0 = Instant::now();
        let m = run_composed_partitioned_opts(
            base,
            CLUSTERS,
            Protocol::NewReno,
            &bundle,
            1,
            false,
            opts,
        )
        .expect("valid composition");
        let s = t0.elapsed().as_secs_f64();
        std::hint::black_box(m.events_processed);
        s
    };
    // The composed window is the mimic latency floor (tens of µs), so
    // this 2-simulated-second run crosses ~1e5 barriers; stride 16384
    // lands a handful of digests, the cadence `dcn diverge` needs from a
    // production run (its replay refines to stride 1 from a checkpoint).
    const DIAG_STRIDE: u64 = 16_384;
    let bare = PdesRunOpts::default();
    let diag = PdesRunOpts {
        digest_stride: Some(DIAG_STRIDE),
        flight: Some(FlightPlan {
            capacity: 4096,
            ..FlightPlan::default()
        }),
        ..PdesRunOpts::default()
    };
    run_pdes(&bare); // warm
    let (mut pdes_off, mut pdes_diag) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..repeats.max(5) {
        pdes_off = pdes_off.min(run_pdes(&bare));
        pdes_diag = pdes_diag.min(run_pdes(&diag));
    }

    // Absolute cost of one state digest at mid-run state (informational:
    // overhead at any stride is `digest_ns / stride` per window).
    let digest_ns = {
        use dcn_sim::SimTime;
        let mut sim = compose_batched(base, CLUSTERS, Protocol::NewReno, &bundle);
        sim.enable_digests();
        let _ = sim.run_window(SimTime::from_secs_f64(base.duration_s / 2.0));
        let mut best = f64::INFINITY;
        for _ in 0..repeats.max(5) {
            let t0 = Instant::now();
            let mut acc = 0u64;
            for _ in 0..32 {
                acc = acc.wrapping_add(sim.window_digest());
            }
            std::hint::black_box(acc);
            best = best.min(t0.elapsed().as_secs_f64() / 32.0);
        }
        best * 1e9
    };

    ObsNumbers {
        off_s: off_a,
        off_repeat_s: off_b,
        on_s: on,
        disabled_overhead_bound_frac: (off_a - off_b).abs() / off_a.min(off_b).max(1e-9),
        enabled_overhead_frac: on / off_a.max(1e-9) - 1.0,
        pdes_off_s: pdes_off,
        pdes_diag_s: pdes_diag,
        diag_overhead_frac: pdes_diag / pdes_off.max(1e-9) - 1.0,
        diag_digest_stride: DIAG_STRIDE,
        digest_ns,
        repeats,
    }
}

/// A learnable synthetic packet trace at the real feature width.
fn train_dataset(n: usize) -> PacketDataset {
    let pool = feature_pool(n);
    let mut d = PacketDataset::default();
    let mut burst = 0usize;
    let mut rng = MlRng::new(11);
    for f in pool {
        if rng.next_f64() < 0.1 {
            burst = 4;
        }
        let hot = burst > 0;
        burst = burst.saturating_sub(1);
        let mut f = f;
        f[16] = if hot { 1.0 } else { 0.0 };
        let drop = rng.next_f64() > 0.95;
        d.push(
            f,
            Target {
                latency: if hot { 0.8 } else { 0.2 },
                dropped: if drop { 1.0 } else { 0.0 },
                ecn: 0.0,
            },
        );
    }
    d
}

fn timed_train(data: &PacketDataset, cfg: &TrainConfig) -> (f64, String) {
    let mut model = SeqModel::new(FEATURES, HIDDEN, 42);
    let t0 = Instant::now();
    let report = train(&mut model, data, cfg).expect("valid training setup");
    let secs = t0.elapsed().as_secs_f64();
    let samples = data.len() * report.epoch_losses.len();
    (samples as f64 / secs.max(1e-9), model.to_json())
}

fn bench_training(samples: usize, epochs: usize) -> (TrainingNumbers, TrainConfig) {
    let data = train_dataset(samples);
    let cfg = TrainConfig {
        epochs,
        batch_size: 64,
        window: 8,
        ..TrainConfig::default()
    };

    set_kernel_mode(KernelMode::Naive);
    let (naive_1w, json_naive) = timed_train(&data, &cfg);
    set_kernel_mode(KernelMode::Blocked);
    let (blocked_1w, json_1w) = timed_train(&data, &cfg);
    let (blocked_4w, json_4w) = timed_train(&data, &TrainConfig { workers: 4, ..cfg });

    // Blocked row-major matmul preserves the naive accumulation order, and
    // worker count never changes the reduction tree — all three runs must
    // agree on the forward matmul path; 1w vs 4w must be bit-identical.
    let identical = json_1w == json_4w;
    assert!(identical, "1-worker and 4-worker training diverged");
    drop(json_naive);

    (
        TrainingNumbers {
            naive_1w_samples_per_sec: naive_1w,
            blocked_1w_samples_per_sec: blocked_1w,
            blocked_4w_samples_per_sec: blocked_4w,
            speedup_blocked_1w: blocked_1w / naive_1w.max(1e-9),
            speedup_blocked_4w: blocked_4w / naive_1w.max(1e-9),
            parallel_bit_identical: identical,
        },
        cfg,
    )
}

/// Model-level training fan-out: the full pipeline training phase (both
/// direction models over the real generated dataset) serial vs at a
/// 4-worker budget, where the ingress and egress models train concurrently
/// on 2-worker shard splits. Both must produce the identical bundle.
fn bench_training_parallel(scale: Scale) -> TrainingParallelNumbers {
    let mut serial = Pipeline::new(pipeline_config(scale, 42).with_workers(1));
    let bundle_serial = serial.train();
    let serial_s = serial.timings.training.as_secs_f64();

    let mut fan = Pipeline::new(pipeline_config(scale, 42).with_workers(4));
    let bundle_fan = fan.train();
    let fanout_s = fan.timings.training.as_secs_f64();

    let identical = bundle_serial.to_json() == bundle_fan.to_json();
    assert!(identical, "serial and fanned-out pipeline training diverged");
    TrainingParallelNumbers {
        serial_training_s: serial_s,
        fanout_4w_training_s: fanout_s,
        speedup: serial_s / fanout_s.max(1e-9),
        bit_identical: identical,
        workers: 4,
    }
}

/// Overlapped (off-thread) batched flushing vs the synchronous flush path
/// on a real composed run at the fig02 shape (8 clusters, 7 Mimic'ed,
/// composition-width models). Both modes produce bit-identical
/// trajectories — the concurrency suite asserts it — so the only thing
/// measured here is event-thread wall clock.
fn bench_overlap(duration_s: f64, repeats: usize) -> OverlapNumbers {
    use dcn_transport::Protocol;
    use mimic_ml::discretize::Discretizer;
    use mimicnet::compose::{compose_batched, try_compose_batched_overlapped};
    use mimicnet::features::FeatureConfig;
    use mimicnet::feeder::{DirFit, FeederFit};
    use mimicnet::internal_model::InternalModel;
    use mimicnet::mimic::TrainedMimic;

    const COMPOSED_HIDDEN: usize = 384;
    const CLUSTERS: u32 = 8;

    let mut base = dcn_sim::config::SimConfig::small_scale();
    base.duration_s = duration_s;
    base.seed = 42;
    // Route every real flow across the cluster boundary so the flush path
    // (the thing being overlapped) dominates the run, and keep the
    // synthetic feeders sparse — `on_wake` state updates happen on the
    // event thread in both modes and would otherwise swamp the signal.
    base.traffic.inter_cluster_fraction = 1.0;
    let mut topo = base.topo;
    topo.clusters = CLUSTERS;
    let fc = FeatureConfig::from_topology(&topo);
    let disc = Discretizer::new(2e-5, 1e-3, 100);
    let mk = |seed| InternalModel {
        model: SeqModel::new_stacked(fc.width(), COMPOSED_HIDDEN, 1, seed),
        disc,
    };
    let fit = DirFit::fit(&[2e-3, 4e-3, 8e-3, 1.6e-2], &[320.0, 1460.0, 1460.0]);
    let bundle = TrainedMimic {
        ingress: mk(7),
        egress: mk(8),
        feature_cfg: fc,
        feeder: FeederFit {
            ingress: fit.clone(),
            egress: fit,
        },
        envelope: None,
    };

    // One traced run to count the boundary packets the fleet serves (the
    // count is mode- and trace-independent).
    let mut sim = compose_batched(base, CLUSTERS, Protocol::NewReno, &bundle);
    sim.enable_obs();
    let m = sim.run();
    let boundary_packets = m
        .obs
        .as_ref()
        .map(|r| r.counter("mimic.fleet.packets_seen"))
        .unwrap_or(0);

    let run_once = |overlap: bool| -> f64 {
        let mut sim = if overlap {
            try_compose_batched_overlapped(base, CLUSTERS, Protocol::NewReno, &bundle)
                .expect("valid composition")
        } else {
            compose_batched(base, CLUSTERS, Protocol::NewReno, &bundle)
        };
        let t0 = Instant::now();
        let m = sim.run();
        std::hint::black_box(m.events_processed);
        t0.elapsed().as_secs_f64()
    };

    run_once(false); // warm caches and the page allocator
    let (mut sync_s, mut overlap_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..repeats {
        sync_s = sync_s.min(run_once(false));
        overlap_s = overlap_s.min(run_once(true));
    }

    let per_pkt = |s: f64| s * 1e9 / (boundary_packets.max(1) as f64);
    OverlapNumbers {
        sync_s,
        overlap_s,
        speedup: sync_s / overlap_s.max(1e-9),
        boundary_packets,
        sync_ns_per_boundary_pkt: per_pkt(sync_s),
        overlap_ns_per_boundary_pkt: per_pkt(overlap_s),
        repeats,
    }
}

/// Adaptive fidelity-tier composition at the large composed shape
/// (64 clusters, 63 managed): the same scenario run all-Mimic (the
/// partitioned baseline every prior bench records), pinned all-Flow
/// (fluid approximation everywhere), and under the default accuracy
/// budget, which demotes calm clusters to the Flow tier at epoch
/// barriers. The contest is event throughput — the adaptive run should
/// clear the all-Mimic rate once most clusters settle at Flow — with the
/// W1(FCT) distance to the all-Mimic reference recorded alongside so the
/// speed is priced in fidelity.
fn bench_adaptive(scale: Scale) -> AdaptiveNumbers {
    use dcn_sim::mimic::FidelityTier;
    use dcn_sim::pdes::TierPlan;
    use dcn_sim::topology::FatTree;
    use mimicnet::compose::{run_composed_adaptive, run_composed_partitioned, OBSERVABLE};
    use mimicnet::degrade::AccuracyBudget;
    use mimicnet::metrics::{observed, w1_fct_relative};
    use mimicnet::pipeline::PipelineConfig;

    const CLUSTERS: u32 = 64;

    let mut cfg = PipelineConfig::default();
    cfg.base.duration_s = 0.3;
    cfg.base.seed = 5;
    cfg.hidden = 8;
    cfg.train.epochs = 1;
    cfg.train.window = 4;
    let base = cfg.base;
    let protocol = cfg.protocol;
    let trained = Pipeline::new(cfg).train();

    let mut mbase = base;
    mbase.duration_s = match scale {
        Scale::Quick => 0.2,
        Scale::Full => 0.5,
    };
    let plan = TierPlan { every_windows: 16 };
    let all_flow = AccuracyBudget {
        start: FidelityTier::Flow,
        promote_above: f64::INFINITY,
        ..AccuracyBudget::default()
    };
    let adaptive_budget = AccuracyBudget::default();

    let t0 = Instant::now();
    let m_mimic = run_composed_partitioned(mbase, CLUSTERS, protocol, &trained, 1)
        .expect("all-Mimic run");
    let mimic_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let m_flow =
        run_composed_adaptive(mbase, CLUSTERS, protocol, &trained, 1, &all_flow, &plan, None)
            .expect("all-Flow run");
    let flow_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let m_adaptive = run_composed_adaptive(
        mbase,
        CLUSTERS,
        protocol,
        &trained,
        1,
        &adaptive_budget,
        &plan,
        None,
    )
    .expect("adaptive run");
    let adaptive_s = t0.elapsed().as_secs_f64();

    let mut topo = mbase.topo;
    topo.clusters = CLUSTERS;
    let tree = FatTree::new(topo);
    let reference = observed(&m_mimic, &tree, OBSERVABLE);
    let flow_obs = observed(&m_flow, &tree, OBSERVABLE);
    let adaptive_obs = observed(&m_adaptive, &tree, OBSERVABLE);

    let eps = |m: &dcn_sim::instrument::Metrics, s: f64| m.events_processed as f64 / s.max(1e-9);
    let all_mimic_events_per_sec = eps(&m_mimic, mimic_s);
    let adaptive_events_per_sec = eps(&m_adaptive, adaptive_s);
    AdaptiveNumbers {
        clusters: CLUSTERS as usize,
        duration_s: mbase.duration_s,
        all_mimic_wall_s: mimic_s,
        all_flow_wall_s: flow_s,
        adaptive_wall_s: adaptive_s,
        all_mimic_events_per_sec,
        all_flow_events_per_sec: eps(&m_flow, flow_s),
        adaptive_events_per_sec,
        all_flow_w1_rel: w1_fct_relative(&reference.fct, &flow_obs.fct),
        adaptive_w1_rel: w1_fct_relative(&reference.fct, &adaptive_obs.fct),
        tier_switches: m_adaptive.tier_switches.len(),
        speedup_vs_all_mimic: adaptive_events_per_sec / all_mimic_events_per_sec.max(1e-9),
        beats_all_mimic: adaptive_events_per_sec > all_mimic_events_per_sec,
    }
}

fn bench_pipeline(scale: Scale) -> PipelineNumbers {
    let workers = 4;
    let mut pipe = Pipeline::new(pipeline_config(scale, 42).with_workers(workers));
    let trained = pipe.train();
    let est = pipe.estimate(&trained, scale.large());
    let small = pipe.timings.small_scale_sim.as_secs_f64();
    let training = pipe.timings.training.as_secs_f64();
    let large = est.wall.as_secs_f64();
    PipelineNumbers {
        small_scale_sim_s: small,
        training_s: training,
        large_scale_sim_s: large,
        total_s: small + training + large,
        workers,
    }
}

fn check_baseline(report: &BenchReport) -> Result<(), String> {
    let Ok(path) = std::env::var("BASELINE") else {
        return Ok(());
    };
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let base: BenchReport =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse baseline {path}: {e}"))?;
    // Event-engine gate: pooled ns/event may not regress past +25% of the
    // baseline (skipped for baselines recorded before the section existed).
    if base.event_engine.pooled_ns_per_event > 0.0 {
        let current = report.event_engine.pooled_ns_per_event;
        let allowed = base.event_engine.pooled_ns_per_event * 1.25;
        if current > allowed {
            return Err(format!(
                "event engine regression: {current:.1} ns/event vs baseline {:.1} (limit {allowed:.1}, +25%)",
                base.event_engine.pooled_ns_per_event
            ));
        }
        println!(
            "event engine baseline check: {current:.1} ns/event vs {:.1} baseline (limit {allowed:.1}) — OK",
            base.event_engine.pooled_ns_per_event
        );
    }
    let current = report.inference.optimized_ns_per_packet;
    let allowed = base.inference.optimized_ns_per_packet * 1.25;
    if current > allowed {
        return Err(format!(
            "inference regression: {current:.1} ns/packet vs baseline {:.1} (limit {allowed:.1}, +25%)",
            base.inference.optimized_ns_per_packet
        ));
    }
    println!(
        "baseline check: {current:.1} ns/packet vs {:.1} baseline (limit {allowed:.1}) — OK",
        base.inference.optimized_ns_per_packet
    );
    // Composed-inference gate: same +25% rule, skipped for baselines
    // recorded before the section existed (serde default zeroes it).
    if base.composed.batched_ns_per_packet > 0.0 {
        let current = report.composed.batched_ns_per_packet;
        let allowed = base.composed.batched_ns_per_packet * 1.25;
        if current > allowed {
            return Err(format!(
                "composed inference regression: {current:.1} ns/packet vs baseline {:.1} (limit {allowed:.1}, +25%)",
                base.composed.batched_ns_per_packet
            ));
        }
        println!(
            "composed baseline check: {current:.1} ns/packet vs {:.1} baseline (limit {allowed:.1}) — OK",
            base.composed.batched_ns_per_packet
        );
    }
    // Training fan-out gate: the 4-worker pipeline training phase may not
    // regress past +25% of the baseline (skipped for older baselines).
    if base.training_parallel.fanout_4w_training_s > 0.0 {
        let current = report.training_parallel.fanout_4w_training_s;
        let allowed = base.training_parallel.fanout_4w_training_s * 1.25;
        if current > allowed {
            return Err(format!(
                "training fan-out regression: {current:.2}s vs baseline {:.2}s (limit {allowed:.2}s, +25%)",
                base.training_parallel.fanout_4w_training_s
            ));
        }
        println!(
            "training fan-out baseline check: {current:.2}s vs {:.2}s baseline (limit {allowed:.2}s) — OK",
            base.training_parallel.fanout_4w_training_s
        );
    }
    // Overlapped-flush gate: event-thread wall per boundary packet with the
    // helper thread on, same +25% rule (skipped for older baselines).
    if base.overlap.overlap_ns_per_boundary_pkt > 0.0 {
        let current = report.overlap.overlap_ns_per_boundary_pkt;
        let allowed = base.overlap.overlap_ns_per_boundary_pkt * 1.25;
        if current > allowed {
            return Err(format!(
                "overlapped compose regression: {current:.0} ns/boundary pkt vs baseline {:.0} (limit {allowed:.0}, +25%)",
                base.overlap.overlap_ns_per_boundary_pkt
            ));
        }
        println!(
            "overlap baseline check: {current:.0} ns/boundary pkt vs {:.0} baseline (limit {allowed:.0}) — OK",
            base.overlap.overlap_ns_per_boundary_pkt
        );
    }
    // Observability gate: the disabled-path A/A bound must stay under 1%
    // (skipped when the section was not measured).
    if report.obs.off_s > 0.0 {
        let bound = report.obs.disabled_overhead_bound_frac;
        if bound >= 0.01 {
            return Err(format!(
                "obs disabled-overhead bound {:.2}% exceeds the 1% budget \
                 (off {:.4}s vs off-repeat {:.4}s)",
                bound * 100.0,
                report.obs.off_s,
                report.obs.off_repeat_s
            ));
        }
        println!(
            "obs disabled-overhead bound: {:.3}% (< 1%) — OK (enabled costs {:+.1}%)",
            bound * 100.0,
            report.obs.enabled_overhead_frac * 100.0
        );
    }
    // Diagnostics gate: the flight ring + amortized-stride digests on
    // the PDES driver must stay under 2% over the bare driver (skipped
    // when the series was not measured).
    if report.obs.pdes_off_s > 0.0 {
        let frac = report.obs.diag_overhead_frac;
        if frac >= 0.02 {
            return Err(format!(
                "digest+flight overhead {:.2}% exceeds the 2% budget \
                 (bare driver {:.4}s vs diagnostics {:.4}s, digest stride {})",
                frac * 100.0,
                report.obs.pdes_off_s,
                report.obs.pdes_diag_s,
                report.obs.diag_digest_stride
            ));
        }
        println!(
            "digest+flight overhead: {:+.2}% (< 2%) — OK (driver {:.4}s vs {:.4}s, \
             one digest {:.1}µs)",
            frac * 100.0,
            report.obs.pdes_off_s,
            report.obs.pdes_diag_s,
            report.obs.digest_ns / 1e3
        );
    }
    // A baseline recorded with suppressed gates is weaker than it looks;
    // restate its skips so the comparison's meaning is visible in the log.
    for skip in &base.gate_skips {
        println!("baseline {path} was recorded with a skipped gate: {skip}");
        ci_warning(&format!("baseline recorded with a skipped gate: {skip}"));
    }
    Ok(())
}

/// Emit a GitHub Actions warning annotation when running under CI, so a
/// green run with suppressed gates is flagged on the workflow summary
/// instead of buried in the log.
fn ci_warning(msg: &str) {
    if std::env::var_os("GITHUB_ACTIONS").is_some() {
        // Annotation lines must be single-line; the format is
        // `::warning title=<t>::<message>`.
        println!("::warning title=perf_hotpaths::{}", msg.replace('\n', " "));
    }
}

/// Speedup gates that cannot bind on this runner, with the reason. The
/// wall-clock speedups of the training fan-out and the overlapped flush
/// path (both gated at ≥1.5×) are only meaningful with cores to fan out
/// to: on a single-core runner they degenerate to ~1× while the
/// bit-identity checks still bind. The skip reasons are recorded in the
/// report itself (`gate_skips`) so the JSON artifact states which numbers
/// a green run did not check.
fn collect_gate_skips(cores: usize) -> Vec<String> {
    let mut skips = Vec::new();
    if cores < 2 {
        skips.push(format!(
            "training fan-out >=1.5x gate skipped: {cores} core(s) visible, \
             wall-clock speedup is core-bound (bit-identity check still binds)"
        ));
        skips.push(format!(
            "overlapped flush >=1.5x gate skipped: {cores} core(s) visible, \
             wall-clock speedup is core-bound (trajectory bit-identity is \
             asserted by the concurrency suite)"
        ));
    }
    skips
}

/// Absolute speedup gates, applied on every run (no baseline needed).
///
/// The event-engine gate is single-threaded and binds everywhere. The
/// two ≥1.5× multi-core gates are suppressed by whatever
/// [`collect_gate_skips`] put in the report — each suppression is printed
/// here and already serialized in the JSON artifact.
fn check_speedup_gates(report: &BenchReport) -> Result<(), String> {
    let ee = report.event_engine.speedup;
    if ee < 1.3 {
        return Err(format!(
            "pooled event engine speedup {ee:.2}x below the 1.3x gate \
             (heap {:.1} ns/event, pooled {:.1} ns/event)",
            report.event_engine.heap_ns_per_event, report.event_engine.pooled_ns_per_event
        ));
    }
    println!("event engine gate: pooled {ee:.2}x over heap (>= 1.3x) — OK");

    if !report.gate_skips.is_empty() {
        for skip in &report.gate_skips {
            println!("gate skip: {skip}");
            ci_warning(&format!("gate skip: {skip}"));
        }
        return Ok(());
    }
    let tp = report.training_parallel.speedup;
    if tp < 1.5 {
        return Err(format!(
            "training fan-out speedup {tp:.2}x below the 1.5x gate on {} cores",
            report.config.cores
        ));
    }
    let ov = report.overlap.speedup;
    if ov < 1.5 {
        return Err(format!(
            "overlapped flush speedup {ov:.2}x below the 1.5x gate on {} cores",
            report.config.cores
        ));
    }
    println!("multi-core gates: training fan-out {tp:.2}x, overlap {ov:.2}x (>= 1.5x) — OK");
    Ok(())
}

fn main() {
    let scale = Scale::from_env();
    header(
        "perf_hotpaths",
        "ML hot-path benchmark: inference ns/packet, training samples/sec, pipeline seconds",
    );
    let (iters, samples, epochs) = match scale {
        Scale::Quick => (200_000usize, 2048usize, 2usize),
        Scale::Full => (1_000_000, 8192, 3),
    };

    println!("\n-- event engine ({iters} pop+reschedule pairs, hold 8192, mixed kinds) --");
    let event_engine = bench_event_engine(iters);
    println!(
        "heap reference:  {:>8.1} ns/event  ({:>11.0} events/s)\npooled engine:   {:>8.1} ns/event  ({:>11.0} events/s, {:.2}x)",
        event_engine.heap_ns_per_event,
        event_engine.heap_events_per_sec,
        event_engine.pooled_ns_per_event,
        event_engine.pooled_events_per_sec,
        event_engine.speedup
    );

    println!("\n-- inference ({iters} packets, {FEATURES} features x {HIDDEN} hidden) --");
    let inference = bench_inference(iters);
    println!(
        "naive step:      {:>8.1} ns/packet\noptimized step:  {:>8.1} ns/packet  ({:.2}x)\nmimic on_packet: {:>8.1} ns/packet (full shim path)",
        inference.naive_ns_per_packet, inference.optimized_ns_per_packet, inference.speedup,
        inference.mimic_on_packet_ns
    );

    println!("\n-- composed boundary inference (fig02 shape: 8 clusters, 7 mimic'ed) --");
    let composed = bench_composed(iters / 8);
    println!(
        "scalar on_packet:  {:>8.1} ns/packet\nbatched compose:   {:>8.1} ns/packet  ({:.2}x, flush {} items, hidden {})",
        composed.scalar_ns_per_packet, composed.batched_ns_per_packet, composed.speedup,
        composed.flush_size, composed.hidden
    );

    println!("\n-- observability overhead (composed sequential run, min-of-N) --");
    let obs = bench_obs(match scale {
        Scale::Quick => 10,
        Scale::Full => 20,
    });
    println!(
        "obs off:         {:>8.4} s (A/A repeat {:.4} s, bound {:.3}%)\nobs on:          {:>8.4} s ({:+.1}%)\npdes bare:       {:>8.4} s\npdes diagnosed:  {:>8.4} s ({:+.2}% — flight ring + digests @ stride {})\none digest:      {:>8.1} µs",
        obs.off_s,
        obs.off_repeat_s,
        obs.disabled_overhead_bound_frac * 100.0,
        obs.on_s,
        obs.enabled_overhead_frac * 100.0,
        obs.pdes_off_s,
        obs.pdes_diag_s,
        obs.diag_overhead_frac * 100.0,
        obs.diag_digest_stride,
        obs.digest_ns / 1e3
    );

    println!("\n-- training ({samples} samples x {epochs} epochs, batch 64, window 8) --");
    let (training, tcfg) = bench_training(samples, epochs);
    println!(
        "naive @ 1 worker:   {:>9.0} samples/s\nblocked @ 1 worker: {:>9.0} samples/s  ({:.2}x)\nblocked @ 4 workers:{:>9.0} samples/s  ({:.2}x)\n1w vs 4w parameters bit-identical: {}",
        training.naive_1w_samples_per_sec,
        training.blocked_1w_samples_per_sec, training.speedup_blocked_1w,
        training.blocked_4w_samples_per_sec, training.speedup_blocked_4w,
        training.parallel_bit_identical
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\n-- pipeline training fan-out (serial vs 4-worker budget) --");
    let training_parallel = bench_training_parallel(scale);
    if cores < training_parallel.workers {
        println!("note: {cores} core(s) visible — wall-clock speedups below are core-bound");
    }
    println!(
        "serial (1 worker):  {:>7.2} s\nfan-out (4 workers):{:>7.2} s  ({:.2}x)\nbundles bit-identical: {}",
        training_parallel.serial_training_s,
        training_parallel.fanout_4w_training_s,
        training_parallel.speedup,
        training_parallel.bit_identical
    );

    println!("\n-- overlapped boundary inference (fig02 shape, min-of-N) --");
    let (ov_dur, ov_reps) = match scale {
        Scale::Quick => (0.5, 3),
        Scale::Full => (1.0, 5),
    };
    let overlap = bench_overlap(ov_dur, ov_reps);
    println!(
        "sync flushes:    {:>8.4} s  ({:.0} ns/boundary pkt)\noverlap flushes: {:>8.4} s  ({:.0} ns/boundary pkt, {:.2}x, {} pkts)",
        overlap.sync_s,
        overlap.sync_ns_per_boundary_pkt,
        overlap.overlap_s,
        overlap.overlap_ns_per_boundary_pkt,
        overlap.speedup,
        overlap.boundary_packets
    );

    println!("\n-- adaptive fidelity tiers (64 clusters, default budget) --");
    let adaptive = bench_adaptive(scale);
    println!(
        "all-Mimic:  {:>8.2} s  ({:>10.0} events/s)\nall-Flow:   {:>8.2} s  ({:>10.0} events/s, W1 {:.3} rel)\nadaptive:   {:>8.2} s  ({:>10.0} events/s, W1 {:.3} rel, {} switches, {:.2}x vs all-Mimic, beats: {})",
        adaptive.all_mimic_wall_s,
        adaptive.all_mimic_events_per_sec,
        adaptive.all_flow_wall_s,
        adaptive.all_flow_events_per_sec,
        adaptive.all_flow_w1_rel,
        adaptive.adaptive_wall_s,
        adaptive.adaptive_events_per_sec,
        adaptive.adaptive_w1_rel,
        adaptive.tier_switches,
        adaptive.speedup_vs_all_mimic,
        adaptive.beats_all_mimic
    );

    println!("\n-- end-to-end pipeline ({:?}) --", scale);
    let pipeline = bench_pipeline(scale);
    println!(
        "small-scale sim: {:.2}s\ntraining:        {:.2}s (4 workers)\nlarge-scale sim: {:.2}s\ntotal:           {:.2}s",
        pipeline.small_scale_sim_s, pipeline.training_s, pipeline.large_scale_sim_s,
        pipeline.total_s
    );

    let report = BenchReport {
        config: BenchConfig {
            scale: format!("{scale:?}").to_lowercase(),
            cores,
            features: FEATURES,
            hidden: HIDDEN,
            inference_iters: iters,
            train_samples: samples,
            train_epochs: epochs,
            train_batch: tcfg.batch_size,
            train_window: tcfg.window,
        },
        event_engine,
        inference,
        composed,
        obs,
        training,
        training_parallel,
        overlap,
        adaptive,
        pipeline,
        gate_skips: collect_gate_skips(cores),
    };

    let out = std::env::var("OUT").unwrap_or_else(|_| "BENCH_mlperf.json".into());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    dcn_sim::snapshot::atomic_write(out.as_ref(), (json + "\n").as_bytes())
        .expect("write report");
    println!("\nwrote {out}");

    if let Err(e) = check_speedup_gates(&report).and_then(|()| check_baseline(&report)) {
        eprintln!("FAIL: {e}");
        std::process::exit(1);
    }
}
