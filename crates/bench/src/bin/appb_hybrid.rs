//! Appendix B / Figure 15: hybrid clusters for separate ingress/egress
//! model debugging.
//!
//! Paper: "in order to tune/debug the ingress model and the egress model
//! separately … two separate testing frameworks" isolate one direction:
//! the tested direction flows through the model while the other direction
//! (and local traffic) uses the full-fidelity network. We reproduce this
//! with direction-restricted Mimics and compare each hybrid's accuracy to
//! the full-fidelity 2-cluster reference and to the both-directions Mimic.

use dcn_sim::cdf::wasserstein1;
use dcn_sim::simulator::Simulation;
use dcn_sim::topology::FatTree;
use mimicnet_bench::{header, pipeline_config, Scale};
use mimicnet::compose::OBSERVABLE;
use mimicnet::metrics::observed;
use mimicnet::pipeline::Pipeline;
use mimicnet::LearnedMimic;

fn main() {
    let scale = Scale::from_env();
    header(
        "Appendix B (Fig. 15)",
        "direction-isolated hybrid clusters: ingress-only vs egress-only vs both",
    );
    let mut pipe = Pipeline::new(pipeline_config(scale, 42));
    let trained = pipe.train();
    let (truth, _, _) = pipe.run_ground_truth(2);

    println!(
        "{:>14} | {:>11} | {:>13} | {:>11}",
        "variant", "W1(FCT)", "W1(tput)", "W1(RTT)"
    );
    for (name, ingress, egress) in [
        ("ingress-only", true, false),
        ("egress-only", false, true),
        ("both (mimic)", true, true),
    ] {
        let mut cfg = pipe.cfg.base;
        cfg.topo.clusters = 2;
        let mut sim = Simulation::with_transport(cfg, pipe.cfg.protocol.factory());
        let mimic = LearnedMimic::new(trained.clone(), cfg.topo, 2, 17);
        sim.set_cluster_model_dirs(1, Box::new(mimic), ingress, egress);
        let m = sim.run();
        let topo = FatTree::new(cfg.topo);
        let obs = observed(&m, &topo, OBSERVABLE);
        println!(
            "{name:>14} | {:>11.5} | {:>13.0} | {:>11.6}",
            wasserstein1(&truth.fct, &obs.fct),
            wasserstein1(&truth.throughput, &obs.throughput),
            wasserstein1(&truth.rtt, &obs.rtt),
        );
    }
    println!(
        "\nuse: when the combined Mimic misbehaves, the direction whose\n\
         hybrid W1 is worse is the model to retune (Appendix B's purpose)."
    );
}
