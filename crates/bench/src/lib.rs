//! Shared scaffolding for the figure/table reproduction binaries.
//!
//! Every figure and table of the paper's evaluation has a binary in
//! `src/bin/` (see DESIGN.md §4 for the index). All binaries honour the
//! `SCALE` environment variable:
//!
//! * `SCALE=quick` (default) — sizes/durations that finish in seconds to
//!   a couple of minutes on a laptop.
//! * `SCALE=full` — the largest sweep for which full-fidelity ground
//!   truth is still computable here (the paper itself capped ground truth
//!   at 128 clusters for the same reason).
//!
//! Output convention: a header citing the paper artifact, then a plain
//! text table whose rows mirror the paper's series. EXPERIMENTS.md records
//! paper-vs-measured values for each.

use dcn_sim::stats::percentile;
use std::time::Duration;

/// Scale knob for all benches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    Quick,
    Full,
}

impl Scale {
    pub fn from_env() -> Scale {
        match std::env::var("SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Cluster-count sweep (the paper sweeps 4–128).
    pub fn cluster_sweep(self) -> Vec<u32> {
        match self {
            Scale::Quick => vec![2, 4, 8, 16],
            Scale::Full => vec![2, 4, 8, 16, 32, 64],
        }
    }

    /// The "large" data center size for single-point comparisons
    /// (the paper's 128).
    pub fn large(self) -> u32 {
        match self {
            Scale::Quick => 16,
            Scale::Full => 64,
        }
    }

    /// Simulated seconds per run.
    pub fn duration_s(self) -> f64 {
        match self {
            Scale::Quick => 0.5,
            Scale::Full => 1.0,
        }
    }

    /// Training epochs.
    pub fn epochs(self) -> usize {
        match self {
            Scale::Quick => 5,
            Scale::Full => 8,
        }
    }
}

/// Print the standard figure header.
pub fn header(artifact: &str, what: &str) {
    println!("==================================================================");
    println!("MimicNet reproduction — {artifact}");
    println!("{what}");
    println!("scale: {:?} (set SCALE=full for the larger sweep)", Scale::from_env());
    println!("==================================================================");
}

/// CDF summary quantiles used across the figure tables.
pub fn q(xs: &[f64]) -> [f64; 5] {
    [
        percentile(xs, 10.0),
        percentile(xs, 50.0),
        percentile(xs, 90.0),
        percentile(xs, 99.0),
        percentile(xs, 100.0),
    ]
}

/// Format seconds compactly.
pub fn secs(d: Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

/// A standard quickly-trained pipeline config at the given scale.
///
/// Training runs data-parallel over four workers (clamped to the
/// machine's cores); the sharded reduction makes the resulting
/// parameters identical to a sequential run, so benchmark numbers stay
/// comparable across machines.
pub fn pipeline_config(scale: Scale, seed: u64) -> mimicnet::pipeline::PipelineConfig {
    let mut cfg = mimicnet::pipeline::PipelineConfig::default();
    cfg.base.duration_s = scale.duration_s();
    cfg.base.seed = seed;
    cfg.train.epochs = scale.epochs();
    cfg.train.window = 8;
    cfg.hidden = 24;
    cfg.with_workers(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_quick() {
        // (environment not set in tests)
        if std::env::var("SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Quick);
        }
    }

    #[test]
    fn sweeps_are_sane() {
        assert!(Scale::Quick.cluster_sweep().len() >= 3);
        assert!(Scale::Full.large() > Scale::Quick.large());
        assert!(Scale::Full.duration_s() >= Scale::Quick.duration_s());
    }

    #[test]
    fn quantiles_ordered() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let v = q(&xs);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(v[4], 99.0);
    }
}
