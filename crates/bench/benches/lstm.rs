//! Criterion: LSTM forward/backward cost per window size — the micro
//! numbers behind the paper's Appendix C (Figures 16/17) and the Mimic's
//! per-packet inference price.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mimic_ml::matrix::Matrix;
use mimic_ml::model::SeqModel;

const FEATURES: usize = 21; // width of the default feature config
const HIDDEN: usize = 32;

fn window_inputs(w: usize, batch: usize) -> Vec<Matrix> {
    (0..w)
        .map(|t| Matrix::from_fn(batch, FEATURES, |i, j| ((i + j + t) % 7) as f32 * 0.1))
        .collect()
}

fn bench_forward(c: &mut Criterion) {
    let model = SeqModel::new(FEATURES, HIDDEN, 1);
    let mut group = c.benchmark_group("lstm_forward");
    for &w in &[1usize, 5, 12, 20] {
        let xs = window_inputs(w, 32);
        group.bench_with_input(BenchmarkId::new("window_batch32", w), &w, |b, _| {
            b.iter(|| black_box(model.forward_window(&xs).0.data[0]))
        });
    }
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("lstm_backward");
    for &w in &[5usize, 12] {
        let xs = window_inputs(w, 32);
        group.bench_with_input(BenchmarkId::new("bptt_batch32", w), &w, |b, _| {
            let model = SeqModel::new(FEATURES, HIDDEN, 1);
            let mut grads = model.new_grads();
            b.iter(|| {
                let (y, cache) = model.forward_window(&xs);
                grads.zero();
                model.backward_window(&cache, &y, &mut grads);
                black_box(grads.head.w.data[0])
            })
        });
    }
    group.finish();
}

fn bench_stateful_inference(c: &mut Criterion) {
    // The per-packet cost inside a running Mimic (state carried, O(1) in
    // the window).
    let model = SeqModel::new(FEATURES, HIDDEN, 1);
    let x: Vec<f32> = (0..FEATURES).map(|i| (i % 5) as f32 * 0.2).collect();
    c.bench_function("lstm/stateful_step", |b| {
        let mut state = model.init_state();
        b.iter(|| black_box(model.step(&x, &mut state)[0]))
    });
}

criterion_group!{name = benches; config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500)); targets = bench_forward, bench_backward, bench_stateful_inference}
criterion_main!(benches);
