//! Criterion: feeder sampling and feature extraction — the steady-state
//! per-synthetic-packet cost inside every Mimic (paper §6's feeders fire
//! continuously during large compositions).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dcn_sim::time::SimTime;
use mimicnet::features::{FeatureConfig, FeatureExtractor, PacketView};
use mimicnet::feeder::{DirFit, Feeder};

fn fit() -> DirFit {
    let inter: Vec<f64> = (0..512).map(|i| 0.0005 + (i % 13) as f64 * 1e-5).collect();
    DirFit::fit(&inter, &[40.0, 1500.0, 1500.0, 1500.0])
}

fn bench_feeder_fire(c: &mut Criterion) {
    c.bench_function("feeder/fire", |b| {
        let mut f = Feeder::new(fit(), 16, 2, 2, 2, 2, 7);
        b.iter(|| {
            let t = f.next_time().expect("active feeder");
            black_box(f.fire(t).is_some())
        })
    });
}

fn bench_feature_extraction(c: &mut Criterion) {
    let cfg = FeatureConfig::from_topology(&dcn_sim::topology::FatTreeParams::new(2, 2, 2, 2, 1));
    c.bench_function("features/extract", |b| {
        let mut fx = FeatureExtractor::new(cfg);
        let mut t = 0u64;
        b.iter(|| {
            t += 10_000;
            let v = PacketView {
                time: SimTime(t),
                wire_bytes: 1500,
                rack: (t % 2) as u32,
                server: ((t / 2) % 2) as u32,
                agg: 0,
                core: 1,
                kind: dcn_sim::packet::PacketKind::Data,
                ecn: dcn_sim::packet::Ecn::Ect,
                prio: 0,
            };
            black_box(fx.extract(&v).len())
        })
    });
}

fn bench_fit(c: &mut Criterion) {
    let inter: Vec<f64> = (0..10_000).map(|i| 0.0005 + (i % 97) as f64 * 1e-6).collect();
    let sizes: Vec<f64> = (0..10_000).map(|i| if i % 3 == 0 { 40.0 } else { 1500.0 }).collect();
    c.bench_function("feeder/fit_10k", |b| {
        b.iter(|| black_box(DirFit::fit(&inter, &sizes).rate_pps))
    });
}

criterion_group!{name = benches; config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500)); targets = bench_feeder_fire, bench_feature_extraction, bench_fit}
criterion_main!(benches);
