//! Criterion: event-queue scheduling/pop throughput — the inner loop of
//! every packet-level simulation (paper §2.2: the simulator "serializes
//! [the network] into a single event queue").

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dcn_sim::event::{EventKind, EventQueue};
use dcn_sim::time::SimTime;
use dcn_sim::topology::NodeId;

fn bench_schedule_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &n in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("schedule_then_drain", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                // Pseudo-random times via a multiplicative hash.
                for i in 0..n {
                    let t = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) % 1_000_000;
                    q.schedule(
                        SimTime(t),
                        EventKind::FlowArrival {
                            host: NodeId((i % 64) as u32),
                        },
                    );
                }
                let mut count = 0;
                while let Some(e) = q.pop() {
                    count += black_box(e.time.0 as usize & 1);
                }
                black_box(count)
            })
        });
    }
    group.finish();
}

fn bench_interleaved(c: &mut Criterion) {
    // Hold-and-schedule pattern typical of simulation steady state.
    c.bench_function("event_queue/steady_state_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..128u64 {
                q.schedule(SimTime(i), EventKind::FlowArrival { host: NodeId(0) });
            }
            for i in 0..10_000u64 {
                let e = q.pop().expect("queue primed");
                q.schedule(
                    SimTime(e.time.0 + 100 + (i % 7)),
                    EventKind::FlowArrival {
                        host: NodeId((i % 64) as u32),
                    },
                );
            }
            black_box(q.len())
        })
    });
}

criterion_group!{name = benches; config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500)); targets = bench_schedule_pop, bench_interleaved}
criterion_main!(benches);
