//! Criterion: whole-simulation packet-switching throughput (events/sec of
//! the sequential engine at several network sizes) — the raw cost behind
//! Figures 2 and 10–12.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dcn_sim::config::SimConfig;
use dcn_sim::simulator::Simulation;
use dcn_transport::Protocol;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    for &clusters in &[2u32, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("newreno_100ms", clusters),
            &clusters,
            |b, &clusters| {
                b.iter(|| {
                    let mut cfg = SimConfig::with_clusters(clusters);
                    cfg.duration_s = 0.1;
                    cfg.seed = 1;
                    let m = Simulation::with_transport(cfg, Protocol::NewReno.factory()).run();
                    black_box(m.events_processed)
                })
            },
        );
    }
    group.finish();
}

fn bench_queue_ops(c: &mut Criterion) {
    use dcn_sim::packet::{FlowId, Packet};
    use dcn_sim::queue::{PortQueue, QueueConfig};
    use dcn_sim::time::SimTime;
    use dcn_sim::topology::NodeId;
    c.bench_function("queue/enqueue_dequeue_1k", |b| {
        b.iter(|| {
            let mut q = PortQueue::new(QueueConfig::ecn(1_000_000, 20));
            for i in 0..1000u64 {
                let p = Packet::data(
                    i,
                    FlowId(i % 16),
                    NodeId(0),
                    NodeId(1),
                    0,
                    1460,
                    true,
                    SimTime::ZERO,
                );
                q.enqueue(p);
                if i % 2 == 0 {
                    black_box(q.dequeue());
                }
            }
            black_box(q.len_pkts())
        })
    });
}

fn bench_routing(c: &mut Criterion) {
    use dcn_sim::packet::FlowId;
    use dcn_sim::routing::Router;
    use dcn_sim::topology::{FatTree, FatTreeParams};
    let topo = FatTree::new(FatTreeParams::new(32, 2, 2, 2, 2));
    let router = Router::new(topo.clone());
    c.bench_function("routing/inter_cluster_path", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for f in 0..256u64 {
                let src = topo.host((f % 31) as u32, 0, 0);
                let dst = topo.host(31, 1, 1);
                acc += router.path(FlowId(f), src, dst).len();
            }
            black_box(acc)
        })
    });
}

criterion_group!{name = benches; config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500)); targets = bench_simulation, bench_queue_ops, bench_routing}
criterion_main!(benches);
