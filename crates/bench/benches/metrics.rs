//! Criterion: cost of the evaluation metrics themselves (W1 over large
//! sample sets, percentile extraction) — these run once per tuning
//! evaluation, so they must stay cheap.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dcn_sim::cdf::wasserstein1;
use dcn_sim::stats::{percentile, Summary};

fn samples(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = dcn_sim::rng::SplitMix64::new(seed);
    (0..n).map(|_| rng.exp(0.05)).collect()
}

fn bench_w1(c: &mut Criterion) {
    let mut group = c.benchmark_group("wasserstein1");
    for &n in &[1_000usize, 10_000, 100_000] {
        let a = samples(n, 1);
        let b_set = samples(n, 2);
        group.bench_with_input(BenchmarkId::new("equal_sizes", n), &n, |b, _| {
            b.iter(|| black_box(wasserstein1(&a, &b_set)))
        });
    }
    group.finish();
}

fn bench_percentiles(c: &mut Criterion) {
    let xs = samples(100_000, 3);
    c.bench_function("stats/percentile_p99_100k", |b| {
        b.iter(|| black_box(percentile(&xs, 99.0)))
    });
    c.bench_function("stats/summary_100k", |b| {
        b.iter(|| black_box(Summary::of(&xs).p99))
    });
}

criterion_group!{name = benches; config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500)); targets = bench_w1, bench_percentiles}
criterion_main!(benches);
