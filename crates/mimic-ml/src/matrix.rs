//! Dense row-major `f32` matrices.
//!
//! Deliberately minimal: the LSTM forward/backward passes need matrix
//! multiplication (including the `Aᵀ·B` and `A·Bᵀ` forms for gradients),
//! element-wise combination, and row-broadcast bias addition.
//!
//! Two kernel families exist for the three multiply shapes:
//!
//! * **Naive** — the reference `i-k-j` loops (`*_naive`). Simple, obviously
//!   correct, and kept forever as the oracle for the blocked kernels'
//!   property tests and as the "before" side of the perf benchmarks.
//! * **Blocked** — cache-blocked, register-tiled loops over contiguous row
//!   slices (`*_blocked`). The inner loops are plain slice zips that LLVM
//!   auto-vectorizes on stable Rust; there is no `std::simd` and no
//!   external BLAS. `matmul_blocked` preserves the naive per-row `k`
//!   accumulation order exactly; `t_matmul_blocked` / `matmul_t_blocked`
//!   reassociate sums (bounded by the 1e-5 property tests).
//!
//! The public `matmul`/`t_matmul`/`matmul_t` dispatch on a process-wide
//! [`KernelMode`] (default [`KernelMode::Blocked`]). The switch exists so
//! benchmarks can measure an honest naive baseline in the same binary;
//! tests that need naive results call the `*_naive` methods directly
//! rather than flipping the global (tests run concurrently).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU8, Ordering};

/// Which matmul kernels the process uses (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KernelMode {
    /// Reference `i-k-j` triple loops.
    Naive = 0,
    /// Cache-blocked, register-tiled kernels (default).
    Blocked = 1,
}

static KERNEL_MODE: AtomicU8 = AtomicU8::new(KernelMode::Blocked as u8);

/// Switch the process-wide kernel mode (benchmarks only; not thread-scoped).
pub fn set_kernel_mode(mode: KernelMode) {
    KERNEL_MODE.store(mode as u8, Ordering::Relaxed);
}

/// The current process-wide kernel mode.
pub fn kernel_mode() -> KernelMode {
    if KERNEL_MODE.load(Ordering::Relaxed) == KernelMode::Naive as u8 {
        KernelMode::Naive
    } else {
        KernelMode::Blocked
    }
}

/// Fused multiply-add where the target has a hardware FMA unit (one
/// rounding, twice the peak FLOPs of separate mul+add); plain `a*b + c`
/// elsewhere — `f32::mul_add` without hardware support falls back to a
/// slow exact softfloat routine, which would be a perf cliff, not a win.
#[inline(always)]
pub(crate) fn fmadd(a: f32, b: f32, c: f32) -> f32 {
    #[cfg(any(target_feature = "fma", target_arch = "aarch64"))]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(any(target_feature = "fma", target_arch = "aarch64")))]
    {
        a * b + c
    }
}

/// Rows per register tile: four output rows share one streamed B row, so
/// each loaded `b` value feeds four FMAs instead of one.
const MR: usize = 4;
/// `k`-panel depth: the slice of B rows kept hot in cache while a panel of
/// A columns is consumed.
const KC: usize = 128;

/// Dot product with eight independent partial accumulators so the FP adds
/// form parallel chains LLVM can vectorize (a single serial chain cannot
/// be reordered under IEEE semantics).
#[inline]
fn dot8(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    let ca = a.chunks_exact(8);
    let cb = b.chunks_exact(8);
    let mut tail = 0.0f32;
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    for (ka, kb) in ca.zip(cb) {
        for (l, acc_l) in acc.iter_mut().enumerate() {
            *acc_l = fmadd(ka[l], kb[l], *acc_l);
        }
    }
    let s = ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]));
    s + tail
}

/// A dense `rows × cols` matrix of `f32` in row-major order.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Matrix {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a generator over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.data[i * cols + j] = f(i, j);
            }
        }
        m
    }

    /// Build from rows of equal length.
    ///
    /// # Panics
    /// If rows have unequal lengths or the input is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Matrix {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// Borrow row `i`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// `self · other`, dispatching on the process [`kernel_mode`].
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        match kernel_mode() {
            KernelMode::Naive => self.matmul_naive(other),
            KernelMode::Blocked => self.matmul_blocked(other),
        }
    }

    /// `selfᵀ · other` (no materialized transpose), dispatching on the
    /// process [`kernel_mode`].
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        match kernel_mode() {
            KernelMode::Naive => self.t_matmul_naive(other),
            KernelMode::Blocked => self.t_matmul_blocked(other),
        }
    }

    /// `self · otherᵀ` (no materialized transpose), dispatching on the
    /// process [`kernel_mode`].
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        match kernel_mode() {
            KernelMode::Naive => self.matmul_t_naive(other),
            KernelMode::Blocked => self.matmul_t_blocked(other),
        }
    }

    /// `out += self · other` — the accumulating form for callers that sum
    /// several products into one buffer (e.g. `x·Wx + h·Wh`): it skips the
    /// temporary result and the extra add pass. Dispatches on the process
    /// [`kernel_mode`].
    pub fn matmul_accum(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "matmul output shape mismatch"
        );
        match kernel_mode() {
            KernelMode::Naive => self.matmul_accum_naive(other, out),
            KernelMode::Blocked => self.matmul_accum_blocked(other, out),
        }
    }

    fn matmul_accum_naive(&self, other: &Matrix, out: &mut Matrix) {
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
    }

    /// Reference `self · other`: `i-k-j` saxpy loops.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_accum_naive(other, &mut out);
        out
    }

    /// Blocked `self · other`: `KC`-deep `k` panels × `MR`-row register
    /// tiles. Per output row the `k` accumulation order matches the naive
    /// kernel, but each multiply-add is contracted into a hardware FMA
    /// (one rounding instead of two), so results agree with
    /// [`Self::matmul_naive`] to ~1e-6 relative rather than bit-for-bit.
    pub fn matmul_blocked(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_accum_blocked(other, &mut out);
        out
    }

    fn matmul_accum_blocked(&self, other: &Matrix, out: &mut Matrix) {
        let (m, kk, n) = (self.rows, self.cols, other.cols);
        let mut k0 = 0;
        while k0 < kk {
            let k1 = (k0 + KC).min(kk);
            let mut i = 0;
            while i + MR <= m {
                let orows = &mut out.data[i * n..(i + MR) * n];
                let (o0, rest) = orows.split_at_mut(n);
                let (o1, rest) = rest.split_at_mut(n);
                let (o2, o3) = rest.split_at_mut(n);
                for k in k0..k1 {
                    let a0 = self.data[i * kk + k];
                    let a1 = self.data[(i + 1) * kk + k];
                    let a2 = self.data[(i + 2) * kk + k];
                    let a3 = self.data[(i + 3) * kk + k];
                    let brow = &other.data[k * n..(k + 1) * n];
                    for ((((v0, v1), v2), v3), &b) in o0
                        .iter_mut()
                        .zip(o1.iter_mut())
                        .zip(o2.iter_mut())
                        .zip(o3.iter_mut())
                        .zip(brow)
                    {
                        *v0 = fmadd(a0, b, *v0);
                        *v1 = fmadd(a1, b, *v1);
                        *v2 = fmadd(a2, b, *v2);
                        *v3 = fmadd(a3, b, *v3);
                    }
                }
                i += MR;
            }
            while i < m {
                let orow = &mut out.data[i * n..(i + 1) * n];
                for k in k0..k1 {
                    let a = self.data[i * kk + k];
                    let brow = &other.data[k * n..(k + 1) * n];
                    for (o, &b) in orow.iter_mut().zip(brow) {
                        *o = fmadd(a, b, *o);
                    }
                }
                i += 1;
            }
            k0 = k1;
        }
    }

    /// `out += selfᵀ · other` — the accumulating form used for gradient
    /// buffers: it skips the temporary result and the extra add pass of
    /// `out.add_assign(&self.t_matmul(other))`. Dispatches on the process
    /// [`kernel_mode`].
    pub fn t_matmul_accum(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "t_matmul dimension mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.cols, other.cols),
            "t_matmul output shape mismatch"
        );
        match kernel_mode() {
            KernelMode::Naive => self.t_matmul_accum_naive(other, out),
            KernelMode::Blocked => self.t_matmul_accum_blocked(other, out),
        }
    }

    fn t_matmul_accum_naive(&self, other: &Matrix, out: &mut Matrix) {
        for r in 0..self.rows {
            let arow = self.row(r);
            let brow = other.row(r);
            for (i, &a) in arow.iter().enumerate() {
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
    }

    fn t_matmul_accum_blocked(&self, other: &Matrix, out: &mut Matrix) {
        let (m, n) = (self.cols, other.cols);
        let mut r0 = 0;
        while r0 + MR <= self.rows {
            let a0r = self.row(r0);
            let a1r = self.row(r0 + 1);
            let a2r = self.row(r0 + 2);
            let a3r = self.row(r0 + 3);
            let b0 = other.row(r0);
            let b1 = other.row(r0 + 1);
            let b2 = other.row(r0 + 2);
            let b3 = other.row(r0 + 3);
            for i in 0..m {
                let (a0, a1, a2, a3) = (a0r[i], a1r[i], a2r[i], a3r[i]);
                let orow = &mut out.data[i * n..(i + 1) * n];
                for ((((o, &v0), &v1), &v2), &v3) in
                    orow.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
                {
                    *o = fmadd(a0, v0, fmadd(a1, v1, fmadd(a2, v2, fmadd(a3, v3, *o))));
                }
            }
            r0 += MR;
        }
        for r in r0..self.rows {
            let arow = self.row(r);
            let brow = other.row(r);
            for (i, &a) in arow.iter().enumerate() {
                let orow = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o = fmadd(a, b, *o);
                }
            }
        }
    }

    /// Reference `selfᵀ · other`: rank-1 updates over shared rows.
    pub fn t_matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul dimension mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.t_matmul_accum_naive(other, &mut out);
        out
    }

    /// Blocked `selfᵀ · other`: `MR` shared rows are folded into each
    /// output row per pass, quartering the passes over `out` and giving
    /// the inner loop four independent multiply-adds per store.
    pub fn t_matmul_blocked(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul dimension mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.t_matmul_accum_blocked(other, &mut out);
        out
    }

    /// Reference `self · otherᵀ`: serial dot products.
    pub fn matmul_t_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..other.rows {
                let brow = other.row(j);
                let mut s = 0.0;
                for (&a, &b) in arow.iter().zip(brow) {
                    s += a * b;
                }
                out.data[i * other.rows + j] = s;
            }
        }
        out
    }

    /// Blocked `self · otherᵀ`: both operands are walked row-contiguously
    /// and each dot product runs on eight parallel accumulator lanes.
    pub fn matmul_t_blocked(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = &mut out.data[i * other.rows..(i + 1) * other.rows];
            for (j, o) in orow.iter_mut().enumerate() {
                *o = dot8(arow, other.row(j));
            }
        }
        out
    }

    /// Element-wise in-place: `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Add a row vector to every row.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(self.cols, bias.len());
        for i in 0..self.rows {
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            for (r, &b) in row.iter_mut().zip(bias) {
                *r += b;
            }
        }
    }

    /// Sum over rows, producing a row vector (bias gradients).
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(i)) {
                *o += v;
            }
        }
        out
    }

    /// Scale all entries.
    pub fn scale(&mut self, k: f32) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Apply a function element-wise, producing a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise product (Hadamard), producing a new matrix.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a * b)
                .collect(),
        }
    }

    /// Frobenius norm (for gradient clipping / tests).
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::MlRng;

    fn m(rows: &[&[f32]]) -> Matrix {
        Matrix::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>())
    }

    fn random(rows: usize, cols: usize, rng: &mut MlRng) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| rng.uniform_sym(1.0) as f32)
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32, label: &str) {
        assert_eq!((a.rows, a.cols), (b.rows, b.cols), "{label} shape");
        for (i, (&x, &y)) in a.data.iter().zip(&b.data).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{label}[{i}]: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matmul_known() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = m(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, m(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity() {
        let a = m(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let id = Matrix::from_fn(3, 3, |i, j| if i == j { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]); // 3x2
        let b = m(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, 1.0], &[1.0, 1.0, 0.0]]); // 3x3
        let at = Matrix::from_fn(2, 3, |i, j| a.get(j, i));
        assert_close(&a.t_matmul(&b), &at.matmul(&b), 1e-6, "t_matmul");
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let a = m(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]); // 2x3
        let b = m(&[&[1.0, 0.0, 1.0], &[2.0, 1.0, 0.0]]); // 2x3
        let bt = Matrix::from_fn(3, 2, |i, j| b.get(j, i));
        assert_close(&a.matmul_t(&b), &a.matmul(&bt), 1e-6, "matmul_t");
    }

    #[test]
    fn blocked_matmul_matches_naive_within_epsilon() {
        // The blocked kernel preserves the naive per-row k order but
        // contracts each multiply-add into one FMA (single rounding), so
        // results agree to epsilon rather than bit-for-bit.
        let mut rng = MlRng::new(42);
        for &(r, k, c) in &[(1, 1, 1), (3, 5, 2), (4, 4, 4), (7, 131, 9), (16, 256, 33)] {
            let a = random(r, k, &mut rng);
            let b = random(k, c, &mut rng);
            assert_close(&a.matmul_blocked(&b), &a.matmul_naive(&b), 1e-5, "matmul");
        }
    }

    #[test]
    fn blocked_kernels_match_naive_on_awkward_shapes() {
        // Shapes deliberately not divisible by MR/KC, plus degenerate ones.
        let mut rng = MlRng::new(7);
        for &(r, k, c) in &[(1, 1, 1), (2, 3, 5), (5, 7, 3), (9, 130, 11), (13, 129, 6)] {
            let a = random(r, k, &mut rng);
            let b = random(k, c, &mut rng);
            assert_close(&a.matmul_blocked(&b), &a.matmul_naive(&b), 1e-5, "matmul");
            let a2 = random(k, r, &mut rng);
            let b2 = random(k, c, &mut rng);
            assert_close(&a2.t_matmul_blocked(&b2), &a2.t_matmul_naive(&b2), 1e-5, "t_matmul");
            let a3 = random(r, k, &mut rng);
            let b3 = random(c, k, &mut rng);
            assert_close(&a3.matmul_t_blocked(&b3), &a3.matmul_t_naive(&b3), 1e-5, "matmul_t");
        }
    }

    #[test]
    fn kernel_mode_default_is_blocked() {
        assert_eq!(kernel_mode(), KernelMode::Blocked);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut a = Matrix::zeros(3, 2);
        a.row_mut(1).copy_from_slice(&[4.0, 5.0]);
        assert_eq!(a.row(1), &[4.0, 5.0]);
        assert_eq!(a.row(0), &[0.0, 0.0]);
        assert_eq!(a.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn broadcast_and_sum_rows_are_adjoint() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(a.sum_rows(), vec![3.0, 6.0]);
    }

    #[test]
    fn hadamard_and_map() {
        let a = m(&[&[1.0, -2.0]]);
        let b = m(&[&[3.0, 4.0]]);
        assert_eq!(a.hadamard(&b), m(&[&[3.0, -8.0]]));
        assert_eq!(a.map(f32::abs), m(&[&[1.0, 2.0]]));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_bad_dims() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn norm_known() {
        let a = m(&[&[3.0, 4.0]]);
        assert_eq!(a.norm(), 5.0);
    }
}
