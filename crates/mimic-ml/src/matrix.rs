//! Dense row-major `f32` matrices.
//!
//! Deliberately minimal: the LSTM forward/backward passes need matrix
//! multiplication (including the `Aᵀ·B` and `A·Bᵀ` forms for gradients),
//! element-wise combination, and row-broadcast bias addition. Loops are
//! ordered `i-k-j` so the inner loop walks both operands contiguously.

use serde::{Deserialize, Serialize};

/// A dense `rows × cols` matrix of `f32` in row-major order.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Matrix {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a generator over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.data[i * cols + j] = f(i, j);
            }
        }
        m
    }

    /// Build from rows of equal length.
    ///
    /// # Panics
    /// If rows have unequal lengths or the input is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Matrix {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// Borrow row `i`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// `self · other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul dimension mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let arow = self.row(r);
            let brow = other.row(r);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materializing the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..other.rows {
                let brow = other.row(j);
                let mut s = 0.0;
                for (&a, &b) in arow.iter().zip(brow) {
                    s += a * b;
                }
                out.data[i * other.rows + j] = s;
            }
        }
        out
    }

    /// Element-wise in-place: `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Add a row vector to every row.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(self.cols, bias.len());
        for i in 0..self.rows {
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            for (r, &b) in row.iter_mut().zip(bias) {
                *r += b;
            }
        }
    }

    /// Sum over rows, producing a row vector (bias gradients).
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(i)) {
                *o += v;
            }
        }
        out
    }

    /// Scale all entries.
    pub fn scale(&mut self, k: f32) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Apply a function element-wise, producing a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise product (Hadamard), producing a new matrix.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a * b)
                .collect(),
        }
    }

    /// Frobenius norm (for gradient clipping / tests).
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[f32]]) -> Matrix {
        Matrix::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>())
    }

    #[test]
    fn matmul_known() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = m(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, m(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity() {
        let a = m(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let id = Matrix::from_fn(3, 3, |i, j| if i == j { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]); // 3x2
        let b = m(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, 1.0], &[1.0, 1.0, 0.0]]); // 3x3
        let at = Matrix::from_fn(2, 3, |i, j| a.get(j, i));
        assert_eq!(a.t_matmul(&b), at.matmul(&b));
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let a = m(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]); // 2x3
        let b = m(&[&[1.0, 0.0, 1.0], &[2.0, 1.0, 0.0]]); // 2x3
        let bt = Matrix::from_fn(3, 2, |i, j| b.get(j, i));
        assert_eq!(a.matmul_t(&b), a.matmul(&bt));
    }

    #[test]
    fn broadcast_and_sum_rows_are_adjoint() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(a.sum_rows(), vec![3.0, 6.0]);
    }

    #[test]
    fn hadamard_and_map() {
        let a = m(&[&[1.0, -2.0]]);
        let b = m(&[&[3.0, 4.0]]);
        assert_eq!(a.hadamard(&b), m(&[&[3.0, -8.0]]));
        assert_eq!(a.map(f32::abs), m(&[&[1.0, 2.0]]));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_bad_dims() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn norm_known() {
        let a = m(&[&[3.0, 4.0]]);
        assert_eq!(a.norm(), 5.0);
    }
}
