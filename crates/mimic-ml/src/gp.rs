//! Gaussian-process regression with an RBF kernel.
//!
//! The engine behind MimicNet's Bayesian hyper-parameter optimization
//! (§7.2): the GP models "end-to-end accuracy as a function of
//! hyper-parameters", and the acquisition function (in
//! [`crate::bayesopt`]) picks the next configuration by expected
//! improvement. Kernel math in `f64` with a Cholesky solve — observation
//! counts here are tens, not thousands.

/// Squared-exponential kernel with signal variance, length scale, and
/// observation noise.
#[derive(Clone, Copy, Debug)]
pub struct RbfKernel {
    pub signal_var: f64,
    pub length_scale: f64,
    pub noise_var: f64,
}

impl Default for RbfKernel {
    fn default() -> Self {
        RbfKernel {
            signal_var: 1.0,
            length_scale: 0.3, // inputs are normalized to [0,1]^d
            noise_var: 1e-4,
        }
    }
}

impl RbfKernel {
    /// `k(a, b)` without the noise term.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        self.signal_var * (-d2 / (2.0 * self.length_scale * self.length_scale)).exp()
    }
}

/// Cholesky decomposition of a symmetric positive-definite matrix
/// (row-major, `n × n`). Returns the lower factor `L` or `None` if the
/// matrix is not positive definite.
pub fn cholesky(a: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n);
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[i * n + j];
            for k in 0..j {
                s -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if s <= 0.0 {
                    return None;
                }
                l[i * n + i] = s.sqrt();
            } else {
                l[i * n + j] = s / l[j * n + j];
            }
        }
    }
    Some(l)
}

/// Solve `L·x = b` (forward substitution).
pub fn solve_lower(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    let mut x = b.to_vec();
    for i in 0..n {
        for k in 0..i {
            let v = x[k];
            x[i] -= l[i * n + k] * v;
        }
        x[i] /= l[i * n + i];
    }
    x
}

/// Solve `Lᵀ·x = b` (back substitution).
pub fn solve_upper_t(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        for k in (i + 1)..n {
            let v = x[k];
            x[i] -= l[k * n + i] * v;
        }
        x[i] /= l[i * n + i];
    }
    x
}

/// A fitted Gaussian process.
pub struct Gp {
    kernel: RbfKernel,
    xs: Vec<Vec<f64>>,
    /// Cholesky factor of `K + σn² I`.
    l: Vec<f64>,
    /// `(K + σn² I)⁻¹ y`.
    alpha: Vec<f64>,
    /// Mean of the training targets (the GP models residuals).
    y_mean: f64,
}

impl Gp {
    /// Fit on observations `(xs, ys)`.
    ///
    /// # Panics
    /// If inputs are empty or mismatched.
    pub fn fit(xs: Vec<Vec<f64>>, ys: &[f64], kernel: RbfKernel) -> Gp {
        assert!(!xs.is_empty() && xs.len() == ys.len());
        let n = xs.len();
        let y_mean = ys.iter().sum::<f64>() / n as f64;
        let resid: Vec<f64> = ys.iter().map(|y| y - y_mean).collect();
        let mut k = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                k[i * n + j] = kernel.eval(&xs[i], &xs[j]);
                if i == j {
                    k[i * n + j] += kernel.noise_var;
                }
            }
        }
        // Jitter escalation if the kernel matrix is near-singular.
        let mut jitter = 0.0;
        let l = loop {
            let mut kj = k.clone();
            if jitter > 0.0 {
                for i in 0..n {
                    kj[i * n + i] += jitter;
                }
            }
            if let Some(l) = cholesky(&kj, n) {
                break l;
            }
            jitter = if jitter == 0.0 { 1e-8 } else { jitter * 10.0 };
            assert!(jitter < 1.0, "kernel matrix irreparably singular");
        };
        let tmp = solve_lower(&l, n, &resid);
        let alpha = solve_upper_t(&l, n, &tmp);
        Gp {
            kernel,
            xs,
            l,
            alpha,
            y_mean,
        }
    }

    /// Posterior mean and variance at `x`.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let n = self.xs.len();
        let kstar: Vec<f64> = self.xs.iter().map(|xi| self.kernel.eval(xi, x)).collect();
        let mean = self.y_mean
            + kstar
                .iter()
                .zip(&self.alpha)
                .map(|(k, a)| k * a)
                .sum::<f64>();
        let v = solve_lower(&self.l, n, &kstar);
        let var = self.kernel.eval(x, x) - v.iter().map(|vi| vi * vi).sum::<f64>();
        (mean, var.max(1e-12))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_known() {
        // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]].
        let l = cholesky(&[4.0, 2.0, 2.0, 3.0], 2).unwrap();
        assert!((l[0] - 2.0).abs() < 1e-12);
        assert!((l[2] - 1.0).abs() < 1e-12);
        assert!((l[3] - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        assert!(cholesky(&[1.0, 2.0, 2.0, 1.0], 2).is_none());
    }

    #[test]
    fn triangular_solves_invert() {
        let a = [4.0, 2.0, 2.0, 3.0];
        let l = cholesky(&a, 2).unwrap();
        // Solve A x = b via L then L^T.
        let b = [10.0, 8.0];
        let t = solve_lower(&l, 2, &b);
        let x = solve_upper_t(&l, 2, &t);
        // Check A x = b.
        assert!((4.0 * x[0] + 2.0 * x[1] - 10.0).abs() < 1e-10);
        assert!((2.0 * x[0] + 3.0 * x[1] - 8.0).abs() < 1e-10);
    }

    #[test]
    fn gp_interpolates_observations() {
        let xs = vec![vec![0.0], vec![0.5], vec![1.0]];
        let ys = [1.0, 0.0, 1.0];
        let gp = Gp::fit(xs, &ys, RbfKernel::default());
        for (x, y) in [(0.0, 1.0), (0.5, 0.0), (1.0, 1.0)] {
            let (m, v) = gp.predict(&[x]);
            assert!((m - y).abs() < 0.05, "mean at {x}: {m}");
            assert!(v < 0.01, "variance at observation: {v}");
        }
    }

    #[test]
    fn gp_uncertainty_grows_away_from_data() {
        let xs = vec![vec![0.0], vec![0.1]];
        let ys = [0.0, 0.0];
        let gp = Gp::fit(xs, &ys, RbfKernel::default());
        let (_, v_near) = gp.predict(&[0.05]);
        let (_, v_far) = gp.predict(&[1.0]);
        assert!(v_far > v_near * 10.0, "near {v_near}, far {v_far}");
    }

    #[test]
    fn gp_reverts_to_mean_far_away() {
        let xs = vec![vec![0.0], vec![0.2]];
        let ys = [2.0, 4.0];
        let gp = Gp::fit(xs, &ys, RbfKernel::default());
        let (m, _) = gp.predict(&[100.0]);
        assert!((m - 3.0).abs() < 1e-6, "prior mean should dominate: {m}");
    }

    #[test]
    fn gp_smooth_between_points() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = [0.0, 1.0];
        let gp = Gp::fit(xs, &ys, RbfKernel { length_scale: 0.6, ..RbfKernel::default() });
        let (m, _) = gp.predict(&[0.5]);
        assert!(m > 0.2 && m < 0.8, "midpoint mean {m}");
    }
}
