//! The mini-batch training loop for internal models.

use crate::dataset::{PacketDataset, WindowBatcher};
use crate::loss::CombinedLoss;
use crate::matrix::Matrix;
use crate::model::SeqModel;
use crate::optim::Adam;
use crate::rng::MlRng;

/// Hyperparameters of one training run (the things §7.2 tunes).
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub window: usize,
    pub lr: f32,
    pub loss: CombinedLoss,
    /// Global gradient-norm clip (BPTT stability).
    pub clip: f32,
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 6,
            batch_size: 32,
            window: 12, // ≈ BDP in packets (paper Appendix C)
            lr: 3e-3,
            loss: CombinedLoss::default(),
            clip: 5.0,
            seed: 1,
        }
    }
}

/// Per-epoch training record.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Total optimizer steps taken.
    pub steps: usize,
    /// Learning-rate backoffs triggered by non-finite epoch losses.
    pub backoffs: usize,
}

impl TrainReport {
    /// The last epoch's mean loss, if any epoch ran.
    pub fn final_loss(&self) -> Option<f64> {
        self.epoch_losses.last().copied()
    }
}

/// Why a training run could not proceed.
#[derive(Clone, Debug, PartialEq)]
pub enum TrainError {
    /// The dataset contains no samples.
    EmptyDataset,
    /// Feature width does not match the model's input dimension.
    WidthMismatch { data: usize, model: usize },
    /// The loss stayed non-finite even after restoring the best
    /// checkpoint and backing the learning rate off repeatedly — the data
    /// or hyperparameters are pathological.
    NonFiniteLoss { epoch: usize },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::EmptyDataset => write!(f, "cannot train on an empty dataset"),
            TrainError::WidthMismatch { data, model } => write!(
                f,
                "feature width mismatch: dataset has {data} features, model expects {model}"
            ),
            TrainError::NonFiniteLoss { epoch } => write!(
                f,
                "training diverged: loss stayed non-finite through epoch {epoch} despite LR backoff"
            ),
        }
    }
}

impl std::error::Error for TrainError {}

/// Consecutive non-finite epochs tolerated (each restores the best
/// checkpoint and halves the learning rate) before giving up.
const MAX_BACKOFFS: usize = 3;

/// Train `model` on `data` in place; returns the loss trajectory.
///
/// Robustness: if an epoch's mean loss comes back NaN/Inf (exploded
/// gradients), the model is rolled back to the best checkpoint seen so
/// far, the learning rate is halved, and the epoch retried — up to
/// [`MAX_BACKOFFS`] consecutive times before erroring out. On a
/// non-divergent run this costs one model clone per improving epoch and
/// changes nothing else.
pub fn train(
    model: &mut SeqModel,
    data: &PacketDataset,
    cfg: &TrainConfig,
) -> Result<TrainReport, TrainError> {
    if data.is_empty() {
        return Err(TrainError::EmptyDataset);
    }
    if data.width() != model.input_dim() {
        return Err(TrainError::WidthMismatch {
            data: data.width(),
            model: model.input_dim(),
        });
    }
    let mut lr = cfg.lr;
    let mut opt = Adam::new(lr);
    let mut rng = MlRng::new(cfg.seed);
    let mut report = TrainReport::default();
    let mut best: Option<(SeqModel, f64)> = None;
    let mut consecutive_bad = 0usize;

    let mut epoch = 0usize;
    while epoch < cfg.epochs {
        let batcher = WindowBatcher::new(data, cfg.window, &mut rng);
        let mut epoch_loss = 0.0f64;
        let mut samples = 0usize;
        let mut steps = 0usize;
        for (xs, targets) in batcher.batches(cfg.batch_size) {
            let (y, cache) = model.forward_window(&xs);
            let mut dy = Matrix::zeros(y.rows, y.cols);
            for (b, t) in targets.iter().enumerate() {
                let (loss, grads) = cfg.loss.eval(y.row(b), t);
                epoch_loss += loss as f64;
                // Mean over the batch.
                let scale = 1.0 / targets.len() as f32;
                for (k, g) in grads.iter().enumerate() {
                    dy.set(b, k, g * scale);
                }
            }
            samples += targets.len();
            model.zero_grad();
            model.backward_window(&cache, &dy);
            model.clip_gradients(cfg.clip);
            let mut step = opt.step();
            model.visit_params(&mut |p, g| step.apply(p, g));
            steps += 1;
        }
        let mean = epoch_loss / samples.max(1) as f64;
        if !mean.is_finite() {
            consecutive_bad += 1;
            report.backoffs += 1;
            if consecutive_bad > MAX_BACKOFFS {
                if let Some((ckpt, _)) = best {
                    *model = ckpt;
                }
                return Err(TrainError::NonFiniteLoss { epoch });
            }
            // Roll back to the best parameters (or reinitialize the
            // optimizer on the current ones if no epoch succeeded yet)
            // and retry this epoch at half the learning rate.
            if let Some((ckpt, _)) = &best {
                *model = ckpt.clone();
            }
            lr *= 0.5;
            opt = Adam::new(lr);
            continue;
        }
        consecutive_bad = 0;
        report.steps += steps;
        report.epoch_losses.push(mean);
        if best.as_ref().is_none_or(|(_, b)| mean < *b) {
            best = Some((model.clone(), mean));
        }
        epoch += 1;
    }
    Ok(report)
}

/// Evaluate mean combined loss on a held-out set (no gradient).
pub fn evaluate(model: &SeqModel, data: &PacketDataset, cfg: &TrainConfig) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut rng = MlRng::new(cfg.seed ^ 0xEEEE);
    let batcher = WindowBatcher::new(data, cfg.window, &mut rng);
    let mut total = 0.0f64;
    let mut n = 0usize;
    for (xs, targets) in batcher.batches(cfg.batch_size) {
        let (y, _) = model.forward_window(&xs);
        for (b, t) in targets.iter().enumerate() {
            total += cfg.loss.eval(y.row(b), t).0 as f64;
            n += 1;
        }
    }
    total / n.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Target;

    /// A synthetic learnable task: latency = 0.8 if feature[0] was high in
    /// the recent past, else 0.2; drop if feature[1] high.
    fn synthetic(n: usize, seed: u64) -> PacketDataset {
        let mut rng = MlRng::new(seed);
        let mut d = PacketDataset::default();
        let mut burst = 0usize;
        for _ in 0..n {
            if rng.next_f64() < 0.1 {
                burst = 4;
            }
            let hot = burst > 0;
            burst = burst.saturating_sub(1);
            let f0 = if hot { 1.0 } else { 0.0 };
            let f1 = rng.next_f64() as f32;
            d.push(
                vec![f0, f1],
                Target {
                    latency: if hot { 0.8 } else { 0.2 },
                    dropped: if f1 > 0.9 { 1.0 } else { 0.0 },
                    ecn: 0.0,
                },
            );
        }
        d
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let data = synthetic(600, 3);
        let mut model = SeqModel::new(2, 8, 42);
        let cfg = TrainConfig {
            epochs: 5,
            window: 4,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &data, &cfg).expect("valid training setup");
        assert_eq!(report.epoch_losses.len(), 5);
        let first = report.epoch_losses[0];
        let last = report.final_loss().expect("epochs ran");
        assert!(
            last < first * 0.9,
            "no learning: first {first}, last {last}"
        );
    }

    #[test]
    fn model_learns_latency_signal() {
        let data = synthetic(1200, 5);
        let mut model = SeqModel::new(2, 12, 7);
        let cfg = TrainConfig {
            epochs: 8,
            window: 4,
            ..TrainConfig::default()
        };
        train(&mut model, &data, &cfg).expect("valid training setup");
        // Compare predictions on hot vs cold windows.
        let mut state = model.init_state();
        let mut hot_pred = 0.0;
        for _ in 0..4 {
            hot_pred = model.step(&[1.0, 0.1], &mut state)[0];
        }
        let mut state = model.init_state();
        let mut cold_pred = 0.0;
        for _ in 0..4 {
            cold_pred = model.step(&[0.0, 0.1], &mut state)[0];
        }
        assert!(
            hot_pred > cold_pred + 0.2,
            "hot {hot_pred} vs cold {cold_pred}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let data = synthetic(300, 9);
        let cfg = TrainConfig {
            epochs: 2,
            window: 3,
            ..TrainConfig::default()
        };
        let run = || {
            let mut m = SeqModel::new(2, 6, 11);
            train(&mut m, &data, &cfg).expect("valid training setup");
            m.to_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_dataset_is_a_typed_error() {
        let mut model = SeqModel::new(2, 4, 1);
        let err = train(&mut model, &PacketDataset::default(), &TrainConfig::default())
            .expect_err("empty dataset must not train");
        assert_eq!(err, TrainError::EmptyDataset);
    }

    #[test]
    fn width_mismatch_is_a_typed_error() {
        let data = synthetic(50, 1); // 2 features
        let mut model = SeqModel::new(3, 4, 1);
        let err = train(&mut model, &data, &TrainConfig::default())
            .expect_err("width mismatch must not train");
        assert_eq!(err, TrainError::WidthMismatch { data: 2, model: 3 });
    }

    #[test]
    fn nonfinite_loss_backs_off_and_errors_out() {
        // Poison the dataset with a NaN feature and target: every epoch's
        // mean loss is NaN, so training must back off MAX_BACKOFFS times
        // and then return a typed error rather than silently reporting
        // NaN losses.
        let mut d = PacketDataset::default();
        for i in 0..40 {
            d.push(
                vec![f32::NAN, i as f32],
                Target {
                    latency: f32::NAN,
                    dropped: 0.0,
                    ecn: 0.0,
                },
            );
        }
        let mut model = SeqModel::new(2, 4, 1);
        let cfg = TrainConfig {
            epochs: 2,
            window: 4,
            ..TrainConfig::default()
        };
        let err = train(&mut model, &d, &cfg).expect_err("divergent run must error");
        assert_eq!(err, TrainError::NonFiniteLoss { epoch: 0 });
    }

    #[test]
    fn evaluate_on_heldout_is_finite_and_small_after_training() {
        let data = synthetic(800, 13);
        let (train_set, test_set) = data.split(0.8);
        let mut model = SeqModel::new(2, 8, 17);
        let cfg = TrainConfig {
            epochs: 6,
            window: 4,
            ..TrainConfig::default()
        };
        let before = evaluate(&model, &test_set, &cfg);
        train(&mut model, &train_set, &cfg).expect("valid training setup");
        let after = evaluate(&model, &test_set, &cfg);
        assert!(after.is_finite());
        assert!(after < before, "held-out loss {after} vs initial {before}");
    }
}
