//! The mini-batch training loop for internal models.
//!
//! ## Deterministic data parallelism
//!
//! Each batch is cut into fixed-size contiguous shards of
//! [`SHARD_ROWS`] rows. A shard is the unit of work: forward + backward
//! into a private [`ModelGrads`] buffer, then all shard buffers are
//! reduced **in shard-index order** into one gradient. Because the shard
//! layout and the reduction order depend only on the batch — never on the
//! worker count — training with 1, 2, or 8 workers produces bit-identical
//! parameters (floating-point addition is not associative, so this
//! property has to be engineered, and it is enforced by test). Workers are
//! scoped threads, each owning a contiguous range of shard slots.

use crate::dataset::{PacketDataset, WindowBatcher};
use crate::loss::{CombinedLoss, Target};
use crate::matrix::Matrix;
use crate::model::{ModelGrads, SeqModel};
use crate::optim::{Adam, AdamState};
use crate::rng::MlRng;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;

/// Hyperparameters of one training run (the things §7.2 tunes).
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub window: usize,
    pub lr: f32,
    pub loss: CombinedLoss,
    /// Global gradient-norm clip (BPTT stability).
    pub clip: f32,
    pub seed: u64,
    /// Worker threads for the per-batch forward/backward. Any value
    /// produces bit-identical parameters; >1 only changes wall-clock.
    /// The effective thread count is additionally clamped to the shard
    /// count and to `std::thread::available_parallelism()`.
    pub workers: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 6,
            batch_size: 32,
            window: 12, // ≈ BDP in packets (paper Appendix C)
            lr: 3e-3,
            loss: CombinedLoss::default(),
            clip: 5.0,
            seed: 1,
            workers: 1,
        }
    }
}

/// Per-epoch training record.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Total optimizer steps taken.
    pub steps: usize,
    /// Learning-rate backoffs triggered by non-finite epoch losses.
    pub backoffs: usize,
}

impl TrainReport {
    /// The last epoch's mean loss, if any epoch ran.
    pub fn final_loss(&self) -> Option<f64> {
        self.epoch_losses.last().copied()
    }
}

/// Why a training run could not proceed.
#[derive(Clone, Debug, PartialEq)]
pub enum TrainError {
    /// The dataset contains no samples.
    EmptyDataset,
    /// Feature width does not match the model's input dimension.
    WidthMismatch { data: usize, model: usize },
    /// The loss stayed non-finite even after restoring the best
    /// checkpoint and backing the learning rate off repeatedly — the data
    /// or hyperparameters are pathological.
    NonFiniteLoss { epoch: usize },
    /// Reading or writing a persistent training checkpoint failed
    /// (I/O error, malformed file, or a checkpoint from a different
    /// model shape).
    Checkpoint { message: String },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::EmptyDataset => write!(f, "cannot train on an empty dataset"),
            TrainError::WidthMismatch { data, model } => write!(
                f,
                "feature width mismatch: dataset has {data} features, model expects {model}"
            ),
            TrainError::NonFiniteLoss { epoch } => write!(
                f,
                "training diverged: loss stayed non-finite through epoch {epoch} despite LR backoff"
            ),
            TrainError::Checkpoint { message } => {
                write!(f, "training checkpoint failed: {message}")
            }
        }
    }
}

impl std::error::Error for TrainError {}

/// Consecutive non-finite epochs tolerated (each restores the best
/// checkpoint and halves the learning rate) before giving up.
const MAX_BACKOFFS: usize = 3;

/// Format version of [`TrainCheckpoint`] files.
pub const TRAIN_CHECKPOINT_FORMAT: u32 = 1;

/// The complete resumable state of an interrupted training run, persisted
/// at every epoch boundary: current parameters, optimizer moments, RNG
/// stream, the in-memory best-model rollback state, and the loss
/// trajectory so far. Resuming replays the remaining epochs bit-identically
/// to a run that was never interrupted.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainCheckpoint {
    pub format: u32,
    /// Next epoch to run.
    pub epoch: usize,
    /// Current learning rate (may be below the configured one after
    /// backoffs).
    pub lr: f32,
    /// Data-shuffling RNG state at the epoch boundary.
    pub rng_state: u64,
    /// Optimizer step counter and moment estimates.
    pub opt: AdamState,
    /// Current model parameters.
    pub model: SeqModel,
    /// Best (lowest-loss) parameters seen so far — the divergence
    /// rollback target.
    pub best_model: Option<SeqModel>,
    pub best_loss: Option<f64>,
    /// Consecutive non-finite epochs at the cut.
    pub consecutive_bad: usize,
    pub epoch_losses: Vec<f64>,
    pub steps: usize,
    pub backoffs: usize,
}

impl TrainCheckpoint {
    /// Read and validate a checkpoint file.
    pub fn read(path: &Path) -> Result<TrainCheckpoint, TrainError> {
        let text = fs::read_to_string(path).map_err(|e| TrainError::Checkpoint {
            message: format!("read {}: {e}", path.display()),
        })?;
        let ckpt: TrainCheckpoint =
            serde_json::from_str(&text).map_err(|e| TrainError::Checkpoint {
                message: format!("parse {}: {e}", path.display()),
            })?;
        if ckpt.format != TRAIN_CHECKPOINT_FORMAT {
            return Err(TrainError::Checkpoint {
                message: format!(
                    "unsupported checkpoint format {} (this build reads {TRAIN_CHECKPOINT_FORMAT})",
                    ckpt.format
                ),
            });
        }
        Ok(ckpt)
    }

    /// Atomically persist the checkpoint: the bytes land in a sibling temp
    /// file first and are renamed into place, so a crash mid-write leaves
    /// either the previous checkpoint or the new one — never a torn file.
    pub fn write(&self, path: &Path) -> Result<(), TrainError> {
        let text = serde_json::to_string(self).map_err(|e| TrainError::Checkpoint {
            message: format!("serialize: {e}"),
        })?;
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let io = fs::write(&tmp, text.as_bytes()).and_then(|()| fs::rename(&tmp, path));
        io.map_err(|e| TrainError::Checkpoint {
            message: format!("write {}: {e}", path.display()),
        })
    }
}

/// Where [`train_checkpointed`] persists, and whether it first resumes.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointSpec<'a> {
    /// Checkpoint file, rewritten (atomically) after every epoch.
    pub path: &'a Path,
    /// Resume from `path` when it already holds a checkpoint; otherwise
    /// start fresh. With `resume` off an existing file is overwritten.
    pub resume: bool,
}

/// Rows per gradient shard. Fixed — NOT derived from the worker count —
/// so the floating-point reduction tree is identical for any parallelism.
/// 16 rows keeps the per-shard `t_matmul` reductions deep enough to
/// amortize their passes over the output while still cutting the default
/// batch of 64 into four independent work units.
const SHARD_ROWS: usize = 16;

/// Forward + backward one shard (`rows` of the batch) into `grads`;
/// returns the shard's summed loss. `batch_rows` scales `dL/dy` so the
/// reduced gradient is the batch mean, exactly as the sequential loop
/// computed it.
fn process_shard(
    model: &SeqModel,
    xs: &[Matrix],
    targets: &[Target],
    rows_range: std::ops::Range<usize>,
    batch_rows: usize,
    loss_fn: &CombinedLoss,
    grads: &mut ModelGrads,
) -> f64 {
    let (r0, r1) = (rows_range.start, rows_range.end);
    let rows = r1 - r0;
    let shard_xs: Vec<Matrix> = xs
        .iter()
        .map(|x| {
            let mut m = Matrix::zeros(rows, x.cols);
            m.data
                .copy_from_slice(&x.data[r0 * x.cols..r1 * x.cols]);
            m
        })
        .collect();
    let (y, cache) = model.forward_window(&shard_xs);
    let mut dy = Matrix::zeros(y.rows, y.cols);
    let scale = 1.0 / batch_rows as f32;
    let mut loss_sum = 0.0f64;
    for (b, t) in targets[r0..r1].iter().enumerate() {
        let (loss, g) = loss_fn.eval(y.row(b), t);
        loss_sum += loss as f64;
        for (o, &gv) in dy.row_mut(b).iter_mut().zip(g.iter()) {
            *o = gv * scale;
        }
    }
    grads.zero();
    model.backward_window(&cache, &dy, grads);
    loss_sum
}

/// Train `model` on `data` in place; returns the loss trajectory.
///
/// Robustness: if an epoch's mean loss comes back NaN/Inf (exploded
/// gradients), the model is rolled back to the best checkpoint seen so
/// far, the learning rate is halved, and the epoch retried — up to
/// [`MAX_BACKOFFS`] consecutive times before erroring out. On a
/// non-divergent run this costs one model clone per improving epoch and
/// changes nothing else.
pub fn train(
    model: &mut SeqModel,
    data: &PacketDataset,
    cfg: &TrainConfig,
) -> Result<TrainReport, TrainError> {
    train_observed(model, data, cfg, &mut dcn_obs::Obs::off(), "train")
}

/// [`train`], recording telemetry into `obs` when it is on: one
/// `train.epoch` span per epoch, `{prefix}.epoch_loss` and
/// `{prefix}.epoch_throughput_sps` series, a pre-clip gradient-norm
/// histogram (`{prefix}.grad_norm_milli`, in 1/1000ths so sub-unit norms
/// land in distinct log2 buckets), and step/backoff counters. With an off
/// recorder every record call is a no-op behind one branch, so `train`
/// simply delegates here.
pub fn train_observed(
    model: &mut SeqModel,
    data: &PacketDataset,
    cfg: &TrainConfig,
    obs: &mut dcn_obs::Obs,
    prefix: &str,
) -> Result<TrainReport, TrainError> {
    train_checkpointed_observed(model, data, cfg, obs, prefix, None)
}

/// [`train`] with crash resilience: the complete loop state (parameters,
/// optimizer moments, RNG stream, best-model rollback state, loss
/// trajectory) is atomically persisted to `spec.path` after every epoch,
/// and with `spec.resume` set a prior checkpoint is picked up and the
/// remaining epochs replayed bit-identically to an uninterrupted run.
pub fn train_checkpointed(
    model: &mut SeqModel,
    data: &PacketDataset,
    cfg: &TrainConfig,
    spec: &CheckpointSpec<'_>,
) -> Result<TrainReport, TrainError> {
    train_checkpointed_observed(model, data, cfg, &mut dcn_obs::Obs::off(), "train", Some(spec))
}

/// [`train_checkpointed`] with telemetry (see [`train_observed`]).
pub fn train_checkpointed_observed(
    model: &mut SeqModel,
    data: &PacketDataset,
    cfg: &TrainConfig,
    obs: &mut dcn_obs::Obs,
    prefix: &str,
    ckpt: Option<&CheckpointSpec<'_>>,
) -> Result<TrainReport, TrainError> {
    if data.is_empty() {
        return Err(TrainError::EmptyDataset);
    }
    if data.width() != model.input_dim() {
        return Err(TrainError::WidthMismatch {
            data: data.width(),
            model: model.input_dim(),
        });
    }
    let mut lr = cfg.lr;
    let mut opt = Adam::new(lr);
    let mut rng = MlRng::new(cfg.seed);
    let mut report = TrainReport::default();
    let mut best: Option<(SeqModel, f64)> = None;
    let mut consecutive_bad = 0usize;
    let mut epoch = 0usize;
    if let Some(spec) = ckpt {
        if spec.resume && spec.path.exists() {
            let c = TrainCheckpoint::read(spec.path)?;
            if c.model.input_dim() != model.input_dim() {
                return Err(TrainError::Checkpoint {
                    message: format!(
                        "checkpoint model expects {} input features, this run has {}",
                        c.model.input_dim(),
                        model.input_dim()
                    ),
                });
            }
            *model = c.model;
            lr = c.lr;
            opt = Adam::restore(c.opt);
            rng.set_state(c.rng_state);
            report.epoch_losses = c.epoch_losses;
            report.steps = c.steps;
            report.backoffs = c.backoffs;
            best = c.best_model.zip(c.best_loss);
            consecutive_bad = c.consecutive_bad;
            epoch = c.epoch;
        }
    }

    // Reusable buffers: one grad slot per shard plus the reduction target.
    let max_shards = cfg.batch_size.max(1).div_ceil(SHARD_ROWS);
    let mut shard_grads: Vec<ModelGrads> = (0..max_shards).map(|_| model.new_grads()).collect();
    let mut shard_losses = vec![0.0f64; max_shards];
    let mut grad_buf = model.new_grads();

    while epoch < cfg.epochs {
        let epoch_t0 = obs.is_on().then(std::time::Instant::now);
        obs.begin("train.epoch", "train", None);
        let batcher = WindowBatcher::new(data, cfg.window, &mut rng);
        let mut epoch_loss = 0.0f64;
        let mut samples = 0usize;
        let mut steps = 0usize;
        for (xs, targets) in batcher.batches(cfg.batch_size) {
            let batch_rows = targets.len();
            let nshards = batch_rows.div_ceil(SHARD_ROWS);
            // Clamp to the machine's parallelism: shard layout and the
            // reduction order below are worker-count-independent, so running
            // fewer threads than requested changes nothing numerically — it
            // only avoids paying spawn overhead for threads that would
            // time-slice a single core.
            let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
            let workers = cfg.workers.max(1).min(nshards).min(hw);
            {
                let m: &SeqModel = model;
                let xs = &xs[..];
                let targets = &targets[..];
                let loss_fn = &cfg.loss;
                let run_shards = |base: usize, grads: &mut [ModelGrads], losses: &mut [f64]| {
                    for (j, (g, l)) in grads.iter_mut().zip(losses.iter_mut()).enumerate() {
                        let s = base + j;
                        let r0 = s * SHARD_ROWS;
                        let r1 = (r0 + SHARD_ROWS).min(batch_rows);
                        *l = process_shard(m, xs, targets, r0..r1, batch_rows, loss_fn, g);
                    }
                };
                if workers <= 1 {
                    run_shards(0, &mut shard_grads[..nshards], &mut shard_losses[..nshards]);
                } else {
                    let chunk = nshards.div_ceil(workers);
                    std::thread::scope(|scope| {
                        let mut parts = shard_grads[..nshards]
                            .chunks_mut(chunk)
                            .zip(shard_losses[..nshards].chunks_mut(chunk))
                            .enumerate();
                        // Worker 0's chunk runs on the calling thread.
                        let own = parts.next();
                        for (w, (gchunk, lchunk)) in parts {
                            let run = &run_shards;
                            scope.spawn(move || run(w * chunk, gchunk, lchunk));
                        }
                        if let Some((_, (gchunk, lchunk))) = own {
                            run_shards(0, gchunk, lchunk);
                        }
                    });
                }
            }
            // Fixed-order reduction: shard 0, 1, 2, … regardless of which
            // worker produced which shard.
            grad_buf.zero();
            for s in 0..nshards {
                grad_buf.add_assign(&shard_grads[s]);
                epoch_loss += shard_losses[s];
            }
            samples += batch_rows;
            if obs.is_on() {
                obs.hist_observe(
                    format!("{prefix}.grad_norm_milli"),
                    (grad_buf.norm() as f64 * 1000.0) as u64,
                );
            }
            grad_buf.clip_to_norm(cfg.clip);
            let mut step = opt.step();
            model.visit_params(&mut grad_buf, &mut |p, g| step.apply(p, g));
            steps += 1;
        }
        let mean = epoch_loss / samples.max(1) as f64;
        obs.end(None);
        if !mean.is_finite() {
            consecutive_bad += 1;
            report.backoffs += 1;
            if obs.is_on() {
                obs.counter_add(format!("{prefix}.backoffs"), 1);
            }
            if consecutive_bad > MAX_BACKOFFS {
                if let Some((ckpt, _)) = best {
                    *model = ckpt;
                }
                return Err(TrainError::NonFiniteLoss { epoch });
            }
            // Roll back to the best parameters (or reinitialize the
            // optimizer on the current ones if no epoch succeeded yet)
            // and retry this epoch at half the learning rate.
            if let Some((ckpt, _)) = &best {
                *model = ckpt.clone();
            }
            lr *= 0.5;
            opt = Adam::new(lr);
            // The RNG has already consumed this epoch's shuffle, exactly as
            // the in-memory retry will see it, so the cut is bit-faithful.
            if let Some(spec) = ckpt {
                persist_checkpoint(spec, epoch, lr, &rng, &opt, model, &best, consecutive_bad, &report)?;
            }
            continue;
        }
        consecutive_bad = 0;
        report.steps += steps;
        report.epoch_losses.push(mean);
        if obs.is_on() {
            obs.series_push(format!("{prefix}.epoch_loss"), mean);
            obs.counter_add(format!("{prefix}.steps"), steps as u64);
            if let Some(t0) = epoch_t0 {
                let secs = t0.elapsed().as_secs_f64().max(1e-9);
                obs.series_push(format!("{prefix}.epoch_throughput_sps"), samples as f64 / secs);
            }
        }
        if best.as_ref().is_none_or(|(_, b)| mean < *b) {
            best = Some((model.clone(), mean));
        }
        epoch += 1;
        if let Some(spec) = ckpt {
            persist_checkpoint(spec, epoch, lr, &rng, &opt, model, &best, consecutive_bad, &report)?;
        }
    }
    Ok(report)
}

/// Cut a [`TrainCheckpoint`] from the live loop state and persist it.
#[allow(clippy::too_many_arguments)]
fn persist_checkpoint(
    spec: &CheckpointSpec<'_>,
    epoch: usize,
    lr: f32,
    rng: &MlRng,
    opt: &Adam,
    model: &SeqModel,
    best: &Option<(SeqModel, f64)>,
    consecutive_bad: usize,
    report: &TrainReport,
) -> Result<(), TrainError> {
    TrainCheckpoint {
        format: TRAIN_CHECKPOINT_FORMAT,
        epoch,
        lr,
        rng_state: rng.state(),
        opt: opt.state(),
        model: model.clone(),
        best_model: best.as_ref().map(|(m, _)| m.clone()),
        best_loss: best.as_ref().map(|(_, l)| *l),
        consecutive_bad,
        epoch_losses: report.epoch_losses.clone(),
        steps: report.steps,
        backoffs: report.backoffs,
    }
    .write(spec.path)
}

/// Deterministic model-level fan-out: run `jobs` independent training
/// jobs concurrently, splitting a total worker budget across them.
///
/// `run(job, share)` is invoked exactly once per job index with the
/// per-job worker share; results come back in job-index order. The split
/// is a pure function of `(jobs, workers)` — never of thread scheduling —
/// and each job's own training is worker-count-invariant (see the module
/// docs), so the returned values are bit-identical to running the jobs
/// serially, at any budget including `workers == 1` (which *does* run
/// them serially on the calling thread, preserving the old behavior
/// exactly). With more jobs than workers the jobs run in fixed-order
/// waves of at most `workers` threads, so the machine is never
/// oversubscribed by the fan-out itself.
pub fn fanout_jobs<T: Send>(
    jobs: usize,
    workers: usize,
    run: &(dyn Fn(usize, usize) -> T + Sync),
) -> Vec<T> {
    if jobs == 0 {
        return Vec::new();
    }
    let workers = workers.max(1);
    if workers <= 1 || jobs == 1 {
        return (0..jobs).map(|j| run(j, workers)).collect();
    }
    let lanes = workers.min(jobs);
    let share = (workers / lanes).max(1);
    let mut out: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
    for (wave, slots) in out.chunks_mut(lanes).enumerate() {
        std::thread::scope(|scope| {
            let mut lane_iter = slots.iter_mut().enumerate();
            // Lane 0 of each wave runs on the calling thread.
            let own = lane_iter.next();
            for (lane, slot) in lane_iter {
                let job = wave * lanes + lane;
                scope.spawn(move || *slot = Some(run(job, share)));
            }
            if let Some((lane, slot)) = own {
                *slot = Some(run(wave * lanes + lane, share));
            }
        });
    }
    out.into_iter()
        .map(|r| r.expect("every fan-out job ran"))
        .collect()
}

/// Evaluate mean combined loss on a held-out set (no gradient).
pub fn evaluate(model: &SeqModel, data: &PacketDataset, cfg: &TrainConfig) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut rng = MlRng::new(cfg.seed ^ 0xEEEE);
    let batcher = WindowBatcher::new(data, cfg.window, &mut rng);
    let mut total = 0.0f64;
    let mut n = 0usize;
    for (xs, targets) in batcher.batches(cfg.batch_size) {
        let (y, _) = model.forward_window(&xs);
        for (b, t) in targets.iter().enumerate() {
            total += cfg.loss.eval(y.row(b), t).0 as f64;
            n += 1;
        }
    }
    total / n.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Target;

    /// A synthetic learnable task: latency = 0.8 if feature[0] was high in
    /// the recent past, else 0.2; drop if feature[1] high.
    fn synthetic(n: usize, seed: u64) -> PacketDataset {
        let mut rng = MlRng::new(seed);
        let mut d = PacketDataset::default();
        let mut burst = 0usize;
        for _ in 0..n {
            if rng.next_f64() < 0.1 {
                burst = 4;
            }
            let hot = burst > 0;
            burst = burst.saturating_sub(1);
            let f0 = if hot { 1.0 } else { 0.0 };
            let f1 = rng.next_f64() as f32;
            d.push(
                vec![f0, f1],
                Target {
                    latency: if hot { 0.8 } else { 0.2 },
                    dropped: if f1 > 0.9 { 1.0 } else { 0.0 },
                    ecn: 0.0,
                },
            );
        }
        d
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let data = synthetic(600, 3);
        let mut model = SeqModel::new(2, 8, 42);
        let cfg = TrainConfig {
            epochs: 5,
            window: 4,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &data, &cfg).expect("valid training setup");
        assert_eq!(report.epoch_losses.len(), 5);
        let first = report.epoch_losses[0];
        let last = report.final_loss().expect("epochs ran");
        assert!(
            last < first * 0.9,
            "no learning: first {first}, last {last}"
        );
    }

    #[test]
    fn model_learns_latency_signal() {
        let data = synthetic(1200, 5);
        let mut model = SeqModel::new(2, 12, 7);
        let cfg = TrainConfig {
            epochs: 8,
            window: 4,
            ..TrainConfig::default()
        };
        train(&mut model, &data, &cfg).expect("valid training setup");
        // Compare predictions on hot vs cold windows.
        let mut state = model.init_state();
        let mut hot_pred = 0.0;
        for _ in 0..4 {
            hot_pred = model.step(&[1.0, 0.1], &mut state)[0];
        }
        let mut state = model.init_state();
        let mut cold_pred = 0.0;
        for _ in 0..4 {
            cold_pred = model.step(&[0.0, 0.1], &mut state)[0];
        }
        assert!(
            hot_pred > cold_pred + 0.2,
            "hot {hot_pred} vs cold {cold_pred}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let data = synthetic(300, 9);
        let cfg = TrainConfig {
            epochs: 2,
            window: 3,
            ..TrainConfig::default()
        };
        let run = || {
            let mut m = SeqModel::new(2, 6, 11);
            train(&mut m, &data, &cfg).expect("valid training setup");
            m.to_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn observed_training_records_series_and_matches_report() {
        let data = synthetic(300, 9);
        let cfg = TrainConfig {
            epochs: 3,
            window: 3,
            ..TrainConfig::default()
        };
        // Observation must not change the numerics.
        let mut plain = SeqModel::new(2, 6, 11);
        let plain_report = train(&mut plain, &data, &cfg).expect("valid training setup");
        let mut model = SeqModel::new(2, 6, 11);
        let mut obs = dcn_obs::Obs::on();
        let report =
            train_observed(&mut model, &data, &cfg, &mut obs, "train.test").expect("valid setup");
        assert_eq!(plain.to_json(), model.to_json());
        let snap = obs.take_report().expect("obs was on");
        let losses = &snap.series["train.test.epoch_loss"];
        assert_eq!(losses, &report.epoch_losses);
        assert_eq!(losses, &plain_report.epoch_losses);
        assert_eq!(snap.series["train.test.epoch_throughput_sps"].len(), 3);
        assert!(snap.series["train.test.epoch_throughput_sps"].iter().all(|&t| t > 0.0));
        assert_eq!(snap.counter("train.test.steps"), report.steps as u64);
        // One grad-norm observation per optimizer step, one span per epoch.
        assert_eq!(snap.hists["train.test.grad_norm_milli"].count, report.steps as u64);
        assert_eq!(snap.spans.iter().filter(|s| s.name == "train.epoch").count(), 3);
    }

    #[test]
    fn fanout_preserves_job_order_and_budget() {
        // Results come back in job order regardless of scheduling, the
        // worker split is pure in (jobs, workers), and workers == 1 runs
        // serially (share 1 per job).
        for (jobs, workers, want_share) in
            [(2, 4, 2), (2, 1, 1), (3, 8, 2), (5, 2, 1), (1, 4, 4), (4, 4, 1)]
        {
            let got = fanout_jobs(jobs, workers, &|j, share| (j, share));
            let want: Vec<(usize, usize)> = (0..jobs).map(|j| (j, want_share)).collect();
            assert_eq!(got, want, "jobs={jobs} workers={workers}");
        }
        assert!(fanout_jobs(0, 4, &|j, _| j).is_empty());
    }

    #[test]
    fn fanout_training_matches_serial() {
        // Two independent models trained through the fan-out must be
        // bit-identical to training them one after the other.
        let data_a = synthetic(300, 9);
        let data_b = synthetic(300, 10);
        let cfg = TrainConfig {
            epochs: 2,
            window: 3,
            ..TrainConfig::default()
        };
        let serial: Vec<String> = [(&data_a, 21u64), (&data_b, 22u64)]
            .iter()
            .map(|(d, seed)| {
                let mut m = SeqModel::new(2, 6, *seed);
                train(&mut m, d, &cfg).expect("valid training setup");
                m.to_json()
            })
            .collect();
        for workers in [1, 2, 4, 8] {
            let fanned = fanout_jobs(2, workers, &|j, share| {
                let (d, seed) = if j == 0 { (&data_a, 21) } else { (&data_b, 22) };
                let mut m = SeqModel::new(2, 6, seed);
                let cfg = TrainConfig { workers: share, ..cfg };
                train(&mut m, d, &cfg).expect("valid training setup");
                m.to_json()
            });
            assert_eq!(serial, fanned, "fan-out diverged at {workers} workers");
        }
    }

    #[test]
    fn empty_dataset_is_a_typed_error() {
        let mut model = SeqModel::new(2, 4, 1);
        let err = train(&mut model, &PacketDataset::default(), &TrainConfig::default())
            .expect_err("empty dataset must not train");
        assert_eq!(err, TrainError::EmptyDataset);
    }

    #[test]
    fn width_mismatch_is_a_typed_error() {
        let data = synthetic(50, 1); // 2 features
        let mut model = SeqModel::new(3, 4, 1);
        let err = train(&mut model, &data, &TrainConfig::default())
            .expect_err("width mismatch must not train");
        assert_eq!(err, TrainError::WidthMismatch { data: 2, model: 3 });
    }

    #[test]
    fn nonfinite_loss_backs_off_and_errors_out() {
        // Poison the dataset with a NaN feature and target: every epoch's
        // mean loss is NaN, so training must back off MAX_BACKOFFS times
        // and then return a typed error rather than silently reporting
        // NaN losses.
        let mut d = PacketDataset::default();
        for i in 0..40 {
            d.push(
                vec![f32::NAN, i as f32],
                Target {
                    latency: f32::NAN,
                    dropped: 0.0,
                    ecn: 0.0,
                },
            );
        }
        let mut model = SeqModel::new(2, 4, 1);
        let cfg = TrainConfig {
            epochs: 2,
            window: 4,
            ..TrainConfig::default()
        };
        let err = train(&mut model, &d, &cfg).expect_err("divergent run must error");
        assert_eq!(err, TrainError::NonFiniteLoss { epoch: 0 });
    }

    fn temp_ckpt(tag: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!(
            "mimic-ml-train-ckpt-{}-{tag}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn resumed_training_is_bit_identical_to_uninterrupted() {
        let data = synthetic(300, 9);
        let cfg = TrainConfig {
            epochs: 4,
            window: 3,
            ..TrainConfig::default()
        };
        let mut plain = SeqModel::new(2, 6, 11);
        let plain_report = train(&mut plain, &data, &cfg).expect("valid training setup");

        // "Crash" after 2 epochs, then resume into a FRESH model instance:
        // the checkpoint must carry everything needed to finish the run.
        let path = temp_ckpt("resume");
        let spec = CheckpointSpec { path: &path, resume: true };
        let mut first = SeqModel::new(2, 6, 11);
        let cut = TrainConfig { epochs: 2, ..cfg };
        train_checkpointed(&mut first, &data, &cut, &spec).expect("valid training setup");

        let mut resumed = SeqModel::new(2, 6, 999); // different init — must be overwritten
        let report =
            train_checkpointed(&mut resumed, &data, &cfg, &spec).expect("valid training setup");
        assert_eq!(plain.to_json(), resumed.to_json(), "resume diverged");
        assert_eq!(report.epoch_losses, plain_report.epoch_losses);
        assert_eq!(report.steps, plain_report.steps);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_file_persists_best_model_rollback() {
        let data = synthetic(300, 9);
        let cfg = TrainConfig {
            epochs: 3,
            window: 3,
            ..TrainConfig::default()
        };
        let path = temp_ckpt("best");
        let spec = CheckpointSpec { path: &path, resume: false };
        let mut model = SeqModel::new(2, 6, 11);
        let report =
            train_checkpointed(&mut model, &data, &cfg, &spec).expect("valid training setup");
        let ckpt = TrainCheckpoint::read(&path).expect("checkpoint written");
        assert_eq!(ckpt.epoch, 3);
        assert_eq!(ckpt.epoch_losses, report.epoch_losses);
        // The on-disk rollback target is the lowest-loss epoch seen so far.
        let want_best = report
            .epoch_losses
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert_eq!(ckpt.best_loss, Some(want_best));
        assert!(ckpt.best_model.is_some(), "best model must be persisted");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_or_mismatched_checkpoints_are_typed_errors() {
        let data = synthetic(100, 9);
        let cfg = TrainConfig {
            epochs: 1,
            window: 3,
            ..TrainConfig::default()
        };
        let path = temp_ckpt("corrupt");
        // Garbage JSON → parse error, not a panic.
        std::fs::write(&path, b"{not json").expect("tmp write");
        let spec = CheckpointSpec { path: &path, resume: true };
        let mut model = SeqModel::new(2, 6, 11);
        let err = train_checkpointed(&mut model, &data, &cfg, &spec)
            .expect_err("garbage checkpoint must fail");
        assert!(matches!(err, TrainError::Checkpoint { .. }), "{err}");

        // A checkpoint from a model with a different input width.
        let mut other = SeqModel::new(3, 6, 11);
        let mut wide = PacketDataset::default();
        for i in 0..60 {
            wide.push(
                vec![i as f32, 0.0, 1.0],
                Target { latency: 0.5, dropped: 0.0, ecn: 0.0 },
            );
        }
        train_checkpointed(&mut other, &wide, &cfg, &CheckpointSpec { path: &path, resume: false })
            .expect("valid training setup");
        let err = train_checkpointed(&mut model, &data, &cfg, &spec)
            .expect_err("shape-mismatched checkpoint must fail");
        assert!(matches!(err, TrainError::Checkpoint { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn evaluate_on_heldout_is_finite_and_small_after_training() {
        let data = synthetic(800, 13);
        let (train_set, test_set) = data.split(0.8);
        let mut model = SeqModel::new(2, 8, 17);
        let cfg = TrainConfig {
            epochs: 6,
            window: 4,
            ..TrainConfig::default()
        };
        let before = evaluate(&model, &test_set, &cfg);
        train(&mut model, &train_set, &cfg).expect("valid training setup");
        let after = evaluate(&model, &test_set, &cfg);
        assert!(after.is_finite());
        assert!(after < before, "held-out loss {after} vs initial {before}");
    }
}
