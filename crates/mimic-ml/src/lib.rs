//! # mimic-ml — a small CPU neural-network library for MimicNet
//!
//! The paper trains its Mimic internal models with PyTorch 0.4.1 + CUDA and
//! serves them through a custom C++/ATen inference engine (§8). This crate
//! is the from-scratch Rust substitute: everything needed to train and run
//! the paper's LSTM models on a CPU, plus the Gaussian-process Bayesian
//! optimization used for hyper-parameter tuning (§7.2).
//!
//! Contents:
//!
//! * [`matrix`] — dense row-major `f32` matrices with the handful of BLAS
//!   operations an LSTM needs.
//! * [`lstm`] / [`linear`] — layers with full backpropagation (BPTT for the
//!   LSTM), gradient-checked against finite differences.
//! * [`model`] — [`model::SeqModel`]: an LSTM stack plus a linear head
//!   emitting the paper's three predictions (latency, drop, ECN), with a
//!   stateful single-step inference mode for use inside simulations.
//! * [`loss`] — the DCN-friendly loss functions of §5.4: Huber for
//!   latencies (heavy-tailed outliers), weighted binary cross-entropy for
//!   drops (severe class imbalance), and their combination.
//! * [`optim`] — SGD and Adam.
//! * [`discretize`] — the linear quantization of §5.2.
//! * [`dataset`] — packet-window datasets and deterministic shuffling.
//! * [`train`] — a mini-batch training loop.
//! * [`gp`] / [`bayesopt`] — Gaussian-process regression and Expected
//!   Improvement for hyper-parameter search.
//! * [`flops`] — analytic FLOP accounting (paper Appendix G).
//!
//! Determinism: all randomness (init, shuffling, BO candidates) flows from
//! caller-provided seeds through a SplitMix64; training the same data with
//! the same seed yields bit-identical models.

pub mod bayesopt;
pub mod dataset;
pub mod discretize;
pub mod fastmath;
pub mod flops;
pub mod gp;
pub mod linear;
pub mod loss;
pub mod lstm;
pub mod matrix;
pub mod model;
pub mod optim;
pub mod rng;
pub mod train;

pub use matrix::Matrix;
pub use model::SeqModel;
