//! DCN-friendly loss functions (paper §5.4).
//!
//! Two domain problems break the textbook losses:
//!
//! * **Class imbalance** — drops and ECN marks are rare (99.7% of the
//!   paper's example trace is delivered), so plain BCE learns "never
//!   drop". The fix is cost-sensitive *weighted* BCE with weight `w` on
//!   the positive (drop) class, tuned in 0.6–0.8.
//! * **Latency outliers** — tail latencies carry the signal; MAE ignores
//!   them and MSE overreacts. The Huber loss interpolates: squared near
//!   zero error, absolute beyond `δ`.
//!
//! Every function returns `(loss, dL/dŷ)` pairs so they can drive
//! backprop directly; classification losses operate on logits (the
//! sigmoid is folded in for numerical stability).

/// Numerically stable `log(1 + e^x)`.
fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        0.0
    } else {
        (1.0 + x.exp()).ln()
    }
}

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Mean squared error: `(loss, grad)` for one prediction.
pub fn mse(pred: f32, target: f32) -> (f32, f32) {
    let e = pred - target;
    (e * e, 2.0 * e)
}

/// Mean absolute error: `(loss, grad)`.
pub fn mae(pred: f32, target: f32) -> (f32, f32) {
    let e = pred - target;
    (e.abs(), e.signum())
}

/// Huber loss with threshold `delta`: quadratic inside, linear outside.
pub fn huber(pred: f32, target: f32, delta: f32) -> (f32, f32) {
    debug_assert!(delta > 0.0);
    let e = pred - target;
    if e.abs() <= delta {
        (0.5 * e * e, e)
    } else {
        (delta * e.abs() - 0.5 * delta * delta, delta * e.signum())
    }
}

/// Binary cross-entropy on a logit: `(loss, dL/dlogit)`.
pub fn bce_logits(logit: f32, target: f32) -> (f32, f32) {
    debug_assert!((0.0..=1.0).contains(&target));
    // loss = softplus(logit) - target * logit
    let loss = softplus(logit) - target * logit;
    let grad = sigmoid(logit) - target;
    (loss, grad)
}

/// Weighted BCE (paper's WBCE): weight `w` on the positive class,
/// `1 − w` on the negative class. `w > 0.5` counteracts drop rarity.
pub fn wbce_logits(logit: f32, target: f32, w: f32) -> (f32, f32) {
    debug_assert!((0.0..=1.0).contains(&w));
    let p = sigmoid(logit);
    // loss = -w·t·log p − (1−w)(1−t)·log(1−p)
    let loss = w * target * softplus(-logit) + (1.0 - w) * (1.0 - target) * softplus(logit);
    let grad = -w * target * (1.0 - p) + (1.0 - w) * (1.0 - target) * p;
    (loss, grad)
}

/// Which regression loss to use for latency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RegLoss {
    Mae,
    Mse,
    Huber { delta: f32 },
}

impl RegLoss {
    pub fn eval(&self, pred: f32, target: f32) -> (f32, f32) {
        match *self {
            RegLoss::Mae => mae(pred, target),
            RegLoss::Mse => mse(pred, target),
            RegLoss::Huber { delta } => huber(pred, target, delta),
        }
    }
}

/// Which classification loss to use for drops.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ClsLoss {
    Bce,
    Wbce { w: f32 },
}

impl ClsLoss {
    pub fn eval(&self, logit: f32, target: f32) -> (f32, f32) {
        match *self {
            ClsLoss::Bce => bce_logits(logit, target),
            ClsLoss::Wbce { w } => wbce_logits(logit, target, w),
        }
    }
}

/// The combined multi-task loss over the model's three outputs
/// `[latency, drop logit, ecn logit]` (paper: "Both regression and
/// classification tasks are modeled together with a unified loss
/// function", normalized and weighted by hyperparameters; "a weight that
/// favors latency over other metrics is preferable").
#[derive(Clone, Copy, Debug)]
pub struct CombinedLoss {
    pub latency: RegLoss,
    pub drop: ClsLoss,
    pub ecn: ClsLoss,
    /// Task weights.
    pub w_latency: f32,
    pub w_drop: f32,
    pub w_ecn: f32,
}

impl Default for CombinedLoss {
    fn default() -> Self {
        CombinedLoss {
            // Latency targets are normalized to [0,1]; the Huber knee must
            // sit inside the error range to differ from MSE (a knee at 1.0
            // would be squared loss everywhere).
            latency: RegLoss::Huber { delta: 0.25 },
            drop: ClsLoss::Wbce { w: 0.7 },
            ecn: ClsLoss::Bce,
            w_latency: 1.0,
            w_drop: 0.5,
            w_ecn: 0.25,
        }
    }
}

/// Supervision targets for one packet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Target {
    /// Normalized (discretized) latency.
    pub latency: f32,
    /// 1.0 if dropped.
    pub dropped: f32,
    /// 1.0 if CE-marked on exit.
    pub ecn: f32,
}

impl CombinedLoss {
    /// Evaluate on a 3-wide prediction row; returns total loss and the
    /// gradient per output.
    pub fn eval(&self, pred: &[f32], target: &Target) -> (f32, [f32; 3]) {
        assert!(pred.len() >= 3, "model must emit 3 outputs");
        let (ll, gl) = self.latency.eval(pred[0], target.latency);
        let (ld, gd) = self.drop.eval(pred[1], target.dropped);
        let (le, ge) = self.ecn.eval(pred[2], target.ecn);
        (
            self.w_latency * ll + self.w_drop * ld + self.w_ecn * le,
            [
                self.w_latency * gl,
                self.w_drop * gd,
                self.w_ecn * ge,
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd_check(f: impl Fn(f32) -> (f32, f32), x: f32) {
        let eps = 1e-3;
        let (_, g) = f(x);
        let (up, _) = f(x + eps);
        let (dn, _) = f(x - eps);
        let fd = (up - dn) / (2.0 * eps);
        assert!((fd - g).abs() < 2e-2, "fd {fd} vs grad {g} at {x}");
    }

    #[test]
    fn gradients_match_finite_differences() {
        for x in [-2.0f32, -0.3, 0.0, 0.7, 3.0] {
            fd_check(|p| mse(p, 0.5), x);
            fd_check(|p| huber(p, 0.5, 1.0), x);
            fd_check(|p| bce_logits(p, 1.0), x);
            fd_check(|p| bce_logits(p, 0.0), x);
            fd_check(|p| wbce_logits(p, 1.0, 0.7), x);
            fd_check(|p| wbce_logits(p, 0.0, 0.7), x);
        }
    }

    #[test]
    fn huber_is_mse_inside_and_mae_outside() {
        // Inside delta: quadratic (0.5 e^2).
        let (l, _) = huber(0.5, 0.0, 1.0);
        assert!((l - 0.125).abs() < 1e-6);
        // Far outside delta: slope equals delta.
        let (_, g) = huber(10.0, 0.0, 1.0);
        assert_eq!(g, 1.0);
        let (_, g2) = huber(-10.0, 0.0, 1.0);
        assert_eq!(g2, -1.0);
    }

    #[test]
    fn wbce_upweights_positive_class() {
        // Same logit, positive target: higher w -> larger |gradient|.
        let (_, g_low) = wbce_logits(-1.0, 1.0, 0.5);
        let (_, g_high) = wbce_logits(-1.0, 1.0, 0.9);
        assert!(g_high.abs() > g_low.abs());
        // w = 0.5 is plain BCE halved.
        let (l_w, g_w) = wbce_logits(0.3, 1.0, 0.5);
        let (l_b, g_b) = bce_logits(0.3, 1.0);
        assert!((l_w - 0.5 * l_b).abs() < 1e-6);
        assert!((g_w - 0.5 * g_b).abs() < 1e-6);
    }

    #[test]
    fn bce_loss_is_low_when_confident_correct() {
        let (l_good, _) = bce_logits(5.0, 1.0);
        let (l_bad, _) = bce_logits(-5.0, 1.0);
        assert!(l_good < 0.01);
        assert!(l_bad > 4.0);
    }

    #[test]
    fn softplus_extremes_are_stable() {
        assert_eq!(bce_logits(100.0, 1.0).0, 0.0);
        assert!(bce_logits(-100.0, 0.0).0.abs() < 1e-6);
        assert!(bce_logits(100.0, 0.0).0 >= 99.0);
    }

    #[test]
    fn combined_loss_weights_tasks() {
        let cl = CombinedLoss {
            w_latency: 2.0,
            w_drop: 0.0,
            w_ecn: 0.0,
            ..CombinedLoss::default()
        };
        let t = Target {
            latency: 0.0,
            dropped: 1.0,
            ecn: 1.0,
        };
        let (loss, grads) = cl.eval(&[0.5, -3.0, -3.0], &t);
        // Only latency contributes (same regression loss as the default).
        let (hl, hg) = cl.latency.eval(0.5, 0.0);
        assert!((loss - 2.0 * hl).abs() < 1e-6);
        assert!((grads[0] - 2.0 * hg).abs() < 1e-6);
        assert_eq!(grads[1], 0.0);
        assert_eq!(grads[2], 0.0);
    }
}
