//! Linear discretization of latency targets (paper §5.2).
//!
//! "MimicNet quantizes the values using a linear strategy:
//! `f(y) = ⌊(y − L_min) / (L_max − L_min) × D⌋` where `D` is the
//! hyperparameter that controls the degree of discretization. By varying
//! `D`, we can trade off the ease of modeling and the recovery precision."
//!
//! Dropped packets are encoded at the top of the range (`L_max + ε`), so a
//! single regression head covers both outcomes and the drop classifier can
//! disambiguate.

use serde::{Deserialize, Serialize};

/// A linear quantizer over `[min, max]` with `d` levels.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Discretizer {
    pub min: f64,
    pub max: f64,
    pub d: u32,
}

impl Discretizer {
    /// # Panics
    /// If the range is empty or `d == 0`.
    pub fn new(min: f64, max: f64, d: u32) -> Discretizer {
        assert!(max > min, "empty discretization range");
        assert!(d > 0, "need at least one level");
        Discretizer { min, max, d }
    }

    /// Quantize a raw value to a bucket index in `[0, d]`.
    pub fn bucket(&self, y: f64) -> u32 {
        let y = y.clamp(self.min, self.max);
        (((y - self.min) / (self.max - self.min)) * self.d as f64).floor() as u32
    }

    /// Normalized model target in `[0, 1]`: the bucket scaled by `d`.
    /// This is what the regression head trains on.
    pub fn normalize(&self, y: f64) -> f32 {
        (self.bucket(y) as f64 / self.d as f64) as f32
    }

    /// Recover a raw value from a normalized model output (bucket
    /// midpoint), clamped to the valid range.
    pub fn recover(&self, norm: f32) -> f64 {
        let norm = (norm as f64).clamp(0.0, 1.0);
        let bucket = (norm * self.d as f64).round().min(self.d as f64);
        let width = (self.max - self.min) / self.d as f64;
        // Midpoint of the bucket (top bucket maps to max).
        (self.min + bucket * width + width / 2.0).min(self.max)
    }

    /// Maximum round-trip error introduced by quantization.
    pub fn quantization_error(&self) -> f64 {
        (self.max - self.min) / self.d as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_range() {
        let q = Discretizer::new(0.0, 10.0, 10);
        assert_eq!(q.bucket(0.0), 0);
        assert_eq!(q.bucket(0.99), 0);
        assert_eq!(q.bucket(1.0), 1);
        assert_eq!(q.bucket(9.99), 9);
        assert_eq!(q.bucket(10.0), 10);
    }

    #[test]
    fn out_of_range_clamps() {
        let q = Discretizer::new(1.0, 2.0, 4);
        assert_eq!(q.bucket(-5.0), 0);
        assert_eq!(q.bucket(100.0), 4);
    }

    #[test]
    fn roundtrip_error_bounded() {
        let q = Discretizer::new(0.0, 1.0, 100);
        for i in 0..1000 {
            let y = i as f64 / 1000.0;
            let rec = q.recover(q.normalize(y));
            assert!(
                (rec - y).abs() <= q.quantization_error(),
                "y {y} -> {rec}"
            );
        }
    }

    #[test]
    fn finer_d_means_less_error() {
        let coarse = Discretizer::new(0.0, 1.0, 10);
        let fine = Discretizer::new(0.0, 1.0, 1000);
        assert!(fine.quantization_error() < coarse.quantization_error());
    }

    #[test]
    fn normalize_is_monotone() {
        let q = Discretizer::new(0.0, 5.0, 50);
        let mut prev = -1.0f32;
        for i in 0..100 {
            let n = q.normalize(i as f64 * 0.05);
            assert!(n >= prev);
            prev = n;
        }
    }
}
