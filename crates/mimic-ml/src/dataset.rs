//! Packet-window datasets for training internal models.
//!
//! A sample is a window of `W` consecutive packet feature vectors with the
//! supervision target of the window's *last* packet. Windows shorter than
//! `W` (at the start of the trace) are left-padded with the first vector.
//! The paper's Appendix C finds the best `W` to be the network's BDP in
//! packets.

use crate::loss::Target;
use crate::matrix::Matrix;
use crate::rng::MlRng;

/// A time-ordered supervised packet trace.
#[derive(Clone, Debug, Default)]
pub struct PacketDataset {
    /// Feature vectors, one per packet, in trace order.
    pub features: Vec<Vec<f32>>,
    /// Targets aligned with `features`.
    pub targets: Vec<Target>,
}

impl PacketDataset {
    pub fn len(&self) -> usize {
        self.features.len()
    }

    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    pub fn push(&mut self, features: Vec<f32>, target: Target) {
        debug_assert!(
            self.features.is_empty() || self.features[0].len() == features.len(),
            "inconsistent feature width"
        );
        self.features.push(features);
        self.targets.push(target);
    }

    /// Feature width.
    pub fn width(&self) -> usize {
        self.features.first().map_or(0, |f| f.len())
    }

    /// Split chronologically into train/test at `train_frac`.
    pub fn split(&self, train_frac: f64) -> (PacketDataset, PacketDataset) {
        assert!((0.0..=1.0).contains(&train_frac));
        let cut = (self.len() as f64 * train_frac) as usize;
        (
            PacketDataset {
                features: self.features[..cut].to_vec(),
                targets: self.targets[..cut].to_vec(),
            },
            PacketDataset {
                features: self.features[cut..].to_vec(),
                targets: self.targets[cut..].to_vec(),
            },
        )
    }

    /// Fraction of samples with `dropped == 1` (class-imbalance reporting).
    pub fn drop_rate(&self) -> f64 {
        if self.targets.is_empty() {
            return 0.0;
        }
        self.targets.iter().filter(|t| t.dropped > 0.5).count() as f64 / self.targets.len() as f64
    }
}

/// A batcher producing `(xs, targets)` mini-batches of windows.
pub struct WindowBatcher<'a> {
    data: &'a PacketDataset,
    window: usize,
    order: Vec<usize>,
}

impl<'a> WindowBatcher<'a> {
    /// `window` ≥ 1; order is shuffled with `rng`.
    pub fn new(data: &'a PacketDataset, window: usize, rng: &mut MlRng) -> WindowBatcher<'a> {
        assert!(window >= 1);
        let mut order: Vec<usize> = (0..data.len()).collect();
        rng.shuffle(&mut order);
        WindowBatcher {
            data,
            window,
            order,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Assemble the window of sample `i` as one row per timestep.
    fn window_rows(&self, i: usize) -> Vec<&'a [f32]> {
        (0..self.window)
            .map(|t| {
                let idx = (i + t).saturating_sub(self.window - 1);
                self.data.features[idx].as_slice()
            })
            .collect()
    }

    /// Iterate mini-batches: each is (per-timestep `B × F` matrices,
    /// targets of the final packets).
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = (Vec<Matrix>, Vec<Target>)> + '_ {
        assert!(batch_size >= 1);
        let width = self.data.width();
        self.order.chunks(batch_size).map(move |chunk| {
            let mut xs: Vec<Matrix> = (0..self.window)
                .map(|_| Matrix::zeros(chunk.len(), width))
                .collect();
            let mut targets = Vec::with_capacity(chunk.len());
            for (b, &i) in chunk.iter().enumerate() {
                for (t, row) in self.window_rows(i).into_iter().enumerate() {
                    xs[t].data[b * width..(b + 1) * width].copy_from_slice(row);
                }
                targets.push(self.data.targets[i]);
            }
            (xs, targets)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> PacketDataset {
        let mut d = PacketDataset::default();
        for i in 0..n {
            d.push(
                vec![i as f32, 2.0 * i as f32],
                Target {
                    latency: i as f32,
                    dropped: if i % 10 == 0 { 1.0 } else { 0.0 },
                    ecn: 0.0,
                },
            );
        }
        d
    }

    #[test]
    fn split_is_chronological() {
        let d = toy(100);
        let (train, test) = d.split(0.8);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        assert_eq!(test.features[0][0], 80.0);
    }

    #[test]
    fn drop_rate_counts_positives() {
        let d = toy(100);
        assert!((d.drop_rate() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn windows_are_left_padded() {
        let d = toy(5);
        let mut rng = MlRng::new(1);
        let b = WindowBatcher::new(&d, 3, &mut rng);
        let rows = b.window_rows(0);
        // Sample 0 repeats the first packet.
        assert_eq!(rows, vec![&[0.0, 0.0][..], &[0.0, 0.0], &[0.0, 0.0]]);
        let rows = b.window_rows(4);
        assert_eq!(rows, vec![&[2.0, 4.0][..], &[3.0, 6.0], &[4.0, 8.0]]);
    }

    #[test]
    fn batches_cover_all_samples_once() {
        let d = toy(23);
        let mut rng = MlRng::new(2);
        let b = WindowBatcher::new(&d, 2, &mut rng);
        let mut seen = 0;
        for (xs, ts) in b.batches(8) {
            assert_eq!(xs.len(), 2, "window length");
            assert_eq!(xs[0].rows, ts.len());
            seen += ts.len();
        }
        assert_eq!(seen, 23);
    }

    #[test]
    fn batch_rows_align_with_targets() {
        let d = toy(10);
        let mut rng = MlRng::new(3);
        let b = WindowBatcher::new(&d, 1, &mut rng);
        for (xs, ts) in b.batches(4) {
            for (row, t) in (0..xs[0].rows).zip(&ts) {
                // Feature[0] equals the sample index; target latency too.
                assert_eq!(xs[0].get(row, 0), t.latency);
            }
        }
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let d = toy(50);
        let order = |seed| {
            let mut rng = MlRng::new(seed);
            WindowBatcher::new(&d, 1, &mut rng).order.clone()
        };
        assert_eq!(order(7), order(7));
        assert_ne!(order(7), order(8));
    }
}
