//! Seeded randomness for initialization, shuffling, and BO candidates.
//!
//! A private SplitMix64 keeps `mimic-ml` standalone (no dependency on the
//! simulator crate) while giving the same bit-reproducibility guarantees.

/// SplitMix64 PRNG.
#[derive(Clone, Debug)]
pub struct MlRng {
    state: u64,
}

impl MlRng {
    pub fn new(seed: u64) -> MlRng {
        MlRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[-a, a)`.
    pub fn uniform_sym(&mut self, a: f64) -> f64 {
        (self.next_f64() * 2.0 - 1.0) * a
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Standard normal (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// The raw generator state, for checkpointing.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Overwrite the generator state from a checkpoint.
    pub fn set_state(&mut self, state: u64) {
        self.state = state;
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = MlRng::new(1);
        let mut b = MlRng::new(1);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = MlRng::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn uniform_sym_bounds() {
        let mut rng = MlRng::new(9);
        for _ in 0..1000 {
            let x = rng.uniform_sym(0.5);
            assert!((-0.5..0.5).contains(&x));
        }
    }
}
