//! A fully connected layer with backprop.

use crate::matrix::Matrix;
use crate::rng::MlRng;
use serde::{Deserialize, Serialize};

/// `y = x·W + b`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Linear {
    pub w: Matrix,
    pub b: Vec<f32>,
}

/// Gradient accumulator matching a [`Linear`]'s parameter shapes.
#[derive(Clone, Debug)]
pub struct LinearGrads {
    pub w: Matrix,
    pub b: Vec<f32>,
}

impl LinearGrads {
    /// Zeroed gradients for `layer`.
    pub fn zeros(layer: &Linear) -> LinearGrads {
        LinearGrads {
            w: Matrix::zeros(layer.w.rows, layer.w.cols),
            b: vec![0.0; layer.b.len()],
        }
    }

    /// Reset all gradients to zero (buffer reuse).
    pub fn zero(&mut self) {
        self.w.data.fill(0.0);
        self.b.fill(0.0);
    }

    /// Accumulate another buffer: `self += other`.
    pub fn add_assign(&mut self, other: &LinearGrads) {
        self.w.add_assign(&other.w);
        for (a, &b) in self.b.iter_mut().zip(&other.b) {
            *a += b;
        }
    }
}

impl Linear {
    /// Xavier-uniform initialization.
    pub fn new(input: usize, output: usize, rng: &mut MlRng) -> Linear {
        let a = (6.0 / (input + output) as f64).sqrt();
        Linear {
            w: Matrix::from_fn(input, output, |_, _| rng.uniform_sym(a) as f32),
            b: vec![0.0; output],
        }
    }

    pub fn input_dim(&self) -> usize {
        self.w.rows
    }

    pub fn output_dim(&self) -> usize {
        self.w.cols
    }

    /// Forward pass for a batch `x` (B×I) → (B×O).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        y.add_row_broadcast(&self.b);
        y
    }

    /// Accumulate gradients into `grads` given the forward input and
    /// `dL/dy`; returns `dL/dx`.
    pub fn backward(&self, x: &Matrix, dy: &Matrix, grads: &mut LinearGrads) -> Matrix {
        grads.w.add_assign(&x.t_matmul(dy));
        for (g, d) in grads.b.iter_mut().zip(dy.sum_rows()) {
            *g += d;
        }
        dy.matmul_t(&self.w)
    }

    /// Visit `(params, grads)` slices in a fixed order (for optimizers).
    pub fn visit(&mut self, grads: &mut LinearGrads, f: &mut impl FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.w.data, &mut grads.w.data);
        f(&mut self.b, &mut grads.b);
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.data.len() + self.b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known_values() {
        let mut l = Linear::new(2, 2, &mut MlRng::new(1));
        l.w = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]);
        l.b = vec![0.5, -0.5];
        let x = Matrix::from_rows(&[vec![3.0, 4.0]]);
        let y = l.forward(&x);
        assert_eq!(y.row(0), &[3.5, 7.5]);
    }

    #[test]
    fn gradient_check_finite_difference() {
        let mut rng = MlRng::new(7);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Matrix::from_fn(4, 3, |_, _| rng.uniform_sym(1.0) as f32);
        // Loss = 0.5 * sum(y^2)  =>  dL/dy = y.
        let loss = |l: &Linear, x: &Matrix| -> f64 {
            l.forward(x).data.iter().map(|&v| 0.5 * v as f64 * v as f64).sum()
        };
        let y = l.forward(&x);
        let mut grads = LinearGrads::zeros(&l);
        let _ = l.backward(&x, &y, &mut grads);
        let eps = 1e-3_f32;
        for idx in [0usize, 2, 5] {
            let orig = l.w.data[idx];
            l.w.data[idx] = orig + eps;
            let up = loss(&l, &x);
            l.w.data[idx] = orig - eps;
            let dn = loss(&l, &x);
            l.w.data[idx] = orig;
            let fd = ((up - dn) / (2.0 * eps as f64)) as f32;
            let an = grads.w.data[idx];
            assert!(
                (fd - an).abs() / (fd.abs() + an.abs()).max(1e-3) < 0.05,
                "w[{idx}]: fd {fd} vs analytic {an}"
            );
        }
        // Bias gradient: column sums of dy.
        let col0: f32 = (0..4).map(|i| y.get(i, 0)).sum();
        assert!((grads.b[0] - col0).abs() < 1e-4);
    }

    #[test]
    fn backward_input_gradient() {
        let mut rng = MlRng::new(9);
        let mut l = Linear::new(2, 2, &mut rng);
        l.w = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let x = Matrix::from_rows(&[vec![1.0, 1.0]]);
        let dy = Matrix::from_rows(&[vec![1.0, 0.0]]);
        let mut grads = LinearGrads::zeros(&l);
        let dx = l.backward(&x, &dy, &mut grads);
        // dx = dy · W^T = [1*1 + 0*2, 1*3 + 0*4].
        assert_eq!(dx.row(0), &[1.0, 3.0]);
    }

    #[test]
    fn grads_accumulate_until_zeroed() {
        let mut rng = MlRng::new(3);
        let l = Linear::new(2, 1, &mut rng);
        let x = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let dy = Matrix::from_rows(&[vec![1.0]]);
        let mut grads = LinearGrads::zeros(&l);
        l.backward(&x, &dy, &mut grads);
        let g1 = grads.w.data.clone();
        l.backward(&x, &dy, &mut grads);
        assert!(grads.w.data.iter().zip(&g1).all(|(a, b)| (*a - 2.0 * b).abs() < 1e-6));
        grads.zero();
        assert!(grads.w.data.iter().all(|&g| g == 0.0));
    }
}
