//! An LSTM layer with full backpropagation through time.
//!
//! The paper's internal models are LSTMs: "For each direction of traffic,
//! the LSTMs consist of an input layer and a stack of flattened,
//! one-dimensional hidden layers" (§5.5), chosen for "their ability to
//! learn complex underlying relationships in sequences of data". This is a
//! standard LSTM cell:
//!
//! ```text
//! z = x·Wx + h₋₁·Wh + b          (z split into i | f | g | o)
//! i = σ(zᵢ)  f = σ(z_f)  g = tanh(z_g)  o = σ(z_o)
//! c = f∘c₋₁ + i∘g                h = o∘tanh(c)
//! ```
//!
//! with the forget-gate bias initialized to 1 (the usual trick so memory
//! survives early training).

use crate::matrix::Matrix;
use crate::rng::MlRng;
use serde::{Deserialize, Serialize};

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// The recurrent state carried between steps.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LstmState {
    pub h: Matrix,
    pub c: Matrix,
}

impl LstmState {
    pub fn zeros(batch: usize, hidden: usize) -> LstmState {
        LstmState {
            h: Matrix::zeros(batch, hidden),
            c: Matrix::zeros(batch, hidden),
        }
    }
}

/// Everything the backward pass needs from one forward step.
#[derive(Clone, Debug)]
pub struct StepCache {
    x: Matrix,
    h_prev: Matrix,
    c_prev: Matrix,
    i: Matrix,
    f: Matrix,
    g: Matrix,
    o: Matrix,
    tanh_c: Matrix,
}

/// The LSTM layer parameters and accumulated gradients.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Lstm {
    pub input: usize,
    pub hidden: usize,
    /// Input weights, `input × 4·hidden`, gate order `i|f|g|o`.
    pub wx: Matrix,
    /// Recurrent weights, `hidden × 4·hidden`.
    pub wh: Matrix,
    /// Bias, length `4·hidden`.
    pub b: Vec<f32>,
    pub gwx: Matrix,
    pub gwh: Matrix,
    pub gb: Vec<f32>,
}

impl Lstm {
    pub fn new(input: usize, hidden: usize, rng: &mut MlRng) -> Lstm {
        let a_x = (6.0 / (input + hidden) as f64).sqrt();
        let a_h = (6.0 / (2 * hidden) as f64).sqrt();
        let mut b = vec![0.0; 4 * hidden];
        // Forget gate bias = 1.
        for v in b.iter_mut().skip(hidden).take(hidden) {
            *v = 1.0;
        }
        Lstm {
            input,
            hidden,
            wx: Matrix::from_fn(input, 4 * hidden, |_, _| rng.uniform_sym(a_x) as f32),
            wh: Matrix::from_fn(hidden, 4 * hidden, |_, _| rng.uniform_sym(a_h) as f32),
            b,
            gwx: Matrix::zeros(input, 4 * hidden),
            gwh: Matrix::zeros(hidden, 4 * hidden),
            gb: vec![0.0; 4 * hidden],
        }
    }

    /// Slice columns `[from, to)` of a `B × 4H` pre-activation matrix.
    fn slice_cols(z: &Matrix, from: usize, to: usize) -> Matrix {
        let mut out = Matrix::zeros(z.rows, to - from);
        for r in 0..z.rows {
            out.data[r * (to - from)..(r + 1) * (to - from)]
                .copy_from_slice(&z.row(r)[from..to]);
        }
        out
    }

    /// One forward step for a batch. Returns the new state and the cache
    /// for backprop.
    pub fn forward_step(&self, x: &Matrix, state: &LstmState) -> (LstmState, StepCache) {
        assert_eq!(x.cols, self.input, "input width mismatch");
        let h = self.hidden;
        let mut z = x.matmul(&self.wx);
        z.add_assign(&state.h.matmul(&self.wh));
        z.add_row_broadcast(&self.b);
        let i = Self::slice_cols(&z, 0, h).map(sigmoid);
        let f = Self::slice_cols(&z, h, 2 * h).map(sigmoid);
        let g = Self::slice_cols(&z, 2 * h, 3 * h).map(f32::tanh);
        let o = Self::slice_cols(&z, 3 * h, 4 * h).map(sigmoid);
        let mut c = f.hadamard(&state.c);
        c.add_assign(&i.hadamard(&g));
        let tanh_c = c.map(f32::tanh);
        let h_new = o.hadamard(&tanh_c);
        (
            LstmState { h: h_new, c },
            StepCache {
                x: x.clone(),
                h_prev: state.h.clone(),
                c_prev: state.c.clone(),
                i,
                f,
                g,
                o,
                tanh_c,
            },
        )
    }

    /// Allocation-light single-sample forward step for inference: updates
    /// `state` (batch 1) in place. Numerically identical to
    /// [`Lstm::forward_step`] (same accumulation order), but ~an order of
    /// magnitude cheaper — this is the per-packet cost inside a running
    /// Mimic, the analogue of the paper's custom C++/ATen inference engine.
    pub fn step_inplace(&self, x: &[f32], state: &mut LstmState) {
        assert_eq!(x.len(), self.input, "input width mismatch");
        assert_eq!(state.h.rows, 1, "step_inplace is single-sample");
        let h = self.hidden;
        let mut z = vec![0.0f32; 4 * h];
        // z = x · Wx  (same k-ordering as Matrix::matmul)
        for (k, &a) in x.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let row = &self.wx.data[k * 4 * h..(k + 1) * 4 * h];
            for (zv, &w) in z.iter_mut().zip(row) {
                *zv += a * w;
            }
        }
        // z += h_prev · Wh
        for (k, &a) in state.h.data.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let row = &self.wh.data[k * 4 * h..(k + 1) * 4 * h];
            for (zv, &w) in z.iter_mut().zip(row) {
                *zv += a * w;
            }
        }
        // z += b
        for (zv, &b) in z.iter_mut().zip(&self.b) {
            *zv += b;
        }
        for j in 0..h {
            let i_g = sigmoid(z[j]);
            let f_g = sigmoid(z[h + j]);
            let g_g = z[2 * h + j].tanh();
            let o_g = sigmoid(z[3 * h + j]);
            let c = f_g * state.c.data[j] + i_g * g_g;
            state.c.data[j] = c;
            state.h.data[j] = o_g * c.tanh();
        }
    }

    /// One BPTT step: given `dL/dh` and `dL/dc` flowing in from the future,
    /// accumulate parameter gradients and return
    /// `(dL/dx, dL/dh_prev, dL/dc_prev)`.
    pub fn backward_step(
        &mut self,
        cache: &StepCache,
        dh: &Matrix,
        dc_in: &Matrix,
    ) -> (Matrix, Matrix, Matrix) {
        let h = self.hidden;
        let one_minus = |m: &Matrix| m.map(|v| 1.0 - v);
        // Output gate and cell.
        let do_ = dh.hadamard(&cache.tanh_c);
        let mut dc = dh
            .hadamard(&cache.o)
            .hadamard(&cache.tanh_c.map(|v| 1.0 - v * v));
        dc.add_assign(dc_in);
        // Gates.
        let di = dc.hadamard(&cache.g);
        let df = dc.hadamard(&cache.c_prev);
        let dg = dc.hadamard(&cache.i);
        let dc_prev = dc.hadamard(&cache.f);
        // Pre-activations.
        let dzi = di.hadamard(&cache.i).hadamard(&one_minus(&cache.i));
        let dzf = df.hadamard(&cache.f).hadamard(&one_minus(&cache.f));
        let dzg = dg.hadamard(&cache.g.map(|v| 1.0 - v * v));
        let dzo = do_.hadamard(&cache.o).hadamard(&one_minus(&cache.o));
        // Concatenate into B × 4H.
        let batch = dh.rows;
        let mut dz = Matrix::zeros(batch, 4 * h);
        for r in 0..batch {
            dz.data[r * 4 * h..r * 4 * h + h].copy_from_slice(dzi.row(r));
            dz.data[r * 4 * h + h..r * 4 * h + 2 * h].copy_from_slice(dzf.row(r));
            dz.data[r * 4 * h + 2 * h..r * 4 * h + 3 * h].copy_from_slice(dzg.row(r));
            dz.data[r * 4 * h + 3 * h..r * 4 * h + 4 * h].copy_from_slice(dzo.row(r));
        }
        // Parameter gradients.
        self.gwx.add_assign(&cache.x.t_matmul(&dz));
        self.gwh.add_assign(&cache.h_prev.t_matmul(&dz));
        for (g, d) in self.gb.iter_mut().zip(dz.sum_rows()) {
            *g += d;
        }
        // Upstream gradients.
        let dx = dz.matmul_t(&self.wx);
        let dh_prev = dz.matmul_t(&self.wh);
        (dx, dh_prev, dc_prev)
    }

    pub fn zero_grad(&mut self) {
        self.gwx.data.fill(0.0);
        self.gwh.data.fill(0.0);
        self.gb.fill(0.0);
    }

    /// Visit `(params, grads)` slices in a fixed order.
    pub fn visit(&mut self, f: &mut impl FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.wx.data, &mut self.gwx.data);
        f(&mut self.wh.data, &mut self.gwh.data);
        f(&mut self.b, &mut self.gb);
    }

    pub fn param_count(&self) -> usize {
        self.wx.data.len() + self.wh.data.len() + self.b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mut rng = MlRng::new(1);
        let lstm = Lstm::new(3, 5, &mut rng);
        let x = Matrix::zeros(2, 3);
        let s = LstmState::zeros(2, 5);
        let (s2, _) = lstm.forward_step(&x, &s);
        assert_eq!((s2.h.rows, s2.h.cols), (2, 5));
        assert_eq!((s2.c.rows, s2.c.cols), (2, 5));
    }

    #[test]
    fn zero_input_zero_state_gives_bounded_output() {
        let mut rng = MlRng::new(2);
        let lstm = Lstm::new(3, 4, &mut rng);
        let (s, _) = lstm.forward_step(&Matrix::zeros(1, 3), &LstmState::zeros(1, 4));
        for &v in &s.h.data {
            assert!(v.abs() < 1.0, "h out of tanh-sigmoid range: {v}");
        }
    }

    #[test]
    fn memory_persists_across_steps() {
        // Feeding a strong input once should leave a trace in the cell that
        // persists with near-unit forget gates.
        let mut rng = MlRng::new(3);
        let lstm = Lstm::new(1, 4, &mut rng);
        let mut s = LstmState::zeros(1, 4);
        let strong = Matrix::from_rows(&[vec![5.0]]);
        let silent = Matrix::from_rows(&[vec![0.0]]);
        s = lstm.forward_step(&strong, &s).0;
        let c_after = s.c.clone();
        for _ in 0..3 {
            s = lstm.forward_step(&silent, &s).0;
        }
        // Cell state decays but does not vanish instantly.
        let corr: f32 = s
            .c
            .data
            .iter()
            .zip(&c_after.data)
            .map(|(a, b)| a * b)
            .sum();
        assert!(corr > 0.0, "cell memory vanished");
    }

    #[test]
    fn bptt_gradient_check() {
        // Finite-difference check of dL/dWx, dL/dWh, dL/db over a 3-step
        // unrolled sequence with L = 0.5·Σ h_T².
        let mut rng = MlRng::new(11);
        let (input, hidden, batch, steps) = (2usize, 3usize, 2usize, 3usize);
        let mut lstm = Lstm::new(input, hidden, &mut rng);
        let xs: Vec<Matrix> = (0..steps)
            .map(|_| Matrix::from_fn(batch, input, |_, _| rng.uniform_sym(1.0) as f32))
            .collect();

        let loss = |l: &Lstm| -> f64 {
            let mut s = LstmState::zeros(batch, hidden);
            for x in &xs {
                s = l.forward_step(x, &s).0;
            }
            s.h.data.iter().map(|&v| 0.5 * v as f64 * v as f64).sum()
        };

        // Analytic gradients.
        let mut s = LstmState::zeros(batch, hidden);
        let mut caches = Vec::new();
        for x in &xs {
            let (s2, cache) = lstm.forward_step(x, &s);
            caches.push(cache);
            s = s2;
        }
        lstm.zero_grad();
        let mut dh = s.h.clone(); // dL/dh_T = h_T
        let mut dc = Matrix::zeros(batch, hidden);
        for cache in caches.iter().rev() {
            let (_dx, dh_prev, dc_prev) = lstm.backward_step(cache, &dh, &dc);
            dh = dh_prev;
            dc = dc_prev;
        }

        // Compare against central differences at a sample of parameters.
        let gwx = lstm.gwx.data.clone();
        let gwh = lstm.gwh.data.clone();
        let gb = lstm.gb.clone();
        let eps = 2e-3f32;
        let mut check = |get: &dyn Fn(&Lstm) -> f32,
                         set: &dyn Fn(&mut Lstm, f32),
                         analytic: f32,
                         label: &str| {
            let orig = get(&lstm);
            set(&mut lstm, orig + eps);
            let up = loss(&lstm);
            set(&mut lstm, orig - eps);
            let dn = loss(&lstm);
            set(&mut lstm, orig);
            let fd = ((up - dn) / (2.0 * eps as f64)) as f32;
            assert!(
                (fd - analytic).abs() / (fd.abs() + analytic.abs()).max(5e-3) < 0.08,
                "{label}: fd {fd} vs analytic {analytic}"
            );
        };
        for idx in [0usize, 7, 13] {
            check(&|l| l.wx.data[idx], &|l, v| l.wx.data[idx] = v, gwx[idx], "wx");
        }
        for idx in [1usize, 5, 20] {
            check(&|l| l.wh.data[idx], &|l, v| l.wh.data[idx] = v, gwh[idx], "wh");
        }
        for idx in [0usize, 4, 9] {
            check(&|l| l.b[idx], &|l, v| l.b[idx] = v, gb[idx], "b");
        }
    }

    #[test]
    fn param_count() {
        let lstm = Lstm::new(10, 8, &mut MlRng::new(1));
        assert_eq!(lstm.param_count(), 10 * 32 + 8 * 32 + 32);
    }
}
