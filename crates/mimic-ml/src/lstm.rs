//! An LSTM layer with full backpropagation through time.
//!
//! The paper's internal models are LSTMs: "For each direction of traffic,
//! the LSTMs consist of an input layer and a stack of flattened,
//! one-dimensional hidden layers" (§5.5), chosen for "their ability to
//! learn complex underlying relationships in sequences of data". This is a
//! standard LSTM cell:
//!
//! ```text
//! z = x·Wx + h₋₁·Wh + b          (z split into i | f | g | o)
//! i = σ(zᵢ)  f = σ(z_f)  g = tanh(z_g)  o = σ(z_o)
//! c = f∘c₋₁ + i∘g                h = o∘tanh(c)
//! ```
//!
//! with the forget-gate bias initialized to 1 (the usual trick so memory
//! survives early training).
//!
//! Parameters ([`Lstm`]) and gradients ([`LstmGrads`]) are separate
//! structs: the backward pass takes `&self` plus a gradient buffer, so
//! data-parallel training can run many backward passes against one shared
//! model, each into its own buffer, and reduce them in a fixed order.

use crate::fastmath;
use crate::matrix::{fmadd, kernel_mode, KernelMode, Matrix};
use crate::rng::MlRng;
use serde::{Deserialize, Serialize};

/// Exact libm sigmoid — the reference path's activation.
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// The recurrent state carried between steps.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LstmState {
    pub h: Matrix,
    pub c: Matrix,
}

impl LstmState {
    pub fn zeros(batch: usize, hidden: usize) -> LstmState {
        LstmState {
            h: Matrix::zeros(batch, hidden),
            c: Matrix::zeros(batch, hidden),
        }
    }
}

/// Reusable gate-preactivation buffer for [`Lstm::step_inplace`].
///
/// One scratch serves a whole stack (layers share the hidden width), so a
/// running Mimic performs zero heap allocations per packet: the buffer is
/// sized once at state creation and only ever rewritten.
#[derive(Clone, Debug)]
pub struct LstmScratch {
    /// Gate pre-activations, length `4·hidden` (gate order `i|f|g|o`).
    z: Vec<f32>,
}

impl LstmScratch {
    /// Scratch able to serve layers up to `hidden` units wide.
    pub fn new(hidden: usize) -> LstmScratch {
        LstmScratch {
            z: vec![0.0; 4 * hidden],
        }
    }
}

/// Everything the backward pass needs from one forward step.
#[derive(Clone, Debug)]
pub struct StepCache {
    x: Matrix,
    h_prev: Matrix,
    c_prev: Matrix,
    i: Matrix,
    f: Matrix,
    g: Matrix,
    o: Matrix,
    tanh_c: Matrix,
}

/// The LSTM layer parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Lstm {
    pub input: usize,
    pub hidden: usize,
    /// Input weights, `input × 4·hidden`, gate order `i|f|g|o`.
    pub wx: Matrix,
    /// Recurrent weights, `hidden × 4·hidden`.
    pub wh: Matrix,
    /// Bias, length `4·hidden`.
    pub b: Vec<f32>,
}

/// Gradient accumulator matching an [`Lstm`]'s parameter shapes.
#[derive(Clone, Debug)]
pub struct LstmGrads {
    pub wx: Matrix,
    pub wh: Matrix,
    pub b: Vec<f32>,
}

impl LstmGrads {
    /// Zeroed gradients for `layer`.
    pub fn zeros(layer: &Lstm) -> LstmGrads {
        LstmGrads {
            wx: Matrix::zeros(layer.input, 4 * layer.hidden),
            wh: Matrix::zeros(layer.hidden, 4 * layer.hidden),
            b: vec![0.0; 4 * layer.hidden],
        }
    }

    /// Reset all gradients to zero (buffer reuse).
    pub fn zero(&mut self) {
        self.wx.data.fill(0.0);
        self.wh.data.fill(0.0);
        self.b.fill(0.0);
    }

    /// Accumulate another buffer: `self += other`.
    pub fn add_assign(&mut self, other: &LstmGrads) {
        self.wx.add_assign(&other.wx);
        self.wh.add_assign(&other.wh);
        for (a, &b) in self.b.iter_mut().zip(&other.b) {
            *a += b;
        }
    }
}

/// `z += x · W` for a row vector `x` and row-major `W` (`x.len() × z.len()`),
/// four `W` rows per pass so each store carries four multiply-adds.
fn vecmat_accum(z: &mut [f32], x: &[f32], w: &Matrix) {
    let n = z.len();
    debug_assert_eq!(w.cols, n);
    debug_assert_eq!(w.rows, x.len());
    let mut k = 0;
    while k + 4 <= x.len() {
        let (a0, a1, a2, a3) = (x[k], x[k + 1], x[k + 2], x[k + 3]);
        let w0 = &w.data[k * n..(k + 1) * n];
        let w1 = &w.data[(k + 1) * n..(k + 2) * n];
        let w2 = &w.data[(k + 2) * n..(k + 3) * n];
        let w3 = &w.data[(k + 3) * n..(k + 4) * n];
        for ((((zv, &v0), &v1), &v2), &v3) in
            z.iter_mut().zip(w0).zip(w1).zip(w2).zip(w3)
        {
            *zv = fmadd(a0, v0, fmadd(a1, v1, fmadd(a2, v2, fmadd(a3, v3, *zv))));
        }
        k += 4;
    }
    while k < x.len() {
        let a = x[k];
        let wrow = &w.data[k * n..(k + 1) * n];
        for (zv, &v) in z.iter_mut().zip(wrow) {
            *zv = fmadd(a, v, *zv);
        }
        k += 1;
    }
}

/// `z[lane] += xs[lane] · W` for `n` packed row vectors, streaming each
/// four-row block of `W` across every lane before moving on.
///
/// This is [`vecmat_accum`] with the `k`-chunk loop hoisted outside the
/// lane loop: per lane, each output element accumulates the *same* fmadd
/// chain in the *same* `k` order, so results are bit-identical to calling
/// `vecmat_accum` once per lane — but each `W` block is read once per
/// batch instead of once per lane, which is where batching pays off for
/// weight matrices larger than cache.
fn lanes_accum(z: &mut [f32], xs: &[f32], in_dim: usize, n: usize, w: &Matrix) {
    let cols = w.cols;
    debug_assert_eq!(w.rows, in_dim);
    debug_assert!(xs.len() >= n * in_dim);
    debug_assert!(z.len() >= n * cols);
    let mut k = 0;
    while k + 4 <= in_dim {
        let w0 = &w.data[k * cols..(k + 1) * cols];
        let w1 = &w.data[(k + 1) * cols..(k + 2) * cols];
        let w2 = &w.data[(k + 2) * cols..(k + 3) * cols];
        let w3 = &w.data[(k + 3) * cols..(k + 4) * cols];
        for lane in 0..n {
            let x = &xs[lane * in_dim..(lane + 1) * in_dim];
            let (a0, a1, a2, a3) = (x[k], x[k + 1], x[k + 2], x[k + 3]);
            let zr = &mut z[lane * cols..(lane + 1) * cols];
            for ((((zv, &v0), &v1), &v2), &v3) in
                zr.iter_mut().zip(w0).zip(w1).zip(w2).zip(w3)
            {
                *zv = fmadd(a0, v0, fmadd(a1, v1, fmadd(a2, v2, fmadd(a3, v3, *zv))));
            }
        }
        k += 4;
    }
    while k < in_dim {
        let wrow = &w.data[k * cols..(k + 1) * cols];
        for lane in 0..n {
            let a = xs[lane * in_dim + k];
            let zr = &mut z[lane * cols..(lane + 1) * cols];
            for (zv, &v) in zr.iter_mut().zip(wrow) {
                *zv = fmadd(a, v, *zv);
            }
        }
        k += 1;
    }
}

impl Lstm {
    pub fn new(input: usize, hidden: usize, rng: &mut MlRng) -> Lstm {
        let a_x = (6.0 / (input + hidden) as f64).sqrt();
        let a_h = (6.0 / (2 * hidden) as f64).sqrt();
        let mut b = vec![0.0; 4 * hidden];
        // Forget gate bias = 1.
        for v in b.iter_mut().skip(hidden).take(hidden) {
            *v = 1.0;
        }
        Lstm {
            input,
            hidden,
            wx: Matrix::from_fn(input, 4 * hidden, |_, _| rng.uniform_sym(a_x) as f32),
            wh: Matrix::from_fn(hidden, 4 * hidden, |_, _| rng.uniform_sym(a_h) as f32),
            b,
        }
    }

    /// Slice columns `[from, to)` of a `B × 4H` pre-activation matrix.
    fn slice_cols(z: &Matrix, from: usize, to: usize) -> Matrix {
        let mut out = Matrix::zeros(z.rows, to - from);
        for r in 0..z.rows {
            out.data[r * (to - from)..(r + 1) * (to - from)]
                .copy_from_slice(&z.row(r)[from..to]);
        }
        out
    }

    /// One forward step for a batch. Returns the new state and the cache
    /// for backprop. Dispatches on the process-wide
    /// [`KernelMode`]: the reference path keeps the original
    /// slice-and-map implementation with exact libm activations; the
    /// optimized path fuses the whole gate chain into one sweep with
    /// [`fastmath`] activations (|error| < 1e-6 per gate).
    pub fn forward_step(&self, x: &Matrix, state: &LstmState) -> (LstmState, StepCache) {
        match kernel_mode() {
            KernelMode::Naive => self.forward_step_reference(x, state),
            KernelMode::Blocked => self.forward_step_fused(x, state),
        }
    }

    /// The pre-optimization forward step, kept verbatim as the
    /// equivalence baseline: per-gate slice/map/hadamard passes, each
    /// allocating, with exact libm activations.
    pub fn forward_step_reference(&self, x: &Matrix, state: &LstmState) -> (LstmState, StepCache) {
        assert_eq!(x.cols, self.input, "input width mismatch");
        let h = self.hidden;
        let mut z = x.matmul(&self.wx);
        z.add_assign(&state.h.matmul(&self.wh));
        z.add_row_broadcast(&self.b);
        let i = Self::slice_cols(&z, 0, h).map(sigmoid);
        let f = Self::slice_cols(&z, h, 2 * h).map(sigmoid);
        let g = Self::slice_cols(&z, 2 * h, 3 * h).map(f32::tanh);
        let o = Self::slice_cols(&z, 3 * h, 4 * h).map(sigmoid);
        let mut c = f.hadamard(&state.c);
        c.add_assign(&i.hadamard(&g));
        let tanh_c = c.map(f32::tanh);
        let h_new = o.hadamard(&tanh_c);
        (
            LstmState { h: h_new, c },
            StepCache {
                x: x.clone(),
                h_prev: state.h.clone(),
                c_prev: state.c.clone(),
                i,
                f,
                g,
                o,
                tanh_c,
            },
        )
    }

    /// The optimized forward step: bias add, all four gate activations,
    /// and the cell update happen in a single sweep over the
    /// pre-activations — no per-gate temporaries — using [`fastmath`]
    /// activations. Matches the reference within 1e-5 per element.
    pub fn forward_step_fused(&self, x: &Matrix, state: &LstmState) -> (LstmState, StepCache) {
        assert_eq!(x.cols, self.input, "input width mismatch");
        let h = self.hidden;
        let batch = x.rows;
        let mut z = x.matmul(&self.wx);
        state.h.matmul_accum(&self.wh, &mut z);
        let mut i = Matrix::zeros(batch, h);
        let mut f = Matrix::zeros(batch, h);
        let mut g = Matrix::zeros(batch, h);
        let mut o = Matrix::zeros(batch, h);
        let mut c = Matrix::zeros(batch, h);
        let mut tanh_c = Matrix::zeros(batch, h);
        let mut h_new = Matrix::zeros(batch, h);
        for r in 0..batch {
            // Activate the gate pre-activations as contiguous blocks —
            // sigmoid over [i|f], tanh over [g], sigmoid over [o] — so the
            // branch-free polynomial vectorizes across lanes instead of
            // being evaluated scalar-by-scalar inside a wide loop body.
            let zr = &mut z.data[r * 4 * h..(r + 1) * 4 * h];
            for (zv, &bv) in zr.iter_mut().zip(&self.b) {
                *zv += bv;
            }
            fastmath::sigmoid_slice(&mut zr[..2 * h]);
            fastmath::tanh_slice(&mut zr[2 * h..3 * h]);
            fastmath::sigmoid_slice(&mut zr[3 * h..]);
            let (zi, rest) = zr.split_at(h);
            let (zf, rest) = rest.split_at(h);
            let (zg, zo) = rest.split_at(h);
            let cp = &state.c.data[r * h..(r + 1) * h];
            let rr = r * h..(r + 1) * h;
            i.data[rr.clone()].copy_from_slice(zi);
            f.data[rr.clone()].copy_from_slice(zf);
            g.data[rr.clone()].copy_from_slice(zg);
            o.data[rr.clone()].copy_from_slice(zo);
            let cr = &mut c.data[rr.clone()];
            for j in 0..h {
                cr[j] = zf[j] * cp[j] + zi[j] * zg[j];
            }
            let tr = &mut tanh_c.data[rr.clone()];
            tr.copy_from_slice(cr);
            fastmath::tanh_slice(tr);
            let hr = &mut h_new.data[rr];
            for j in 0..h {
                hr[j] = zo[j] * tr[j];
            }
        }
        (
            LstmState { h: h_new, c },
            StepCache {
                x: x.clone(),
                h_prev: state.h.clone(),
                c_prev: state.c.clone(),
                i,
                f,
                g,
                o,
                tanh_c,
            },
        )
    }

    /// Allocation-free single-sample forward step for inference: updates
    /// `state` (batch 1) in place using `scratch` for the gate
    /// pre-activations. Matches [`Lstm::forward_step`] to within f32
    /// rounding (the four-way unrolled accumulation reassociates sums) —
    /// this is the per-packet cost inside a running Mimic, the analogue of
    /// the paper's custom C++/ATen inference engine.
    pub fn step_inplace(&self, x: &[f32], state: &mut LstmState, scratch: &mut LstmScratch) {
        assert_eq!(x.len(), self.input, "input width mismatch");
        assert_eq!(state.h.rows, 1, "step_inplace is single-sample");
        let h = self.hidden;
        assert!(scratch.z.len() >= 4 * h, "scratch too small for layer");
        let z = &mut scratch.z[..4 * h];
        // z = b; z += x · Wx; z += h_prev · Wh.
        z.copy_from_slice(&self.b);
        vecmat_accum(z, x, &self.wx);
        vecmat_accum(z, &state.h.data, &self.wh);
        // Activate contiguous gate blocks so the polynomial vectorizes
        // (see `forward_step_fused`).
        fastmath::sigmoid_slice(&mut z[..2 * h]);
        fastmath::tanh_slice(&mut z[2 * h..3 * h]);
        fastmath::sigmoid_slice(&mut z[3 * h..]);
        let (zi, rest) = z.split_at(h);
        let (zf, rest) = rest.split_at(h);
        let (zg, zo) = rest.split_at(h);
        for j in 0..h {
            state.c.data[j] = zf[j] * state.c.data[j] + zi[j] * zg[j];
        }
        state.h.data.copy_from_slice(&state.c.data);
        fastmath::tanh_slice(&mut state.h.data);
        for (hv, &og) in state.h.data.iter_mut().zip(zo) {
            *hv *= og;
        }
    }

    /// Batched variant of [`Lstm::step_inplace`]: advance `n` independent
    /// single-sample states through one step, sharing each weight block
    /// across all lanes.
    ///
    /// `xs` packs the lane inputs row-major (`n × input`), `hs`/`cs` pack
    /// the lane hidden/cell states (`n × hidden`, updated in place), and
    /// `z` is gate scratch of at least `n × 4·hidden`.
    ///
    /// Per lane, every floating-point operation happens in exactly the
    /// order [`Lstm::step_inplace`] performs it — the accumulation chain
    /// of [`lanes_accum`] matches [`vecmat_accum`] element for element and
    /// the activation/cell tail is the same code — so the results are
    /// **bit-identical** to stepping each lane alone. That equivalence is
    /// what lets the PDES compose path batch boundary packets without
    /// perturbing a single prediction.
    pub fn step_lanes_blocked(
        &self,
        xs: &[f32],
        n: usize,
        hs: &mut [f32],
        cs: &mut [f32],
        z: &mut [f32],
    ) {
        let h = self.hidden;
        assert_eq!(xs.len(), n * self.input, "packed input width mismatch");
        assert_eq!(hs.len(), n * h, "packed hidden width mismatch");
        assert_eq!(cs.len(), n * h, "packed cell width mismatch");
        assert!(z.len() >= n * 4 * h, "lane scratch too small");
        let z = &mut z[..n * 4 * h];
        for lane in 0..n {
            z[lane * 4 * h..(lane + 1) * 4 * h].copy_from_slice(&self.b);
        }
        lanes_accum(z, xs, self.input, n, &self.wx);
        lanes_accum(z, hs, h, n, &self.wh);
        for lane in 0..n {
            let zr = &mut z[lane * 4 * h..(lane + 1) * 4 * h];
            fastmath::sigmoid_slice(&mut zr[..2 * h]);
            fastmath::tanh_slice(&mut zr[2 * h..3 * h]);
            fastmath::sigmoid_slice(&mut zr[3 * h..]);
            let (zi, rest) = zr.split_at(h);
            let (zf, rest) = rest.split_at(h);
            let (zg, zo) = rest.split_at(h);
            let cr = &mut cs[lane * h..(lane + 1) * h];
            for j in 0..h {
                cr[j] = zf[j] * cr[j] + zi[j] * zg[j];
            }
            let hr = &mut hs[lane * h..(lane + 1) * h];
            hr.copy_from_slice(cr);
            fastmath::tanh_slice(hr);
            for (hv, &og) in hr.iter_mut().zip(zo) {
                *hv *= og;
            }
        }
    }

    /// One BPTT step: given `dL/dh` and `dL/dc` flowing in from the future,
    /// accumulate parameter gradients into `grads` and return
    /// `(dL/dx, dL/dh_prev, dL/dc_prev)`.
    pub fn backward_step(
        &self,
        cache: &StepCache,
        dh: &Matrix,
        dc_in: &Matrix,
        grads: &mut LstmGrads,
    ) -> (Matrix, Matrix, Matrix) {
        let (dx, dh_prev, dc_prev) = self.backward_step_opt(cache, dh, dc_in, grads, true);
        (dx.expect("dx requested"), dh_prev, dc_prev)
    }

    /// [`Lstm::backward_step`] with the input gradient made optional:
    /// layer 0 of a stack has no layer below it, so `dL/dx` — a full
    /// `dz · Wxᵀ` product, roughly a quarter of the step's matrix math —
    /// can be skipped entirely with `need_dx = false`.
    ///
    /// Dispatches on the process [`KernelMode`]: the reference path is
    /// the original per-gate hadamard chain (which always computes `dx`,
    /// exactly as the pre-optimization code did); the optimized path
    /// fuses the gate-derivative chain into one sweep writing `dz`
    /// directly and accumulates the weight gradients in place.
    pub fn backward_step_opt(
        &self,
        cache: &StepCache,
        dh: &Matrix,
        dc_in: &Matrix,
        grads: &mut LstmGrads,
        need_dx: bool,
    ) -> (Option<Matrix>, Matrix, Matrix) {
        match kernel_mode() {
            KernelMode::Naive => {
                let (dx, dh_prev, dc_prev) =
                    self.backward_step_reference(cache, dh, dc_in, grads);
                (need_dx.then_some(dx), dh_prev, dc_prev)
            }
            KernelMode::Blocked => self.backward_step_fused(cache, dh, dc_in, grads, need_dx),
        }
    }

    /// The pre-optimization backward step, kept verbatim as the
    /// equivalence baseline: one allocating hadamard/map pass per
    /// intermediate, gradients staged through temporaries, `dx` always
    /// computed.
    pub fn backward_step_reference(
        &self,
        cache: &StepCache,
        dh: &Matrix,
        dc_in: &Matrix,
        grads: &mut LstmGrads,
    ) -> (Matrix, Matrix, Matrix) {
        let h = self.hidden;
        let one_minus = |m: &Matrix| m.map(|v| 1.0 - v);
        // Output gate and cell.
        let do_ = dh.hadamard(&cache.tanh_c);
        let mut dc = dh
            .hadamard(&cache.o)
            .hadamard(&cache.tanh_c.map(|v| 1.0 - v * v));
        dc.add_assign(dc_in);
        // Gates.
        let di = dc.hadamard(&cache.g);
        let df = dc.hadamard(&cache.c_prev);
        let dg = dc.hadamard(&cache.i);
        let dc_prev = dc.hadamard(&cache.f);
        // Pre-activations.
        let dzi = di.hadamard(&cache.i).hadamard(&one_minus(&cache.i));
        let dzf = df.hadamard(&cache.f).hadamard(&one_minus(&cache.f));
        let dzg = dg.hadamard(&cache.g.map(|v| 1.0 - v * v));
        let dzo = do_.hadamard(&cache.o).hadamard(&one_minus(&cache.o));
        // Concatenate into B × 4H.
        let batch = dh.rows;
        let mut dz = Matrix::zeros(batch, 4 * h);
        for r in 0..batch {
            dz.data[r * 4 * h..r * 4 * h + h].copy_from_slice(dzi.row(r));
            dz.data[r * 4 * h + h..r * 4 * h + 2 * h].copy_from_slice(dzf.row(r));
            dz.data[r * 4 * h + 2 * h..r * 4 * h + 3 * h].copy_from_slice(dzg.row(r));
            dz.data[r * 4 * h + 3 * h..r * 4 * h + 4 * h].copy_from_slice(dzo.row(r));
        }
        // Parameter gradients.
        grads.wx.add_assign(&cache.x.t_matmul(&dz));
        grads.wh.add_assign(&cache.h_prev.t_matmul(&dz));
        for (g, d) in grads.b.iter_mut().zip(dz.sum_rows()) {
            *g += d;
        }
        // Upstream gradients.
        let dx = dz.matmul_t(&self.wx);
        let dh_prev = dz.matmul_t(&self.wh);
        (dx, dh_prev, dc_prev)
    }

    /// The optimized backward step: the gate-derivative chain runs in one
    /// sweep (element order and arithmetic identical to the reference —
    /// an allocation/pass fusion, not a reassociation) and the weight
    /// gradients accumulate straight into `grads` with no temporaries.
    fn backward_step_fused(
        &self,
        cache: &StepCache,
        dh: &Matrix,
        dc_in: &Matrix,
        grads: &mut LstmGrads,
        need_dx: bool,
    ) -> (Option<Matrix>, Matrix, Matrix) {
        let h = self.hidden;
        let batch = dh.rows;
        let mut dz = Matrix::zeros(batch, 4 * h);
        let mut dc_prev = Matrix::zeros(batch, h);
        for r in 0..batch {
            // Per-row slices of fixed length `h` so the compiler can hoist
            // the bounds checks and vectorize the sweep (indexed accesses
            // into eight different buffers defeat both).
            let rr = r * h..(r + 1) * h;
            let ir = &cache.i.data[rr.clone()];
            let fr = &cache.f.data[rr.clone()];
            let gr = &cache.g.data[rr.clone()];
            let or = &cache.o.data[rr.clone()];
            let tcr = &cache.tanh_c.data[rr.clone()];
            let cpr = &cache.c_prev.data[rr.clone()];
            let dhr = &dh.data[rr.clone()];
            let dcir = &dc_in.data[rr.clone()];
            let dcpr = &mut dc_prev.data[rr];
            let zrow = &mut dz.data[r * 4 * h..(r + 1) * 4 * h];
            let (dzi, rest) = zrow.split_at_mut(h);
            let (dzf, rest) = rest.split_at_mut(h);
            let (dzg, dzo) = rest.split_at_mut(h);
            for j in 0..h {
                let i = ir[j];
                let f = fr[j];
                let g = gr[j];
                let o = or[j];
                let tc = tcr[j];
                let dhv = dhr[j];
                let do_ = dhv * tc;
                let dc = dhv * o * (1.0 - tc * tc) + dcir[j];
                dcpr[j] = dc * f;
                dzi[j] = dc * g * i * (1.0 - i);
                dzf[j] = dc * cpr[j] * f * (1.0 - f);
                dzg[j] = dc * i * (1.0 - g * g);
                dzo[j] = do_ * o * (1.0 - o);
            }
        }
        // Parameter gradients, accumulated in place.
        cache.x.t_matmul_accum(&dz, &mut grads.wx);
        cache.h_prev.t_matmul_accum(&dz, &mut grads.wh);
        for r in 0..batch {
            let zrow = &dz.data[r * 4 * h..(r + 1) * 4 * h];
            for (g, &d) in grads.b.iter_mut().zip(zrow) {
                *g += d;
            }
        }
        // Upstream gradients.
        let dx = if need_dx {
            Some(dz.matmul_t(&self.wx))
        } else {
            None
        };
        let dh_prev = dz.matmul_t(&self.wh);
        (dx, dh_prev, dc_prev)
    }

    /// Visit `(params, grads)` slices in a fixed order.
    pub fn visit(&mut self, grads: &mut LstmGrads, f: &mut impl FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.wx.data, &mut grads.wx.data);
        f(&mut self.wh.data, &mut grads.wh.data);
        f(&mut self.b, &mut grads.b);
    }

    pub fn param_count(&self) -> usize {
        self.wx.data.len() + self.wh.data.len() + self.b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mut rng = MlRng::new(1);
        let lstm = Lstm::new(3, 5, &mut rng);
        let x = Matrix::zeros(2, 3);
        let s = LstmState::zeros(2, 5);
        let (s2, _) = lstm.forward_step(&x, &s);
        assert_eq!((s2.h.rows, s2.h.cols), (2, 5));
        assert_eq!((s2.c.rows, s2.c.cols), (2, 5));
    }

    #[test]
    fn zero_input_zero_state_gives_bounded_output() {
        let mut rng = MlRng::new(2);
        let lstm = Lstm::new(3, 4, &mut rng);
        let (s, _) = lstm.forward_step(&Matrix::zeros(1, 3), &LstmState::zeros(1, 4));
        for &v in &s.h.data {
            assert!(v.abs() < 1.0, "h out of tanh-sigmoid range: {v}");
        }
    }

    #[test]
    fn memory_persists_across_steps() {
        // Feeding a strong input once should leave a trace in the cell that
        // persists with near-unit forget gates.
        let mut rng = MlRng::new(3);
        let lstm = Lstm::new(1, 4, &mut rng);
        let mut s = LstmState::zeros(1, 4);
        let strong = Matrix::from_rows(&[vec![5.0]]);
        let silent = Matrix::from_rows(&[vec![0.0]]);
        s = lstm.forward_step(&strong, &s).0;
        let c_after = s.c.clone();
        for _ in 0..3 {
            s = lstm.forward_step(&silent, &s).0;
        }
        // Cell state decays but does not vanish instantly.
        let corr: f32 = s
            .c
            .data
            .iter()
            .zip(&c_after.data)
            .map(|(a, b)| a * b)
            .sum();
        assert!(corr > 0.0, "cell memory vanished");
    }

    #[test]
    fn step_inplace_matches_forward_step() {
        let mut rng = MlRng::new(17);
        let lstm = Lstm::new(5, 7, &mut rng);
        let mut scratch = LstmScratch::new(7);
        let mut state = LstmState::zeros(1, 7);
        let mut batch_state = LstmState::zeros(1, 7);
        for _ in 0..6 {
            let x: Vec<f32> = (0..5).map(|_| rng.uniform_sym(1.0) as f32).collect();
            lstm.step_inplace(&x, &mut state, &mut scratch);
            let xm = Matrix::from_rows(std::slice::from_ref(&x));
            batch_state = lstm.forward_step(&xm, &batch_state).0;
            for (a, b) in state.h.data.iter().zip(&batch_state.h.data) {
                assert!((a - b).abs() < 1e-5, "h diverged: {a} vs {b}");
            }
            for (a, b) in state.c.data.iter().zip(&batch_state.c.data) {
                assert!((a - b).abs() < 1e-5, "c diverged: {a} vs {b}");
            }
        }
    }

    #[test]
    fn step_lanes_blocked_is_bit_identical_to_scalar_stepping() {
        // The lane kernel reorders *loops*, never per-element arithmetic:
        // every lane must match a scalar step_inplace rollout bit for bit,
        // including input widths that exercise the remainder path.
        for input in [5usize, 8, 3] {
            let mut rng = MlRng::new(91 + input as u64);
            let lstm = Lstm::new(input, 7, &mut rng);
            let n = 6;
            let mut scalar: Vec<LstmState> = (0..n).map(|_| LstmState::zeros(1, 7)).collect();
            let mut scratch = LstmScratch::new(7);
            let mut hs = vec![0.0f32; n * 7];
            let mut cs = vec![0.0f32; n * 7];
            let mut z = vec![0.0f32; n * 4 * 7];
            for _ in 0..5 {
                let xs: Vec<f32> = (0..n * input).map(|_| rng.uniform_sym(1.5) as f32).collect();
                for (lane, st) in scalar.iter_mut().enumerate() {
                    lstm.step_inplace(&xs[lane * input..(lane + 1) * input], st, &mut scratch);
                }
                lstm.step_lanes_blocked(&xs, n, &mut hs, &mut cs, &mut z);
                for (lane, st) in scalar.iter().enumerate() {
                    for j in 0..7 {
                        assert_eq!(
                            st.h.data[j].to_bits(),
                            hs[lane * 7 + j].to_bits(),
                            "h lane {lane} unit {j}"
                        );
                        assert_eq!(
                            st.c.data[j].to_bits(),
                            cs[lane * 7 + j].to_bits(),
                            "c lane {lane} unit {j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fused_forward_matches_reference() {
        // The optimized forward (fused sweep + fastmath activations) must
        // track the pre-optimization implementation within 1e-5 over a
        // multi-step rollout, including awkward batch sizes.
        let mut rng = MlRng::new(31);
        let lstm = Lstm::new(5, 9, &mut rng);
        for batch in [1usize, 3, 8] {
            let mut s_ref = LstmState::zeros(batch, 9);
            let mut s_fused = LstmState::zeros(batch, 9);
            for _ in 0..5 {
                let x = Matrix::from_fn(batch, 5, |_, _| rng.uniform_sym(2.0) as f32);
                s_ref = lstm.forward_step_reference(&x, &s_ref).0;
                s_fused = lstm.forward_step_fused(&x, &s_fused).0;
                for (a, b) in s_ref.h.data.iter().zip(&s_fused.h.data) {
                    assert!((a - b).abs() < 1e-5, "h diverged: {a} vs {b}");
                }
                for (a, b) in s_ref.c.data.iter().zip(&s_fused.c.data) {
                    assert!((a - b).abs() < 1e-5, "c diverged: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn fused_backward_matches_reference() {
        // Same forward cache, gradients within 1e-5 whichever backward
        // implementation processes it.
        let mut rng = MlRng::new(41);
        let lstm = Lstm::new(3, 5, &mut rng);
        let x = Matrix::from_fn(4, 3, |_, _| rng.uniform_sym(1.0) as f32);
        let (s2, cache) = lstm.forward_step_reference(&x, &LstmState::zeros(4, 5));
        let dh = s2.h.clone();
        let dc = Matrix::from_fn(4, 5, |_, _| rng.uniform_sym(0.5) as f32);
        let mut g_ref = LstmGrads::zeros(&lstm);
        let mut g_fused = LstmGrads::zeros(&lstm);
        let (dx_r, dh_r, dc_r) = lstm.backward_step_reference(&cache, &dh, &dc, &mut g_ref);
        let (dx_f, dh_f, dc_f) = {
            let (dx, dh2, dc2) = lstm.backward_step_fused(&cache, &dh, &dc, &mut g_fused, true);
            (dx.expect("dx requested"), dh2, dc2)
        };
        let close = |a: &[f32], b: &[f32], label: &str| {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-5, "{label}: {x} vs {y}");
            }
        };
        close(&dx_r.data, &dx_f.data, "dx");
        close(&dh_r.data, &dh_f.data, "dh_prev");
        close(&dc_r.data, &dc_f.data, "dc_prev");
        close(&g_ref.wx.data, &g_fused.wx.data, "wx");
        close(&g_ref.wh.data, &g_fused.wh.data, "wh");
        close(&g_ref.b, &g_fused.b, "b");
    }

    #[test]
    fn backward_skipping_dx_changes_nothing_else() {
        let mut rng = MlRng::new(37);
        let lstm = Lstm::new(4, 6, &mut rng);
        let x = Matrix::from_fn(2, 4, |_, _| rng.uniform_sym(1.0) as f32);
        let (s2, cache) = lstm.forward_step(&x, &LstmState::zeros(2, 6));
        let dh = s2.h.clone();
        let dc = Matrix::zeros(2, 6);
        let mut g1 = LstmGrads::zeros(&lstm);
        let mut g2 = LstmGrads::zeros(&lstm);
        let (dx, dh1, dc1) = lstm.backward_step_opt(&cache, &dh, &dc, &mut g1, true);
        let (no_dx, dh2, dc2) = lstm.backward_step_opt(&cache, &dh, &dc, &mut g2, false);
        assert!(dx.is_some());
        assert!(no_dx.is_none());
        assert_eq!(dh1.data, dh2.data);
        assert_eq!(dc1.data, dc2.data);
        assert_eq!(g1.wx.data, g2.wx.data);
        assert_eq!(g1.wh.data, g2.wh.data);
        assert_eq!(g1.b, g2.b);
    }

    #[test]
    fn bptt_gradient_check() {
        // Finite-difference check of dL/dWx, dL/dWh, dL/db over a 3-step
        // unrolled sequence with L = 0.5·Σ h_T².
        let mut rng = MlRng::new(11);
        let (input, hidden, batch, steps) = (2usize, 3usize, 2usize, 3usize);
        let mut lstm = Lstm::new(input, hidden, &mut rng);
        let xs: Vec<Matrix> = (0..steps)
            .map(|_| Matrix::from_fn(batch, input, |_, _| rng.uniform_sym(1.0) as f32))
            .collect();

        let loss = |l: &Lstm| -> f64 {
            let mut s = LstmState::zeros(batch, hidden);
            for x in &xs {
                s = l.forward_step(x, &s).0;
            }
            s.h.data.iter().map(|&v| 0.5 * v as f64 * v as f64).sum()
        };

        // Analytic gradients.
        let mut s = LstmState::zeros(batch, hidden);
        let mut caches = Vec::new();
        for x in &xs {
            let (s2, cache) = lstm.forward_step(x, &s);
            caches.push(cache);
            s = s2;
        }
        let mut grads = LstmGrads::zeros(&lstm);
        let mut dh = s.h.clone(); // dL/dh_T = h_T
        let mut dc = Matrix::zeros(batch, hidden);
        for cache in caches.iter().rev() {
            let (_dx, dh_prev, dc_prev) = lstm.backward_step(cache, &dh, &dc, &mut grads);
            dh = dh_prev;
            dc = dc_prev;
        }

        // Compare against central differences at a sample of parameters.
        let gwx = grads.wx.data.clone();
        let gwh = grads.wh.data.clone();
        let gb = grads.b.clone();
        let eps = 2e-3f32;
        let mut check = |get: &dyn Fn(&Lstm) -> f32,
                         set: &dyn Fn(&mut Lstm, f32),
                         analytic: f32,
                         label: &str| {
            let orig = get(&lstm);
            set(&mut lstm, orig + eps);
            let up = loss(&lstm);
            set(&mut lstm, orig - eps);
            let dn = loss(&lstm);
            set(&mut lstm, orig);
            let fd = ((up - dn) / (2.0 * eps as f64)) as f32;
            assert!(
                (fd - analytic).abs() / (fd.abs() + analytic.abs()).max(5e-3) < 0.08,
                "{label}: fd {fd} vs analytic {analytic}"
            );
        };
        for idx in [0usize, 7, 13] {
            check(&|l| l.wx.data[idx], &|l, v| l.wx.data[idx] = v, gwx[idx], "wx");
        }
        for idx in [1usize, 5, 20] {
            check(&|l| l.wh.data[idx], &|l, v| l.wh.data[idx] = v, gwh[idx], "wh");
        }
        for idx in [0usize, 4, 9] {
            check(&|l| l.b[idx], &|l, v| l.b[idx] = v, gb[idx], "b");
        }
    }

    #[test]
    fn grads_accumulate_and_reduce() {
        let mut rng = MlRng::new(23);
        let lstm = Lstm::new(2, 3, &mut rng);
        let x = Matrix::from_fn(1, 2, |_, _| rng.uniform_sym(1.0) as f32);
        let s = LstmState::zeros(1, 3);
        let (s2, cache) = lstm.forward_step(&x, &s);
        let dh = s2.h.clone();
        let dc = Matrix::zeros(1, 3);
        let mut g1 = LstmGrads::zeros(&lstm);
        let mut g2 = LstmGrads::zeros(&lstm);
        lstm.backward_step(&cache, &dh, &dc, &mut g1);
        lstm.backward_step(&cache, &dh, &dc, &mut g2);
        // Reducing two copies doubles the gradient.
        let mut sum = LstmGrads::zeros(&lstm);
        sum.add_assign(&g1);
        sum.add_assign(&g2);
        for (s, g) in sum.wx.data.iter().zip(&g1.wx.data) {
            assert!((s - 2.0 * g).abs() < 1e-6);
        }
        sum.zero();
        assert!(sum.wx.data.iter().all(|&v| v == 0.0));
        assert!(sum.b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn param_count() {
        let lstm = Lstm::new(10, 8, &mut MlRng::new(1));
        assert_eq!(lstm.param_count(), 10 * 32 + 8 * 32 + 32);
    }
}
