//! Fast scalar activations for the ML hot paths.
//!
//! Profiling the Mimic inference step and the BPTT training loop shows
//! the libm `tanh`/`exp` calls dominating: an LSTM step does ~5·hidden
//! transcendental evaluations, which at libm cost outweighs the matrix
//! math entirely at the paper's model sizes. This module provides the
//! classic order-13/6 rational `tanh` approximation (the scheme
//! vectorized math libraries ship): ~10 multiply-adds and one divide,
//! max absolute error below 1e-6 over the full range, flat within 1e-6
//! of ±1 in saturation. `sigmoid` derives from it via
//! `σ(x) = ½(1 + tanh(x/2))`.
//!
//! The *reference* (pre-optimization) code paths keep exact libm math —
//! [`crate::matrix::KernelMode::Naive`] selects them — so the optimized
//! kernels can always be epsilon-checked against a bit-faithful baseline.

/// |x| beyond which f32 `tanh` is indistinguishable from ±1.
const CLAMP: f32 = 7.905_311_5;

/// Rational-polynomial `tanh`, |error| < 1e-6 everywhere.
#[allow(clippy::excessive_precision)]
#[inline(always)]
pub fn tanh(x: f32) -> f32 {
    const A1: f32 = 4.89352455891786e-3;
    const A3: f32 = 6.37261928875436e-4;
    const A5: f32 = 1.48572235717979e-5;
    const A7: f32 = 5.12229709037114e-8;
    const A9: f32 = -8.60467152213735e-11;
    const A11: f32 = 2.00018790482477e-13;
    const A13: f32 = -2.76076847742355e-16;
    const B0: f32 = 4.89352518554385e-3;
    const B2: f32 = 2.26843463243900e-3;
    const B4: f32 = 1.18534705686654e-4;
    const B6: f32 = 1.19825839466702e-6;
    let x = x.clamp(-CLAMP, CLAMP);
    let x2 = x * x;
    let p = x * (A1 + x2 * (A3 + x2 * (A5 + x2 * (A7 + x2 * (A9 + x2 * (A11 + x2 * A13))))));
    let q = B0 + x2 * (B2 + x2 * (B4 + x2 * B6));
    p / q
}

/// Logistic sigmoid via [`tanh`], |error| < 1e-6 everywhere.
#[inline(always)]
pub fn sigmoid(x: f32) -> f32 {
    0.5 + 0.5 * tanh(0.5 * x)
}

/// In-place [`tanh`] over a slice. The scalar body is branch-free
/// (clamp + polynomial + divide), so this trivial loop is where LLVM
/// vectorizes the whole evaluation across SIMD lanes — calling it on a
/// contiguous gate block is several times faster than evaluating the
/// same elements one at a time inside a wider loop body.
#[inline]
pub fn tanh_slice(xs: &mut [f32]) {
    for v in xs {
        *v = tanh(*v);
    }
}

/// In-place [`sigmoid`] over a slice; see [`tanh_slice`].
#[inline]
pub fn sigmoid_slice(xs: &mut [f32]) {
    for v in xs {
        *v = sigmoid(*v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tanh_matches_libm_within_1e6() {
        let mut worst = 0.0f32;
        let mut x = -12.0f32;
        while x <= 12.0 {
            let err = (tanh(x) - x.tanh()).abs();
            worst = worst.max(err);
            x += 1e-3;
        }
        assert!(worst < 1e-6, "worst tanh error {worst}");
    }

    #[test]
    fn sigmoid_matches_libm_within_1e6() {
        let exact = |x: f32| 1.0 / (1.0 + (-x).exp());
        let mut worst = 0.0f32;
        let mut x = -20.0f32;
        while x <= 20.0 {
            let err = (sigmoid(x) - exact(x)).abs();
            worst = worst.max(err);
            x += 1e-3;
        }
        assert!(worst < 1e-6, "worst sigmoid error {worst}");
    }

    #[test]
    fn saturation_is_flat_and_bounded() {
        assert_eq!(tanh(0.0), 0.0);
        // Beyond the clamp the output is constant (the clamp-point value,
        // within 1e-6 of ±1) and never overshoots meaningfully.
        assert_eq!(tanh(30.0), tanh(1e30));
        assert!((tanh(30.0) - 1.0).abs() < 1e-6);
        assert!((tanh(-30.0) + 1.0).abs() < 1e-6);
        assert!((sigmoid(60.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-60.0).abs() < 1e-6);
    }

    #[test]
    fn slice_forms_match_scalar() {
        let xs: Vec<f32> = (-40..40).map(|i| i as f32 * 0.25).collect();
        let mut t = xs.clone();
        tanh_slice(&mut t);
        let mut s = xs.clone();
        sigmoid_slice(&mut s);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(t[i], tanh(x));
            assert_eq!(s[i], sigmoid(x));
        }
    }

    #[test]
    fn odd_symmetry() {
        for i in 0..1000 {
            let x = i as f32 * 0.01;
            assert_eq!(tanh(-x), -tanh(x));
        }
    }
}
