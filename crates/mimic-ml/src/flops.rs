//! Analytic FLOP accounting (paper Appendix G).
//!
//! The paper compares compute consumption of full simulation vs. MimicNet
//! by counting floating-point operations. For our CPU models the counts
//! are exact functions of layer dimensions; training costs roughly
//! 3× the forward pass (forward + backward ≈ 2× forward).

/// FLOPs of one `m×k · k×n` matrix multiply (multiply-add counted as 2).
pub fn matmul_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * (m * k * n) as u64
}

/// FLOPs of one LSTM forward step for batch `b`.
pub fn lstm_step_flops(input: usize, hidden: usize, b: usize) -> u64 {
    // Gate pre-activations: x·Wx (b×input·4h) + h·Wh (b×hidden·4h) + bias.
    let gates = matmul_flops(b, input, 4 * hidden)
        + matmul_flops(b, hidden, 4 * hidden)
        + (b * 4 * hidden) as u64;
    // Activations (~4 flops each) and cell/hidden updates (~6 per unit).
    let act = (b * 4 * hidden * 4) as u64 + (b * hidden * 6) as u64;
    gates + act
}

/// FLOPs of one head (linear) forward for batch `b`.
pub fn linear_flops(input: usize, output: usize, b: usize) -> u64 {
    matmul_flops(b, input, output) + (b * output) as u64
}

/// FLOPs of one full-window forward pass (window `w`, batch `b`).
pub fn window_forward_flops(input: usize, hidden: usize, outputs: usize, w: usize, b: usize) -> u64 {
    w as u64 * lstm_step_flops(input, hidden, b) + linear_flops(hidden, outputs, b)
}

/// FLOPs of one training step (forward + backward ≈ 3× forward).
pub fn train_step_flops(input: usize, hidden: usize, outputs: usize, w: usize, b: usize) -> u64 {
    3 * window_forward_flops(input, hidden, outputs, w, b)
}

/// FLOPs of one stateful inference step (batch 1).
pub fn inference_step_flops(input: usize, hidden: usize, outputs: usize) -> u64 {
    lstm_step_flops(input, hidden, 1) + linear_flops(hidden, outputs, 1)
}

/// Rough per-event cost of the discrete-event simulator, in FLOP
/// equivalents. Calibrated to tens of arithmetic ops per event (queue
/// bookkeeping, route hash, timestamps) — the paper's Appendix G makes a
/// similar apples-to-oranges conversion to compare CPU simulation with
/// GPU model math.
pub const SIM_EVENT_FLOPS: u64 = 50;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_count() {
        assert_eq!(matmul_flops(2, 3, 4), 48);
    }

    #[test]
    fn lstm_dominated_by_gates() {
        let f = lstm_step_flops(30, 64, 1);
        let gates_only = matmul_flops(1, 30, 256) + matmul_flops(1, 64, 256);
        assert!(f > gates_only);
        assert!(f < gates_only * 2);
    }

    #[test]
    fn window_scales_linearly() {
        let one = window_forward_flops(30, 64, 3, 1, 1);
        let twelve = window_forward_flops(30, 64, 3, 12, 1);
        assert!(twelve > 11 * (one - linear_flops(64, 3, 1)));
    }

    #[test]
    fn training_costs_more_than_inference() {
        assert!(
            train_step_flops(30, 64, 3, 12, 32)
                > 32 * window_forward_flops(30, 64, 3, 12, 1)
        );
    }
}
