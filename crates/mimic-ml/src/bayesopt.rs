//! Bayesian optimization with Expected Improvement.
//!
//! MimicNet's hyper-parameter tuning "uses Bayesian Optimization (BO) to
//! pick the next parameter set that has the highest 'prediction
//! uncertainty' via an acquisition function of EI (expected improvement)"
//! (§7.2). The objective is whatever end-to-end metric the user defines —
//! e.g. the W1 distance of FCT distributions summed over validation
//! scales — and is *minimized*.
//!
//! Search space: a box `[lo, hi]^d` described by [`ParamSpace`]; internally
//! everything is normalized to the unit cube.

use crate::gp::{Gp, RbfKernel};
use crate::rng::MlRng;

/// One tunable dimension.
#[derive(Clone, Debug)]
pub struct ParamDim {
    pub name: &'static str,
    pub lo: f64,
    pub hi: f64,
    /// Sample/log-scale the dimension (for learning rates etc.).
    pub log: bool,
}

impl ParamDim {
    pub fn linear(name: &'static str, lo: f64, hi: f64) -> ParamDim {
        assert!(hi > lo);
        ParamDim {
            name,
            lo,
            hi,
            log: false,
        }
    }

    pub fn log(name: &'static str, lo: f64, hi: f64) -> ParamDim {
        assert!(hi > lo && lo > 0.0);
        ParamDim {
            name,
            lo,
            hi,
            log: true,
        }
    }

    /// Unit-cube coordinate → raw value.
    pub fn denorm(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        if self.log {
            (self.lo.ln() + u * (self.hi.ln() - self.lo.ln())).exp()
        } else {
            self.lo + u * (self.hi - self.lo)
        }
    }

    /// Raw value → unit-cube coordinate.
    pub fn norm(&self, v: f64) -> f64 {
        if self.log {
            ((v.ln() - self.lo.ln()) / (self.hi.ln() - self.lo.ln())).clamp(0.0, 1.0)
        } else {
            ((v - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
        }
    }
}

/// The search box.
#[derive(Clone, Debug)]
pub struct ParamSpace {
    pub dims: Vec<ParamDim>,
}

impl ParamSpace {
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    pub fn denorm(&self, u: &[f64]) -> Vec<f64> {
        self.dims.iter().zip(u).map(|(d, &x)| d.denorm(x)).collect()
    }
}

/// Standard normal PDF.
fn phi(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via an Abramowitz–Stegun erf approximation.
fn big_phi(x: f64) -> f64 {
    // erf approximation, |error| < 1.5e-7.
    let t = 1.0 / (1.0 + 0.3275911 * x.abs() / std::f64::consts::SQRT_2);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-(x / std::f64::consts::SQRT_2).powi(2)).exp();
    let erf = if x >= 0.0 { erf } else { -erf };
    0.5 * (1.0 + erf)
}

/// Expected improvement for *minimization* at posterior `(mean, var)` given
/// the best observed value.
pub fn expected_improvement(mean: f64, var: f64, best: f64, xi: f64) -> f64 {
    let sigma = var.sqrt();
    if sigma < 1e-12 {
        return (best - mean - xi).max(0.0);
    }
    let z = (best - mean - xi) / sigma;
    (best - mean - xi) * big_phi(z) + sigma * phi(z)
}

/// The Bayesian optimizer state.
pub struct BayesOpt {
    pub space: ParamSpace,
    /// Observations in unit-cube coordinates.
    observed_x: Vec<Vec<f64>>,
    observed_y: Vec<f64>,
    rng: MlRng,
    /// Random candidates per acquisition round.
    pub candidates: usize,
    /// Initial quasi-random exploration points before the GP kicks in.
    pub n_init: usize,
    /// EI exploration bonus.
    pub xi: f64,
}

impl BayesOpt {
    pub fn new(space: ParamSpace, seed: u64) -> BayesOpt {
        BayesOpt {
            space,
            observed_x: Vec::new(),
            observed_y: Vec::new(),
            rng: MlRng::new(seed),
            candidates: 256,
            n_init: 4,
            xi: 0.01,
        }
    }

    /// Number of completed observations.
    pub fn n_observed(&self) -> usize {
        self.observed_y.len()
    }

    /// Best (lowest) observed objective and its raw parameters.
    pub fn best(&self) -> Option<(Vec<f64>, f64)> {
        let (i, y) = self
            .observed_y
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())?;
        Some((self.space.denorm(&self.observed_x[i]), *y))
    }

    /// Propose the next raw parameter vector to evaluate.
    pub fn propose(&mut self) -> Vec<f64> {
        let d = self.space.ndims();
        if self.observed_y.len() < self.n_init {
            let u: Vec<f64> = (0..d).map(|_| self.rng.next_f64()).collect();
            return self.space.denorm(&u);
        }
        let gp = Gp::fit(
            self.observed_x.clone(),
            &self.observed_y,
            RbfKernel::default(),
        );
        let best = self
            .observed_y
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let mut best_u: Vec<f64> = (0..d).map(|_| self.rng.next_f64()).collect();
        let mut best_ei = f64::NEG_INFINITY;
        for _ in 0..self.candidates {
            let u: Vec<f64> = (0..d).map(|_| self.rng.next_f64()).collect();
            let (m, v) = gp.predict(&u);
            let ei = expected_improvement(m, v, best, self.xi);
            if ei > best_ei {
                best_ei = ei;
                best_u = u;
            }
        }
        self.space.denorm(&best_u)
    }

    /// Record the objective seen at raw parameters `raw`.
    pub fn observe(&mut self, raw: &[f64], y: f64) {
        assert_eq!(raw.len(), self.space.ndims());
        assert!(y.is_finite(), "objective must be finite");
        let u: Vec<f64> = self
            .space
            .dims
            .iter()
            .zip(raw)
            .map(|(d, &v)| d.norm(v))
            .collect();
        self.observed_x.push(u);
        self.observed_y.push(y);
    }

    /// Run the full loop: `evals` evaluations of `f`, return the best.
    pub fn minimize(&mut self, evals: usize, mut f: impl FnMut(&[f64]) -> f64) -> (Vec<f64>, f64) {
        for _ in 0..evals {
            let x = self.propose();
            let y = f(&x);
            self.observe(&x, y);
        }
        self.best().expect("at least one evaluation")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_sane() {
        assert!((big_phi(0.0) - 0.5).abs() < 1e-6);
        assert!(big_phi(3.0) > 0.998);
        assert!(big_phi(-3.0) < 0.002);
    }

    #[test]
    fn ei_prefers_uncertainty_and_low_mean() {
        // Lower mean -> higher EI.
        let hi = expected_improvement(0.1, 0.01, 0.5, 0.0);
        let lo = expected_improvement(0.4, 0.01, 0.5, 0.0);
        assert!(hi > lo);
        // More variance -> higher EI at equal mean above best.
        let certain = expected_improvement(0.6, 1e-6, 0.5, 0.0);
        let uncertain = expected_improvement(0.6, 0.25, 0.5, 0.0);
        assert!(uncertain > certain);
        assert!(certain.abs() < 1e-9);
    }

    #[test]
    fn param_dims_roundtrip() {
        let lin = ParamDim::linear("w", 0.5, 0.9);
        assert!((lin.denorm(lin.norm(0.7)) - 0.7).abs() < 1e-12);
        let log = ParamDim::log("lr", 1e-4, 1e-1);
        assert!((log.denorm(log.norm(1e-3)) - 1e-3).abs() < 1e-15);
        assert!((log.denorm(0.5) - 10f64.powf(-2.5)).abs() < 1e-9);
    }

    #[test]
    fn bo_finds_quadratic_minimum() {
        let space = ParamSpace {
            dims: vec![ParamDim::linear("x", 0.0, 1.0)],
        };
        let mut bo = BayesOpt::new(space, 3);
        let (x, y) = bo.minimize(25, |p| (p[0] - 0.3) * (p[0] - 0.3));
        assert!((x[0] - 0.3).abs() < 0.1, "found x = {}", x[0]);
        assert!(y < 0.01);
    }

    #[test]
    fn bo_beats_the_initial_random_phase() {
        let space = ParamSpace {
            dims: vec![
                ParamDim::linear("a", 0.0, 1.0),
                ParamDim::linear("b", 0.0, 1.0),
            ],
        };
        let mut bo = BayesOpt::new(space, 11);
        let f = |p: &[f64]| (p[0] - 0.7).powi(2) + (p[1] - 0.2).powi(2);
        // Evaluate only the random phase.
        let mut random_best = f64::INFINITY;
        for _ in 0..bo.n_init {
            let x = bo.propose();
            let y = f(&x);
            random_best = random_best.min(y);
            bo.observe(&x, y);
        }
        let (_, y) = bo.minimize(20, f);
        assert!(y <= random_best, "BO {y} vs random {random_best}");
        assert!(y < 0.02, "BO converged poorly: {y}");
    }

    #[test]
    fn best_tracks_minimum_observation() {
        let space = ParamSpace {
            dims: vec![ParamDim::linear("x", 0.0, 10.0)],
        };
        let mut bo = BayesOpt::new(space, 1);
        bo.observe(&[2.0], 5.0);
        bo.observe(&[4.0], 1.0);
        bo.observe(&[6.0], 9.0);
        let (x, y) = bo.best().unwrap();
        assert_eq!(y, 1.0);
        assert!((x[0] - 4.0).abs() < 1e-9);
    }
}
