//! Optimizers: SGD with momentum and Adam.
//!
//! Optimizers operate on `(param, grad)` slice pairs visited in a fixed
//! order by the model's `visit` methods, keeping per-parameter state
//! (momenta) positionally — simple, allocation-free after the first step,
//! and deterministic.

/// Plain SGD with optional momentum.
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    pub fn new(lr: f32, momentum: f32) -> Sgd {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Begin a step; call [`SgdStep::apply`] once per `(param, grad)` pair
    /// in the model's canonical visit order.
    pub fn step(&mut self) -> SgdStep<'_> {
        SgdStep { opt: self, idx: 0 }
    }
}

/// One in-progress SGD step.
pub struct SgdStep<'a> {
    opt: &'a mut Sgd,
    idx: usize,
}

impl SgdStep<'_> {
    pub fn apply(&mut self, params: &mut [f32], grads: &mut [f32]) {
        if self.opt.velocity.len() <= self.idx {
            self.opt.velocity.push(vec![0.0; params.len()]);
        }
        let v = &mut self.opt.velocity[self.idx];
        assert_eq!(v.len(), params.len(), "parameter shapes changed");
        for ((p, g), vel) in params.iter_mut().zip(grads.iter()).zip(v.iter_mut()) {
            *vel = self.opt.momentum * *vel + g;
            *p -= self.opt.lr * *vel;
        }
        grads.fill(0.0);
        self.idx += 1;
    }
}

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

/// The serializable mutable state of an [`Adam`] optimizer: step counter
/// plus both moment estimates, positionally per parameter group. Lets a
/// resumed training run continue with bit-identical updates.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct AdamState {
    pub lr: f32,
    pub t: u64,
    pub m: Vec<Vec<f32>>,
    pub v: Vec<Vec<f32>>,
}

impl Adam {
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Snapshot the optimizer's mutable state for a checkpoint.
    pub fn state(&self) -> AdamState {
        AdamState {
            lr: self.lr,
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Rebuild an optimizer from a checkpointed state (default betas/eps,
    /// exactly as [`Adam::new`] sets them).
    pub fn restore(state: AdamState) -> Adam {
        let mut opt = Adam::new(state.lr);
        opt.t = state.t;
        opt.m = state.m;
        opt.v = state.v;
        opt
    }

    /// Begin a step; apply to every `(param, grad)` pair in order.
    pub fn step(&mut self) -> AdamStep<'_> {
        self.t += 1;
        AdamStep { opt: self, idx: 0 }
    }
}

/// One in-progress Adam step.
pub struct AdamStep<'a> {
    opt: &'a mut Adam,
    idx: usize,
}

impl AdamStep<'_> {
    pub fn apply(&mut self, params: &mut [f32], grads: &mut [f32]) {
        if self.opt.m.len() <= self.idx {
            self.opt.m.push(vec![0.0; params.len()]);
            self.opt.v.push(vec![0.0; params.len()]);
        }
        let t = self.opt.t as f32;
        let bc1 = 1.0 - self.opt.beta1.powf(t);
        let bc2 = 1.0 - self.opt.beta2.powf(t);
        let m = &mut self.opt.m[self.idx];
        let v = &mut self.opt.v[self.idx];
        assert_eq!(m.len(), params.len(), "parameter shapes changed");
        for i in 0..params.len() {
            let g = grads[i];
            m[i] = self.opt.beta1 * m[i] + (1.0 - self.opt.beta1) * g;
            v[i] = self.opt.beta2 * v[i] + (1.0 - self.opt.beta2) * g * g;
            let mhat = m[i] / bc1;
            let vhat = v[i] / bc2;
            params[i] -= self.opt.lr * mhat / (vhat.sqrt() + self.opt.eps);
        }
        grads.fill(0.0);
        self.idx += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x-3)^2 starting from 0.
    fn quadratic_descent(mut do_step: impl FnMut(&mut [f32], &mut [f32]), iters: usize) -> f32 {
        let mut x = [0.0f32];
        for _ in 0..iters {
            let mut g = [2.0 * (x[0] - 3.0)];
            do_step(&mut x, &mut g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1, 0.0);
        let x = quadratic_descent(|p, g| sgd.step().apply(p, g), 100);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let mut plain = Sgd::new(0.01, 0.0);
        let mut mom = Sgd::new(0.01, 0.9);
        let x_plain = quadratic_descent(|p, g| plain.step().apply(p, g), 50);
        let x_mom = quadratic_descent(|p, g| mom.step().apply(p, g), 50);
        assert!(
            (x_mom - 3.0).abs() < (x_plain - 3.0).abs(),
            "momentum {x_mom} vs plain {x_plain}"
        );
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.2);
        let x = quadratic_descent(|p, g| adam.step().apply(p, g), 200);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn grads_are_cleared_after_apply() {
        let mut adam = Adam::new(0.1);
        let mut p = [1.0f32, 2.0];
        let mut g = [0.5f32, -0.5];
        adam.step().apply(&mut p, &mut g);
        assert_eq!(g, [0.0, 0.0]);
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, the first step is ~lr regardless of grad
        // magnitude.
        let mut adam = Adam::new(0.1);
        let mut p = [0.0f32];
        let mut g = [1e-4f32];
        adam.step().apply(&mut p, &mut g);
        assert!((p[0] + 0.1).abs() < 1e-3, "p = {}", p[0]);
    }

    #[test]
    fn multiple_param_groups_tracked_separately() {
        let mut adam = Adam::new(0.1);
        let (mut p1, mut p2) = ([0.0f32], [0.0f32; 2]);
        for _ in 0..10 {
            let mut g1 = [2.0 * (p1[0] - 1.0)];
            let mut g2 = [2.0 * (p2[0] + 1.0), 2.0 * (p2[1] - 2.0)];
            let mut step = adam.step();
            step.apply(&mut p1, &mut g1);
            step.apply(&mut p2, &mut g2);
        }
        assert!(p1[0] > 0.5);
        assert!(p2[0] < -0.5);
        assert!(p2[1] > 0.5);
    }
}
