//! The sequence model used inside Mimics: a stack of LSTM layers plus a
//! linear head.
//!
//! Paper §5.5: "the LSTMs consist of an input layer and a stack of
//! flattened, one-dimensional hidden layers"; the number of layers is one
//! of the §7.2 tunables. Three outputs per packet, matching §5.2's
//! modeling objectives:
//!
//! | index | meaning | head |
//! |---|---|---|
//! | 0 | normalized (discretized) latency | regression (Huber) |
//! | 1 | drop logit | classification (WBCE) |
//! | 2 | ECN-mark logit | classification (BCE) |
//!
//! Two usage modes:
//! * **Windowed training** — [`SeqModel::forward_window`] /
//!   [`SeqModel::backward_window`] unroll over a window of packets and
//!   supervise the final step (the window defaults to the network BDP,
//!   per Appendix C). Gradients accumulate into a caller-owned
//!   [`ModelGrads`], so data-parallel training can run several backward
//!   passes over one shared `&SeqModel` and reduce the buffers in a fixed
//!   order ([`ModelGrads::add_assign`]).
//! * **Stateful inference** — [`SeqModel::step`] carries hidden state
//!   packet-by-packet inside a running simulation; feeder packets update
//!   the state the same way, with outputs discarded (§6). The state owns
//!   the gate scratch buffer, so stepping performs zero heap allocations.

use crate::linear::{Linear, LinearGrads};
use crate::lstm::{Lstm, LstmGrads, LstmScratch, LstmState, StepCache};
use crate::matrix::{kernel_mode, KernelMode, Matrix};
use crate::rng::MlRng;
use serde::{Deserialize, Serialize};

/// Output index: normalized latency.
pub const OUT_LATENCY: usize = 0;
/// Output index: drop logit.
pub const OUT_DROP: usize = 1;
/// Output index: ECN logit.
pub const OUT_ECN: usize = 2;
/// Number of model outputs.
pub const OUTPUTS: usize = 3;

/// Stacked LSTM + head, trained per direction (ingress/egress) per
/// cluster.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SeqModel {
    pub lstms: Vec<Lstm>,
    pub head: Linear,
}

/// Recurrent state of the whole stack (one [`LstmState`] per layer) plus
/// the reusable inference scratch. Not serialized: state is transient and
/// rebuilt from [`SeqModel::init_state`] at composition time.
#[derive(Clone, Debug)]
pub struct ModelState {
    pub layers: Vec<LstmState>,
    scratch: LstmScratch,
}

/// Reusable packed-lane buffers for [`SeqModel::step_lanes`].
///
/// Sized lazily to the largest batch seen, then reused forever: the
/// batched compose hot path performs zero steady-state heap allocations,
/// extending the [`LstmScratch`] discipline to multi-lane inference.
#[derive(Clone, Debug, Default)]
pub struct BatchScratch {
    /// Gate pre-activations, `n × 4·hidden`.
    z: Vec<f32>,
    /// Layer input staging for layers ≥ 1, `n × hidden`.
    xbuf: Vec<f32>,
    /// Packed hidden states, `n × hidden`.
    hbuf: Vec<f32>,
    /// Packed cell states, `n × hidden`.
    cbuf: Vec<f32>,
}

impl BatchScratch {
    pub fn new() -> BatchScratch {
        BatchScratch::default()
    }

    /// Grow (never shrink) to serve `n` lanes of `model`.
    fn ensure(&mut self, model: &SeqModel, n: usize) {
        let h = model.lstms.iter().map(|l| l.hidden).max().unwrap_or(0);
        if self.z.len() < n * 4 * h {
            self.z.resize(n * 4 * h, 0.0);
        }
        if self.xbuf.len() < n * h {
            self.xbuf.resize(n * h, 0.0);
        }
        if self.hbuf.len() < n * h {
            self.hbuf.resize(n * h, 0.0);
        }
        if self.cbuf.len() < n * h {
            self.cbuf.resize(n * h, 0.0);
        }
    }
}

/// Gradients for every parameter of a [`SeqModel`], in the model's
/// canonical layer order.
#[derive(Clone, Debug)]
pub struct ModelGrads {
    pub lstms: Vec<LstmGrads>,
    pub head: LinearGrads,
}

impl ModelGrads {
    /// Reset all gradients to zero (buffer reuse across batches).
    pub fn zero(&mut self) {
        for g in &mut self.lstms {
            g.zero();
        }
        self.head.zero();
    }

    /// Accumulate another buffer: `self += other`. Reduction order is the
    /// caller's responsibility — data-parallel training adds shard buffers
    /// in shard-index order so any worker count sums identically.
    pub fn add_assign(&mut self, other: &ModelGrads) {
        assert_eq!(self.lstms.len(), other.lstms.len(), "grad depth mismatch");
        for (a, b) in self.lstms.iter_mut().zip(&other.lstms) {
            a.add_assign(b);
        }
        self.head.add_assign(&other.head);
    }

    /// Global L2 norm over all gradients.
    pub fn norm(&self) -> f32 {
        let mut total = 0.0f32;
        for g in &self.lstms {
            total += g.wx.data.iter().map(|v| v * v).sum::<f32>();
            total += g.wh.data.iter().map(|v| v * v).sum::<f32>();
            total += g.b.iter().map(|v| v * v).sum::<f32>();
        }
        total += self.head.w.data.iter().map(|v| v * v).sum::<f32>();
        total += self.head.b.iter().map(|v| v * v).sum::<f32>();
        total.sqrt()
    }

    /// Clip all gradients to a global norm (BPTT stability).
    pub fn clip_to_norm(&mut self, max_norm: f32) {
        let total = self.norm();
        if total > max_norm {
            let k = max_norm / total;
            for g in &mut self.lstms {
                g.wx.scale(k);
                g.wh.scale(k);
                g.b.iter_mut().for_each(|v| *v *= k);
            }
            self.head.w.scale(k);
            self.head.b.iter_mut().for_each(|v| *v *= k);
        }
    }
}

/// Cache of one unrolled window for backprop: `steps[t][l]` is layer `l`'s
/// cache at timestep `t`.
pub struct WindowCache {
    steps: Vec<Vec<StepCache>>,
    final_h: Matrix,
    batch: usize,
}

impl SeqModel {
    /// A single-layer model reading `input` features with `hidden` units.
    pub fn new(input: usize, hidden: usize, seed: u64) -> SeqModel {
        SeqModel::new_stacked(input, hidden, 1, seed)
    }

    /// A `layers`-deep stack (layer 0 reads the features; deeper layers
    /// read the previous layer's hidden sequence).
    pub fn new_stacked(input: usize, hidden: usize, layers: usize, seed: u64) -> SeqModel {
        assert!(layers >= 1, "need at least one LSTM layer");
        let mut rng = MlRng::new(seed);
        let lstms = (0..layers)
            .map(|l| Lstm::new(if l == 0 { input } else { hidden }, hidden, &mut rng))
            .collect();
        SeqModel {
            lstms,
            head: Linear::new(hidden, OUTPUTS, &mut rng),
        }
    }

    pub fn input_dim(&self) -> usize {
        self.lstms[0].input
    }

    pub fn hidden_dim(&self) -> usize {
        self.lstms.last().expect("nonempty stack").hidden
    }

    pub fn num_layers(&self) -> usize {
        self.lstms.len()
    }

    /// A zeroed gradient buffer matching this model's shapes.
    pub fn new_grads(&self) -> ModelGrads {
        ModelGrads {
            lstms: self.lstms.iter().map(LstmGrads::zeros).collect(),
            head: LinearGrads::zeros(&self.head),
        }
    }

    /// Unroll over `xs` (one `B × F` matrix per timestep) from a zero
    /// state; predict at the final step. Returns `(B × 3)` predictions.
    pub fn forward_window(&self, xs: &[Matrix]) -> (Matrix, WindowCache) {
        assert!(!xs.is_empty(), "empty window");
        let batch = xs[0].rows;
        let hidden = self.hidden_dim();
        let mut states: Vec<LstmState> = self
            .lstms
            .iter()
            .map(|_| LstmState::zeros(batch, hidden))
            .collect();
        let mut steps = Vec::with_capacity(xs.len());
        for x in xs {
            let mut layer_input = x.clone();
            let mut per_layer = Vec::with_capacity(self.lstms.len());
            for (l, lstm) in self.lstms.iter().enumerate() {
                let (s, cache) = lstm.forward_step(&layer_input, &states[l]);
                layer_input = s.h.clone();
                states[l] = s;
                per_layer.push(cache);
            }
            steps.push(per_layer);
        }
        let final_h = states.last().expect("nonempty stack").h.clone();
        let y = self.head.forward(&final_h);
        (
            y,
            WindowCache {
                steps,
                final_h,
                batch,
            },
        )
    }

    /// Backpropagate `dL/dy` (B × 3) through the window, accumulating
    /// gradients into `grads` (stacked BPTT).
    pub fn backward_window(&self, cache: &WindowCache, dy: &Matrix, grads: &mut ModelGrads) {
        let layers = self.lstms.len();
        let hidden = self.hidden_dim();
        // Per-layer recurrent gradients flowing backward in time.
        let mut dh_time: Vec<Matrix> = (0..layers)
            .map(|_| Matrix::zeros(cache.batch, hidden))
            .collect();
        let mut dc_time: Vec<Matrix> = (0..layers)
            .map(|_| Matrix::zeros(cache.batch, hidden))
            .collect();
        // The head contributes to the top layer at the final step.
        dh_time[layers - 1].add_assign(&self.head.backward(&cache.final_h, dy, &mut grads.head));

        for per_layer in cache.steps.iter().rev() {
            // Gradient from the layer above w.r.t. this layer's output.
            let mut dx_from_above: Option<Matrix> = None;
            for l in (0..layers).rev() {
                let mut dh_in = dh_time[l].clone();
                if let Some(dx) = dx_from_above.take() {
                    dh_in.add_assign(&dx);
                }
                // Layer 0 has nothing below it — skip its dL/dx product.
                let (dx, dh_prev, dc_prev) = self.lstms[l].backward_step_opt(
                    &per_layer[l],
                    &dh_in,
                    &dc_time[l],
                    &mut grads.lstms[l],
                    l > 0,
                );
                dh_time[l] = dh_prev;
                dc_time[l] = dc_prev;
                dx_from_above = dx;
            }
        }
    }

    /// Visit all `(params, grads)` pairs in canonical order.
    pub fn visit_params(
        &mut self,
        grads: &mut ModelGrads,
        f: &mut impl FnMut(&mut [f32], &mut [f32]),
    ) {
        assert_eq!(self.lstms.len(), grads.lstms.len(), "grad depth mismatch");
        for (lstm, g) in self.lstms.iter_mut().zip(&mut grads.lstms) {
            lstm.visit(g, f);
        }
        self.head.visit(&mut grads.head, f);
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.lstms.iter().map(|l| l.param_count()).sum::<usize>() + self.head.param_count()
    }

    /// A fresh single-packet inference state with pre-sized scratch: no
    /// further allocation happens on the stepping path.
    pub fn init_state(&self) -> ModelState {
        let max_hidden = self.lstms.iter().map(|l| l.hidden).max().unwrap_or(0);
        ModelState {
            layers: self
                .lstms
                .iter()
                .map(|l| LstmState::zeros(1, l.hidden))
                .collect(),
            scratch: LstmScratch::new(max_hidden),
        }
    }

    /// Stateful single-packet inference: update `state` with the feature
    /// vector `x` and return `[latency, drop_logit, ecn_logit]`.
    pub fn step(&self, x: &[f32], state: &mut ModelState) -> [f32; OUTPUTS] {
        self.step_state_only(x, state);
        // Head: walk W row-contiguously, three multiply-adds per hidden
        // unit, no per-output strided passes.
        let h = &state.layers.last().expect("nonempty stack").h.data;
        let mut out = [0.0f32; OUTPUTS];
        out.copy_from_slice(&self.head.b);
        for (j, &hj) in h.iter().enumerate() {
            let wrow = &self.head.w.data[j * OUTPUTS..(j + 1) * OUTPUTS];
            for (o, &w) in out.iter_mut().zip(wrow) {
                *o += hj * w;
            }
        }
        out
    }

    /// Update `state` without computing outputs (feeder packets: "internal
    /// models' hidden state is updated as if the packets were routed",
    /// outputs discarded — §6).
    pub fn step_state_only(&self, x: &[f32], state: &mut ModelState) {
        assert_eq!(x.len(), self.lstms[0].input, "feature width mismatch");
        assert_eq!(state.layers.len(), self.lstms.len(), "state depth mismatch");
        let ModelState { layers, scratch } = state;
        self.lstms[0].step_inplace(x, &mut layers[0], scratch);
        for l in 1..self.lstms.len() {
            // Split so the previous layer's output can be read while this
            // layer's state is written — no copy, no allocation.
            let (prev, rest) = layers.split_at_mut(l);
            self.lstms[l].step_inplace(&prev[l - 1].h.data, &mut rest[0], scratch);
        }
    }

    /// Batched stateful inference: one forward step for `n` independent
    /// lanes that share this model's weights.
    ///
    /// `feats` packs the lane feature rows (`n × input`, row-major);
    /// `lanes[i]` names the entry of `states` that row `i` advances;
    /// `out[i]` receives row `i`'s `[latency, drop_logit, ecn_logit]`.
    ///
    /// Dispatches on the process-wide [`KernelMode`], exactly like the
    /// training kernels: the reference path steps each lane through
    /// [`SeqModel::step`] one by one; the blocked path runs the
    /// weight-sharing lane kernel. Both produce **bit-identical** results
    /// to scalar stepping (asserted by unit + integration equivalence
    /// suites) — batching here is a memory-traffic optimization, never a
    /// numerical one.
    pub fn step_lanes(
        &self,
        feats: &[f32],
        n: usize,
        states: &mut [ModelState],
        lanes: &[usize],
        out: &mut [[f32; OUTPUTS]],
        scratch: &mut BatchScratch,
    ) {
        match kernel_mode() {
            KernelMode::Naive => self.step_lanes_reference(feats, n, states, lanes, out),
            KernelMode::Blocked => self.step_lanes_blocked(feats, n, states, lanes, out, scratch),
        }
    }

    /// The equivalence baseline for [`SeqModel::step_lanes`]: a plain loop
    /// of scalar [`SeqModel::step`] calls, one lane at a time.
    pub fn step_lanes_reference(
        &self,
        feats: &[f32],
        n: usize,
        states: &mut [ModelState],
        lanes: &[usize],
        out: &mut [[f32; OUTPUTS]],
    ) {
        let input = self.input_dim();
        assert_eq!(feats.len(), n * input, "packed feature width mismatch");
        assert!(lanes.len() >= n && out.len() >= n, "lane buffers too short");
        for i in 0..n {
            out[i] = self.step(&feats[i * input..(i + 1) * input], &mut states[lanes[i]]);
        }
    }

    /// The optimized [`SeqModel::step_lanes`] path: gather each layer's
    /// lane states into packed buffers, run [`Lstm::step_lanes_blocked`]
    /// (one weight sweep shared by all lanes), scatter back, and apply the
    /// head per lane with the exact loop [`SeqModel::step`] uses. The
    /// copies move state bytes unchanged, so per-lane arithmetic — and
    /// therefore every output bit — matches scalar stepping.
    pub fn step_lanes_blocked(
        &self,
        feats: &[f32],
        n: usize,
        states: &mut [ModelState],
        lanes: &[usize],
        out: &mut [[f32; OUTPUTS]],
        scratch: &mut BatchScratch,
    ) {
        let input = self.input_dim();
        assert_eq!(feats.len(), n * input, "packed feature width mismatch");
        assert!(lanes.len() >= n && out.len() >= n, "lane buffers too short");
        scratch.ensure(self, n);
        let mut prev_h = 0usize;
        for (l, lstm) in self.lstms.iter().enumerate() {
            let h = lstm.hidden;
            for (i, &li) in lanes.iter().enumerate().take(n) {
                let st = &states[li].layers[l];
                scratch.hbuf[i * h..(i + 1) * h].copy_from_slice(&st.h.data);
                scratch.cbuf[i * h..(i + 1) * h].copy_from_slice(&st.c.data);
            }
            let xs = if l == 0 {
                feats
            } else {
                &scratch.xbuf[..n * prev_h]
            };
            lstm.step_lanes_blocked(
                xs,
                n,
                &mut scratch.hbuf[..n * h],
                &mut scratch.cbuf[..n * h],
                &mut scratch.z,
            );
            for (i, &li) in lanes.iter().enumerate().take(n) {
                let st = &mut states[li].layers[l];
                st.h.data.copy_from_slice(&scratch.hbuf[i * h..(i + 1) * h]);
                st.c.data.copy_from_slice(&scratch.cbuf[i * h..(i + 1) * h]);
            }
            if l + 1 < self.lstms.len() {
                scratch.xbuf[..n * h].copy_from_slice(&scratch.hbuf[..n * h]);
            }
            prev_h = h;
        }
        // Head per lane — identical arithmetic to `step`'s head loop.
        let hd = self.hidden_dim();
        for (i, o) in out.iter_mut().enumerate().take(n) {
            let hrow = &scratch.hbuf[i * hd..(i + 1) * hd];
            o.copy_from_slice(&self.head.b);
            for (j, &hj) in hrow.iter().enumerate() {
                let wrow = &self.head.w.data[j * OUTPUTS..(j + 1) * OUTPUTS];
                for (ov, &w) in o.iter_mut().zip(wrow) {
                    *ov += hj * w;
                }
            }
        }
    }

    /// Serialize to JSON (model persistence).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serializes")
    }

    /// Load from JSON.
    pub fn from_json(s: &str) -> Result<SeqModel, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_forward_shapes() {
        let m = SeqModel::new(4, 6, 1);
        let xs: Vec<Matrix> = (0..5).map(|_| Matrix::zeros(3, 4)).collect();
        let (y, _) = m.forward_window(&xs);
        assert_eq!((y.rows, y.cols), (3, OUTPUTS));
        let m2 = SeqModel::new_stacked(4, 6, 3, 1);
        let (y2, _) = m2.forward_window(&xs);
        assert_eq!((y2.rows, y2.cols), (3, OUTPUTS));
        assert_eq!(m2.num_layers(), 3);
    }

    fn gradient_check(layers: usize) {
        // L = 0.5 Σ y² through the full window; check head and lstm params.
        let mut rng = MlRng::new(5);
        let mut m = SeqModel::new_stacked(3, 4, layers, 2);
        let xs: Vec<Matrix> = (0..3)
            .map(|_| Matrix::from_fn(2, 3, |_, _| rng.uniform_sym(1.0) as f32))
            .collect();
        let loss = |m: &SeqModel| -> f64 {
            let (y, _) = m.forward_window(&xs);
            y.data.iter().map(|&v| 0.5 * v as f64 * v as f64).sum()
        };
        let (y, cache) = m.forward_window(&xs);
        let mut grads = m.new_grads();
        m.backward_window(&cache, &y, &mut grads);
        let eps = 2e-3f32;
        for layer in 0..layers {
            let layer_grads = grads.lstms[layer].wx.data.clone();
            for idx in [0usize, 7] {
                let orig = m.lstms[layer].wx.data[idx];
                m.lstms[layer].wx.data[idx] = orig + eps;
                let up = loss(&m);
                m.lstms[layer].wx.data[idx] = orig - eps;
                let dn = loss(&m);
                m.lstms[layer].wx.data[idx] = orig;
                let fd = ((up - dn) / (2.0 * eps as f64)) as f32;
                let an = layer_grads[idx];
                assert!(
                    (fd - an).abs() / (fd.abs() + an.abs()).max(5e-3) < 0.08,
                    "layer {layer} wx[{idx}]: fd {fd} vs {an}"
                );
            }
        }
        let head_grads = grads.head.w.data.clone();
        for idx in [0usize, 5, 11] {
            let orig = m.head.w.data[idx];
            m.head.w.data[idx] = orig + eps;
            let up = loss(&m);
            m.head.w.data[idx] = orig - eps;
            let dn = loss(&m);
            m.head.w.data[idx] = orig;
            let fd = ((up - dn) / (2.0 * eps as f64)) as f32;
            let an = head_grads[idx];
            assert!(
                (fd - an).abs() / (fd.abs() + an.abs()).max(5e-3) < 0.08,
                "head.w[{idx}]: fd {fd} vs {an}"
            );
        }
    }

    #[test]
    fn end_to_end_gradient_check_single_layer() {
        gradient_check(1);
    }

    #[test]
    fn end_to_end_gradient_check_two_layers() {
        gradient_check(2);
    }

    #[test]
    fn stateful_step_matches_window_forward() {
        // Feeding the same sequence step-by-step from a zero state must
        // produce the same final output as the windowed forward.
        for layers in [1usize, 2] {
            let m = SeqModel::new_stacked(3, 5, layers, 9);
            let mut rng = MlRng::new(4);
            let seq: Vec<Vec<f32>> = (0..6)
                .map(|_| (0..3).map(|_| rng.uniform_sym(1.0) as f32).collect())
                .collect();
            let xs: Vec<Matrix> = seq
                .iter()
                .map(|r| Matrix::from_rows(std::slice::from_ref(r)))
                .collect();
            let (y_win, _) = m.forward_window(&xs);
            let mut state = m.init_state();
            let mut last = [0.0f32; OUTPUTS];
            for r in &seq {
                last = m.step(r, &mut state);
            }
            for (k, &lk) in last.iter().enumerate() {
                assert!(
                    (y_win.get(0, k) - lk).abs() < 1e-5,
                    "layers={layers} output {k}: {} vs {}",
                    y_win.get(0, k),
                    lk
                );
            }
        }
    }

    #[test]
    fn state_only_step_advances_state() {
        let m = SeqModel::new(2, 4, 3);
        let mut s1 = m.init_state();
        let mut s2 = m.init_state();
        m.step_state_only(&[1.0, -1.0], &mut s1);
        assert_ne!(s1.layers[0].h.data, s2.layers[0].h.data);
        // Equivalent to a full step, state-wise.
        m.step(&[1.0, -1.0], &mut s2);
        assert_eq!(s1.layers[0].h.data, s2.layers[0].h.data);
    }

    #[test]
    fn step_lanes_bit_identical_to_scalar_step() {
        // Both step_lanes paths must reproduce scalar stepping bit for bit
        // across stack depths, lane subsets, and interleaved scalar steps
        // (a lane advanced by feeder traffic between batched rounds).
        for layers in [1usize, 2] {
            let m = SeqModel::new_stacked(5, 6, layers, 77);
            let mut rng = MlRng::new(13);
            let n_states = 5usize;
            let mut scalar: Vec<ModelState> = (0..n_states).map(|_| m.init_state()).collect();
            let mut by_ref: Vec<ModelState> = (0..n_states).map(|_| m.init_state()).collect();
            let mut by_blk: Vec<ModelState> = (0..n_states).map(|_| m.init_state()).collect();
            let mut scratch = BatchScratch::new();
            for round in 0..6 {
                // A varying subset of lanes participates each round.
                let lanes: Vec<usize> = (0..n_states).filter(|i| (i + round) % 2 == 0).collect();
                let n = lanes.len();
                let feats: Vec<f32> =
                    (0..n * 5).map(|_| rng.uniform_sym(1.0) as f32).collect();
                let mut want = vec![[0.0f32; OUTPUTS]; n];
                for (i, &li) in lanes.iter().enumerate() {
                    want[i] = m.step(&feats[i * 5..(i + 1) * 5], &mut scalar[li]);
                }
                let mut got_ref = vec![[0.0f32; OUTPUTS]; n];
                m.step_lanes_reference(&feats, n, &mut by_ref, &lanes, &mut got_ref);
                let mut got_blk = vec![[0.0f32; OUTPUTS]; n];
                m.step_lanes_blocked(&feats, n, &mut by_blk, &lanes, &mut got_blk, &mut scratch);
                for i in 0..n {
                    for k in 0..OUTPUTS {
                        assert_eq!(want[i][k].to_bits(), got_ref[i][k].to_bits(), "ref out");
                        assert_eq!(want[i][k].to_bits(), got_blk[i][k].to_bits(), "blk out");
                    }
                }
                // A scalar state-only step on one idle lane must keep all
                // three replicas aligned (mixing feeder and batch steps).
                let idle = (round + 1) % n_states;
                let x: Vec<f32> = (0..5).map(|_| rng.uniform_sym(1.0) as f32).collect();
                m.step_state_only(&x, &mut scalar[idle]);
                m.step_state_only(&x, &mut by_ref[idle]);
                m.step_state_only(&x, &mut by_blk[idle]);
            }
            for i in 0..n_states {
                for l in 0..layers {
                    assert_eq!(scalar[i].layers[l].h.data, by_ref[i].layers[l].h.data);
                    assert_eq!(scalar[i].layers[l].h.data, by_blk[i].layers[l].h.data);
                    assert_eq!(scalar[i].layers[l].c.data, by_blk[i].layers[l].c.data);
                }
            }
        }
    }

    #[test]
    fn gradient_clipping_bounds_norm() {
        let m = SeqModel::new_stacked(3, 4, 2, 7);
        let mut grads = m.new_grads();
        for g in &mut grads.lstms {
            g.wx.data.fill(10.0);
            g.wh.data.fill(10.0);
            g.b.fill(10.0);
        }
        grads.head.w.data.fill(10.0);
        grads.head.b.fill(10.0);
        grads.clip_to_norm(1.0);
        assert!((grads.norm() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn grad_buffers_reduce_in_order() {
        // Two independent shard buffers reduced into a third equal one
        // backward pass over the concatenated batch? Not exactly (fp
        // reassociation) — but reducing [g, g] must equal 2g exactly.
        let m = SeqModel::new(3, 4, 21);
        let xs: Vec<Matrix> = (0..2).map(|_| Matrix::from_fn(2, 3, |i, j| (i + j) as f32 * 0.1)).collect();
        let (y, cache) = m.forward_window(&xs);
        let mut g1 = m.new_grads();
        m.backward_window(&cache, &y, &mut g1);
        let mut g2 = m.new_grads();
        m.backward_window(&cache, &y, &mut g2);
        let mut sum = m.new_grads();
        sum.add_assign(&g1);
        sum.add_assign(&g2);
        for (s, g) in sum.head.w.data.iter().zip(&g1.head.w.data) {
            assert!((s - 2.0 * g).abs() < 1e-6);
        }
    }

    #[test]
    fn serde_roundtrip_preserves_behavior() {
        let m = SeqModel::new_stacked(4, 6, 2, 42);
        let json = m.to_json();
        let m2 = SeqModel::from_json(&json).unwrap();
        let x = vec![0.3f32, -0.2, 0.9, 0.0];
        let mut s1 = m.init_state();
        let mut s2 = m2.init_state();
        assert_eq!(m.step(&x, &mut s1), m2.step(&x, &mut s2));
    }

    #[test]
    fn param_count_matches_dims() {
        let m = SeqModel::new(10, 8, 1);
        let lstm = 10 * 32 + 8 * 32 + 32;
        let head = 8 * 3 + 3;
        assert_eq!(m.param_count(), lstm + head);
        let m2 = SeqModel::new_stacked(10, 8, 2, 1);
        let lstm2 = 8 * 32 + 8 * 32 + 32;
        assert_eq!(m2.param_count(), lstm + lstm2 + head);
    }

    #[test]
    fn deeper_stacks_still_learn() {
        // A 2-layer stack trained on a simple signal must fit it.
        use crate::dataset::PacketDataset;
        use crate::loss::Target;
        use crate::train::{train, TrainConfig};
        let mut d = PacketDataset::default();
        for i in 0..400 {
            let hot = (i / 10) % 2 == 0;
            d.push(
                vec![if hot { 1.0 } else { 0.0 }],
                Target {
                    latency: if hot { 0.8 } else { 0.2 },
                    dropped: 0.0,
                    ecn: 0.0,
                },
            );
        }
        let mut m = SeqModel::new_stacked(1, 8, 2, 3);
        let cfg = TrainConfig {
            epochs: 6,
            window: 4,
            ..TrainConfig::default()
        };
        let report = train(&mut m, &d, &cfg).expect("valid training setup");
        assert!(report.final_loss().expect("epochs ran") < report.epoch_losses[0]);
    }
}
