//! Property-based tests for the ML substrate.

use mimic_ml::bayesopt::{expected_improvement, ParamDim};
use mimic_ml::discretize::Discretizer;
use mimic_ml::loss::{bce_logits, huber, sigmoid, wbce_logits};
use mimic_ml::matrix::Matrix;
use mimic_ml::model::SeqModel;
use mimic_ml::rng::MlRng;
use proptest::prelude::*;

fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = MlRng::new(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.uniform_sym(1.0) as f32)
}

proptest! {
    /// Matrix multiplication distributes over addition.
    #[test]
    fn matmul_distributes(seed in 0u64..1000) {
        let a = mat(3, 4, seed);
        let b = mat(4, 2, seed ^ 1);
        let mut c = mat(4, 2, seed ^ 2);
        // a(b + c) == ab + ac
        let mut b_plus_c = b.clone();
        b_plus_c.add_assign(&c);
        let lhs = a.matmul(&b_plus_c);
        let mut rhs = a.matmul(&b);
        rhs.add_assign(&a.matmul(&c));
        for (x, y) in lhs.data.iter().zip(&rhs.data) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        c.scale(0.0);
        prop_assert!(a.matmul(&c).data.iter().all(|&v| v == 0.0));
    }

    /// Transposed multiplication identities hold.
    #[test]
    fn transpose_identities(seed in 0u64..1000) {
        let a = mat(3, 5, seed);
        let b = mat(3, 2, seed ^ 9);
        let at = Matrix::from_fn(5, 3, |i, j| a.get(j, i));
        let lhs = a.t_matmul(&b);
        let rhs = at.matmul(&b);
        for (x, y) in lhs.data.iter().zip(&rhs.data) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// The blocked/vectorized kernels agree with the naive reference
    /// within 1e-5 for arbitrary shapes, including ones that don't divide
    /// the register-tile or k-panel sizes.
    #[test]
    fn blocked_kernels_match_naive(r in 1usize..24, k in 1usize..160, c in 1usize..24, seed in 0u64..1000) {
        let a = mat(r, k, seed);
        let b = mat(k, c, seed ^ 3);
        let lhs = a.matmul_blocked(&b);
        let rhs = a.matmul_naive(&b);
        for (x, y) in lhs.data.iter().zip(&rhs.data) {
            prop_assert!((x - y).abs() <= 1e-5 * (1.0 + y.abs()));
        }
        let a2 = mat(k, r, seed ^ 4);
        let lhs = a2.t_matmul_blocked(&b);
        let rhs = a2.t_matmul_naive(&b);
        for (x, y) in lhs.data.iter().zip(&rhs.data) {
            prop_assert!((x - y).abs() <= 1e-5 * (1.0 + y.abs()));
        }
        let b2 = mat(c, k, seed ^ 5);
        let lhs = a.matmul_t_blocked(&b2);
        let rhs = a.matmul_t_naive(&b2);
        for (x, y) in lhs.data.iter().zip(&rhs.data) {
            prop_assert!((x - y).abs() <= 1e-5 * (1.0 + y.abs()));
        }
    }

    /// Discretization round trips within one bucket width.
    #[test]
    fn discretizer_roundtrip(lo in -10.0f64..0.0, span in 0.1f64..100.0, d in 1u32..500, y in 0.0f64..1.0) {
        let q = Discretizer::new(lo, lo + span, d);
        let raw = lo + y * span;
        let rec = q.recover(q.normalize(raw));
        prop_assert!((rec - raw).abs() <= q.quantization_error() + 1e-9,
            "raw {raw} -> {rec} (err bound {})", q.quantization_error());
    }

    /// Sigmoid of BCE gradients: grad = sigmoid(x) - t, always in [-1, 1],
    /// and loss is non-negative.
    #[test]
    fn bce_properties(logit in -30.0f32..30.0, target in 0u8..2) {
        let t = target as f32;
        let (loss, grad) = bce_logits(logit, t);
        prop_assert!(loss >= -1e-6);
        prop_assert!((-1.0..=1.0).contains(&grad));
        prop_assert!((grad - (sigmoid(logit) - t)).abs() < 1e-5);
    }

    /// WBCE with w=0.5 is half of BCE for any logit/target.
    #[test]
    fn wbce_half_is_bce(logit in -20.0f32..20.0, target in 0u8..2) {
        let t = target as f32;
        let (lw, gw) = wbce_logits(logit, t, 0.5);
        let (lb, gb) = bce_logits(logit, t);
        prop_assert!((lw - 0.5 * lb).abs() < 1e-5);
        prop_assert!((gw - 0.5 * gb).abs() < 1e-5);
    }

    /// Huber loss is continuous at the delta boundary and convex-ish:
    /// loss grows with |error|.
    #[test]
    fn huber_monotone_in_error(delta in 0.1f32..5.0, e1 in 0.0f32..10.0, e2 in 0.0f32..10.0) {
        let (l1, _) = huber(e1, 0.0, delta);
        let (l2, _) = huber(e2, 0.0, delta);
        if e1 < e2 {
            prop_assert!(l1 <= l2 + 1e-6);
        }
        // Continuity at the knee (gap bound: 2*delta*eps for step eps).
        let eps = delta * 1e-3;
        let (inside, _) = huber(delta - eps, 0.0, delta);
        let (outside, _) = huber(delta + eps, 0.0, delta);
        prop_assert!((inside - outside).abs() <= 2.5 * delta * eps + 1e-6);
    }

    /// LSTM outputs remain finite and bounded over long random sequences
    /// (numerical stability of the recurrent dynamics).
    #[test]
    fn lstm_stays_finite(seed in 0u64..50) {
        let model = SeqModel::new(4, 6, seed);
        let mut rng = MlRng::new(seed ^ 77);
        let mut state = model.init_state();
        for _ in 0..300 {
            let x: Vec<f32> = (0..4).map(|_| rng.uniform_sym(3.0) as f32).collect();
            let out = model.step(&x, &mut state);
            for v in out {
                prop_assert!(v.is_finite());
            }
            for layer in &state.layers {
                for &h in &layer.h.data {
                    prop_assert!(h.abs() <= 1.0 + 1e-6, "hidden out of range: {h}");
                }
            }
        }
    }

    /// EI is non-negative and zero when the posterior is confidently
    /// worse than the incumbent.
    #[test]
    fn ei_nonnegative(mean in -5.0f64..5.0, var in 1e-9f64..4.0, best in -5.0f64..5.0) {
        let ei = expected_improvement(mean, var, best, 0.0);
        prop_assert!(ei >= -1e-12);
        let hopeless = expected_improvement(best + 10.0, 1e-12, best, 0.0);
        prop_assert!(hopeless.abs() < 1e-9);
    }

    /// Param dims round-trip raw <-> unit coordinates.
    #[test]
    fn param_dim_roundtrip(u in 0.0f64..1.0) {
        let lin = ParamDim::linear("a", -3.0, 7.0);
        prop_assert!((lin.norm(lin.denorm(u)) - u).abs() < 1e-9);
        let log = ParamDim::log("b", 1e-5, 1e-1);
        prop_assert!((log.norm(log.denorm(u)) - u).abs() < 1e-9);
    }

    /// Training shuffle never loses or duplicates samples.
    #[test]
    fn shuffle_is_permutation(n in 1usize..200, seed in any::<u64>()) {
        let mut rng = MlRng::new(seed);
        let mut v: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}
