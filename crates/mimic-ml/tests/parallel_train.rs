//! Worker-count invariance of training.
//!
//! The sharded BPTT path fixes both the shard layout (a constant shard
//! height) and the gradient reduction order (shard 0, 1, 2, … regardless
//! of which worker produced which shard), so the trained parameters must
//! be byte-identical for every worker count. On a multi-core machine this
//! exercises real scoped threads; on a single core the effective thread
//! count is clamped, which by the same invariant must change nothing.

use mimic_ml::dataset::PacketDataset;
use mimic_ml::loss::Target;
use mimic_ml::model::SeqModel;
use mimic_ml::rng::MlRng;
use mimic_ml::train::{train, TrainConfig};

/// Synthetic learnable workload: bursty latency plus random drops.
fn synthetic(n: usize, seed: u64) -> PacketDataset {
    let mut rng = MlRng::new(seed);
    let mut d = PacketDataset::default();
    let mut burst = 0usize;
    for _ in 0..n {
        if rng.next_f64() < 0.1 {
            burst = 4;
        }
        let hot = burst > 0;
        burst = burst.saturating_sub(1);
        let f1 = rng.next_f64() as f32;
        d.push(
            vec![if hot { 1.0 } else { 0.0 }, f1],
            Target {
                latency: if hot { 0.8 } else { 0.2 },
                dropped: if f1 > 0.9 { 1.0 } else { 0.0 },
                ecn: 0.0,
            },
        );
    }
    d
}

fn train_with_workers(data: &PacketDataset, workers: usize) -> String {
    let cfg = TrainConfig {
        epochs: 3,
        window: 4,
        workers,
        ..TrainConfig::default()
    };
    let mut model = SeqModel::new(2, 8, 1234);
    train(&mut model, data, &cfg).expect("valid training setup");
    model.to_json()
}

#[test]
fn worker_count_does_not_change_parameters() {
    let data = synthetic(400, 21);
    let sequential = train_with_workers(&data, 1);
    for workers in [2, 4, 8] {
        let parallel = train_with_workers(&data, workers);
        assert_eq!(
            sequential, parallel,
            "{workers}-worker training diverged from sequential"
        );
    }
}
