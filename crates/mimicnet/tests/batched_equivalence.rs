//! Equivalence suite for the batched compose path (the lock on the PR's
//! tentpole): batched inference over a recorded boundary-packet trace must
//! be **byte-identical** to per-packet scalar stepping — at every
//! [`KernelMode`], for every flush chunking.
//!
//! The comparator is the scalar pipeline spelled out by hand: one
//! [`FeatureExtractor`] + [`ModelState`] per (cluster, direction) lane,
//! views built by the same [`packet_view`] projection, raw outputs from
//! [`SeqModel::step`] one packet at a time, congestion feedback applied
//! with threshold decisions. The fleet (in [`DecisionMode::Threshold`])
//! must reproduce every raw output bit, no matter how the item stream is
//! chunked into flushes.
//!
//! Kernel-mode flipping touches process-global state, so everything runs
//! inside a single `#[test]` function.

use dcn_sim::mimic::{BatchClusterModel, BoundaryDir, BoundaryItem, Verdict};
use dcn_sim::packet::{FlowId, Packet};
use dcn_sim::time::SimTime;
use dcn_sim::topology::FatTree;
use mimic_ml::loss::sigmoid;
use mimic_ml::matrix::{set_kernel_mode, KernelMode};
use mimic_ml::model::{ModelState, OUTPUTS, OUT_DROP, OUT_LATENCY};
use mimic_ml::train::TrainConfig;
use mimicnet::batch::BatchedMimicFleet;
use mimicnet::datagen::{generate, DataGenConfig};
use mimicnet::drift::FeatureEnvelope;
use mimicnet::features::FeatureExtractor;
use mimicnet::internal_model::InternalModel;
use mimicnet::mimic::{packet_view, DecisionMode, TrainedMimic};
use std::collections::HashMap;

fn quick_bundle() -> (TrainedMimic, dcn_sim::topology::FatTreeParams) {
    let mut cfg = DataGenConfig::default();
    cfg.sim.duration_s = 0.3;
    cfg.sim.seed = 77;
    let td = generate(&cfg);
    let tc = TrainConfig {
        epochs: 1,
        window: 4,
        ..TrainConfig::default()
    };
    let (ing, _) = InternalModel::train_new(&td.ingress, td.ingress_disc, 8, &tc)
        .expect("valid training setup");
    let (eg, _) = InternalModel::train_new(&td.egress, td.egress_disc, 8, &tc)
        .expect("valid training setup");
    (
        TrainedMimic {
            ingress: ing,
            egress: eg,
            feature_cfg: td.feature_cfg,
            feeder: td.feeder,
            envelope: FeatureEnvelope::fit(&td.ingress.features),
        },
        cfg.sim.topo,
    )
}

/// A recorded boundary-packet trace: many flows crossing three Mimic'ed
/// clusters in both directions, enqueue times strictly increasing (the
/// engine delivers items in event order).
fn record_trace(topo: &FatTree) -> Vec<BoundaryItem> {
    let obs_host = topo.host(0, 0, 0);
    let mut items = Vec::new();
    for i in 0..240u64 {
        let cluster = 1 + (i % 3) as u32;
        let flow = FlowId(1 + i % 7);
        let rack = (i % 2) as u32;
        let server = ((i / 2) % 2) as u32;
        let local = topo.host(cluster, rack, server);
        let dir = if i % 2 == 0 {
            BoundaryDir::Ingress
        } else {
            BoundaryDir::Egress
        };
        let (src, dst) = match dir {
            BoundaryDir::Ingress => (obs_host, local),
            BoundaryDir::Egress => (local, obs_host),
        };
        let t = SimTime::from_secs_f64(0.01 + i as f64 * 3.1e-5);
        let pkt = Packet::data(i + 1, flow, src, dst, i * 1460, 1460, i % 3 == 0, t);
        items.push(BoundaryItem {
            cluster,
            dir,
            pkt,
            enqueued_at: t,
        });
    }
    items
}

/// Scalar reference: step every lane's packets one at a time through
/// `SeqModel::step`, with threshold-decision congestion feedback — the
/// exact per-packet arithmetic of `LearnedMimic::on_packet`.
fn scalar_reference(bundle: &TrainedMimic, topo: &FatTree, items: &[BoundaryItem]) -> Vec<[f32; OUTPUTS]> {
    struct LaneRef {
        fx: FeatureExtractor,
        state: ModelState,
    }
    let mut lanes: HashMap<(u32, BoundaryDir), LaneRef> = HashMap::new();
    let mut feat = Vec::new();
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let model = match item.dir {
            BoundaryDir::Ingress => &bundle.ingress,
            BoundaryDir::Egress => &bundle.egress,
        };
        let lane = lanes.entry((item.cluster, item.dir)).or_insert_with(|| LaneRef {
            fx: FeatureExtractor::new(bundle.feature_cfg),
            state: model.init_state(),
        });
        let view = packet_view(topo, item.dir, &item.pkt, item.enqueued_at);
        lane.fx.extract_into(&view, &mut feat);
        let o = model.model.step(&feat, &mut lane.state);
        if sigmoid(o[OUT_DROP]) as f64 > 0.5 {
            lane.fx.observe_outcome(1.0, true);
        } else {
            lane.fx.observe_outcome(o[OUT_LATENCY].clamp(0.0, 1.0), false);
        }
        out.push(o);
    }
    out
}

/// Run the fleet over `items` flushed in chunks of `chunk`, returning the
/// concatenated raw outputs.
fn fleet_outputs(
    bundle: &TrainedMimic,
    topo_params: dcn_sim::topology::FatTreeParams,
    items: &[BoundaryItem],
    chunk: usize,
) -> Vec<[f32; OUTPUTS]> {
    let seeds: Vec<(u32, u64)> = (1..4).map(|c| (c, 1000 + c as u64)).collect();
    let mut fleet = BatchedMimicFleet::new(bundle.clone(), topo_params, 4, &seeds)
        .with_mode(DecisionMode::Threshold);
    let mut verdicts = Vec::new();
    let mut raw = Vec::with_capacity(items.len());
    for batch in items.chunks(chunk) {
        fleet.infer_batch(batch, &mut verdicts);
        assert_eq!(verdicts.len(), batch.len(), "one verdict per item");
        raw.extend_from_slice(fleet.raw_outputs());
    }
    raw
}

fn bits(rows: &[[f32; OUTPUTS]]) -> Vec<[u32; OUTPUTS]> {
    rows.iter()
        .map(|r| [r[0].to_bits(), r[1].to_bits(), r[2].to_bits()])
        .collect()
}

#[test]
fn batched_trace_is_byte_identical_to_scalar_stepping() {
    let (bundle, mut topo_params) = quick_bundle();
    topo_params.clusters = 4;
    let topo = FatTree::new(topo_params);
    let items = record_trace(&topo);

    // The scalar reference never touches the batched kernels; its outputs
    // are the same under either mode (scalar inference has no dispatch),
    // so record it once under the default mode.
    let reference = bits(&scalar_reference(&bundle, &topo, &items));

    for mode in [KernelMode::Naive, KernelMode::Blocked] {
        set_kernel_mode(mode);
        for chunk in [1usize, 7, 16, 64] {
            let got = bits(&fleet_outputs(&bundle, topo_params, &items, chunk));
            assert_eq!(
                got, reference,
                "raw outputs diverged from scalar stepping (mode {mode:?}, chunk {chunk})"
            );
        }
    }
    set_kernel_mode(KernelMode::Blocked);
}

#[test]
fn verdicts_are_chunking_invariant_in_sample_mode() {
    // Sampled decisions draw from per-lane RNG streams, so they too must
    // depend only on per-lane item order — never on flush boundaries.
    let (bundle, mut topo_params) = quick_bundle();
    topo_params.clusters = 4;
    let topo = FatTree::new(topo_params);
    let items = record_trace(&topo);

    let run = |chunk: usize| {
        let seeds: Vec<(u32, u64)> = (1..4).map(|c| (c, 1000 + c as u64)).collect();
        let mut fleet = BatchedMimicFleet::new(bundle.clone(), topo_params, 4, &seeds);
        let mut verdicts = Vec::new();
        let mut all: Vec<(u64, bool)> = Vec::new();
        for batch in items.chunks(chunk) {
            fleet.infer_batch(batch, &mut verdicts);
            all.extend(verdicts.iter().map(|v| match *v {
                Verdict::Drop => (u64::MAX, false),
                Verdict::Deliver { latency, mark_ce } => (latency.0, mark_ce),
            }));
        }
        all
    };
    let whole = run(items.len());
    for chunk in [1usize, 7, 16, 64] {
        assert_eq!(run(chunk), whole, "verdicts changed with flush chunking {chunk}");
    }
}
