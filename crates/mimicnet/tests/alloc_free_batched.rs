//! The batched compose hot path must not allocate in steady state.
//!
//! The fleet's flush buffers (packed features, lane selections, raw
//! outputs, verdicts, kernel scratch) are all grow-once: after a warmup
//! that reaches steady-state capacity, driving many more flushes — at the
//! largest batch size seen — plus feeder wakeups must leave the global
//! allocation count untouched.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use dcn_sim::mimic::{BatchClusterModel, BoundaryDir, BoundaryItem};
use dcn_sim::packet::{FlowId, Packet};
use dcn_sim::time::SimTime;
use dcn_sim::topology::FatTree;
use mimic_ml::train::TrainConfig;
use mimicnet::batch::BatchedMimicFleet;
use mimicnet::datagen::{generate, DataGenConfig};
use mimicnet::drift::FeatureEnvelope;
use mimicnet::internal_model::InternalModel;
use mimicnet::mimic::TrainedMimic;

/// Build a 64-item flush: 8 recurring flows across 3 clusters, both
/// directions, enqueue times advancing from `base`.
fn fill_batch(items: &mut Vec<BoundaryItem>, topo: &FatTree, base: SimTime, round: u64) {
    items.clear();
    let obs = topo.host(0, 0, 0);
    for i in 0..64u64 {
        let cluster = 1 + (i % 3) as u32;
        let flow = FlowId(1 + i % 8);
        let local = topo.host(cluster, (i % 2) as u32, ((i / 2) % 2) as u32);
        let dir = if i % 2 == 0 {
            BoundaryDir::Ingress
        } else {
            BoundaryDir::Egress
        };
        let (src, dst) = match dir {
            BoundaryDir::Ingress => (obs, local),
            BoundaryDir::Egress => (local, obs),
        };
        let t = SimTime(base.0 + i * 500);
        let pkt = Packet::data(round * 64 + i + 1, flow, src, dst, i * 1460, 1460, i % 3 == 0, t);
        items.push(BoundaryItem {
            cluster,
            dir,
            pkt,
            enqueued_at: t,
        });
    }
}

#[test]
fn batched_infer_and_wakes_do_not_allocate_after_warmup() {
    let mut cfg = DataGenConfig::default();
    cfg.sim.duration_s = 0.3;
    cfg.sim.seed = 77;
    let td = generate(&cfg);
    let tc = TrainConfig {
        epochs: 1,
        window: 4,
        ..TrainConfig::default()
    };
    let (ing, _) = InternalModel::train_new(&td.ingress, td.ingress_disc, 8, &tc)
        .expect("valid training setup");
    let (eg, _) = InternalModel::train_new(&td.egress, td.egress_disc, 8, &tc)
        .expect("valid training setup");
    let bundle = TrainedMimic {
        ingress: ing,
        egress: eg,
        feature_cfg: td.feature_cfg,
        feeder: td.feeder,
        envelope: FeatureEnvelope::fit(&td.ingress.features),
    };
    let mut topo = cfg.sim.topo;
    topo.clusters = 4;
    let t = FatTree::new(topo);
    let seeds: Vec<(u32, u64)> = (1..4).map(|c| (c, 9 ^ (0xC0DE_0000 + c as u64))).collect();
    let mut fleet = BatchedMimicFleet::new(bundle, topo, 4, &seeds);

    let mut items = Vec::new();
    let mut verdicts = Vec::new();
    let at = |r: u64| SimTime::from_secs_f64(0.01 + r as f64 * 1e-4);

    // Warm up: flush buffers, per-flow FIFO maps, drift windows, feeder
    // queues, and kernel scratch all reach steady-state capacity.
    let mut now = SimTime::ZERO;
    for round in 0..100u64 {
        fill_batch(&mut items, &t, at(round), round);
        fleet.infer_batch(&items, &mut verdicts);
        for c in 1..4u32 {
            if let Some(next) = fleet.next_wake(c, now) {
                now = next;
                fleet.on_wake(c, now);
            }
        }
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for round in 100..400u64 {
        fill_batch(&mut items, &t, at(round), round);
        fleet.infer_batch(&items, &mut verdicts);
        std::hint::black_box(fleet.raw_outputs());
        for c in 1..4u32 {
            if let Some(next) = fleet.next_wake(c, now) {
                now = next;
                fleet.on_wake(c, now);
            }
        }
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "batched compose path allocated {} times over 300 flushes",
        after - before
    );
}
