//! The per-packet Mimic hot path must not allocate.
//!
//! The paper's custom inference engine exists because per-packet model
//! calls dominate large-scale composition time; an allocation per packet
//! would put malloc on that path. This test wraps the global allocator in
//! a counter, warms a [`LearnedMimic`] up (first calls grow the feature
//! buffer and feeder queues to steady state), then drives thousands of
//! `on_packet`/`on_wake` calls and asserts the allocation count does not
//! move.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use dcn_sim::mimic::{BoundaryDir, ClusterModel};
use dcn_sim::packet::{FlowId, Packet};
use dcn_sim::time::SimTime;
use dcn_sim::topology::FatTree;
use mimic_ml::train::TrainConfig;
use mimicnet::datagen::{generate, DataGenConfig};
use mimicnet::drift::FeatureEnvelope;
use mimicnet::internal_model::InternalModel;
use mimicnet::mimic::{LearnedMimic, TrainedMimic};

#[test]
fn on_packet_and_on_wake_do_not_allocate_after_warmup() {
    // Train a quick bundle and compose a 4-cluster Mimic.
    let mut cfg = DataGenConfig::default();
    cfg.sim.duration_s = 0.3;
    cfg.sim.seed = 77;
    let td = generate(&cfg);
    let tc = TrainConfig {
        epochs: 1,
        window: 4,
        ..TrainConfig::default()
    };
    let (ing, _) = InternalModel::train_new(&td.ingress, td.ingress_disc, 8, &tc)
        .expect("valid training setup");
    let (eg, _) = InternalModel::train_new(&td.egress, td.egress_disc, 8, &tc)
        .expect("valid training setup");
    let bundle = TrainedMimic {
        ingress: ing,
        egress: eg,
        feature_cfg: td.feature_cfg,
        feeder: td.feeder,
        envelope: FeatureEnvelope::fit(&td.ingress.features),
    };
    let mut topo = cfg.sim.topo;
    topo.clusters = 4;
    let t = FatTree::new(topo);
    let mut m = LearnedMimic::new(bundle, topo, 4, 9);
    let pkt = Packet::data(
        1,
        FlowId(5),
        t.host(1, 0, 0),
        t.host(0, 1, 1),
        0,
        1460,
        true,
        SimTime::from_secs_f64(0.01),
    );
    let at = |i: usize| SimTime::from_secs_f64(0.01 + i as f64 * 1e-6);

    // Warm up: feature buffers, feeder queues, and hidden state reach
    // steady-state capacity.
    let mut now = SimTime::ZERO;
    for i in 0..2000 {
        let dir = if i % 2 == 0 {
            BoundaryDir::Ingress
        } else {
            BoundaryDir::Egress
        };
        std::hint::black_box(m.on_packet(dir, &pkt, at(i)));
        if let Some(next) = m.next_wake(now) {
            now = next;
            m.on_wake(now);
        }
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..10_000 {
        let dir = if i % 2 == 0 {
            BoundaryDir::Ingress
        } else {
            BoundaryDir::Egress
        };
        std::hint::black_box(m.on_packet(dir, &pkt, at(2000 + i)));
        if let Some(next) = m.next_wake(now) {
            now = next;
            m.on_wake(now);
        }
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "per-packet hot path allocated {} times over 10k packets",
        after - before
    );
}
