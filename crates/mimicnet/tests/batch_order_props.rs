//! Property suite for the batched compose ordering invariants: under
//! randomized boundary traffic and randomized flush schedules,
//!
//! * two packets of one flow are never reordered across a batch flush
//!   (per-lane exit times are monotone per flow);
//! * a prediction is never delivered at or before its enqueue time;
//! * verdicts never depend on how the stream was chunked into flushes.

use dcn_sim::mimic::{BatchClusterModel, BoundaryDir, BoundaryItem, Verdict};
use dcn_sim::packet::{FlowId, Packet};
use dcn_sim::time::SimTime;
use dcn_sim::topology::{FatTree, FatTreeParams};
use mimic_ml::train::TrainConfig;
use mimicnet::batch::BatchedMimicFleet;
use mimicnet::datagen::{generate, DataGenConfig};
use mimicnet::internal_model::InternalModel;
use mimicnet::mimic::TrainedMimic;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::OnceLock;

fn bundle() -> &'static (TrainedMimic, FatTreeParams) {
    static BUNDLE: OnceLock<(TrainedMimic, FatTreeParams)> = OnceLock::new();
    BUNDLE.get_or_init(|| {
        let mut cfg = DataGenConfig::default();
        cfg.sim.duration_s = 0.3;
        cfg.sim.seed = 91;
        let td = generate(&cfg);
        let tc = TrainConfig {
            epochs: 1,
            window: 4,
            ..TrainConfig::default()
        };
        let (ing, _) = InternalModel::train_new(&td.ingress, td.ingress_disc, 8, &tc)
            .expect("valid training setup");
        let (eg, _) = InternalModel::train_new(&td.egress, td.egress_disc, 8, &tc)
            .expect("valid training setup");
        let mut topo = cfg.sim.topo;
        topo.clusters = 4;
        (
            TrainedMimic {
                ingress: ing,
                egress: eg,
                feature_cfg: td.feature_cfg,
                feeder: td.feeder,
                envelope: None,
            },
            topo,
        )
    })
}

/// One randomized boundary crossing, pre-materialization:
/// `(cluster, ingress?, flow, enqueue gap in ns)`. ECN capability derives
/// from flow parity.
type RawItem = (u32, bool, u64, u64);

fn raw_items() -> impl Strategy<Value = Vec<RawItem>> {
    proptest::collection::vec((1u32..4, any::<bool>(), 0u64..5, 1u64..2_000_000), 1..120)
}

fn materialize(raw: &[RawItem], topo: &FatTree) -> Vec<BoundaryItem> {
    let obs = topo.host(0, 0, 0);
    let mut t = SimTime::from_secs_f64(0.005);
    let mut items = Vec::with_capacity(raw.len());
    for (i, &(cluster, ingress, flow, gap_ns)) in raw.iter().enumerate() {
        t = SimTime(t.0 + gap_ns);
        let local = topo.host(cluster, (flow % 2) as u32, (flow / 2 % 2) as u32);
        let (dir, src, dst) = if ingress {
            (BoundaryDir::Ingress, obs, local)
        } else {
            (BoundaryDir::Egress, local, obs)
        };
        // Flow ids are direction-scoped so a "flow" never spans lanes.
        let flow_id = FlowId(1 + flow * 2 + ingress as u64);
        let pkt = Packet::data(
            i as u64 + 1,
            flow_id,
            src,
            dst,
            i as u64 * 1460,
            1460,
            flow % 2 == 0,
            t,
        );
        items.push(BoundaryItem {
            cluster,
            dir,
            pkt,
            enqueued_at: t,
        });
    }
    items
}

/// Feed `items` through a fresh fleet, flushing at the randomized chunk
/// boundaries; returns `(exit_time_or_MAX, mark_ce)` per item.
fn run_chunked(items: &[BoundaryItem], chunks: &[usize]) -> Vec<(u64, bool)> {
    let (bundle, topo_params) = bundle();
    let seeds: Vec<(u32, u64)> = (1..4).map(|c| (c, 40 + c as u64)).collect();
    let mut fleet = BatchedMimicFleet::new(bundle.clone(), *topo_params, 4, &seeds);
    let mut verdicts = Vec::new();
    let mut out = Vec::with_capacity(items.len());
    let mut rest = items;
    let mut ci = 0;
    while !rest.is_empty() {
        let take = chunks
            .get(ci)
            .copied()
            .unwrap_or(rest.len())
            .clamp(1, rest.len());
        ci += 1;
        let (batch, tail) = rest.split_at(take);
        rest = tail;
        fleet.infer_batch(batch, &mut verdicts);
        for (item, v) in batch.iter().zip(&verdicts) {
            out.push(match *v {
                Verdict::Drop => (u64::MAX, false),
                Verdict::Deliver { latency, mark_ce } => ((item.enqueued_at + latency).0, mark_ce),
            });
        }
    }
    out
}

proptest! {
    #[test]
    fn same_flow_packets_never_reorder_across_flushes(
        raw in raw_items(),
        chunks in proptest::collection::vec(1usize..16, 1..32),
    ) {
        let (_, topo_params) = bundle();
        let topo = FatTree::new(*topo_params);
        let items = materialize(&raw, &topo);
        let exits = run_chunked(&items, &chunks);
        let mut last: HashMap<(u32, BoundaryDir, FlowId), u64> = HashMap::new();
        for (item, &(exit, _)) in items.iter().zip(&exits) {
            if exit == u64::MAX {
                continue; // dropped — nothing delivered to reorder
            }
            let key = (item.cluster, item.dir, item.pkt.flow);
            if let Some(&prev) = last.get(&key) {
                prop_assert!(
                    exit >= prev,
                    "flow {:?} reordered: exit {exit} before earlier {prev}",
                    item.pkt.flow
                );
            }
            last.insert(key, exit);
        }
    }

    #[test]
    fn predictions_never_precede_their_enqueue(
        raw in raw_items(),
        chunks in proptest::collection::vec(1usize..16, 1..32),
    ) {
        let (_, topo_params) = bundle();
        let topo = FatTree::new(*topo_params);
        let items = materialize(&raw, &topo);
        let exits = run_chunked(&items, &chunks);
        for (item, &(exit, _)) in items.iter().zip(&exits) {
            if exit == u64::MAX {
                continue;
            }
            prop_assert!(
                exit > item.enqueued_at.0,
                "delivery at {exit} not after enqueue {}",
                item.enqueued_at.0
            );
        }
    }

    #[test]
    fn verdicts_are_flush_schedule_invariant(
        raw in raw_items(),
        chunks in proptest::collection::vec(1usize..16, 1..32),
    ) {
        let (_, topo_params) = bundle();
        let topo = FatTree::new(*topo_params);
        let items = materialize(&raw, &topo);
        let chunked = run_chunked(&items, &chunks);
        let whole = run_chunked(&items, &[items.len()]);
        prop_assert_eq!(chunked, whole);
    }
}
