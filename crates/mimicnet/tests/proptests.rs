//! Property-based tests for MimicNet's feature extraction, trace
//! matching, and feeders.

use dcn_sim::instrument::{BoundaryPhase, BoundaryRecord};
use dcn_sim::mimic::BoundaryDir;
use dcn_sim::packet::{Ecn, FlowId, PacketKind};
use dcn_sim::time::SimTime;
use dcn_sim::topology::{FatTreeParams, NodeId};
use mimicnet::features::{FeatureConfig, FeatureExtractor, PacketView};
use mimicnet::feeder::{invisible_fraction, DirFit};
use mimicnet::trace::match_trace;
use proptest::prelude::*;

fn view(t: u64, rack: u32, server: u32, size: u32) -> PacketView {
    PacketView {
        time: SimTime(t),
        wire_bytes: size,
        rack,
        server,
        agg: rack % 2,
        core: server % 2,
        kind: PacketKind::Data,
        ecn: Ecn::Ect,
        prio: 0,
    }
}

proptest! {
    /// Feature vectors always have the configured width, are finite, and
    /// every one-hot block sums to exactly 1.
    #[test]
    fn features_well_formed(
        packets in proptest::collection::vec((0u64..10_000_000, 0u32..2, 0u32..2, 40u32..1500), 1..50)
    ) {
        let cfg = FeatureConfig::from_topology(&FatTreeParams::new(2, 2, 2, 2, 1));
        let mut fx = FeatureExtractor::new(cfg);
        let mut sorted = packets.clone();
        sorted.sort_by_key(|p| p.0);
        for (t, r, s, b) in sorted {
            let f = fx.extract(&view(t, r, s, b));
            prop_assert_eq!(f.len(), cfg.width());
            prop_assert!(f.iter().all(|v| v.is_finite()));
            // One-hot blocks: rack [0,2), server [2,4), agg [4,6), core [6,8),
            // congestion [11,15), kind [15,18).
            for range in [0..2usize, 2..4, 4..6, 6..8, 11..15, 15..18] {
                let sum: f32 = f[range.clone()].iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-6, "block {range:?} sums to {sum}");
            }
            // Scalars normalized.
            prop_assert!((0.0..=1.1).contains(&f[8]), "size feature {}", f[8]);
            prop_assert!((0.0..=1.0).contains(&f[9]));
            prop_assert!((0.0..=1.0).contains(&f[10]));
        }
    }

    /// Trace matching: every entry before the horizon yields exactly one
    /// matched packet; drops are exactly the unmatched ones.
    #[test]
    fn trace_matching_partitions(n in 1usize..60, drop_every in 2u64..10) {
        let mut records = Vec::new();
        let mut expect_drops = 0;
        for i in 0..n as u64 {
            let enter_t = 1000 * i;
            records.push(BoundaryRecord {
                pkt_id: i,
                flow: FlowId(1),
                time: SimTime(enter_t),
                dir: BoundaryDir::Egress,
                phase: BoundaryPhase::Enter,
                wire_bytes: 1500,
                ecn: Ecn::Ect,
                kind: PacketKind::Data,
                src: NodeId(4),
                dst: NodeId(0),
                core: NodeId(20),
                prio: 0,
            });
            if i % drop_every == 0 {
                expect_drops += 1;
            } else {
                let mut exit = records.last().unwrap().clone();
                exit.phase = BoundaryPhase::Exit;
                exit.time = SimTime(enter_t + 500);
                records.push(exit);
            }
        }
        let t = match_trace(&records, BoundaryDir::Egress, SimTime(u64::MAX));
        prop_assert_eq!(t.len(), n);
        prop_assert_eq!(t.packets.iter().filter(|p| p.dropped()).count(), expect_drops);
        // Latencies of delivered packets are all 500 ns.
        for p in &t.packets {
            if let Some(l) = p.latency {
                prop_assert_eq!(l.as_nanos(), 500);
            }
        }
    }

    /// The invisible fraction is monotone in cluster count and in [0, 1).
    #[test]
    fn invisible_fraction_monotone(n in 2u32..500) {
        let f = invisible_fraction(n);
        prop_assert!((0.0..1.0).contains(&f));
        if n > 2 {
            prop_assert!(f > invisible_fraction(n - 1));
        }
    }

    /// DirFit on positive samples produces a positive rate and a sane
    /// log-normal (mean close to the sample mean for low variance).
    #[test]
    fn feeder_fit_sane(base_us in 100u64..10_000, n in 10usize..200) {
        let inter: Vec<f64> = (0..n).map(|i| (base_us + (i as u64 % 5)) as f64 * 1e-6).collect();
        let fit = DirFit::fit(&inter, &[1500.0]);
        prop_assert!(fit.rate_pps > 0.0);
        prop_assert!(fit.sigma >= 0.0);
        let sample_mean = inter.iter().sum::<f64>() / n as f64;
        prop_assert!((fit.mean_interarrival() - sample_mean).abs() / sample_mean < 0.05,
            "fit mean {} vs sample mean {sample_mean}", fit.mean_interarrival());
    }

    /// Feature extraction is deterministic: same inputs, same outputs.
    #[test]
    fn features_deterministic(ts in proptest::collection::vec(0u64..1_000_000, 1..30)) {
        let cfg = FeatureConfig::from_topology(&FatTreeParams::new(2, 2, 2, 2, 1));
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        let run = || {
            let mut fx = FeatureExtractor::new(cfg);
            sorted.iter().map(|&t| fx.extract(&view(t, 0, 1, 1500))).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
