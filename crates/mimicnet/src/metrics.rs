//! End-to-end accuracy metrics (paper §7.2, §9).
//!
//! * **Wasserstein-based** — the `W1` distance between CDFs of FCT,
//!   per-server throughput, and packet RTT, restricted to the observable
//!   cluster. Used because drops make per-packet 1-to-1 comparison
//!   ill-defined.
//! * **MSE-based** — for 1-to-1 quantities like per-flow FCT, computed
//!   over the intersection of completed flows, and only when the overlap
//!   is at least 80% (the paper's default gate).

use dcn_sim::instrument::Metrics;
use dcn_sim::stats::percentile;
use dcn_sim::topology::{FatTree, NodeId};

pub use dcn_sim::cdf::wasserstein1;

/// Observable-cluster samples extracted from one run.
#[derive(Clone, Debug, Default)]
pub struct ObservedSamples {
    /// FCTs (s) of completed flows with ≥ 1 endpoint in the cluster.
    pub fct: Vec<f64>,
    /// Per-(host, 100 ms bin) throughput (B/s) of the cluster's hosts.
    pub throughput: Vec<f64>,
    /// RTT samples (s) at the cluster's hosts.
    pub rtt: Vec<f64>,
}

/// Extract the metrics the paper reports, filtered to `cluster`.
pub fn observed(m: &Metrics, topo: &FatTree, cluster: u32) -> ObservedSamples {
    let in_cluster = |n: NodeId| topo.cluster_of(n) == Some(cluster);
    ObservedSamples {
        fct: m.fct_samples(|f| in_cluster(f.src) || in_cluster(f.dst)),
        throughput: m.throughput_samples(in_cluster),
        rtt: m.rtt_samples(in_cluster),
    }
}

/// The paper's headline accuracy numbers for one comparison.
#[derive(Clone, Copy, Debug, Default)]
pub struct AccuracyReport {
    pub w1_fct: f64,
    pub w1_throughput: f64,
    pub w1_rtt: f64,
    pub fct_p99_truth: f64,
    pub fct_p99_approx: f64,
    pub tput_p99_truth: f64,
    pub tput_p99_approx: f64,
    pub rtt_p99_truth: f64,
    pub rtt_p99_approx: f64,
}

impl AccuracyReport {
    /// Relative p99 FCT error.
    pub fn fct_p99_rel_err(&self) -> f64 {
        if self.fct_p99_truth == 0.0 {
            return 0.0;
        }
        (self.fct_p99_approx - self.fct_p99_truth).abs() / self.fct_p99_truth
    }
}

/// Compare two runs over the observable cluster.
pub fn compare(truth: &ObservedSamples, approx: &ObservedSamples) -> AccuracyReport {
    AccuracyReport {
        w1_fct: wasserstein1(&truth.fct, &approx.fct),
        w1_throughput: wasserstein1(&truth.throughput, &approx.throughput),
        w1_rtt: wasserstein1(&truth.rtt, &approx.rtt),
        fct_p99_truth: percentile(&truth.fct, 99.0),
        fct_p99_approx: percentile(&approx.fct, 99.0),
        tput_p99_truth: percentile(&truth.throughput, 99.0),
        tput_p99_approx: percentile(&approx.throughput, 99.0),
        rtt_p99_truth: percentile(&truth.rtt, 99.0),
        rtt_p99_approx: percentile(&approx.rtt, 99.0),
    }
}

/// W1 distance between two FCT sample sets, normalized by the mean of
/// `truth` — the unit the tier-equivalence bounds are declared in (a
/// bound of `1.0` means "off by at most one mean FCT in distribution").
/// Returns `f64::INFINITY` when `truth` is empty or has zero mean while
/// `approx` is non-empty, and `0.0` when both are empty.
pub fn w1_fct_relative(truth: &[f64], approx: &[f64]) -> f64 {
    if truth.is_empty() && approx.is_empty() {
        return 0.0;
    }
    let mean = truth.iter().sum::<f64>() / truth.len().max(1) as f64;
    if mean <= 0.0 {
        return f64::INFINITY;
    }
    wasserstein1(truth, approx) / mean
}

/// MSE of per-flow FCT over the intersection of completed flows
/// (paper §7.2). Returns `None` when the overlap is below `min_overlap`
/// of either side ("By default, MimicNet ignores models with overlap
/// < 80%").
pub fn fct_mse_intersection(a: &Metrics, b: &Metrics, min_overlap: f64) -> Option<f64> {
    let done =
        |m: &Metrics| -> std::collections::HashMap<dcn_sim::packet::FlowId, f64> {
            m.flows
                .iter()
                .filter_map(|(id, f)| f.fct().map(|d| (*id, d.as_secs_f64())))
                .collect()
        };
    let fa = done(a);
    let fb = done(b);
    if fa.is_empty() || fb.is_empty() {
        return None;
    }
    let common: Vec<(f64, f64)> = fa
        .iter()
        .filter_map(|(id, &x)| fb.get(id).map(|&y| (x, y)))
        .collect();
    let overlap_a = common.len() as f64 / fa.len() as f64;
    let overlap_b = common.len() as f64 / fb.len() as f64;
    if overlap_a < min_overlap || overlap_b < min_overlap {
        return None;
    }
    Some(common.iter().map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / common.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::instrument::FlowRecord;
    use dcn_sim::packet::FlowId;
    use dcn_sim::time::SimTime;

    fn metrics_with_fcts(fcts: &[(u64, f64)]) -> Metrics {
        let mut m = Metrics::new(1);
        for &(id, fct) in fcts {
            m.flows.insert(
                FlowId(id),
                FlowRecord {
                    flow: FlowId(id),
                    src: NodeId(0),
                    dst: NodeId(1),
                    size_bytes: 1,
                    start: SimTime::ZERO,
                    end: Some(SimTime::from_secs_f64(fct)),
                },
            );
        }
        m
    }

    #[test]
    fn identical_runs_have_zero_w1() {
        let s = ObservedSamples {
            fct: vec![0.1, 0.2, 0.3],
            throughput: vec![100.0, 200.0],
            rtt: vec![0.001, 0.002],
        };
        let r = compare(&s, &s);
        assert_eq!(r.w1_fct, 0.0);
        assert_eq!(r.w1_throughput, 0.0);
        assert_eq!(r.w1_rtt, 0.0);
        assert_eq!(r.fct_p99_rel_err(), 0.0);
    }

    #[test]
    fn relative_w1_is_scale_free() {
        let truth = vec![0.1, 0.2, 0.3];
        // Shift every sample by one mean: relative W1 is exactly 1.
        let shifted: Vec<f64> = truth.iter().map(|x| x + 0.2).collect();
        assert!((w1_fct_relative(&truth, &shifted) - 1.0).abs() < 1e-12);
        assert_eq!(w1_fct_relative(&truth, &truth), 0.0);
        assert_eq!(w1_fct_relative(&[], &[]), 0.0);
        assert_eq!(w1_fct_relative(&[], &[0.1]), f64::INFINITY);
    }

    #[test]
    fn mse_intersection_basic() {
        let a = metrics_with_fcts(&[(1, 0.1), (2, 0.2), (3, 0.3)]);
        let b = metrics_with_fcts(&[(1, 0.1), (2, 0.25), (3, 0.3)]);
        let mse = fct_mse_intersection(&a, &b, 0.8).unwrap();
        assert!((mse - 0.05f64.powi(2) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mse_rejected_below_overlap_gate() {
        let a = metrics_with_fcts(&[(1, 0.1), (2, 0.2), (3, 0.3), (4, 0.4), (5, 0.5)]);
        let b = metrics_with_fcts(&[(1, 0.1), (9, 0.9)]);
        // Intersection = 1 flow; overlap_a = 0.2 < 0.8.
        assert!(fct_mse_intersection(&a, &b, 0.8).is_none());
    }

    #[test]
    fn observed_filters_by_cluster() {
        let topo = FatTree::new(dcn_sim::topology::FatTreeParams::new(2, 2, 2, 2, 1));
        let mut m = Metrics::new(topo.params.num_hosts());
        // One flow inside cluster 0, one entirely in cluster 1.
        for (id, src, dst) in [
            (1u64, topo.host(0, 0, 0), topo.host(0, 1, 0)),
            (2u64, topo.host(1, 0, 0), topo.host(1, 1, 0)),
        ] {
            m.flows.insert(
                FlowId(id),
                FlowRecord {
                    flow: FlowId(id),
                    src,
                    dst,
                    size_bytes: 1,
                    start: SimTime::ZERO,
                    end: Some(SimTime::from_secs_f64(0.5)),
                },
            );
        }
        let obs = observed(&m, &topo, 0);
        assert_eq!(obs.fct.len(), 1);
    }
}
