//! Adaptive fidelity tiers: the runtime scaling mechanism.
//!
//! The composed engine knows three ways to serve a cluster, ordered by
//! cost and fidelity ([`FidelityTier`]):
//!
//! * **Packet** — full packet-level simulation, decided at composition
//!   time ([`crate::compose::try_compose_partial`]'s `full_fidelity`
//!   list). The ground truth; also the degradation fallback.
//! * **Mimic** — the trained LSTM ([`crate::batch::BatchedMimicFleet`]).
//!   Accurate while live traffic resembles the training distribution.
//! * **Flow** — a fluid equal-share estimate per boundary packet
//!   ([`flow_sim::boundary::ShareEstimator`]), optionally sharpened by a
//!   small learned [`CorrectionHead`]. Orders of magnitude cheaper than
//!   the LSTM; the paper's Figures 1/7 show why it cannot be trusted
//!   alone — which is exactly why it is gated behind an accuracy budget.
//!
//! [`AdaptiveFleet`] serves the Mimic and Flow tiers behind one
//! [`BatchClusterModel`] and lets an
//! [`AccuracyBudget`](crate::degrade::AccuracyBudget) move clusters
//! between them at PDES epoch barriers: calm clusters sink to Flow, and
//! drift (scored by the same [`DriftMonitor`](crate::drift::DriftMonitor)
//! stream at both tiers) promotes them back to Mimic. Transitions happen
//! only at window barriers with every pending batch settled, so the tier
//! schedule — and therefore the whole run — is bit-identical across
//! partition counts and across checkpoint/restore cuts.

use crate::batch::BatchedMimicFleet;
use crate::degrade::{AccuracyBudget, BudgetLedger};
use dcn_sim::config::SimConfig;
use dcn_sim::instrument::Metrics;
use dcn_sim::mimic::{
    BatchClusterModel, BoundaryDir, BoundaryItem, FidelityTier, TierSwitch, Verdict,
};
use dcn_sim::snapshot::{SnapReader, SnapWriter, SnapshotError};
use dcn_sim::time::{SimDuration, SimTime};
use flow_sim::boundary::ShareEstimator;
use serde::{Deserialize, Serialize};

/// Store-and-forward hops a boundary packet traverses inside a cluster:
/// two links in either direction (agg→ToR→host on ingress, host→ToR→agg
/// on egress — the boundary junctures of §5.1).
pub const FLOW_HOPS: u64 = 2;

/// Activity window of the Flow tier's equal-share estimator: a flow idle
/// longer than this stops claiming bandwidth. 10 ms ≈ several RTTs at the
/// paper's 500 µs links.
pub const SHARE_WINDOW: SimDuration = SimDuration(10_000_000);

/// Propagation base of the Flow tier's dwell estimate for `cfg`.
pub fn flow_base(cfg: &SimConfig) -> SimDuration {
    SimDuration(cfg.link.latency.as_nanos() * FLOW_HOPS)
}

/// One (size, share) → residual-latency training sample for the
/// correction head.
#[derive(Clone, Copy, Debug)]
pub struct CorrectionSample {
    pub wire_bytes: u32,
    pub active_flows: usize,
    /// True dwell minus the analytic equal-share estimate, seconds.
    pub residual_s: f64,
}

/// A learned linear correction on top of the Flow tier's analytic
/// estimate: `Δlatency = w_size·size_kbit + w_flows·active + b` seconds.
/// Fit by ridge regression on small-scale matched traces (the same data
/// the Mimics train on), it absorbs the systematic fluid-model bias —
/// queueing the equal-share estimate cannot see — without giving the
/// Flow tier any recurrent state.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CorrectionHead {
    pub w_size: f64,
    pub w_flows: f64,
    pub b: f64,
}

impl CorrectionHead {
    /// Additive latency correction in seconds for a packet of
    /// `wire_bytes` priced against `active_flows` sharers.
    pub fn apply(&self, wire_bytes: u32, active_flows: usize) -> f64 {
        self.w_size * (wire_bytes as f64 * 8.0 / 1e3) + self.w_flows * active_flows as f64 + self.b
    }

    /// Ridge fit (λ = 1e-6) of the three parameters via the workspace's
    /// own Cholesky solver ([`mimic_ml::gp`]). Returns `None` when there
    /// are too few samples or the normal equations are degenerate.
    pub fn fit(samples: &[CorrectionSample]) -> Option<CorrectionHead> {
        if samples.len() < 8 {
            return None;
        }
        // Normal equations over x = [size_kbit, active_flows, 1].
        let mut xtx = [0.0f64; 9];
        let mut xty = [0.0f64; 3];
        for s in samples {
            let x = [s.wire_bytes as f64 * 8.0 / 1e3, s.active_flows as f64, 1.0];
            for i in 0..3 {
                for j in 0..3 {
                    xtx[i * 3 + j] += x[i] * x[j];
                }
                xty[i] += x[i] * s.residual_s;
            }
        }
        for i in 0..3 {
            xtx[i * 3 + i] += 1e-6;
        }
        let l = mimic_ml::gp::cholesky(&xtx, 3)?;
        let z = mimic_ml::gp::solve_lower(&l, 3, &xty);
        let w = mimic_ml::gp::solve_upper_t(&l, 3, &z);
        let head = CorrectionHead {
            w_size: w[0],
            w_flows: w[1],
            b: w[2],
        };
        (head.w_size.is_finite() && head.w_flows.is_finite() && head.b.is_finite())
            .then_some(head)
    }
}

/// Fit the correction head from a small-scale run's boundary trace by
/// replaying each direction's matched packets through the *same*
/// [`ShareEstimator`] the Flow tier runs, so the residuals are measured
/// against exactly the estimate the head will correct.
pub fn fit_correction_head(cfg: &SimConfig, metrics: &Metrics) -> Option<CorrectionHead> {
    let horizon = SimTime::from_secs_f64(cfg.duration_s);
    let mut samples = Vec::new();
    for dir in [BoundaryDir::Ingress, BoundaryDir::Egress] {
        let trace = crate::trace::match_trace(&metrics.boundary, dir, horizon);
        let mut est = ShareEstimator::new(cfg.link.fabric_bw_bps, flow_base(cfg), SHARE_WINDOW);
        for p in &trace.packets {
            let Some(latency) = p.latency else { continue };
            let (dwell, n) = est.observe(p.enter.flow, p.enter.time, p.enter.wire_bytes);
            samples.push(CorrectionSample {
                wire_bytes: p.enter.wire_bytes,
                active_flows: n,
                residual_s: latency.as_secs_f64() - dwell.as_secs_f64(),
            });
        }
    }
    CorrectionHead::fit(&samples)
}

/// A [`BatchClusterModel`] serving every Mimic'ed cluster at whichever of
/// the Mimic/Flow tiers its [`BudgetLedger`] currently assigns, with the
/// inner [`BatchedMimicFleet`] handling Mimic-tier items and a pair of
/// [`ShareEstimator`]s per cluster handling Flow-tier items.
///
/// Determinism contract: a cluster's tier is constant within a PDES
/// window (switches fire only in [`BatchClusterModel::on_epoch`], which
/// the engine calls at settled barriers), both tiers' verdicts are pure
/// functions of each lane's item order, and Flow-tier packets still feed
/// the inner fleet's feature extractors and drift monitors — so drift
/// scores, and with them the promote/demote schedule, are identical at
/// any partition count.
pub struct AdaptiveFleet {
    inner: BatchedMimicFleet,
    ledger: BudgetLedger,
    /// Per-served-cluster `[ingress, egress]` estimators, in the inner
    /// fleet's lane order.
    flow: Vec<[ShareEstimator; 2]>,
    /// Dense cluster-id → lane-index map (`u32::MAX` = not served).
    slot: Vec<u32>,
    correction: Option<CorrectionHead>,
    /// Fixed for the whole run regardless of the tier mix: both tiers
    /// clamp to it, so the PDES window never has to change mid-run.
    floor: SimDuration,
    // Scratch for routing a flush by tier (steady state allocates
    // nothing).
    sub_items: Vec<BoundaryItem>,
    sub_map: Vec<u32>,
    sub_verdicts: Vec<Verdict>,
    /// Boundary packets served by each tier (instrumentation).
    pub flow_packets: u64,
    pub mimic_packets: u64,
}

impl AdaptiveFleet {
    /// Wrap `inner` under `budget`. All of `inner`'s clusters become
    /// budget-managed; clusters absent from `inner` (the observable
    /// cluster, composition-time packet clusters) stay at
    /// [`FidelityTier::Packet`] in the ledger.
    pub fn new(
        inner: BatchedMimicFleet,
        cfg: &SimConfig,
        budget: AccuracyBudget,
        correction: Option<CorrectionHead>,
    ) -> AdaptiveFleet {
        let n_clusters = cfg.topo.clusters;
        let ledger = BudgetLedger::new(budget, n_clusters, inner.clusters());
        let base = flow_base(cfg);
        let flow = inner
            .clusters()
            .iter()
            .map(|_| {
                [
                    ShareEstimator::new(cfg.link.fabric_bw_bps, base, SHARE_WINDOW),
                    ShareEstimator::new(cfg.link.fabric_bw_bps, base, SHARE_WINDOW),
                ]
            })
            .collect();
        let mut slot = vec![u32::MAX; n_clusters as usize];
        for (li, &c) in inner.clusters().iter().enumerate() {
            slot[c as usize] = li as u32;
        }
        let floor = inner.latency_floor();
        AdaptiveFleet {
            inner,
            ledger,
            flow,
            slot,
            correction,
            floor,
            sub_items: Vec::new(),
            sub_map: Vec::new(),
            sub_verdicts: Vec::new(),
            flow_packets: 0,
            mimic_packets: 0,
        }
    }

    /// The wrapped Mimic fleet (tests and instrumentation).
    pub fn inner(&self) -> &BatchedMimicFleet {
        &self.inner
    }

    /// Force a cluster's tier (CLI/test override); see
    /// [`BudgetLedger::set_tier`].
    pub fn force_tier(&mut self, cluster: u32, tier: FidelityTier) -> bool {
        self.ledger.set_tier(cluster, tier)
    }

    /// Clusters currently at `tier`.
    pub fn count_at(&self, tier: FidelityTier) -> usize {
        self.inner
            .clusters()
            .iter()
            .filter(|&&c| self.ledger.tier(c) == tier)
            .count()
    }

    fn flow_verdict(&mut self, item: &BoundaryItem) -> Verdict {
        let li = self.slot[item.cluster as usize] as usize;
        let d = match item.dir {
            BoundaryDir::Ingress => 0,
            BoundaryDir::Egress => 1,
        };
        let est = &mut self.flow[li][d];
        let (dwell, n) = est.observe(item.pkt.flow, item.enqueued_at, item.pkt.wire_bytes());
        let mut latency_s = dwell.as_secs_f64();
        if let Some(head) = &self.correction {
            latency_s += head.apply(item.pkt.wire_bytes(), n);
        }
        let latency = SimDuration::from_secs_f64(latency_s.max(0.0)).max(self.floor);
        let exit = est.clamp_exit(item.enqueued_at + latency);
        Verdict::Deliver {
            latency: SimDuration(exit.0 - item.enqueued_at.0),
            // Fluids see no queues: no marks, no drops (the systematic
            // optimism the accuracy budget exists to bound).
            mark_ce: false,
        }
    }
}

impl BatchClusterModel for AdaptiveFleet {
    fn clusters(&self) -> &[u32] {
        self.inner.clusters()
    }

    fn infer_batch(&mut self, items: &[BoundaryItem], verdicts: &mut Vec<Verdict>) {
        verdicts.clear();
        verdicts.resize(items.len(), Verdict::Drop);
        self.sub_items.clear();
        self.sub_map.clear();
        for (i, item) in items.iter().enumerate() {
            if self.ledger.tier(item.cluster) == FidelityTier::Flow {
                // Flow-tier packets still feed the lane's feature
                // extractor and drift monitor — promotion needs signal.
                self.inner.observe_boundary(item);
                verdicts[i] = self.flow_verdict(item);
                self.flow_packets += 1;
            } else {
                self.sub_items.push(item.clone());
                self.sub_map.push(i as u32);
                self.mimic_packets += 1;
            }
        }
        if !self.sub_items.is_empty() {
            self.inner.infer_batch(&self.sub_items, &mut self.sub_verdicts);
            for (k, &i) in self.sub_map.iter().enumerate() {
                verdicts[i as usize] = self.sub_verdicts[k];
            }
        }
    }

    fn latency_floor(&self) -> SimDuration {
        self.floor
    }

    fn next_wake(&mut self, cluster: u32, now: SimTime) -> Option<SimTime> {
        // Identical cadence at both tiers, so the engine's wake chain —
        // part of the event trajectory — is tier-schedule-independent
        // only through the deterministic ledger, never through timing.
        self.inner.next_wake(cluster, now)
    }

    fn on_wake(&mut self, cluster: u32, now: SimTime) {
        match self.ledger.tier(cluster) {
            FidelityTier::Flow => self.inner.advance_feeders(cluster, now),
            _ => self.inner.on_wake(cluster, now),
        }
    }

    fn drift(&self, cluster: u32) -> Option<f64> {
        self.inner.drift(cluster)
    }

    fn tier(&self, cluster: u32) -> FidelityTier {
        self.ledger.tier(cluster)
    }

    fn on_epoch(&mut self, epoch: u64, drift: &[Option<f64>]) -> Vec<TierSwitch> {
        self.ledger.on_epoch(epoch, drift)
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapshotError> {
        self.inner.save_state(w)?;
        self.ledger.save_state(w);
        w.put_u64(self.flow.len() as u64);
        for pair in &self.flow {
            pair[0].save_state(w);
            pair[1].save_state(w);
        }
        w.put_u64(self.flow_packets);
        w.put_u64(self.mimic_packets);
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.inner.load_state(r)?;
        self.ledger.load_state(r)?;
        let n = r.get_count(17)?;
        if n != self.flow.len() {
            return Err(SnapshotError::Corrupt(format!(
                "adaptive fleet serves {} clusters, snapshot has {n}",
                self.flow.len()
            )));
        }
        for pair in &mut self.flow {
            pair[0].load_state(r)?;
            pair[1].load_state(r)?;
        }
        self.flow_packets = r.get_u64()?;
        self.mimic_packets = r.get_u64()?;
        Ok(())
    }

    fn append_obs(&self, out: &mut dcn_obs::ObsReport) {
        self.inner.append_obs(out);
        *out.counters
            .entry("tier.flow_packets".into())
            .or_insert(0) += self.flow_packets;
        *out.counters
            .entry("tier.mimic_packets".into())
            .or_insert(0) += self.mimic_packets;
        *out.counters.entry("tier.clusters_mimic".into()).or_insert(0) +=
            self.count_at(FidelityTier::Mimic) as u64;
        *out.counters.entry("tier.clusters_flow".into()).or_insert(0) +=
            self.count_at(FidelityTier::Flow) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correction_head_recovers_linear_residual() {
        // Residual = 2e-6·size_kbit + 3e-5·flows + 1e-4, exactly linear:
        // the ridge fit should recover it to high precision.
        let truth = CorrectionHead {
            w_size: 2e-6,
            w_flows: 3e-5,
            b: 1e-4,
        };
        let samples: Vec<CorrectionSample> = (0..64)
            .map(|i| {
                let wire_bytes = 40 + (i % 7) * 200;
                let active_flows = 1 + (i % 5) as usize;
                CorrectionSample {
                    wire_bytes,
                    active_flows,
                    residual_s: truth.apply(wire_bytes, active_flows),
                }
            })
            .collect();
        let fit = CorrectionHead::fit(&samples).expect("fit succeeds");
        for s in &samples {
            let err = (fit.apply(s.wire_bytes, s.active_flows)
                - truth.apply(s.wire_bytes, s.active_flows))
            .abs();
            assert!(err < 1e-9, "err {err}");
        }
    }

    #[test]
    fn correction_head_fit_needs_enough_samples() {
        let s = CorrectionSample {
            wire_bytes: 1000,
            active_flows: 1,
            residual_s: 0.1,
        };
        assert!(CorrectionHead::fit(&[s; 7]).is_none());
    }

    #[test]
    fn correction_head_serde_round_trips() {
        let head = CorrectionHead {
            w_size: 1.5e-6,
            w_flows: -2.0e-5,
            b: 3.25e-4,
        };
        let json = serde_json::to_string(&head).expect("serialize");
        let back: CorrectionHead = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(head, back);
    }
}
