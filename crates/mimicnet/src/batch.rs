//! Batched Mimic inference for the PDES compose mode.
//!
//! A composed simulation carries one Mimic per non-observable cluster, and
//! every boundary packet costs an LSTM forward step. The scalar
//! [`LearnedMimic`](crate::mimic::LearnedMimic) pays that cost packet by
//! packet, re-streaming the weight matrices from memory each time. The
//! [`BatchedMimicFleet`] instead serves *all* Mimic'ed clusters of a
//! simulation behind the engine's [`BatchClusterModel`] aggregation point:
//! boundary packets queued across an event window are replayed through
//! [`SeqModel::step_lanes`](mimic_ml::model::SeqModel::step_lanes), which
//! streams each weight matrix once per round no matter how many clusters
//! it feeds.
//!
//! Why batching is across clusters, not across time: each (cluster,
//! direction) *lane* owns a recurrent `ModelState` and a
//! [`FeatureExtractor`] whose congestion estimate feeds back from each
//! prediction into the next packet's features. Two packets of one lane are
//! therefore serially dependent and can never share a forward pass. Lanes
//! of *different* clusters are independent but share weights — the batch
//! dimension this module exploits. Processing is round-based: each round
//! takes the head item of every active lane, runs one weight-shared
//! forward, and decodes per lane; rounds repeat until every lane's queue
//! drains. Per-lane item order — and with it every feature, state update,
//! and RNG draw — is identical no matter how the engine chunked the item
//! stream into flushes, which is what makes sequential and partitioned
//! composed runs bit-identical.
//!
//! Ordering invariants maintained here (locked down by the equivalence and
//! property suites):
//!
//! * **Chunking invariance** — verdicts depend only on each lane's item
//!   order, never on flush boundaries.
//! * **Per-flow FIFO** — a flow's exit times are monotone within a lane: a
//!   later packet never exits before an earlier one, even when the model
//!   predicts it a smaller latency (queues don't reorder a flow; §5.1's
//!   instrumentation junctures preserve this too).
//! * **Causality** — every verdict's exit time is at least
//!   [`latency_floor`](BatchClusterModel::latency_floor) past its enqueue
//!   time, the engine's license to defer inference.

use crate::drift::DriftMonitor;
use crate::internal_model::InternalModel;
use crate::mimic::{load_model_state, packet_view, save_model_state, DecisionMode, TrainedMimic};
use dcn_sim::mimic::{BatchClusterModel, BoundaryDir, BoundaryItem, Verdict};
use dcn_sim::packet::FlowId;
use dcn_sim::rng::SplitMix64;
use dcn_sim::snapshot::{SnapReader, SnapWriter, SnapshotError};
use dcn_sim::time::{SimDuration, SimTime};
use dcn_sim::topology::{FatTree, FatTreeParams};
use mimic_ml::loss::sigmoid;
use mimic_ml::model::{BatchScratch, ModelState, OUTPUTS, OUT_DROP, OUT_ECN, OUT_LATENCY};
use std::collections::HashMap;

use crate::features::FeatureExtractor;
use crate::feeder::Feeder;

/// One (cluster, direction) inference lane.
struct Lane {
    fx: FeatureExtractor,
    /// Per-lane decision stream. The scalar Mimic shares one RNG across
    /// both directions of a cluster; the fleet needs the draws to depend
    /// only on this lane's item order, so each lane gets its own stream.
    rng: SplitMix64,
    /// Last predicted exit time per flow (FIFO clamp). Entries whose exit
    /// precedes the current flush's oldest enqueue can no longer clamp
    /// anything and are evicted in place.
    last_exit: HashMap<FlowId, SimTime>,
    /// Ingress lanes score live features against the training envelope.
    monitor: Option<DriftMonitor>,
    /// Item indices (into the flush's `items`) queued for this lane.
    queue: Vec<u32>,
    cursor: usize,
}

/// One direction's lanes across all served clusters (lane `i` belongs to
/// `clusters[i]`). Model states live in a dense slab so the lane kernel
/// can gather/scatter them.
struct DirFleet {
    lanes: Vec<Lane>,
    states: Vec<ModelState>,
    feeders: Vec<Feeder>,
}

/// A [`BatchClusterModel`] serving every Mimic'ed cluster of one composed
/// simulation. Homogeneous compositions share a single bundle across all
/// lanes; heterogeneous ones group lanes by bundle, batching within each
/// group (lanes can only share a forward pass when they share weights).
pub struct BatchedMimicFleet {
    bundles: Vec<TrainedMimic>,
    /// `assign[i]` = bundle index of `clusters[i]`.
    assign: Vec<usize>,
    /// Lane indices per bundle group, in stable lane order.
    groups: Vec<Vec<usize>>,
    clusters: Vec<u32>,
    /// Dense cluster-id → lane-index map (`u32::MAX` = not served).
    slot: Vec<u32>,
    topo: FatTree,
    mode: DecisionMode,
    floor: SimDuration,
    ingress: DirFleet,
    egress: DirFleet,
    // Reused flush buffers (steady state allocates nothing).
    feats: Vec<f32>,
    feat_buf: Vec<f32>,
    sel: Vec<usize>,
    rows: Vec<u32>,
    out: Vec<[f32; OUTPUTS]>,
    raw: Vec<[f32; OUTPUTS]>,
    scratch: BatchScratch,
    /// Counters for instrumentation/tests.
    pub packets_seen: u64,
    pub feeder_packets: u64,
    /// Weight-shared forward rounds executed (one per occupied round of
    /// [`SeqModel::step_lanes`](mimic_ml::model::SeqModel::step_lanes)).
    pub rounds: u64,
    /// How many lanes each round fed — the realized batch dimension. A
    /// mean near 1 means the fleet degenerated to scalar stepping.
    pub lane_occupancy: dcn_obs::Hist,
}

impl BatchedMimicFleet {
    /// Homogeneous fleet: every cluster in `cluster_seeds` runs `bundle`.
    /// Each entry pairs a cluster index with its Mimic seed (the same
    /// per-cluster seeds the scalar composition derives), keeping feeder
    /// streams decorrelated across clusters and identical to the scalar
    /// composition's.
    pub fn new(
        bundle: TrainedMimic,
        topo_params: FatTreeParams,
        n_clusters: u32,
        cluster_seeds: &[(u32, u64)],
    ) -> BatchedMimicFleet {
        let with_bundle: Vec<(u32, usize, u64)> =
            cluster_seeds.iter().map(|&(c, s)| (c, 0, s)).collect();
        BatchedMimicFleet::new_heterogeneous(vec![bundle], topo_params, n_clusters, &with_bundle)
    }

    /// Heterogeneous fleet: each `(cluster, bundle_index, seed)` entry
    /// binds a cluster to one of `bundles`. All bundles must agree on the
    /// feature width (they describe the same cluster shape).
    pub fn new_heterogeneous(
        bundles: Vec<TrainedMimic>,
        topo_params: FatTreeParams,
        n_clusters: u32,
        cluster_assign: &[(u32, usize, u64)],
    ) -> BatchedMimicFleet {
        assert!(!bundles.is_empty(), "fleet needs at least one bundle");
        assert!(!cluster_assign.is_empty(), "fleet needs at least one cluster");
        let width = bundles[0].feature_cfg.width();
        for b in &bundles {
            assert_eq!(b.feature_cfg.width(), width, "bundles disagree on feature width");
        }

        let n_lanes = cluster_assign.len();
        let mut clusters = Vec::with_capacity(n_lanes);
        let mut assign = Vec::with_capacity(n_lanes);
        let mut slot = vec![u32::MAX; n_clusters as usize];
        let mut groups = vec![Vec::new(); bundles.len()];
        let make_dir = |dir: BoundaryDir| {
            let mut lanes = Vec::with_capacity(n_lanes);
            let mut states = Vec::with_capacity(n_lanes);
            let mut feeders = Vec::with_capacity(n_lanes);
            for &(_, g, seed) in cluster_assign {
                let bundle = &bundles[g];
                let fc = bundle.feature_cfg;
                let (model, fit, tag) = match dir {
                    BoundaryDir::Ingress => (&bundle.ingress, &bundle.feeder.ingress, 0x1u64),
                    BoundaryDir::Egress => (&bundle.egress, &bundle.feeder.egress, 0x2u64),
                };
                lanes.push(Lane {
                    fx: FeatureExtractor::new(fc),
                    rng: SplitMix64::derive(seed, 0x4D49_0000 | tag),
                    last_exit: HashMap::new(),
                    monitor: match dir {
                        BoundaryDir::Ingress => {
                            bundle.envelope.clone().map(DriftMonitor::new)
                        }
                        BoundaryDir::Egress => None,
                    },
                    queue: Vec::new(),
                    cursor: 0,
                });
                states.push(model.init_state());
                feeders.push(Feeder::new(
                    fit.clone(),
                    n_clusters,
                    fc.racks_per_cluster,
                    fc.hosts_per_rack,
                    fc.aggs_per_cluster,
                    fc.cores,
                    seed ^ tag,
                ));
            }
            DirFleet { lanes, states, feeders }
        };
        let ingress = make_dir(BoundaryDir::Ingress);
        let egress = make_dir(BoundaryDir::Egress);
        for (li, &(c, g, _)) in cluster_assign.iter().enumerate() {
            assert!(c < n_clusters, "cluster {c} out of range");
            assert!(g < bundles.len(), "bundle index {g} out of range");
            assert_eq!(slot[c as usize], u32::MAX, "cluster {c} assigned twice");
            slot[c as usize] = li as u32;
            clusters.push(c);
            assign.push(g);
            groups[g].push(li);
        }

        // Lower bound on any predicted latency: the smallest value either
        // discretizer can recover, across every bundle.
        let mut floor_s = f64::INFINITY;
        for b in &bundles {
            floor_s = floor_s.min(b.ingress.disc.recover(0.0));
            floor_s = floor_s.min(b.egress.disc.recover(0.0));
        }
        let floor = SimDuration::from_secs_f64(floor_s.max(1e-6));

        BatchedMimicFleet {
            bundles,
            assign,
            groups,
            slot,
            topo: FatTree::new(topo_params),
            mode: DecisionMode::Sample,
            floor,
            ingress,
            egress,
            feats: vec![0.0; n_lanes * width],
            feat_buf: Vec::with_capacity(width),
            sel: vec![0; n_lanes],
            rows: vec![0; n_lanes],
            out: vec![[0.0; OUTPUTS]; n_lanes],
            raw: Vec::new(),
            scratch: BatchScratch::new(),
            clusters,
            packets_seen: 0,
            feeder_packets: 0,
            rounds: 0,
            lane_occupancy: dcn_obs::Hist::default(),
        }
    }

    /// Switch decision mode (default: [`DecisionMode::Sample`]).
    pub fn with_mode(mut self, mode: DecisionMode) -> BatchedMimicFleet {
        self.mode = mode;
        self
    }

    /// Override every ingress drift monitor's window size. No-op for lanes
    /// whose bundle carries no envelope.
    pub fn with_drift_window(mut self, window: usize) -> BatchedMimicFleet {
        for (li, lane) in self.ingress.lanes.iter_mut().enumerate() {
            lane.monitor = self.bundles[self.assign[li]]
                .envelope
                .clone()
                .map(|env| DriftMonitor::with_window(env, window));
        }
        self
    }

    /// Raw model outputs (`[latency, drop_logit, ecn_logit]`) of the last
    /// flush, one row per item in item order. RNG-free, so equivalence
    /// suites can compare them bit-for-bit against scalar stepping.
    pub fn raw_outputs(&self) -> &[[f32; OUTPUTS]] {
        &self.raw
    }

    /// Feed one boundary packet through its lane's feature extractor and
    /// ingress drift monitor *without* running inference. The adaptive
    /// fleet calls this for clusters served below the Mimic tier: the
    /// promotion decision needs live drift signal even while the LSTM is
    /// dormant, and the feature path is deterministic in the lane's item
    /// order just like the full inference path.
    pub fn observe_boundary(&mut self, item: &BoundaryItem) {
        let BatchedMimicFleet {
            topo,
            ingress,
            egress,
            feat_buf,
            slot,
            ..
        } = self;
        let li = slot[item.cluster as usize];
        assert!(li != u32::MAX, "item for unserved cluster {}", item.cluster);
        let fleet = match item.dir {
            BoundaryDir::Ingress => ingress,
            BoundaryDir::Egress => egress,
        };
        let lane = &mut fleet.lanes[li as usize];
        let view = packet_view(topo, item.dir, &item.pkt, item.enqueued_at);
        lane.fx.extract_into(&view, feat_buf);
        if item.dir == BoundaryDir::Ingress {
            if let Some(mon) = &mut lane.monitor {
                mon.observe(feat_buf);
            }
        }
    }

    /// Advance a cluster's feeder streams to `now` without touching the
    /// frozen model/feature state. At the Flow tier the wake cadence and
    /// the feeders' random streams must stay aligned with what the Mimic
    /// tier would have consumed (so a later promotion re-joins the same
    /// deterministic schedule), but the LSTM warm-up updates — the
    /// expensive part of [`BatchClusterModel::on_wake`] — are skipped.
    pub fn advance_feeders(&mut self, cluster: u32, now: SimTime) {
        let li = self.slot[cluster as usize] as usize;
        loop {
            let mut fired = false;
            if self.ingress.feeders[li].fire(now).is_some() {
                self.feeder_packets += 1;
                fired = true;
            }
            if self.egress.feeders[li].fire(now).is_some() {
                self.feeder_packets += 1;
                fired = true;
            }
            if !fired {
                break;
            }
        }
    }

    fn dir_fleet(&mut self, dir: BoundaryDir) -> &mut DirFleet {
        match dir {
            BoundaryDir::Ingress => &mut self.ingress,
            BoundaryDir::Egress => &mut self.egress,
        }
    }

    /// Replay one direction's queued items in rounds (head item per active
    /// lane per round), one bundle group at a time.
    fn process_dir(&mut self, dir: BoundaryDir, items: &[BoundaryItem], verdicts: &mut [Verdict]) {
        let BatchedMimicFleet {
            bundles,
            groups,
            topo,
            mode,
            floor,
            ingress,
            egress,
            feats,
            feat_buf,
            sel,
            rows,
            out,
            raw,
            scratch,
            rounds,
            lane_occupancy,
            ..
        } = self;
        let fleet = match dir {
            BoundaryDir::Ingress => ingress,
            BoundaryDir::Egress => egress,
        };
        for (g, group) in groups.iter().enumerate() {
            let model: &InternalModel = match dir {
                BoundaryDir::Ingress => &bundles[g].ingress,
                BoundaryDir::Egress => &bundles[g].egress,
            };
            let width = bundles[g].feature_cfg.width();
            loop {
                // Gather: head item of every lane with work left.
                let mut n = 0;
                for &li in group {
                    let lane = &mut fleet.lanes[li];
                    let Some(&item_idx) = lane.queue.get(lane.cursor) else {
                        continue;
                    };
                    lane.cursor += 1;
                    let item = &items[item_idx as usize];
                    let view = packet_view(topo, dir, &item.pkt, item.enqueued_at);
                    lane.fx.extract_into(&view, feat_buf);
                    if dir == BoundaryDir::Ingress {
                        if let Some(mon) = &mut lane.monitor {
                            mon.observe(feat_buf);
                        }
                    }
                    feats[n * width..(n + 1) * width].copy_from_slice(feat_buf);
                    sel[n] = li;
                    rows[n] = item_idx;
                    n += 1;
                }
                if n == 0 {
                    break;
                }
                *rounds += 1;
                lane_occupancy.observe(n as u64);
                // One weight-shared forward for the whole round.
                model.model.step_lanes(
                    &feats[..n * width],
                    n,
                    &mut fleet.states,
                    &sel[..n],
                    &mut out[..n],
                    scratch,
                );
                // Decode per lane — the exact arithmetic of
                // `InternalModel::predict` + `LearnedMimic::on_packet`.
                for r in 0..n {
                    let item_idx = rows[r] as usize;
                    let item = &items[item_idx];
                    let o = out[r];
                    raw[item_idx] = o;
                    let latency_norm = o[OUT_LATENCY].clamp(0.0, 1.0);
                    let latency_s = model.disc.recover(latency_norm);
                    let p_drop = sigmoid(o[OUT_DROP]) as f64;
                    let p_ecn = sigmoid(o[OUT_ECN]) as f64;
                    let lane = &mut fleet.lanes[sel[r]];
                    if decide(&mut lane.rng, *mode, p_drop) {
                        lane.fx.observe_outcome(1.0, true);
                        verdicts[item_idx] = Verdict::Drop;
                        continue;
                    }
                    let mark_ce = item.pkt.ecn.is_capable() && decide(&mut lane.rng, *mode, p_ecn);
                    lane.fx.observe_outcome(latency_norm, false);
                    let latency =
                        SimDuration::from_secs_f64(latency_s.max(1e-6)).max(*floor);
                    let mut exit = item.enqueued_at + latency;
                    // FIFO clamp: a flow never exits earlier than its
                    // previous packet did (equal times are delivered in
                    // packet-id order by the engine's event tags).
                    if let Some(&prev) = lane.last_exit.get(&item.pkt.flow) {
                        if prev > exit {
                            exit = prev;
                        }
                    }
                    lane.last_exit.insert(item.pkt.flow, exit);
                    verdicts[item_idx] = Verdict::Deliver {
                        latency: SimDuration(exit.0 - item.enqueued_at.0),
                        mark_ce,
                    };
                }
            }
        }
    }
}

fn decide(rng: &mut SplitMix64, mode: DecisionMode, p: f64) -> bool {
    match mode {
        DecisionMode::Sample => rng.bernoulli(p),
        DecisionMode::Threshold => p > 0.5,
    }
}

impl BatchClusterModel for BatchedMimicFleet {
    fn clusters(&self) -> &[u32] {
        &self.clusters
    }

    fn infer_batch(&mut self, items: &[BoundaryItem], verdicts: &mut Vec<Verdict>) {
        self.packets_seen += items.len() as u64;
        verdicts.clear();
        verdicts.resize(items.len(), Verdict::Drop);
        self.raw.clear();
        self.raw.resize(items.len(), [0.0; OUTPUTS]);
        // Bucket items into their lanes, preserving stream order per lane.
        for fleet in [&mut self.ingress, &mut self.egress] {
            for lane in &mut fleet.lanes {
                lane.queue.clear();
                lane.cursor = 0;
            }
        }
        for (i, item) in items.iter().enumerate() {
            let li = self.slot[item.cluster as usize];
            assert!(li != u32::MAX, "item for unserved cluster {}", item.cluster);
            let fleet = self.dir_fleet(item.dir);
            fleet.lanes[li as usize].queue.push(i as u32);
        }
        // Evict FIFO entries that can no longer clamp anything: their exit
        // precedes every enqueue this flush will see (per-lane item order
        // is monotone in enqueue time).
        for fleet in [&mut self.ingress, &mut self.egress] {
            for lane in &mut fleet.lanes {
                if let Some(&first) = lane.queue.first() {
                    let oldest = items[first as usize].enqueued_at;
                    lane.last_exit.retain(|_, exit| *exit > oldest);
                }
            }
        }
        self.process_dir(BoundaryDir::Ingress, items, verdicts);
        self.process_dir(BoundaryDir::Egress, items, verdicts);
    }

    fn latency_floor(&self) -> SimDuration {
        self.floor
    }

    fn next_wake(&mut self, cluster: u32, now: SimTime) -> Option<SimTime> {
        // Same periodic batching as the scalar Mimic ("periodically takes
        // packets from the feeders" — §7.1).
        const PERIOD: SimDuration = SimDuration(2_000_000); // 2 ms
        let li = self.slot[cluster as usize] as usize;
        let earliest = match (
            self.ingress.feeders[li].next_time(),
            self.egress.feeders[li].next_time(),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }?;
        Some(earliest.max(now + PERIOD))
    }

    fn on_wake(&mut self, cluster: u32, now: SimTime) {
        let li = self.slot[cluster as usize] as usize;
        let g = self.assign[li];
        loop {
            let mut fired = false;
            if let Some(v) = self.ingress.feeders[li].fire(now) {
                let lane = &mut self.ingress.lanes[li];
                lane.fx.extract_into(&v, &mut self.feat_buf);
                self.bundles[g]
                    .ingress
                    .update_only(&self.feat_buf, &mut self.ingress.states[li]);
                self.feeder_packets += 1;
                fired = true;
            }
            if let Some(v) = self.egress.feeders[li].fire(now) {
                let lane = &mut self.egress.lanes[li];
                lane.fx.extract_into(&v, &mut self.feat_buf);
                self.bundles[g]
                    .egress
                    .update_only(&self.feat_buf, &mut self.egress.states[li]);
                self.feeder_packets += 1;
                fired = true;
            }
            if !fired {
                break;
            }
        }
    }

    fn drift(&self, cluster: u32) -> Option<f64> {
        let li = self.slot[cluster as usize] as usize;
        self.ingress.lanes[li]
            .monitor
            .as_ref()
            .and_then(|m| m.score())
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapshotError> {
        // Flush buffers (per-lane queues/cursors, feats/out/raw, scratch)
        // are transient within one infer_batch call; the engine settles
        // every pending batch before snapshotting, so only durable lane
        // state is written.
        for fleet in [&self.ingress, &self.egress] {
            w.put_u64(fleet.lanes.len() as u64);
            for (li, lane) in fleet.lanes.iter().enumerate() {
                lane.fx.save_state(w);
                w.put_u64(lane.rng.state());
                let mut exits: Vec<(u64, u64)> = lane
                    .last_exit
                    .iter()
                    .map(|(f, t)| (f.0, t.as_nanos()))
                    .collect();
                exits.sort_unstable();
                w.put_u64(exits.len() as u64);
                for (f, t) in exits {
                    w.put_u64(f);
                    w.put_u64(t);
                }
                w.put_bool(lane.monitor.is_some());
                if let Some(mon) = &lane.monitor {
                    mon.save_state(w);
                }
                save_model_state(&fleet.states[li], w);
                fleet.feeders[li].save_state(w);
            }
        }
        w.put_u64(self.packets_seen);
        w.put_u64(self.feeder_packets);
        w.put_u64(self.rounds);
        w.put_u64_slice(&self.lane_occupancy.buckets);
        w.put_u64(self.lane_occupancy.count);
        w.put_u64(self.lane_occupancy.sum);
        w.put_u64(self.lane_occupancy.max);
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        for fleet in [&mut self.ingress, &mut self.egress] {
            let n = r.get_u64()? as usize;
            if n != fleet.lanes.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "fleet has {} lanes, snapshot has {n}",
                    fleet.lanes.len()
                )));
            }
            for (li, lane) in fleet.lanes.iter_mut().enumerate() {
                lane.fx.load_state(r)?;
                lane.rng.set_state(r.get_u64()?);
                let n_exits = r.get_count(16)?;
                lane.last_exit.clear();
                for _ in 0..n_exits {
                    let flow = FlowId(r.get_u64()?);
                    let exit = SimTime(r.get_u64()?);
                    lane.last_exit.insert(flow, exit);
                }
                if r.get_bool()? != lane.monitor.is_some() {
                    return Err(SnapshotError::Corrupt(
                        "drift-monitor presence does not match the bundle".into(),
                    ));
                }
                if let Some(mon) = &mut lane.monitor {
                    mon.load_state(r)?;
                }
                load_model_state(&mut fleet.states[li], r)?;
                fleet.feeders[li].load_state(r)?;
                lane.queue.clear();
                lane.cursor = 0;
            }
        }
        self.packets_seen = r.get_u64()?;
        self.feeder_packets = r.get_u64()?;
        self.rounds = r.get_u64()?;
        let buckets = r.get_u64_vec()?;
        if buckets.len() != self.lane_occupancy.buckets.len() {
            return Err(SnapshotError::Corrupt(
                "lane-occupancy histogram has the wrong bucket count".into(),
            ));
        }
        self.lane_occupancy.buckets.copy_from_slice(&buckets);
        self.lane_occupancy.count = r.get_u64()?;
        self.lane_occupancy.sum = r.get_u64()?;
        self.lane_occupancy.max = r.get_u64()?;
        Ok(())
    }

    fn append_obs(&self, out: &mut dcn_obs::ObsReport) {
        *out.counters
            .entry("mimic.fleet.packets_seen".into())
            .or_insert(0) += self.packets_seen;
        *out.counters
            .entry("mimic.fleet.feeder_packets".into())
            .or_insert(0) += self.feeder_packets;
        *out.counters.entry("mimic.fleet.rounds".into()).or_insert(0) += self.rounds;
        out.hists
            .entry("mimic.flush.lane_occupancy".into())
            .or_default()
            .merge(&self.lane_occupancy);
    }
}
