//! Typed errors for the MimicNet pipeline.

use dcn_sim::error::SimError;
use dcn_sim::topology::NodeId;
use mimic_ml::train::TrainError;
use std::fmt;

/// An error raised while assembling or running a MimicNet estimate.
#[derive(Clone, Debug, PartialEq)]
pub enum PipelineError {
    /// A host could not be placed in any cluster while composing the
    /// large simulation — the topology or an assignment is malformed.
    MalformedTopology { node: NodeId, reason: String },
    /// Model training failed (empty trace, diverged, ...).
    Train(TrainError),
    /// The underlying simulator rejected its input.
    Sim(SimError),
    /// A composition parameter is out of range (e.g. fewer than 2
    /// clusters, or a model assignment pointing past the bundle list).
    InvalidComposition { reason: String },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::MalformedTopology { node, reason } => {
                write!(f, "malformed topology at node {}: {reason}", node.0)
            }
            PipelineError::Train(e) => write!(f, "training failed: {e}"),
            PipelineError::Sim(e) => write!(f, "simulation rejected input: {e}"),
            PipelineError::InvalidComposition { reason } => {
                write!(f, "invalid composition: {reason}")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Train(e) => Some(e),
            PipelineError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TrainError> for PipelineError {
    fn from(e: TrainError) -> Self {
        PipelineError::Train(e)
    }
}

impl From<SimError> for PipelineError {
    fn from(e: SimError) -> Self {
        PipelineError::Sim(e)
    }
}

/// An error raised by a checkpointed or resumed composed run: either the
/// composition itself is invalid, or checkpoint I/O / snapshot decoding
/// failed. Kept separate from [`PipelineError`] so snapshot failures stay
/// fully typed ([`dcn_sim::snapshot::SnapshotError`] carries
/// `std::io::Error`, which is neither `Clone` nor `PartialEq`).
#[derive(Debug)]
pub enum ComposeRunError {
    /// Assembling the composition failed.
    Pipeline(PipelineError),
    /// Writing or restoring a checkpoint failed.
    Snapshot(dcn_sim::snapshot::SnapshotError),
}

impl fmt::Display for ComposeRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposeRunError::Pipeline(e) => write!(f, "{e}"),
            ComposeRunError::Snapshot(e) => write!(f, "checkpoint failed: {e}"),
        }
    }
}

impl std::error::Error for ComposeRunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ComposeRunError::Pipeline(e) => Some(e),
            ComposeRunError::Snapshot(e) => Some(e),
        }
    }
}

impl From<PipelineError> for ComposeRunError {
    fn from(e: PipelineError) -> Self {
        ComposeRunError::Pipeline(e)
    }
}

impl From<dcn_sim::snapshot::SnapshotError> for ComposeRunError {
    fn from(e: dcn_sim::snapshot::SnapshotError) -> Self {
        ComposeRunError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: PipelineError = TrainError::EmptyDataset.into();
        assert!(e.to_string().contains("training failed"));
        let e = PipelineError::MalformedTopology {
            node: NodeId(7),
            reason: "host outside every cluster".into(),
        };
        assert!(e.to_string().contains("node 7"));
    }
}
