//! Trace pre-processing: matching boundary records into supervised labels
//! (paper §5.1 "Pre-processing").
//!
//! "MimicNet takes the packet dumps and matches the packets entering and
//! leaving the network using identifiers from the packets. Examining the
//! matches helps to determine the length of time it spent in the cluster
//! and any changes to the packet. … Loss can be detected as a packet
//! entering the cluster but never leaving."
//!
//! Packets that enter near the end of the capture are discarded (they may
//! simply not have exited yet — mistaking them for drops would poison the
//! loss labels).

use dcn_sim::instrument::{BoundaryPhase, BoundaryRecord};
use dcn_sim::mimic::BoundaryDir;
use dcn_sim::packet::Ecn;
use dcn_sim::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// One matched (or unmatched ⇒ dropped) packet traversal of the cluster.
#[derive(Clone, Debug)]
pub struct MatchedPacket {
    /// The record at the entry juncture (features come from here).
    pub enter: BoundaryRecord,
    /// Dwell time inside the cluster; `None` means dropped.
    pub latency: Option<SimDuration>,
    /// The cluster CE-marked the packet.
    pub ecn_marked: bool,
}

impl MatchedPacket {
    pub fn dropped(&self) -> bool {
        self.latency.is_none()
    }
}

/// Matching output for one direction, in entry-time order.
#[derive(Clone, Debug, Default)]
pub struct MatchedTrace {
    pub packets: Vec<MatchedPacket>,
}

impl MatchedTrace {
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Observed drop rate.
    pub fn drop_rate(&self) -> f64 {
        if self.packets.is_empty() {
            return 0.0;
        }
        self.packets.iter().filter(|p| p.dropped()).count() as f64 / self.packets.len() as f64
    }

    /// Observed latency range `(min, max)` over delivered packets, seconds.
    pub fn latency_range(&self) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for p in &self.packets {
            if let Some(l) = p.latency {
                let s = l.as_secs_f64();
                lo = lo.min(s);
                hi = hi.max(s);
            }
        }
        (lo.is_finite() && hi > lo).then_some((lo, hi))
    }

    /// Interarrival samples at the entry juncture, seconds.
    pub fn interarrivals(&self) -> Vec<f64> {
        self.packets
            .windows(2)
            .map(|w| w[1].enter.time.since(w[0].enter.time).as_secs_f64())
            .collect()
    }
}

/// Match a boundary dump into per-direction traces. `horizon` is the time
/// after which entries are discarded as possibly-in-flight (use the sim
/// end minus a guard of a few max-latencies).
pub fn match_trace(
    records: &[BoundaryRecord],
    dir: BoundaryDir,
    horizon: SimTime,
) -> MatchedTrace {
    let mut exits: HashMap<u64, &BoundaryRecord> = HashMap::new();
    for r in records {
        if r.dir == dir && r.phase == BoundaryPhase::Exit {
            exits.insert(r.pkt_id, r);
        }
    }
    let mut packets: Vec<MatchedPacket> = records
        .iter()
        .filter(|r| r.dir == dir && r.phase == BoundaryPhase::Enter && r.time <= horizon)
        .map(|enter| match exits.get(&enter.pkt_id) {
            Some(exit) => MatchedPacket {
                enter: enter.clone(),
                latency: Some(exit.time.since(enter.time)),
                ecn_marked: exit.ecn == Ecn::Ce && enter.ecn != Ecn::Ce,
            },
            None => MatchedPacket {
                enter: enter.clone(),
                latency: None,
                ecn_marked: false,
            },
        })
        .collect();
    packets.sort_by_key(|p| (p.enter.time, p.enter.pkt_id));
    MatchedTrace { packets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::packet::{FlowId, PacketKind};
    use dcn_sim::topology::NodeId;

    fn rec(pkt_id: u64, t: f64, dir: BoundaryDir, phase: BoundaryPhase, ecn: Ecn) -> BoundaryRecord {
        BoundaryRecord {
            pkt_id,
            flow: FlowId(1),
            time: SimTime::from_secs_f64(t),
            dir,
            phase,
            wire_bytes: 1500,
            ecn,
            kind: PacketKind::Data,
            src: NodeId(0),
            dst: NodeId(4),
            core: NodeId(20),
            prio: 0,
        }
    }

    #[test]
    fn matches_latency() {
        let records = vec![
            rec(1, 0.010, BoundaryDir::Ingress, BoundaryPhase::Enter, Ecn::Ect),
            rec(1, 0.013, BoundaryDir::Ingress, BoundaryPhase::Exit, Ecn::Ect),
        ];
        let t = match_trace(&records, BoundaryDir::Ingress, SimTime::from_secs_f64(1.0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.packets[0].latency, Some(SimDuration::from_millis(3)));
        assert!(!t.packets[0].ecn_marked);
    }

    #[test]
    fn unmatched_is_a_drop() {
        let records = vec![rec(7, 0.02, BoundaryDir::Egress, BoundaryPhase::Enter, Ecn::Ect)];
        let t = match_trace(&records, BoundaryDir::Egress, SimTime::from_secs_f64(1.0));
        assert_eq!(t.len(), 1);
        assert!(t.packets[0].dropped());
        assert!((t.drop_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ecn_marking_detected_only_on_transition() {
        let records = vec![
            rec(1, 0.01, BoundaryDir::Ingress, BoundaryPhase::Enter, Ecn::Ect),
            rec(1, 0.02, BoundaryDir::Ingress, BoundaryPhase::Exit, Ecn::Ce),
            // Already CE on entry: not marked *by this cluster*.
            rec(2, 0.03, BoundaryDir::Ingress, BoundaryPhase::Enter, Ecn::Ce),
            rec(2, 0.04, BoundaryDir::Ingress, BoundaryPhase::Exit, Ecn::Ce),
        ];
        let t = match_trace(&records, BoundaryDir::Ingress, SimTime::from_secs_f64(1.0));
        assert!(t.packets[0].ecn_marked);
        assert!(!t.packets[1].ecn_marked);
    }

    #[test]
    fn directions_are_separated() {
        let records = vec![
            rec(1, 0.01, BoundaryDir::Ingress, BoundaryPhase::Enter, Ecn::Ect),
            rec(2, 0.01, BoundaryDir::Egress, BoundaryPhase::Enter, Ecn::Ect),
            rec(2, 0.02, BoundaryDir::Egress, BoundaryPhase::Exit, Ecn::Ect),
        ];
        let i = match_trace(&records, BoundaryDir::Ingress, SimTime::from_secs_f64(1.0));
        let e = match_trace(&records, BoundaryDir::Egress, SimTime::from_secs_f64(1.0));
        assert_eq!(i.len(), 1);
        assert!(i.packets[0].dropped());
        assert_eq!(e.len(), 1);
        assert!(!e.packets[0].dropped());
    }

    #[test]
    fn horizon_excludes_possibly_in_flight() {
        let records = vec![
            rec(1, 0.98, BoundaryDir::Ingress, BoundaryPhase::Enter, Ecn::Ect),
            rec(2, 0.50, BoundaryDir::Ingress, BoundaryPhase::Enter, Ecn::Ect),
            rec(2, 0.51, BoundaryDir::Ingress, BoundaryPhase::Exit, Ecn::Ect),
        ];
        let t = match_trace(&records, BoundaryDir::Ingress, SimTime::from_secs_f64(0.9));
        assert_eq!(t.len(), 1, "late entry must be excluded, not labeled dropped");
        assert_eq!(t.packets[0].enter.pkt_id, 2);
    }

    #[test]
    fn trace_is_sorted_and_ranges_computed() {
        let records = vec![
            rec(2, 0.05, BoundaryDir::Ingress, BoundaryPhase::Enter, Ecn::Ect),
            rec(2, 0.09, BoundaryDir::Ingress, BoundaryPhase::Exit, Ecn::Ect),
            rec(1, 0.01, BoundaryDir::Ingress, BoundaryPhase::Enter, Ecn::Ect),
            rec(1, 0.02, BoundaryDir::Ingress, BoundaryPhase::Exit, Ecn::Ect),
        ];
        let t = match_trace(&records, BoundaryDir::Ingress, SimTime::from_secs_f64(1.0));
        assert_eq!(t.packets[0].enter.pkt_id, 1);
        let (lo, hi) = t.latency_range().unwrap();
        assert!((lo - 0.01).abs() < 1e-9);
        assert!((hi - 0.04).abs() < 1e-9);
        let inter = t.interarrivals();
        assert_eq!(inter.len(), 1);
        assert!((inter[0] - 0.04).abs() < 1e-9);
    }
}
