//! Scalable feature extraction (paper §5.3, Table 1).
//!
//! "A scalable feature is one that remains meaningful regardless of the
//! number of clusters in the simulation." Raw IPs are out; local indices
//! are in. The extracted vector per packet is:
//!
//! | feature | encoding | width |
//! |---|---|---|
//! | local rack               | one-hot | racks/cluster |
//! | local server             | one-hot | hosts/rack |
//! | local cluster switch     | one-hot | aggs/cluster |
//! | core switch traversed    | one-hot | #cores |
//! | packet size              | scalar (normalized) | 1 |
//! | time since last packet   | scalar (discretized) | 1 |
//! | EWMA of interarrival     | scalar (discretized) | 1 |
//! | congestion state (§5.5)  | one-hot | 4 |
//! | packet kind              | one-hot | 3 |
//! | ECN codepoint            | bits | 2 |
//! | priority                 | scalar | 1 |
//!
//! All widths depend only on the *shape of one cluster* plus the core
//! count — adding clusters never changes them, which is what lets models
//! trained at 2 clusters run at 128.

use dcn_sim::packet::{Ecn, PacketKind};
use dcn_sim::time::SimTime;
use mimic_ml::discretize::Discretizer;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The four coarse congestion regimes of §5.5.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum CongestionState {
    /// Little to no congestion.
    Low = 0,
    /// Queues filling.
    Increasing = 1,
    /// High congestion.
    High = 2,
    /// Queues draining.
    Decreasing = 3,
}

/// Estimates the congestion regime from the latency/drop outcomes of
/// recently processed packets. During training the outcomes are ground
/// truth labels; during inference they are the model's own predictions —
/// the same information a real deployment would have.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CongestionEstimator {
    /// Recent (normalized latency, dropped) outcomes.
    recent: VecDeque<(f32, bool)>,
    cap: usize,
}

impl Default for CongestionEstimator {
    fn default() -> Self {
        CongestionEstimator {
            recent: VecDeque::new(),
            cap: 32,
        }
    }
}

impl CongestionEstimator {
    /// Record a packet outcome (normalized latency in [0,1], drop flag).
    pub fn observe(&mut self, latency_norm: f32, dropped: bool) {
        if self.recent.len() == self.cap {
            self.recent.pop_front();
        }
        self.recent.push_back((latency_norm, dropped));
    }

    /// Current regime estimate.
    pub fn state(&self) -> CongestionState {
        if self.recent.len() < 4 {
            return CongestionState::Low;
        }
        // Single pass, no scratch Vec: this runs once per packet inside
        // feature extraction, so it must stay off the allocator.
        let n = self.recent.len();
        let half = n / 2;
        let mut first_sum = 0.0f32;
        let mut second_sum = 0.0f32;
        let mut drops = 0usize;
        for (i, &(l, d)) in self.recent.iter().enumerate() {
            if i < half {
                first_sum += l;
            } else {
                second_sum += l;
            }
            if d {
                drops += 1;
            }
        }
        let mean = (first_sum + second_sum) / n as f32;
        let drop_rate = drops as f32 / n as f32;
        let m1 = first_sum / half as f32;
        let m2 = second_sum / (n - half) as f32;
        if mean > 0.6 || drop_rate > 0.05 {
            CongestionState::High
        } else if m2 > m1 * 1.25 + 0.02 {
            CongestionState::Increasing
        } else if m1 > m2 * 1.25 + 0.02 {
            CongestionState::Decreasing
        } else {
            CongestionState::Low
        }
    }
}

/// Shape of one cluster (and the core tier) — everything the encoder
/// needs, and nothing that grows with cluster count.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FeatureConfig {
    pub racks_per_cluster: u32,
    pub hosts_per_rack: u32,
    pub aggs_per_cluster: u32,
    pub cores: u32,
    /// Largest interarrival representable before clamping, seconds.
    pub dt_max_s: f64,
    /// Discretization levels for the two time features (paper §5.2).
    pub dt_levels: u32,
    /// EWMA smoothing factor for the interarrival feature.
    pub ewma_alpha: f64,
    /// Include the 4-state congestion estimate (§5.5). Disabling zeroes
    /// the block (width is preserved) — the ablation of DESIGN.md §3.
    pub congestion_feature: bool,
}

impl FeatureConfig {
    pub fn from_topology(p: &dcn_sim::topology::FatTreeParams) -> FeatureConfig {
        FeatureConfig {
            racks_per_cluster: p.racks_per_cluster,
            hosts_per_rack: p.hosts_per_rack,
            aggs_per_cluster: p.aggs_per_cluster,
            cores: p.num_cores(),
            dt_max_s: 0.05,
            dt_levels: 100,
            ewma_alpha: 0.2,
            congestion_feature: true,
        }
    }

    /// Total feature-vector width.
    pub fn width(&self) -> usize {
        self.racks_per_cluster as usize
            + self.hosts_per_rack as usize
            + self.aggs_per_cluster as usize
            + self.cores as usize
            + 1 // size
            + 1 // dt
            + 1 // ewma
            + 4 // congestion one-hot
            + 3 // kind one-hot
            + 2 // ecn bits
            + 1 // priority
    }
}

/// A boundary packet reduced to its scalable attributes. Built either
/// from a training-trace record or from a live packet at inference.
#[derive(Clone, Copy, Debug)]
pub struct PacketView {
    pub time: SimTime,
    pub wire_bytes: u32,
    /// Local rack index of the cluster-side endpoint.
    pub rack: u32,
    /// Local server (slot in rack) of the cluster-side endpoint.
    pub server: u32,
    /// Aggregation-switch index the flow's up-path uses.
    pub agg: u32,
    /// Global core-switch index the flow traverses.
    pub core: u32,
    pub kind: PacketKind,
    pub ecn: Ecn,
    pub prio: u8,
}

/// Stateful per-direction feature encoder.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FeatureExtractor {
    pub cfg: FeatureConfig,
    last_time: Option<SimTime>,
    ewma_dt: f64,
    dt_disc: Discretizer,
    pub congestion: CongestionEstimator,
}

impl FeatureExtractor {
    pub fn new(cfg: FeatureConfig) -> FeatureExtractor {
        FeatureExtractor {
            dt_disc: Discretizer::new(0.0, cfg.dt_max_s, cfg.dt_levels),
            cfg,
            last_time: None,
            ewma_dt: 0.0,
            congestion: CongestionEstimator::default(),
        }
    }

    /// Encode the next packet (order matters: interarrival state updates).
    pub fn extract(&mut self, p: &PacketView) -> Vec<f32> {
        let mut v = Vec::with_capacity(self.cfg.width());
        self.extract_into(p, &mut v);
        v
    }

    /// Encode the next packet into a reusable buffer: the per-packet hot
    /// path of a running Mimic, allocation-free once `v` has grown to
    /// [`FeatureConfig::width`] capacity.
    pub fn extract_into(&mut self, p: &PacketView, v: &mut Vec<f32>) {
        v.clear();
        let cfg = &self.cfg;
        let one_hot = |v: &mut Vec<f32>, idx: u32, width: u32| {
            for i in 0..width {
                v.push(if i == idx % width { 1.0 } else { 0.0 });
            }
        };
        one_hot(v, p.rack, cfg.racks_per_cluster);
        one_hot(v, p.server, cfg.hosts_per_rack);
        one_hot(v, p.agg, cfg.aggs_per_cluster);
        one_hot(v, p.core, cfg.cores);
        // Size normalized by MTU.
        v.push(p.wire_bytes as f32 / 1500.0);
        // Interarrival, discretized.
        let dt = match self.last_time {
            Some(t) => p.time.since(t).as_secs_f64(),
            None => cfg.dt_max_s,
        };
        self.last_time = Some(p.time);
        self.ewma_dt = cfg.ewma_alpha * dt + (1.0 - cfg.ewma_alpha) * self.ewma_dt;
        v.push(self.dt_disc.normalize(dt));
        v.push(self.dt_disc.normalize(self.ewma_dt));
        // Congestion regime.
        if cfg.congestion_feature {
            let state = self.congestion.state() as usize;
            for i in 0..4 {
                v.push(if i == state { 1.0 } else { 0.0 });
            }
        } else {
            v.extend_from_slice(&[0.0; 4]);
        }
        // Packet kind.
        let kind_idx = match p.kind {
            PacketKind::Data => 0,
            PacketKind::Ack => 1,
            PacketKind::Grant => 2,
        };
        for i in 0..3 {
            v.push(if i == kind_idx { 1.0 } else { 0.0 });
        }
        // ECN bits.
        v.push(if p.ecn.is_capable() { 1.0 } else { 0.0 });
        v.push(if p.ecn == Ecn::Ce { 1.0 } else { 0.0 });
        // Priority (8 bands max).
        v.push(p.prio as f32 / 8.0);
        debug_assert_eq!(v.len(), cfg.width());
    }

    /// Feed an outcome into the congestion estimator.
    pub fn observe_outcome(&mut self, latency_norm: f32, dropped: bool) {
        self.congestion.observe(latency_norm, dropped);
    }

    /// Serialize the mutable encoder state (interarrival tracker plus
    /// congestion history) for a checkpoint. `cfg` and the discretizer are
    /// immutable and rebuilt from configuration on restore.
    pub fn save_state(&self, w: &mut dcn_sim::snapshot::SnapWriter) {
        w.put_opt_u64(self.last_time.map(SimTime::as_nanos));
        w.put_f64(self.ewma_dt);
        w.put_u64(self.congestion.cap as u64);
        w.put_u64(self.congestion.recent.len() as u64);
        for &(l, d) in &self.congestion.recent {
            w.put_f32(l);
            w.put_bool(d);
        }
    }

    /// Overwrite the mutable encoder state from a checkpoint.
    pub fn load_state(
        &mut self,
        r: &mut dcn_sim::snapshot::SnapReader<'_>,
    ) -> Result<(), dcn_sim::snapshot::SnapshotError> {
        self.last_time = r.get_opt_u64()?.map(SimTime);
        self.ewma_dt = r.get_f64()?;
        self.congestion.cap = r.get_u64()? as usize;
        let n = r.get_count(5)?;
        self.congestion.recent.clear();
        for _ in 0..n {
            let l = r.get_f32()?;
            let d = r.get_bool()?;
            self.congestion.recent.push_back((l, d));
        }
        Ok(())
    }

    /// Reset interarrival/congestion state (fresh simulation).
    pub fn reset(&mut self) {
        self.last_time = None;
        self.ewma_dt = 0.0;
        self.congestion = CongestionEstimator::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::topology::FatTreeParams;

    fn cfg() -> FeatureConfig {
        FeatureConfig::from_topology(&FatTreeParams::new(2, 2, 2, 2, 1))
    }

    fn view(t: f64) -> PacketView {
        PacketView {
            time: SimTime::from_secs_f64(t),
            wire_bytes: 1500,
            rack: 1,
            server: 0,
            agg: 1,
            core: 0,
            kind: PacketKind::Data,
            ecn: Ecn::Ect,
            prio: 0,
        }
    }

    #[test]
    fn width_matches_config() {
        let c = cfg();
        // 2 + 2 + 2 + 2 + 1 + 1 + 1 + 4 + 3 + 2 + 1 = 21
        assert_eq!(c.width(), 21);
        let mut fx = FeatureExtractor::new(c);
        assert_eq!(fx.extract(&view(0.0)).len(), 21);
    }

    #[test]
    fn width_is_cluster_count_independent() {
        let small = FeatureConfig::from_topology(&FatTreeParams::new(2, 2, 2, 2, 1));
        let large = FeatureConfig::from_topology(&FatTreeParams::new(128, 2, 2, 2, 1));
        assert_eq!(small.width(), large.width());
    }

    #[test]
    fn one_hots_are_one_hot() {
        let mut fx = FeatureExtractor::new(cfg());
        let f = fx.extract(&view(0.0));
        // rack one-hot at positions [0,2): rack 1 -> [0, 1].
        assert_eq!(&f[0..2], &[0.0, 1.0]);
        // server [2,4): server 0 -> [1, 0].
        assert_eq!(&f[2..4], &[1.0, 0.0]);
        // agg [4,6): [0, 1].
        assert_eq!(&f[4..6], &[0.0, 1.0]);
        // core [6,8): [1, 0].
        assert_eq!(&f[6..8], &[1.0, 0.0]);
    }

    #[test]
    fn interarrival_decreases_with_burstiness() {
        // Layout: 8 one-hot topology slots, then [8]=size, [9]=dt, [10]=ewma.
        let mut fx = FeatureExtractor::new(cfg());
        let _ = fx.extract(&view(0.0));
        let spread = fx.extract(&view(0.040))[9];
        fx.reset();
        let _ = fx.extract(&view(0.0));
        let burst = fx.extract(&view(0.0001))[9];
        assert!(burst < spread, "burst {burst} vs spread {spread}");
    }

    #[test]
    fn congestion_states_transition() {
        let mut est = CongestionEstimator::default();
        // Low latencies -> Low.
        for _ in 0..16 {
            est.observe(0.05, false);
        }
        assert_eq!(est.state(), CongestionState::Low);
        // Rising latencies -> Increasing.
        for i in 0..16 {
            est.observe(0.05 + i as f32 * 0.02, false);
        }
        assert_eq!(est.state(), CongestionState::Increasing);
        // Saturated high -> High.
        for _ in 0..32 {
            est.observe(0.9, false);
        }
        assert_eq!(est.state(), CongestionState::High);
        // Draining -> Decreasing.
        for i in 0..32 {
            est.observe((0.5 - i as f32 * 0.015).max(0.05), false);
        }
        assert_eq!(est.state(), CongestionState::Decreasing);
    }

    #[test]
    fn drops_force_high_state() {
        let mut est = CongestionEstimator::default();
        for i in 0..32 {
            est.observe(0.1, i % 8 == 0); // 12.5% drop rate
        }
        assert_eq!(est.state(), CongestionState::High);
    }

    #[test]
    fn ecn_bits_encoded() {
        let mut fx = FeatureExtractor::new(cfg());
        let mut p = view(0.0);
        p.ecn = Ecn::Ce;
        let f = fx.extract(&p);
        let w = cfg().width();
        // [ect_capable, ce] are the 3rd and 2nd from last.
        assert_eq!(f[w - 3], 1.0);
        assert_eq!(f[w - 2], 1.0);
        p.ecn = Ecn::NotEct;
        let f = fx.extract(&p);
        assert_eq!(f[w - 3], 0.0);
        assert_eq!(f[w - 2], 0.0);
    }

    #[test]
    fn reset_restores_initial_encoding() {
        let mut fx = FeatureExtractor::new(cfg());
        let first = fx.extract(&view(0.0));
        let _ = fx.extract(&view(0.001));
        fx.reset();
        let again = fx.extract(&view(0.0));
        assert_eq!(first, again);
    }
}
