//! The end-to-end MimicNet workflow (paper Figure 3, Table 2).
//!
//! `small-scale simulation → feature extraction → model training →
//! [tuning] → large-scale composition`, with wall-clock accounting per
//! phase. "A key feature of MimicNet is that the traditionally slow steps
//! … are all done at small scale and are, therefore, fast as well."

use crate::compose::{
    ground_truth, run_composed_adaptive_opts, run_composed_partitioned_opts,
    try_compose, try_compose_partial, OBSERVABLE,
};
use crate::degrade::AccuracyBudget;
use crate::tier::CorrectionHead;
use crate::datagen::{generate, DataGenConfig, TrainingData};
use crate::degrade::{DegradationPolicy, DegradationReport};
use crate::drift::FeatureEnvelope;
use crate::error::{ComposeRunError, PipelineError};
use crate::internal_model::InternalModel;
use crate::metrics::{compare, observed, AccuracyReport, ObservedSamples};
use crate::mimic::TrainedMimic;
use dcn_sim::config::SimConfig;
use dcn_sim::fault::FaultPlan;
use dcn_sim::instrument::Metrics;
use dcn_sim::stats::percentile;
use dcn_sim::topology::FatTree;
use dcn_transport::Protocol;
use mimic_ml::train::TrainConfig;
use std::time::{Duration, Instant};

/// Configuration of the whole pipeline.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Small-scale (2-cluster) simulation used for data generation; its
    /// non-cluster-count parameters carry over to every composition.
    pub base: SimConfig,
    /// Protocol under study.
    pub protocol: Protocol,
    /// Training hyper-parameters (the tunables of §7.2).
    pub train: TrainConfig,
    /// LSTM hidden width.
    pub hidden: usize,
    /// LSTM stack depth (the "LSTM layers" tunable of §7.2).
    pub layers: usize,
    /// Latency discretization levels (`D`, §5.2).
    pub disc_levels: u32,
    /// The data-generation simulation runs this much longer than
    /// `base.duration_s`. Small-scale time is cheap (that is the point of
    /// the paper's workflow), and the models want more packets than a
    /// validation-length run provides.
    pub datagen_duration_factor: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            base: SimConfig::small_scale(),
            protocol: Protocol::NewReno,
            train: TrainConfig::default(),
            hidden: 32,
            layers: 1,
            disc_levels: 100,
            datagen_duration_factor: 4.0,
        }
    }
}

impl PipelineConfig {
    /// Train both directions' models with `workers` threads. The result is
    /// bit-identical to the sequential run for any worker count (the
    /// gradient reduction order is fixed — see `mimic_ml::train`); only
    /// the training-phase wall-clock changes.
    pub fn with_workers(mut self, workers: usize) -> PipelineConfig {
        self.train.workers = workers;
        self
    }
}

/// Wall-clock spent in each phase (the rows of the paper's Table 2).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    pub small_scale_sim: Duration,
    pub training: Duration,
    pub large_scale_sim: Duration,
}

impl PhaseTimings {
    pub fn total(&self) -> Duration {
        self.small_scale_sim + self.training + self.large_scale_sim
    }
}

/// Result of one large-scale estimate.
pub struct EstimateReport {
    /// Observable-cluster samples.
    pub samples: ObservedSamples,
    pub fct_p99: f64,
    pub throughput_p99: f64,
    pub rtt_p99: f64,
    /// Wall time of the composed simulation.
    pub wall: Duration,
    /// Raw metrics for further analysis.
    pub metrics: Metrics,
    /// Degradation decisions, when the estimate ran under a policy
    /// ([`Pipeline::estimate_with_policy`]); `None` otherwise.
    pub degradation: Option<DegradationReport>,
}

impl EstimateReport {
    /// Uncertainty multiplier from the degradation pass (1.0 when no
    /// policy ran or nothing drifted far enough to widen).
    pub fn uncertainty_factor(&self) -> f64 {
        self.degradation
            .as_ref()
            .map_or(1.0, |d| d.uncertainty_factor)
    }
}

/// The pipeline driver.
pub struct Pipeline {
    pub cfg: PipelineConfig,
    pub timings: PhaseTimings,
    /// Telemetry recorder (off by default — see [`Pipeline::with_obs`]).
    /// When on, each phase gets a span, training records per-epoch
    /// series, and every simulation the pipeline runs has engine-side
    /// tracing enabled; the engines' reports are folded in here.
    pub obs: dcn_obs::Obs,
}

impl Pipeline {
    pub fn new(cfg: PipelineConfig) -> Pipeline {
        Pipeline {
            cfg,
            timings: PhaseTimings::default(),
            obs: dcn_obs::Obs::off(),
        }
    }

    /// Turn on observability for every subsequent phase. Recording never
    /// changes numerics: simulated trajectories and trained weights are
    /// bit-identical with obs on or off.
    pub fn with_obs(mut self) -> Pipeline {
        self.obs = dcn_obs::Obs::on();
        self
    }

    /// Absorb a finished simulation's engine-side report, if it has one.
    /// With the pipeline recorder off, the report stays on the metrics so
    /// programmatic callers (e.g. divergence bisection) can read it.
    fn absorb_sim_obs(&mut self, metrics: &mut Metrics) {
        if !self.obs.is_on() {
            return;
        }
        if let Some(r) = metrics.obs.take() {
            self.obs.merge_report(*r);
        }
    }

    /// Phases ❶–❷: small-scale observation and model training.
    ///
    /// # Panics
    /// If training fails; use [`Pipeline::try_train_with_data`] for a
    /// typed error.
    pub fn train(&mut self) -> TrainedMimic {
        let (trained, _data) = self.train_with_data();
        trained
    }

    /// As [`Pipeline::train`], also returning the training data (used by
    /// loss-function and window-size experiments).
    ///
    /// # Panics
    /// If training fails; use [`Pipeline::try_train_with_data`] for a
    /// typed error.
    pub fn train_with_data(&mut self) -> (TrainedMimic, TrainingData) {
        self.try_train_with_data().expect("pipeline training failed")
    }

    /// [`Pipeline::train_with_data`], surfacing training failures (empty
    /// small-scale trace, diverged loss, ...) as [`PipelineError`].
    pub fn try_train_with_data(&mut self) -> Result<(TrainedMimic, TrainingData), PipelineError> {
        self.try_train_with_data_checkpointed(None)
    }

    /// [`Pipeline::try_train_with_data`] with crash resilience: each
    /// direction model's full training-loop state is persisted into
    /// `ckpt_dir` (as `train.ingress.ckpt.json` / `train.egress.ckpt.json`)
    /// after every epoch, and an interrupted run resumes from those files
    /// bit-identically to a run that was never killed. Data generation is
    /// deterministic in the config, so it is simply replayed.
    pub fn try_train_with_data_checkpointed(
        &mut self,
        ckpt_dir: Option<&std::path::Path>,
    ) -> Result<(TrainedMimic, TrainingData), PipelineError> {
        if let Some(dir) = ckpt_dir {
            std::fs::create_dir_all(dir).map_err(|e| {
                PipelineError::Train(mimic_ml::train::TrainError::Checkpoint {
                    message: format!("create {}: {e}", dir.display()),
                })
            })?;
        }
        let t0 = Instant::now();
        let mut dg_sim = self.cfg.base;
        dg_sim.duration_s *= self.cfg.datagen_duration_factor.max(1.0);
        let dg = DataGenConfig {
            sim: dg_sim,
            protocol: self.cfg.protocol,
            model_cluster: 1,
            disc_levels: self.cfg.disc_levels,
            horizon_guard_s: 0.05,
            congestion_feature: true,
        };
        self.obs.begin("pipeline.datagen", "pipeline", None);
        let data = generate(&dg);
        self.obs.end(None);
        self.timings.small_scale_sim = t0.elapsed();

        let t1 = Instant::now();
        // The two direction models share nothing, so they fan out across
        // the worker budget (`TrainConfig::workers`): each job gets a
        // deterministic share and is itself worker-count-invariant, so
        // the trained parameters are bit-identical to the old
        // ingress-then-egress serial loop at any budget (workers == 1
        // *is* that loop). Each job records into a private recorder on
        // its own track; reports merge back in fixed ingress-then-egress
        // order so traced output is scheduling-independent.
        let obs_on = self.obs.is_on();
        let (hidden, layers, base_train) = (self.cfg.hidden, self.cfg.layers, self.cfg.train);
        let dirs: [(&'static str, &str, &_, _, u32); 2] = [
            ("pipeline.train.ingress", "train.ingress", &data.ingress, data.ingress_disc, 1),
            ("pipeline.train.egress", "train.egress", &data.egress, data.egress_disc, 2),
        ];
        let mut results = mimic_ml::train::fanout_jobs(2, base_train.workers, &|j, share| {
            let (span, prefix, ds, disc, track) = dirs[j];
            let mut obs = if obs_on { dcn_obs::Obs::on() } else { dcn_obs::Obs::off() };
            obs.set_track(track);
            obs.begin(span, "pipeline", None);
            let ckpt_path = ckpt_dir.map(|d| d.join(format!("{prefix}.ckpt.json")));
            let spec = ckpt_path
                .as_deref()
                .map(|path| mimic_ml::train::CheckpointSpec { path, resume: true });
            let out = InternalModel::train_stacked_checkpointed(
                ds,
                disc,
                hidden,
                layers,
                &TrainConfig { workers: share, ..base_train },
                &mut obs,
                prefix,
                spec.as_ref(),
            );
            obs.end(None);
            (out, obs.take_report())
        });
        let (egress, egress_report) = results.pop().expect("egress job ran");
        let (ingress, ingress_report) = results.pop().expect("ingress job ran");
        if let Some(r) = ingress_report {
            self.obs.merge_report(r);
        }
        if let Some(r) = egress_report {
            self.obs.merge_report(r);
        }
        let (ingress, _) = ingress?;
        let (egress, _) = egress?;
        self.timings.training = t1.elapsed();

        Ok((
            TrainedMimic {
                ingress,
                egress,
                feature_cfg: data.feature_cfg,
                feeder: data.feeder.clone(),
                envelope: FeatureEnvelope::fit(&data.ingress.features),
            },
            data,
        ))
    }

    /// Bundle prep for heterogeneous composition
    /// ([`crate::compose::try_compose_heterogeneous_batched`]): train
    /// several independent mimic bundles concurrently through the same
    /// fixed-order fan-out as the per-direction models. `workers` is the
    /// total budget; each bundle gets a deterministic share and splits it
    /// again across its two directions, so results are bit-identical to
    /// training the bundles one after another at any budget (and
    /// `workers == 1` *is* that serial loop). Bundles come back in
    /// `cfgs` order; the first failing bundle's error (in that order)
    /// wins.
    pub fn try_train_bundles(
        cfgs: &[PipelineConfig],
        workers: usize,
    ) -> Result<Vec<TrainedMimic>, PipelineError> {
        let results = mimic_ml::train::fanout_jobs(cfgs.len(), workers, &|j, share| {
            let mut pipe = Pipeline::new(PipelineConfig {
                train: TrainConfig { workers: share, ..cfgs[j].train },
                ..cfgs[j]
            });
            pipe.try_train_with_data().map(|(trained, _)| trained)
        });
        results.into_iter().collect()
    }

    /// Phase ❺: the composed large-scale estimate at `n_clusters`.
    pub fn estimate(&mut self, trained: &TrainedMimic, n_clusters: u32) -> EstimateReport {
        self.try_estimate(trained, n_clusters, None)
            .expect("valid composition")
    }

    /// [`Pipeline::estimate`] with a typed error and an optional
    /// [`FaultPlan`] injected into the composed simulation.
    pub fn try_estimate(
        &mut self,
        trained: &TrainedMimic,
        n_clusters: u32,
        faults: Option<&FaultPlan>,
    ) -> Result<EstimateReport, PipelineError> {
        let t0 = Instant::now();
        let mut sim = try_compose(self.cfg.base, n_clusters, self.cfg.protocol, trained)?;
        if let Some(plan) = faults {
            sim.set_fault_plan(plan)?;
        }
        if self.obs.is_on() {
            sim.enable_obs();
        }
        self.obs.begin("pipeline.estimate", "pipeline", None);
        let mut metrics = sim.run();
        self.obs.end(None);
        self.absorb_sim_obs(&mut metrics);
        let wall = t0.elapsed();
        self.timings.large_scale_sim = wall;
        Ok(self.report_from(metrics, wall, n_clusters, None))
    }

    /// [`Pipeline::try_estimate`] on the partitioned PDES engine with
    /// crash resilience: `checkpoint` periodically persists the complete
    /// simulation state at window barriers, and `resume_from` restarts
    /// from a previously committed checkpoint directory. Both the
    /// checkpointed and the resumed run produce metrics bit-identical to
    /// an uninterrupted run at the same partition count (`partitions == 1`
    /// is the sequential engine).
    pub fn try_estimate_resumable(
        &mut self,
        trained: &TrainedMimic,
        n_clusters: u32,
        partitions: usize,
        checkpoint: Option<&dcn_sim::pdes::CheckpointPlan>,
        resume_from: Option<&std::path::Path>,
    ) -> Result<EstimateReport, ComposeRunError> {
        let opts = dcn_sim::pdes::PdesRunOpts {
            checkpoint: checkpoint.cloned(),
            resume_from: resume_from.map(std::path::Path::to_path_buf),
            ..dcn_sim::pdes::PdesRunOpts::default()
        };
        self.try_estimate_opts(trained, n_clusters, partitions, &opts)
    }

    /// [`Pipeline::try_estimate_resumable`] with the full
    /// [`PdesRunOpts`](dcn_sim::pdes::PdesRunOpts) set: state digests,
    /// flight recorder + SLO dumps, early stop, pinned-generation resume.
    /// When the pipeline's obs collector is on, engine obs is forced on so
    /// digests, flight events, and tier telemetry land in the exported
    /// report.
    pub fn try_estimate_opts(
        &mut self,
        trained: &TrainedMimic,
        n_clusters: u32,
        partitions: usize,
        opts: &dcn_sim::pdes::PdesRunOpts,
    ) -> Result<EstimateReport, ComposeRunError> {
        let t0 = Instant::now();
        let mut opts = opts.clone();
        opts.obs = opts.obs || self.obs.is_on();
        self.obs.begin("pipeline.estimate", "pipeline", None);
        let mut metrics = run_composed_partitioned_opts(
            self.cfg.base,
            n_clusters,
            self.cfg.protocol,
            trained,
            partitions,
            false,
            &opts,
        )?;
        self.obs.end(None);
        self.absorb_sim_obs(&mut metrics);
        let wall = t0.elapsed();
        self.timings.large_scale_sim = wall;
        Ok(self.report_from(metrics, wall, n_clusters, None))
    }

    /// Phases ❶–❷ plus a Flow-tier correction head: train the Mimics,
    /// then ridge-fit [`CorrectionHead`] on the same small-scale boundary
    /// trace (replayed through the Flow tier's own share estimator, so
    /// the residuals target exactly the estimate the head corrects).
    /// `None` when the trace is too thin to fit — the Flow tier then runs
    /// uncorrected.
    pub fn try_train_adaptive(
        &mut self,
    ) -> Result<(TrainedMimic, Option<CorrectionHead>), PipelineError> {
        let (trained, data) = self.try_train_with_data()?;
        let mut dg_sim = self.cfg.base;
        dg_sim.duration_s *= self.cfg.datagen_duration_factor.max(1.0);
        let head = crate::tier::fit_correction_head(&dg_sim, &data.metrics);
        Ok((trained, head))
    }

    /// Adaptive estimate on the partitioned PDES engine: clusters move
    /// between the Mimic and Flow tiers under `budget` at every `plan`
    /// epoch barrier (see
    /// [`run_composed_adaptive_checkpointed`]). The returned report's
    /// metrics carry the realized tier schedule in
    /// [`Metrics::tier_switches`](dcn_sim::instrument::Metrics::tier_switches).
    #[allow(clippy::too_many_arguments)]
    pub fn try_estimate_adaptive(
        &mut self,
        trained: &TrainedMimic,
        n_clusters: u32,
        partitions: usize,
        budget: &AccuracyBudget,
        plan: &dcn_sim::pdes::TierPlan,
        correction: Option<&CorrectionHead>,
        checkpoint: Option<&dcn_sim::pdes::CheckpointPlan>,
        resume_from: Option<&std::path::Path>,
    ) -> Result<EstimateReport, ComposeRunError> {
        let opts = dcn_sim::pdes::PdesRunOpts {
            checkpoint: checkpoint.cloned(),
            resume_from: resume_from.map(std::path::Path::to_path_buf),
            ..dcn_sim::pdes::PdesRunOpts::default()
        };
        self.try_estimate_adaptive_opts(trained, n_clusters, partitions, budget, plan, correction, &opts)
    }

    /// [`Pipeline::try_estimate_adaptive`] with the full
    /// [`PdesRunOpts`](dcn_sim::pdes::PdesRunOpts) set (see
    /// [`Pipeline::try_estimate_opts`]).
    #[allow(clippy::too_many_arguments)]
    pub fn try_estimate_adaptive_opts(
        &mut self,
        trained: &TrainedMimic,
        n_clusters: u32,
        partitions: usize,
        budget: &AccuracyBudget,
        plan: &dcn_sim::pdes::TierPlan,
        correction: Option<&CorrectionHead>,
        opts: &dcn_sim::pdes::PdesRunOpts,
    ) -> Result<EstimateReport, ComposeRunError> {
        let t0 = Instant::now();
        let mut opts = opts.clone();
        opts.obs = opts.obs || self.obs.is_on();
        self.obs.begin("pipeline.estimate", "pipeline", None);
        let mut metrics = run_composed_adaptive_opts(
            self.cfg.base,
            n_clusters,
            self.cfg.protocol,
            trained,
            partitions,
            false,
            budget,
            plan,
            correction,
            &opts,
        )?;
        self.obs.end(None);
        self.absorb_sim_obs(&mut metrics);
        let wall = t0.elapsed();
        self.timings.large_scale_sim = wall;
        Ok(self.report_from(metrics, wall, n_clusters, None))
    }

    /// Degradation-aware estimate: run the all-Mimic composition, score
    /// per-cluster drift against `policy`, and — if any cluster crossed
    /// the fallback threshold — re-run with those clusters swapped back to
    /// packet-level simulation. The returned report carries the policy's
    /// [`DegradationReport`] either way.
    pub fn estimate_with_policy(
        &mut self,
        trained: &TrainedMimic,
        n_clusters: u32,
        faults: Option<&FaultPlan>,
        policy: &DegradationPolicy,
    ) -> Result<EstimateReport, PipelineError> {
        let probe = self.try_estimate(trained, n_clusters, faults)?;
        let decision = policy.evaluate(&probe.metrics.cluster_drift);
        let fallback = decision.fallback_clusters();
        if fallback.is_empty() {
            let mut report = probe;
            report.degradation = Some(decision);
            return Ok(report);
        }
        let t0 = Instant::now();
        let mut sim = try_compose_partial(
            self.cfg.base,
            n_clusters,
            self.cfg.protocol,
            trained,
            &fallback,
        )?;
        if let Some(plan) = faults {
            sim.set_fault_plan(plan)?;
        }
        if self.obs.is_on() {
            sim.enable_obs();
        }
        self.obs.begin("pipeline.estimate", "pipeline", None);
        let mut metrics = sim.run();
        self.obs.end(None);
        self.absorb_sim_obs(&mut metrics);
        let wall = t0.elapsed();
        self.timings.large_scale_sim += wall;
        Ok(self.report_from(metrics, probe.wall + wall, n_clusters, Some(decision)))
    }

    fn report_from(
        &self,
        metrics: Metrics,
        wall: Duration,
        n_clusters: u32,
        degradation: Option<DegradationReport>,
    ) -> EstimateReport {
        let topo = FatTree::new({
            let mut t = self.cfg.base.topo;
            t.clusters = n_clusters;
            t
        });
        let samples = observed(&metrics, &topo, OBSERVABLE);
        EstimateReport {
            fct_p99: percentile(&samples.fct, 99.0),
            throughput_p99: percentile(&samples.throughput, 99.0),
            rtt_p99: percentile(&samples.rtt, 99.0),
            samples,
            wall,
            metrics,
            degradation,
        }
    }

    /// The full-fidelity reference at `n_clusters` (expensive!).
    pub fn run_ground_truth(&self, n_clusters: u32) -> (ObservedSamples, Metrics, Duration) {
        self.run_ground_truth_with_faults(n_clusters, None)
            .expect("valid fault plan")
    }

    /// [`Pipeline::run_ground_truth`] with an optional [`FaultPlan`]
    /// injected — the reference for fault-injection experiments.
    pub fn run_ground_truth_with_faults(
        &self,
        n_clusters: u32,
        faults: Option<&FaultPlan>,
    ) -> Result<(ObservedSamples, Metrics, Duration), PipelineError> {
        let t0 = Instant::now();
        let mut sim = ground_truth(self.cfg.base, n_clusters, self.cfg.protocol);
        if let Some(plan) = faults {
            sim.set_fault_plan(plan)?;
        }
        let metrics = sim.run();
        let wall = t0.elapsed();
        let topo = FatTree::new({
            let mut t = self.cfg.base.topo;
            t.clusters = n_clusters;
            t
        });
        Ok((observed(&metrics, &topo, OBSERVABLE), metrics, wall))
    }

    /// Convenience: estimate + ground truth + accuracy report at a scale.
    pub fn validate(
        &mut self,
        trained: &TrainedMimic,
        n_clusters: u32,
    ) -> (AccuracyReport, Duration, Duration) {
        let est = self.estimate(trained, n_clusters);
        let (truth, _, truth_wall) = self.run_ground_truth(n_clusters);
        (compare(&truth, &est.samples), est.wall, truth_wall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> PipelineConfig {
        let mut cfg = PipelineConfig::default();
        cfg.base.duration_s = 0.4;
        cfg.base.seed = 12;
        cfg.hidden = 12;
        cfg.train.epochs = 2;
        cfg.train.window = 6;
        cfg
    }

    #[test]
    fn full_pipeline_end_to_end() {
        let mut pipe = Pipeline::new(quick_cfg());
        let trained = pipe.train();
        assert!(pipe.timings.small_scale_sim > Duration::ZERO);
        assert!(pipe.timings.training > Duration::ZERO);
        let report = pipe.estimate(&trained, 4);
        assert!(!report.samples.fct.is_empty(), "no observable FCTs");
        assert!(report.fct_p99 > 0.0);
        assert!(report.rtt_p99 > 0.0);
    }

    #[test]
    fn faulty_estimate_carries_drift_and_policy_decision() {
        use dcn_sim::time::SimTime;
        let mut pipe = Pipeline::new(quick_cfg());
        let trained = pipe.train();
        // Sustained heavy gray loss across the fabric for most of the run.
        let plan = FaultPlan::new(9).gray_loss_all(
            SimTime::from_secs_f64(0.05),
            SimTime::from_secs_f64(0.35),
            0.25,
            true,
        );
        let policy = DegradationPolicy::default();
        let report = pipe
            .estimate_with_policy(&trained, 4, Some(&plan), &policy)
            .expect("estimate runs");
        let deg = report.degradation.as_ref().expect("policy evaluated");
        assert_eq!(deg.clusters.len(), 4);
        assert!(report.uncertainty_factor() >= 1.0);
        assert!(
            report.metrics.fault_drops > 0,
            "gray loss plan dropped nothing"
        );
        // Fault-free estimate under the same policy degrades nothing.
        let clean = pipe
            .estimate_with_policy(&trained, 4, None, &policy)
            .expect("estimate runs");
        let deg = clean.degradation.as_ref().expect("policy evaluated");
        assert!(
            deg.fallback_clusters().is_empty(),
            "fault-free run fell back: {:?}",
            deg.clusters
        );
    }

    #[test]
    fn validation_beats_trivial_zero_model() {
        // The W1 between MimicNet and ground truth should be finite, and
        // the FCT distributions should overlap substantially: W1 must be
        // well under the truth's mean FCT.
        let mut pipe = Pipeline::new(quick_cfg());
        let trained = pipe.train();
        let (report, mimic_wall, _truth_wall) = pipe.validate(&trained, 3);
        assert!(report.w1_fct.is_finite());
        let (truth, _, _) = pipe.run_ground_truth(3);
        let mean_fct = dcn_sim::stats::mean(&truth.fct);
        assert!(
            report.w1_fct < mean_fct,
            "W1 {} vs mean FCT {mean_fct}: approximation is useless",
            report.w1_fct
        );
        assert!(mimic_wall > Duration::ZERO);
    }
}
