//! Small-scale observation and training-set construction (paper §5.1–5.3).
//!
//! Runs the full-fidelity two-cluster simulation, dumps the modeled
//! cluster's boundary trace, matches it into labels ([`crate::trace`]),
//! and encodes per-direction [`PacketDataset`]s with scalable features
//! ([`crate::features`]). Also derives the feeder fits (§6) from the same
//! trace.

use crate::features::{FeatureConfig, FeatureExtractor, PacketView};
use crate::feeder::{DirFit, FeederFit};
use crate::trace::{match_trace, MatchedTrace};
use dcn_sim::config::SimConfig;
use dcn_sim::instrument::Metrics;
use dcn_sim::mimic::BoundaryDir;
use dcn_sim::routing::Router;
use dcn_sim::simulator::Simulation;
use dcn_sim::time::SimTime;
use dcn_sim::topology::FatTree;
use dcn_transport::Protocol;
use mimic_ml::dataset::PacketDataset;
use mimic_ml::discretize::Discretizer;
use mimic_ml::loss::Target;

/// Configuration of the data-generation phase.
#[derive(Clone, Copy, Debug)]
pub struct DataGenConfig {
    /// The small-scale simulation (must have ≥ 2 clusters; the paper uses
    /// exactly 2).
    pub sim: SimConfig,
    /// Protocol under study.
    pub protocol: Protocol,
    /// Which cluster to model (and trace).
    pub model_cluster: u32,
    /// Discretization levels for latency targets (paper §5.2's `D`).
    pub disc_levels: u32,
    /// Entries closer than this to the end of the run are discarded
    /// instead of being labeled drops.
    pub horizon_guard_s: f64,
    /// Include the congestion-state feature (§5.5); disable for the
    /// ablation experiment.
    pub congestion_feature: bool,
}

impl Default for DataGenConfig {
    fn default() -> Self {
        DataGenConfig {
            sim: SimConfig::small_scale(),
            protocol: Protocol::NewReno,
            model_cluster: 1,
            disc_levels: 100,
            horizon_guard_s: 0.05,
            congestion_feature: true,
        }
    }
}

/// Everything the training phase needs.
pub struct TrainingData {
    pub ingress: PacketDataset,
    pub egress: PacketDataset,
    pub ingress_disc: Discretizer,
    pub egress_disc: Discretizer,
    pub feature_cfg: FeatureConfig,
    pub feeder: FeederFit,
    /// Drop rates observed in the matched traces (reporting).
    pub ingress_drop_rate: f64,
    pub egress_drop_rate: f64,
    /// The full small-scale metrics (for validation comparisons).
    pub metrics: Metrics,
}

/// Run the small-scale simulation and build training data.
pub fn generate(cfg: &DataGenConfig) -> TrainingData {
    let mut sim_cfg = cfg.sim;
    sim_cfg.queue = cfg.protocol.queue_setup(sim_cfg.queue);
    let mut sim = Simulation::with_transport(sim_cfg, cfg.protocol.factory());
    sim.trace_cluster(cfg.model_cluster);
    let metrics = sim.run();
    build_training_data(cfg, metrics)
}

/// Build datasets from already-collected metrics (separated for tests).
pub fn build_training_data(cfg: &DataGenConfig, metrics: Metrics) -> TrainingData {
    let topo = FatTree::new(cfg.sim.topo);
    let router = Router::new(topo.clone());
    let horizon = SimTime::from_secs_f64((cfg.sim.duration_s - cfg.horizon_guard_s).max(0.0));

    let ingress_trace = match_trace(&metrics.boundary, BoundaryDir::Ingress, horizon);
    let egress_trace = match_trace(&metrics.boundary, BoundaryDir::Egress, horizon);
    assert!(
        !ingress_trace.is_empty() && !egress_trace.is_empty(),
        "boundary trace empty — is the modeled cluster receiving traffic?"
    );

    let mut feature_cfg = FeatureConfig::from_topology(&cfg.sim.topo);
    feature_cfg.congestion_feature = cfg.congestion_feature;
    let ingress_disc = fit_discretizer(&ingress_trace, cfg.disc_levels);
    let egress_disc = fit_discretizer(&egress_trace, cfg.disc_levels);

    let ingress = encode(&ingress_trace, BoundaryDir::Ingress, &topo, &router, feature_cfg, &ingress_disc);
    let egress = encode(&egress_trace, BoundaryDir::Egress, &topo, &router, feature_cfg, &egress_disc);

    let feeder = FeederFit {
        ingress: fit_dir(&ingress_trace),
        egress: fit_dir(&egress_trace),
    };

    TrainingData {
        ingress_drop_rate: ingress_trace.drop_rate(),
        egress_drop_rate: egress_trace.drop_rate(),
        ingress,
        egress,
        ingress_disc,
        egress_disc,
        feature_cfg,
        feeder,
        metrics,
    }
}

/// Latency discretizer over the observed range, padded 10% at the top so
/// the "dropped" encoding (1.0) sits above every real latency.
fn fit_discretizer(trace: &MatchedTrace, levels: u32) -> Discretizer {
    let (lo, hi) = trace
        .latency_range()
        .unwrap_or((1e-5, 1e-2)); // fall back to a sane DC range
    Discretizer::new(lo, hi * 1.1, levels)
}

fn fit_dir(trace: &MatchedTrace) -> DirFit {
    let inter = trace.interarrivals();
    let sizes: Vec<f64> = trace
        .packets
        .iter()
        .map(|p| p.enter.wire_bytes as f64)
        .collect();
    DirFit::fit(&inter, &sizes)
}

/// Encode a matched trace into a supervised dataset, updating interarrival
/// and congestion state exactly as inference will.
fn encode(
    trace: &MatchedTrace,
    dir: BoundaryDir,
    topo: &FatTree,
    router: &Router,
    feature_cfg: FeatureConfig,
    disc: &Discretizer,
) -> PacketDataset {
    let mut fx = FeatureExtractor::new(feature_cfg);
    let mut out = PacketDataset::default();
    for p in &trace.packets {
        let rec = &p.enter;
        // The cluster-side endpoint: destination for ingress, source for
        // egress — its local coordinates are the scalable identifiers.
        let local = match dir {
            BoundaryDir::Ingress => rec.dst,
            BoundaryDir::Egress => rec.src,
        };
        let (_, rack, server) = topo.host_coords(local);
        let (a, j) = topo.core_coords(rec.core);
        let view = PacketView {
            time: rec.time,
            wire_bytes: rec.wire_bytes,
            rack,
            server,
            agg: router.agg_choice(rec.flow),
            core: a * topo.params.cores_per_agg + j,
            kind: rec.kind,
            ecn: rec.ecn,
            prio: rec.prio,
        };
        let features = fx.extract(&view);
        let latency_norm = match p.latency {
            // Dropped packets train the latency head at the top of the
            // range (paper: y = L_max + eps if dropped).
            None => 1.0,
            Some(l) => disc.normalize(l.as_secs_f64()),
        };
        fx.observe_outcome(latency_norm, p.dropped());
        out.push(
            features,
            Target {
                latency: latency_norm,
                dropped: if p.dropped() { 1.0 } else { 0.0 },
                ecn: if p.ecn_marked { 1.0 } else { 0.0 },
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> DataGenConfig {
        let mut cfg = DataGenConfig::default();
        cfg.sim.duration_s = 0.5;
        cfg.sim.seed = 33;
        cfg.sim.traffic.inter_cluster_fraction = 0.7;
        cfg
    }

    #[test]
    fn generates_nonempty_directional_datasets() {
        let td = generate(&quick());
        assert!(td.ingress.len() > 50, "ingress {} samples", td.ingress.len());
        assert!(td.egress.len() > 50, "egress {} samples", td.egress.len());
        assert_eq!(td.ingress.width(), td.feature_cfg.width());
        assert_eq!(td.egress.width(), td.feature_cfg.width());
    }

    #[test]
    fn latency_targets_are_normalized() {
        let td = generate(&quick());
        for t in td.ingress.targets.iter().chain(&td.egress.targets) {
            assert!((0.0..=1.0).contains(&t.latency), "latency {}", t.latency);
            assert!(t.dropped == 0.0 || t.dropped == 1.0);
        }
    }

    #[test]
    fn dropped_packets_sit_at_range_top() {
        let td = generate(&quick());
        for t in td.ingress.targets.iter().chain(&td.egress.targets) {
            if t.dropped > 0.5 {
                assert_eq!(t.latency, 1.0);
            }
        }
    }

    #[test]
    fn feeder_fit_has_plausible_rate() {
        let td = generate(&quick());
        // The boundary carries hundreds of packets in 0.5 s.
        assert!(td.feeder.ingress.rate_pps > 50.0, "{}", td.feeder.ingress.rate_pps);
        assert!(td.feeder.egress.rate_pps > 50.0, "{}", td.feeder.egress.rate_pps);
    }

    #[test]
    fn class_imbalance_is_the_norm() {
        // Paper: "99.7% of training examples … are delivered successfully".
        // At default load the drop rate must be well under 50%.
        let td = generate(&quick());
        assert!(td.ingress_drop_rate < 0.2, "{}", td.ingress_drop_rate);
        assert!(td.egress_drop_rate < 0.2, "{}", td.egress_drop_rate);
    }

    #[test]
    fn datagen_is_deterministic() {
        let a = generate(&quick());
        let b = generate(&quick());
        assert_eq!(a.ingress.len(), b.ingress.len());
        assert_eq!(a.ingress.features, b.ingress.features);
        assert_eq!(a.egress.targets.len(), b.egress.targets.len());
    }

    #[test]
    fn dctcp_traces_contain_ecn_labels() {
        let mut cfg = quick();
        cfg.protocol = Protocol::Dctcp { k: 5 };
        cfg.sim.traffic.load = 1.0;
        let td = generate(&cfg);
        let marked = td
            .ingress
            .targets
            .iter()
            .chain(&td.egress.targets)
            .filter(|t| t.ecn > 0.5)
            .count();
        assert!(marked > 0, "no ECN-marked training samples under DCTCP");
    }
}
