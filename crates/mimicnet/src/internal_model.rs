//! Internal cluster models (paper §5): one per direction.
//!
//! An [`InternalModel`] bundles the LSTM with the latency discretizer used
//! to build its targets, so predictions can be recovered into real
//! latencies. Training runs the DCN-friendly combined loss over windowed
//! samples; prediction is stateful, one packet at a time.

use mimic_ml::dataset::PacketDataset;
use mimic_ml::discretize::Discretizer;
use mimic_ml::loss::sigmoid;
use mimic_ml::model::ModelState;
use mimic_ml::model::{SeqModel, OUT_DROP, OUT_ECN, OUT_LATENCY};
use mimic_ml::train::{train, TrainConfig, TrainError, TrainReport};
use serde::{Deserialize, Serialize};

/// One direction's trained internal model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InternalModel {
    pub model: SeqModel,
    /// Latency quantizer (targets are normalized bucket values).
    pub disc: Discretizer,
}

/// Decoded single-packet prediction.
#[derive(Clone, Copy, Debug)]
pub struct Prediction {
    /// Predicted dwell time in seconds (clamped to the training range).
    pub latency_s: f64,
    /// Drop probability.
    pub p_drop: f64,
    /// CE-mark probability.
    pub p_ecn: f64,
    /// Raw normalized latency output (for congestion-state feedback).
    pub latency_norm: f32,
}

impl InternalModel {
    /// Train a fresh single-layer model of `hidden` units on `data`.
    /// Errors on an empty dataset or a divergent run ([`TrainError`]).
    pub fn train_new(
        data: &PacketDataset,
        disc: Discretizer,
        hidden: usize,
        cfg: &TrainConfig,
    ) -> Result<(InternalModel, TrainReport), TrainError> {
        Self::train_stacked(data, disc, hidden, 1, cfg)
    }

    /// Train a fresh `layers`-deep stack (the "LSTM layers" tunable of
    /// §7.2). Errors on an empty dataset or a divergent run.
    pub fn train_stacked(
        data: &PacketDataset,
        disc: Discretizer,
        hidden: usize,
        layers: usize,
        cfg: &TrainConfig,
    ) -> Result<(InternalModel, TrainReport), TrainError> {
        let mut model = SeqModel::new_stacked(data.width(), hidden, layers, cfg.seed);
        let report = train(&mut model, data, cfg)?;
        Ok((InternalModel { model, disc }, report))
    }

    /// [`InternalModel::train_stacked`] with telemetry: per-epoch losses,
    /// throughput, and gradient norms are recorded into `obs` under
    /// `prefix` (e.g. `train.ingress`). Identical numerics to the
    /// unobserved path.
    pub fn train_stacked_observed(
        data: &PacketDataset,
        disc: Discretizer,
        hidden: usize,
        layers: usize,
        cfg: &TrainConfig,
        obs: &mut dcn_obs::Obs,
        prefix: &str,
    ) -> Result<(InternalModel, TrainReport), TrainError> {
        Self::train_stacked_checkpointed(data, disc, hidden, layers, cfg, obs, prefix, None)
    }

    /// [`InternalModel::train_stacked_observed`] with crash resilience:
    /// when `ckpt` is given the full training-loop state is persisted to
    /// `ckpt.path` after every epoch, and an interrupted run picks up from
    /// it bit-identically (see [`mimic_ml::train::train_checkpointed`]).
    #[allow(clippy::too_many_arguments)]
    pub fn train_stacked_checkpointed(
        data: &PacketDataset,
        disc: Discretizer,
        hidden: usize,
        layers: usize,
        cfg: &TrainConfig,
        obs: &mut dcn_obs::Obs,
        prefix: &str,
        ckpt: Option<&mimic_ml::train::CheckpointSpec<'_>>,
    ) -> Result<(InternalModel, TrainReport), TrainError> {
        let mut model = SeqModel::new_stacked(data.width(), hidden, layers, cfg.seed);
        let report = mimic_ml::train::train_checkpointed_observed(
            &mut model, data, cfg, obs, prefix, ckpt,
        )?;
        Ok((InternalModel { model, disc }, report))
    }

    /// Continue training the existing weights on new data (the paper's
    /// Appendix H "incremental model updates": when the workload or
    /// configuration shifts, transfer from the old model instead of
    /// retraining from scratch).
    pub fn fine_tune(
        &mut self,
        data: &PacketDataset,
        cfg: &TrainConfig,
    ) -> Result<TrainReport, TrainError> {
        train(&mut self.model, data, cfg)
    }

    /// Fresh inference state.
    pub fn init_state(&self) -> ModelState {
        self.model.init_state()
    }

    /// Stateful per-packet prediction.
    pub fn predict(&self, features: &[f32], state: &mut ModelState) -> Prediction {
        let out = self.model.step(features, state);
        let latency_norm = out[OUT_LATENCY].clamp(0.0, 1.0);
        Prediction {
            latency_s: self.disc.recover(latency_norm),
            p_drop: sigmoid(out[OUT_DROP]) as f64,
            p_ecn: sigmoid(out[OUT_ECN]) as f64,
            latency_norm,
        }
    }

    /// State-only update (feeder traffic).
    pub fn update_only(&self, features: &[f32], state: &mut ModelState) {
        self.model.step_state_only(features, state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimic_ml::loss::Target;

    fn dataset() -> PacketDataset {
        // Latency correlates with feature 0; drops with feature 1.
        let mut d = PacketDataset::default();
        for i in 0..600 {
            let hot = (i / 20) % 2 == 1;
            let lossy = i % 17 == 0;
            d.push(
                vec![if hot { 1.0 } else { 0.0 }, if lossy { 1.0 } else { 0.0 }],
                Target {
                    latency: if hot { 0.9 } else { 0.1 },
                    dropped: if lossy { 1.0 } else { 0.0 },
                    ecn: 0.0,
                },
            );
        }
        d
    }

    #[test]
    fn trains_and_predicts_in_range() {
        let disc = Discretizer::new(0.001, 0.01, 100);
        let cfg = TrainConfig {
            epochs: 6,
            window: 4,
            ..TrainConfig::default()
        };
        let (m, report) =
            InternalModel::train_new(&dataset(), disc, 8, &cfg).expect("valid training setup");
        assert!(report.final_loss().expect("epochs ran") < report.epoch_losses[0]);
        let mut state = m.init_state();
        let p = m.predict(&[1.0, 0.0], &mut state);
        assert!(p.latency_s >= 0.001 && p.latency_s <= 0.01);
        assert!((0.0..=1.0).contains(&p.p_drop));
        assert!((0.0..=1.0).contains(&p.p_ecn));
    }

    #[test]
    fn latency_prediction_tracks_signal() {
        let disc = Discretizer::new(0.0, 1.0, 100);
        let cfg = TrainConfig {
            epochs: 10,
            window: 4,
            ..TrainConfig::default()
        };
        let (m, _) =
            InternalModel::train_new(&dataset(), disc, 12, &cfg).expect("valid training setup");
        let mut s = m.init_state();
        let mut hot = 0.0;
        for _ in 0..4 {
            hot = m.predict(&[1.0, 0.0], &mut s).latency_s;
        }
        let mut s = m.init_state();
        let mut cold = 0.0;
        for _ in 0..4 {
            cold = m.predict(&[0.0, 0.0], &mut s).latency_s;
        }
        assert!(hot > cold, "hot {hot} vs cold {cold}");
    }

    #[test]
    fn drop_probability_responds_to_features() {
        let disc = Discretizer::new(0.0, 1.0, 100);
        let cfg = TrainConfig {
            epochs: 10,
            window: 2,
            ..TrainConfig::default()
        };
        let (m, _) =
            InternalModel::train_new(&dataset(), disc, 12, &cfg).expect("valid training setup");
        let mut s = m.init_state();
        let p_lossy = m.predict(&[0.0, 1.0], &mut s).p_drop;
        let mut s = m.init_state();
        let p_clean = m.predict(&[0.0, 0.0], &mut s).p_drop;
        assert!(
            p_lossy > p_clean,
            "lossy {p_lossy} should exceed clean {p_clean}"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let disc = Discretizer::new(0.0, 1.0, 50);
        let cfg = TrainConfig {
            epochs: 1,
            window: 2,
            ..TrainConfig::default()
        };
        let (m, _) =
            InternalModel::train_new(&dataset(), disc, 6, &cfg).expect("valid training setup");
        let json = serde_json::to_string(&m).unwrap();
        let m2: InternalModel = serde_json::from_str(&json).unwrap();
        let mut s1 = m.init_state();
        let mut s2 = m2.init_state();
        let p1 = m.predict(&[1.0, 0.0], &mut s1);
        let p2 = m2.predict(&[1.0, 0.0], &mut s2);
        assert_eq!(p1.latency_s, p2.latency_s);
        assert_eq!(p1.p_drop, p2.p_drop);
    }
}
