//! The learned Mimic: a [`ClusterModel`] built from trained internal
//! models and feeders (paper §4.1, §7.1).
//!
//! "The Mimic clusters are constructed by taking the ingress/egress
//! internal models and feeders … and wrapping them with a thin shim layer.
//! The layer intercepts packets arriving at the borders of the cluster,
//! periodically takes packets from the feeders, and queries the internal
//! models with both to predict the network's effects. The output of the
//! shim is, thus, either a packet, its egress time, and its egress
//! location; or its absence."

use crate::drift::{DriftMonitor, FeatureEnvelope};
use crate::features::{FeatureConfig, FeatureExtractor, PacketView};
use crate::feeder::{Feeder, FeederFit};
use crate::internal_model::InternalModel;
use dcn_sim::mimic::{BoundaryDir, ClusterModel, Verdict};
use dcn_sim::packet::Packet;
use dcn_sim::rng::SplitMix64;
use dcn_sim::snapshot::{SnapReader, SnapWriter, SnapshotError};
use dcn_sim::routing::ecmp_hash;
use dcn_sim::time::{SimDuration, SimTime};
use dcn_sim::topology::{FatTree, FatTreeParams};
use mimic_ml::model::ModelState;
use serde::{Deserialize, Serialize};

/// The serializable artifact produced by training: everything needed to
/// instantiate Mimics at any scale.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainedMimic {
    pub ingress: InternalModel,
    pub egress: InternalModel,
    pub feature_cfg: FeatureConfig,
    pub feeder: FeederFit,
    /// Training-distribution envelope of ingress features, enabling live
    /// drift detection ([`crate::drift`]). `None` for bundles trained
    /// without envelope fitting (including models serialized before the
    /// field existed); such Mimics report no drift.
    #[serde(default)]
    pub envelope: Option<FeatureEnvelope>,
}

impl TrainedMimic {
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("bundle serializes")
    }

    pub fn from_json(s: &str) -> Result<TrainedMimic, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// How drop/mark probabilities become decisions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DecisionMode {
    /// Bernoulli-sample each probability (matches the paper's generative
    /// use: realized drop rates track predicted rates — Figure 5).
    Sample,
    /// Hard threshold at 0.5 (deterministic; useful for debugging).
    Threshold,
}

/// Project a boundary crossing onto the feature extractor's coordinate
/// frame: the cluster-side endpoint's rack/server plus the ECMP choices the
/// cluster's switches would have made. Shared by the scalar
/// [`LearnedMimic`] and the batched fleet ([`crate::batch`]) so both feed
/// their extractors identical views (the equivalence suite replays traces
/// through it to build its scalar reference pipeline).
pub fn packet_view(
    topo: &FatTree,
    dir: BoundaryDir,
    pkt: &Packet,
    now: SimTime,
) -> PacketView {
    // The cluster-side endpoint's local coordinates.
    let local = match dir {
        BoundaryDir::Ingress => pkt.dst,
        BoundaryDir::Egress => pkt.src,
    };
    let (_, rack, server) = topo.host_coords(local);
    let p = topo.params;
    let agg = (ecmp_hash(pkt.flow, 1) % p.aggs_per_cluster as u64) as u32;
    let core_j = (ecmp_hash(pkt.flow, 2) % p.cores_per_agg as u64) as u32;
    PacketView {
        time: now,
        wire_bytes: pkt.wire_bytes(),
        rack,
        server,
        agg,
        core: agg * p.cores_per_agg + core_j,
        kind: pkt.kind,
        ecn: pkt.ecn,
        prio: pkt.prio,
    }
}

/// Serialize an LSTM stack's recurrent state (hidden + cell per layer)
/// for a checkpoint. Weights are configuration and are not written.
pub(crate) fn save_model_state(st: &ModelState, w: &mut SnapWriter) {
    w.put_u64(st.layers.len() as u64);
    for l in &st.layers {
        w.put_f32_slice(&l.h.data);
        w.put_f32_slice(&l.c.data);
    }
}

/// Overwrite an LSTM stack's recurrent state from a checkpoint, refusing
/// shape mismatches (a snapshot from a differently-sized model).
pub(crate) fn load_model_state(
    st: &mut ModelState,
    r: &mut SnapReader<'_>,
) -> Result<(), SnapshotError> {
    let n = r.get_u64()? as usize;
    if n != st.layers.len() {
        return Err(SnapshotError::Corrupt(format!(
            "model has {} LSTM layers, snapshot has {n}",
            st.layers.len()
        )));
    }
    for l in &mut st.layers {
        let h = r.get_f32_vec()?;
        let c = r.get_f32_vec()?;
        if h.len() != l.h.data.len() || c.len() != l.c.data.len() {
            return Err(SnapshotError::Corrupt(format!(
                "LSTM state dims {}x{} do not match snapshot ({}, {})",
                l.h.data.len(),
                l.c.data.len(),
                h.len(),
                c.len()
            )));
        }
        l.h.data = h;
        l.c.data = c;
    }
    Ok(())
}

/// One direction's runtime state.
struct DirRuntime {
    fx: FeatureExtractor,
    state: ModelState,
    feeder: Feeder,
    /// Reusable feature buffer: the per-packet path never allocates.
    feat_buf: Vec<f32>,
}

/// A live Mimic cluster.
pub struct LearnedMimic {
    bundle: TrainedMimic,
    ingress: DirRuntime,
    egress: DirRuntime,
    topo: FatTree,
    mode: DecisionMode,
    rng: SplitMix64,
    /// Scores live ingress features against the training envelope, when
    /// the bundle carries one.
    monitor: Option<DriftMonitor>,
    /// Counters for instrumentation/tests.
    pub packets_seen: u64,
    pub feeder_packets: u64,
}

impl LearnedMimic {
    /// Instantiate for an `n_clusters` composition. `seed` decorrelates
    /// the Mimics of one simulation; `topo_params` must match the
    /// composed topology.
    pub fn new(
        bundle: TrainedMimic,
        topo_params: FatTreeParams,
        n_clusters: u32,
        seed: u64,
    ) -> LearnedMimic {
        let fc = bundle.feature_cfg;
        let make_dir = |fit: &crate::feeder::DirFit, model: &InternalModel, tag: u64| DirRuntime {
            fx: FeatureExtractor::new(fc),
            state: model.init_state(),
            feeder: Feeder::new(
                fit.clone(),
                n_clusters,
                fc.racks_per_cluster,
                fc.hosts_per_rack,
                fc.aggs_per_cluster,
                fc.cores,
                seed ^ tag,
            ),
            feat_buf: Vec::with_capacity(fc.width()),
        };
        LearnedMimic {
            ingress: make_dir(&bundle.feeder.ingress, &bundle.ingress, 0x1),
            egress: make_dir(&bundle.feeder.egress, &bundle.egress, 0x2),
            topo: FatTree::new(topo_params),
            monitor: bundle.envelope.clone().map(DriftMonitor::new),
            bundle,
            mode: DecisionMode::Sample,
            rng: SplitMix64::derive(seed, 0x4D494D49), // "MIMI"
            packets_seen: 0,
            feeder_packets: 0,
        }
    }

    /// Override the drift monitor's window size (defaults to 256
    /// observations per window). No-op without an envelope.
    pub fn with_drift_window(mut self, window: usize) -> LearnedMimic {
        self.monitor = self
            .bundle
            .envelope
            .clone()
            .map(|env| DriftMonitor::with_window(env, window));
        self
    }

    /// Switch decision mode (default: [`DecisionMode::Sample`]).
    pub fn with_mode(mut self, mode: DecisionMode) -> LearnedMimic {
        self.mode = mode;
        self
    }

    fn view_for(&self, dir: BoundaryDir, pkt: &Packet, now: SimTime) -> PacketView {
        packet_view(&self.topo, dir, pkt, now)
    }

    fn decide(&mut self, p: f64) -> bool {
        match self.mode {
            DecisionMode::Sample => self.rng.bernoulli(p),
            DecisionMode::Threshold => p > 0.5,
        }
    }
}

impl ClusterModel for LearnedMimic {
    fn on_packet(&mut self, dir: BoundaryDir, pkt: &Packet, now: SimTime) -> Verdict {
        self.packets_seen += 1;
        let view = self.view_for(dir, pkt, now);
        let (rt, model) = match dir {
            BoundaryDir::Ingress => (&mut self.ingress, &self.bundle.ingress),
            BoundaryDir::Egress => (&mut self.egress, &self.bundle.egress),
        };
        rt.fx.extract_into(&view, &mut rt.feat_buf);
        if dir == BoundaryDir::Ingress {
            if let Some(mon) = &mut self.monitor {
                mon.observe(&rt.feat_buf);
            }
        }
        let pred = model.predict(&rt.feat_buf, &mut rt.state);

        let dropped = self.decide(pred.p_drop);
        if dropped {
            self.ingress_or_egress(dir).fx.observe_outcome(1.0, true);
            return Verdict::Drop;
        }
        let mark_ce = pkt.ecn.is_capable() && self.decide(pred.p_ecn);
        self.ingress_or_egress(dir)
            .fx
            .observe_outcome(pred.latency_norm, false);
        Verdict::Deliver {
            latency: SimDuration::from_secs_f64(pred.latency_s.max(1e-6)),
            mark_ce,
        }
    }

    fn next_wake(&mut self, now: SimTime) -> Option<SimTime> {
        // Batch injections into periodic wakeups ("periodically takes
        // packets from the feeders" — §7.1). Feature timestamps stay exact
        // because Feeder::fire stamps views with their own due times.
        const PERIOD: SimDuration = SimDuration(2_000_000); // 2 ms
        let earliest = match (self.ingress.feeder.next_time(), self.egress.feeder.next_time()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }?;
        Some(earliest.max(now + PERIOD))
    }

    fn on_wake(&mut self, now: SimTime) {
        // Inject every due synthetic packet: update the hidden state as if
        // it were routed, then discard the outputs (§6).
        loop {
            let mut fired = false;
            if let Some(v) = self.ingress.feeder.fire(now) {
                self.ingress.fx.extract_into(&v, &mut self.ingress.feat_buf);
                self.bundle
                    .ingress
                    .update_only(&self.ingress.feat_buf, &mut self.ingress.state);
                self.feeder_packets += 1;
                fired = true;
            }
            if let Some(v) = self.egress.feeder.fire(now) {
                self.egress.fx.extract_into(&v, &mut self.egress.feat_buf);
                self.bundle
                    .egress
                    .update_only(&self.egress.feat_buf, &mut self.egress.state);
                self.feeder_packets += 1;
                fired = true;
            }
            if !fired {
                break;
            }
        }
    }

    fn drift(&self) -> Option<f64> {
        self.monitor.as_ref().and_then(|m| m.score())
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapshotError> {
        for rt in [&self.ingress, &self.egress] {
            rt.fx.save_state(w);
            save_model_state(&rt.state, w);
            rt.feeder.save_state(w);
        }
        w.put_u64(self.rng.state());
        w.put_bool(self.monitor.is_some());
        if let Some(mon) = &self.monitor {
            mon.save_state(w);
        }
        w.put_u64(self.packets_seen);
        w.put_u64(self.feeder_packets);
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        for rt in [&mut self.ingress, &mut self.egress] {
            rt.fx.load_state(r)?;
            load_model_state(&mut rt.state, r)?;
            rt.feeder.load_state(r)?;
        }
        self.rng.set_state(r.get_u64()?);
        if r.get_bool()? != self.monitor.is_some() {
            return Err(SnapshotError::Corrupt(
                "drift-monitor presence does not match the bundle".into(),
            ));
        }
        if let Some(mon) = &mut self.monitor {
            mon.load_state(r)?;
        }
        self.packets_seen = r.get_u64()?;
        self.feeder_packets = r.get_u64()?;
        Ok(())
    }
}

impl LearnedMimic {
    fn ingress_or_egress(&mut self, dir: BoundaryDir) -> &mut DirRuntime {
        match dir {
            BoundaryDir::Ingress => &mut self.ingress,
            BoundaryDir::Egress => &mut self.egress,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate, DataGenConfig};
    use mimic_ml::train::TrainConfig;

    fn quick_bundle() -> (TrainedMimic, FatTreeParams) {
        let mut cfg = DataGenConfig::default();
        cfg.sim.duration_s = 0.3;
        cfg.sim.seed = 77;
        let td = generate(&cfg);
        let tc = TrainConfig {
            epochs: 1,
            window: 4,
            ..TrainConfig::default()
        };
        let (ing, _) = InternalModel::train_new(&td.ingress, td.ingress_disc, 8, &tc)
            .expect("valid training setup");
        let (eg, _) = InternalModel::train_new(&td.egress, td.egress_disc, 8, &tc)
            .expect("valid training setup");
        (
            TrainedMimic {
                ingress: ing,
                egress: eg,
                feature_cfg: td.feature_cfg,
                feeder: td.feeder,
                envelope: FeatureEnvelope::fit(&td.ingress.features),
            },
            cfg.sim.topo,
        )
    }

    #[test]
    fn bundle_json_roundtrip() {
        let (b, _) = quick_bundle();
        let b2 = TrainedMimic::from_json(&b.to_json()).unwrap();
        assert_eq!(b.feature_cfg.width(), b2.feature_cfg.width());
    }

    #[test]
    fn mimic_delivers_with_positive_latency() {
        let (b, mut topo) = quick_bundle();
        topo.clusters = 4;
        let mut m = LearnedMimic::new(b, topo, 4, 9);
        let t = FatTree::new(topo);
        let pkt = Packet::data(
            1,
            dcn_sim::packet::FlowId(5),
            t.host(1, 0, 0),
            t.host(0, 1, 1),
            0,
            1460,
            false,
            SimTime::from_secs_f64(0.01),
        );
        let mut delivered = 0;
        for i in 0..50 {
            match m.on_packet(BoundaryDir::Egress, &pkt, SimTime::from_secs_f64(0.01 + i as f64 * 1e-4)) {
                Verdict::Deliver { latency, .. } => {
                    assert!(latency > SimDuration::ZERO);
                    delivered += 1;
                }
                Verdict::Drop => {}
            }
        }
        assert!(delivered > 0, "everything dropped");
        assert_eq!(m.packets_seen, 50);
    }

    #[test]
    fn feeders_active_beyond_two_clusters() {
        let (b, mut topo) = quick_bundle();
        topo.clusters = 8;
        let mut m = LearnedMimic::new(b.clone(), topo, 8, 3);
        assert!(m.next_wake(SimTime::ZERO).is_some());
        // Fire a few wakeups; state must advance.
        let mut wakes = 0;
        let mut t = SimTime::ZERO;
        while let Some(next) = m.next_wake(t) {
            if next > SimTime::from_secs_f64(0.2) || wakes > 500 {
                break;
            }
            t = next;
            m.on_wake(t);
            wakes += 1;
        }
        assert!(m.feeder_packets > 0);
        // At n = 2 feeders are disabled.
        let mut topo2 = topo;
        topo2.clusters = 2;
        let mut m2 = LearnedMimic::new(b, topo2, 2, 3);
        assert!(m2.next_wake(SimTime::ZERO).is_none());
    }

    #[test]
    fn drift_reported_after_enough_ingress_packets() {
        let (b, mut topo) = quick_bundle();
        assert!(b.envelope.is_some(), "datagen must fit an envelope");
        topo.clusters = 4;
        let t = FatTree::new(topo);
        let mut m = LearnedMimic::new(b.clone(), topo, 4, 9).with_drift_window(32);
        assert!(m.drift().is_none(), "no score before a window completes");
        let pkt = Packet::data(
            1,
            dcn_sim::packet::FlowId(5),
            t.host(1, 0, 0),
            t.host(0, 1, 1),
            0,
            1460,
            false,
            SimTime::from_secs_f64(0.01),
        );
        for i in 0..200 {
            m.on_packet(
                BoundaryDir::Ingress,
                &pkt,
                SimTime::from_secs_f64(0.01 + i as f64 * 1e-4),
            );
        }
        let d = m.drift().expect("windows completed");
        assert!(d.is_finite() && d >= 0.0, "drift {d}");
        // A bundle without an envelope never reports drift.
        let mut bare = b;
        bare.envelope = None;
        let mut m2 = LearnedMimic::new(bare, topo, 4, 9);
        for i in 0..200 {
            m2.on_packet(
                BoundaryDir::Ingress,
                &pkt,
                SimTime::from_secs_f64(0.01 + i as f64 * 1e-4),
            );
        }
        assert!(m2.drift().is_none());
    }

    #[test]
    fn threshold_mode_is_deterministic() {
        let (b, mut topo) = quick_bundle();
        topo.clusters = 4;
        let t = FatTree::new(topo);
        let pkt = Packet::data(
            1,
            dcn_sim::packet::FlowId(5),
            t.host(0, 0, 0),
            t.host(1, 1, 1),
            0,
            1460,
            false,
            SimTime::from_secs_f64(0.02),
        );
        let run = || {
            let mut m =
                LearnedMimic::new(b.clone(), topo, 4, 1).with_mode(DecisionMode::Threshold);
            (0..20)
                .map(|i| {
                    match m.on_packet(
                        BoundaryDir::Ingress,
                        &pkt,
                        SimTime::from_secs_f64(0.02 + i as f64 * 1e-4),
                    ) {
                        Verdict::Drop => u64::MAX,
                        Verdict::Deliver { latency, .. } => latency.as_nanos(),
                    }
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
