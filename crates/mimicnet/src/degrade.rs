//! Graceful degradation under drift (robustness layer over composition).
//!
//! MimicNet's accuracy rests on the Mimics seeing traffic like their
//! training traffic; the paper sidesteps violations by restricting itself
//! to failure-free networks (§4.2). This module handles the violation
//! instead of excluding it: when a deployed Mimic's drift score
//! ([`crate::drift`]) crosses policy thresholds, the estimate degrades
//! gracefully rather than silently returning garbage —
//!
//! 1. **Annotate** — the report flags the drifted clusters.
//! 2. **Widen** — headline percentiles gain an uncertainty factor scaled
//!    by the drift magnitude.
//! 3. **Fallback** — the worst clusters are swapped back to packet-level
//!    simulation and the estimate re-run, trading speed for fidelity
//!    exactly where the models stopped being trustworthy.

use dcn_sim::mimic::{FidelityTier, TierSwitch};
use dcn_sim::snapshot::{SnapReader, SnapWriter, SnapshotError};
use serde::{Deserialize, Serialize};

/// Thresholds driving the escalation ladder. Scores come from
/// [`crate::drift::DriftMonitor::score`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DegradationPolicy {
    /// At or above this drift, a cluster is annotated as drifted.
    pub annotate_above: f64,
    /// At or above this drift, the report's uncertainty is widened.
    pub widen_above: f64,
    /// At or above this drift, the cluster is re-simulated at full
    /// fidelity.
    pub fallback_above: f64,
    /// Cap on how many clusters may fall back per estimate (bounds the
    /// cost of a pathological run; the observable cluster never counts).
    pub max_fallbacks: usize,
    /// At or above this excess drift on *any* cluster, every Mimic
    /// cluster falls back — including unmonitored ones. A drift this far
    /// out suggests a network-wide event (a fabric failure shifts traffic
    /// into every cluster, monitored or not), so per-cluster containment
    /// no longer applies; the estimate reverts to full packet-level
    /// simulation. Bypasses `max_fallbacks`. Default: infinity (off).
    pub global_fallback_above: f64,
    /// Per-cluster baseline drift, subtracted before thresholding.
    ///
    /// Even a healthy large composition drifts somewhat from the
    /// small-scale training distribution (more clusters shift the feature
    /// ranges); calibrating the baseline from a known-healthy shakedown
    /// run makes the thresholds measure *excess* drift — the part caused
    /// by events, not scale. Empty (the default) means a zero baseline.
    pub baseline: Vec<f64>,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy {
            annotate_above: 0.5,
            widen_above: 1.0,
            fallback_above: 2.0,
            max_fallbacks: 8,
            global_fallback_above: f64::INFINITY,
            baseline: Vec::new(),
        }
    }
}

/// What the policy decided for one cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradationAction {
    /// In distribution; keep the Mimic.
    Keep,
    /// Flag it in the report.
    Annotate,
    /// Flag it and widen the estimate's uncertainty.
    Widen,
    /// Replace it with packet-level simulation.
    Fallback,
}

/// Per-cluster outcome of applying a [`DegradationPolicy`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterDrift {
    pub cluster: u32,
    /// The drift the policy acted on — the monitor's score minus the
    /// policy's calibrated baseline (clamped at zero). `None` when the
    /// cluster is full fidelity or unmonitored.
    pub drift: Option<f64>,
    pub action: DegradationAction,
}

/// The policy's decision for a whole run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DegradationReport {
    pub clusters: Vec<ClusterDrift>,
    /// Multiplier (≥ 1) for the estimate's uncertainty band.
    pub uncertainty_factor: f64,
}

impl DegradationReport {
    /// Clusters the policy wants re-simulated at full fidelity.
    pub fn fallback_clusters(&self) -> Vec<u32> {
        self.clusters
            .iter()
            .filter(|c| c.action == DegradationAction::Fallback)
            .map(|c| c.cluster)
            .collect()
    }

    /// Any action beyond Keep anywhere?
    pub fn degraded(&self) -> bool {
        self.clusters
            .iter()
            .any(|c| c.action != DegradationAction::Keep)
    }

    /// Highest drift observed across clusters.
    pub fn max_drift(&self) -> Option<f64> {
        self.clusters
            .iter()
            .filter_map(|c| c.drift)
            .fold(None, |acc, d| Some(acc.map_or(d, |a: f64| a.max(d))))
    }
}

impl DegradationPolicy {
    /// Install a per-cluster drift baseline (see [`Self::baseline`]),
    /// typically `cluster_drift` from a known-healthy run with `None`
    /// entries zeroed.
    pub fn with_baseline(mut self, baseline: Vec<f64>) -> DegradationPolicy {
        self.baseline = baseline;
        self
    }

    /// Classify one drift score.
    pub fn action_for(&self, drift: f64) -> DegradationAction {
        if drift >= self.fallback_above {
            DegradationAction::Fallback
        } else if drift >= self.widen_above {
            DegradationAction::Widen
        } else if drift >= self.annotate_above {
            DegradationAction::Annotate
        } else {
            DegradationAction::Keep
        }
    }

    /// Apply the policy to a run's per-cluster drift vector (as produced
    /// in [`dcn_sim::instrument::Metrics::cluster_drift`]). When more
    /// than `max_fallbacks` clusters qualify, the worst ones win and the
    /// rest are demoted to [`DegradationAction::Widen`].
    pub fn evaluate(&self, cluster_drift: &[Option<f64>]) -> DegradationReport {
        let mut clusters: Vec<ClusterDrift> = cluster_drift
            .iter()
            .enumerate()
            .map(|(c, &drift)| {
                let excess = drift.map(|d| crate::drift::excess_score(d, &self.baseline, c));
                ClusterDrift {
                    cluster: c as u32,
                    drift: excess,
                    action: excess.map_or(DegradationAction::Keep, |d| self.action_for(d)),
                }
            })
            .collect();
        // A cluster this far out signals a network-wide event: revert the
        // whole composition, unmonitored clusters included.
        if clusters
            .iter()
            .any(|c| c.drift.is_some_and(|d| d >= self.global_fallback_above))
        {
            for c in &mut clusters {
                c.action = DegradationAction::Fallback;
            }
            let worst = clusters.iter().filter_map(|c| c.drift).fold(0.0, f64::max);
            return DegradationReport {
                clusters,
                uncertainty_factor: 1.0
                    + (worst - self.widen_above).max(0.0) / self.widen_above.max(1e-9),
            };
        }
        // Enforce the fallback budget, keeping the worst offenders.
        let mut fallbacks: Vec<usize> = clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.action == DegradationAction::Fallback)
            .map(|(i, _)| i)
            .collect();
        if fallbacks.len() > self.max_fallbacks {
            fallbacks.sort_by(|&a, &b| {
                let da = clusters[a].drift.unwrap_or(0.0);
                let db = clusters[b].drift.unwrap_or(0.0);
                db.partial_cmp(&da).expect("finite drift scores")
            });
            for &i in &fallbacks[self.max_fallbacks..] {
                clusters[i].action = DegradationAction::Widen;
            }
        }
        let worst = clusters
            .iter()
            .filter(|c| {
                matches!(
                    c.action,
                    DegradationAction::Widen | DegradationAction::Fallback
                )
            })
            .filter_map(|c| c.drift)
            .fold(0.0f64, f64::max);
        // Linear widening in drift beyond the widen threshold; 1.0 when
        // nothing crossed it.
        let uncertainty_factor = if worst >= self.widen_above {
            1.0 + (worst - self.widen_above) / self.widen_above.max(1e-9)
        } else {
            1.0
        };
        DegradationReport {
            clusters,
            uncertainty_factor,
        }
    }
}

/// The runtime generalization of [`DegradationPolicy`]: instead of a
/// one-shot end-of-run verdict, an accuracy budget drives *continuous*
/// promotion/demotion of clusters between the Mimic and Flow tiers at
/// PDES epoch barriers. Drift is the accuracy signal (a cluster whose
/// live traffic looks like the Mimic's training distribution is safe to
/// approximate more cheaply; one that drifts needs the higher tier), and
/// `max_above_flow` is the cost side of the budget: how many clusters may
/// run above Flow at once.
///
/// Thresholds are compared against *excess* drift (score minus
/// `baseline`, clamped at zero), like [`DegradationPolicy`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AccuracyBudget {
    /// Promote a Flow-tier cluster back to Mimic when its excess drift
    /// reaches this.
    pub promote_above: f64,
    /// A Mimic-tier cluster is "calm" in an epoch when its excess drift is
    /// below this (an unmonitored epoch counts as calm: no evidence of
    /// drift, and an idle cluster is exactly the cheap-to-approximate
    /// case).
    pub demote_below: f64,
    /// Consecutive calm epochs required before a Mimic→Flow demotion.
    pub patience: u32,
    /// Hard cap on clusters simultaneously above the Flow tier. When more
    /// qualify, the worst-drift clusters win (ties broken by cluster
    /// index, so the decision is deterministic).
    pub max_above_flow: usize,
    /// Tier managed clusters start the run at (Mimic warms the comparison
    /// path; Flow maximizes early speed). Must be Mimic or Flow.
    pub start: FidelityTier,
    /// Per-cluster drift baseline, as in [`DegradationPolicy::baseline`].
    pub baseline: Vec<f64>,
}

impl Default for AccuracyBudget {
    fn default() -> Self {
        AccuracyBudget {
            promote_above: 1.0,
            demote_below: 0.5,
            patience: 2,
            max_above_flow: usize::MAX,
            start: FidelityTier::Mimic,
            baseline: Vec::new(),
        }
    }
}

/// The budget's mutable accounting: current tier and consecutive-calm
/// count per cluster. Every LP of a partitioned run holds an identical
/// replica and feeds it identical merged drift vectors at identical epoch
/// barriers, so replicas never diverge. Checkpoints serialize the ledger
/// (the budget parameters are configuration and are re-created on
/// restore, like model weights).
#[derive(Clone, Debug)]
pub struct BudgetLedger {
    budget: AccuracyBudget,
    /// Current tier, indexed by cluster. Unmanaged clusters (the
    /// observable cluster, composition-time packet clusters) are pinned at
    /// [`FidelityTier::Packet`].
    tiers: Vec<FidelityTier>,
    managed: Vec<bool>,
    calm: Vec<u32>,
}

impl BudgetLedger {
    /// A ledger over `clusters` total clusters, with `managed` listing the
    /// adaptively-tiered (Mimic'ed) ones; the rest stay packet-level.
    pub fn new(budget: AccuracyBudget, clusters: u32, managed: &[u32]) -> BudgetLedger {
        assert!(
            matches!(budget.start, FidelityTier::Mimic | FidelityTier::Flow),
            "managed clusters start at Mimic or Flow, not Packet"
        );
        let n = clusters as usize;
        let mut tiers = vec![FidelityTier::Packet; n];
        let mut is_managed = vec![false; n];
        for &c in managed {
            assert!((c as usize) < n, "managed cluster {c} out of range");
            tiers[c as usize] = budget.start;
            is_managed[c as usize] = true;
        }
        BudgetLedger {
            budget,
            tiers,
            managed: is_managed,
            calm: vec![0; n],
        }
    }

    /// Current tier of `cluster`.
    pub fn tier(&self, cluster: u32) -> FidelityTier {
        self.tiers
            .get(cluster as usize)
            .copied()
            .unwrap_or(FidelityTier::Packet)
    }

    /// Force `cluster` to `tier` (test/CLI override). Returns false for
    /// unmanaged clusters or a Packet target — packet fidelity is decided
    /// at composition time, not at runtime.
    pub fn set_tier(&mut self, cluster: u32, tier: FidelityTier) -> bool {
        let c = cluster as usize;
        if c >= self.tiers.len() || !self.managed[c] || tier == FidelityTier::Packet {
            return false;
        }
        self.tiers[c] = tier;
        self.calm[c] = 0;
        true
    }

    /// One epoch of the accuracy budget: update calm counters from the
    /// merged drift vector, apply promotions/demotions, enforce the
    /// above-Flow cap, and return the switches made. Pure function of
    /// (ledger state, inputs) — no clocks, no RNG — which is what keeps
    /// partition counts and resumed runs on the same tier schedule.
    pub fn on_epoch(&mut self, epoch: u64, drift: &[Option<f64>]) -> Vec<TierSwitch> {
        let n = self.tiers.len();
        let excess: Vec<Option<f64>> = (0..n)
            .map(|c| {
                drift
                    .get(c)
                    .copied()
                    .flatten()
                    .map(|d| crate::drift::excess_score(d, &self.budget.baseline, c))
            })
            .collect();
        let mut want = self.tiers.clone();
        for c in 0..n {
            if !self.managed[c] {
                continue;
            }
            let calm_now = excess[c].is_none_or(|d| d < self.budget.demote_below);
            match self.tiers[c] {
                FidelityTier::Mimic => {
                    if calm_now {
                        self.calm[c] = self.calm[c].saturating_add(1);
                        if self.calm[c] >= self.budget.patience {
                            want[c] = FidelityTier::Flow;
                        }
                    } else {
                        self.calm[c] = 0;
                    }
                }
                FidelityTier::Flow => {
                    if excess[c].is_some_and(|d| d >= self.budget.promote_above) {
                        want[c] = FidelityTier::Mimic;
                        self.calm[c] = 0;
                    } else if calm_now {
                        self.calm[c] = self.calm[c].saturating_add(1);
                    } else {
                        self.calm[c] = 0;
                    }
                }
                FidelityTier::Packet => {}
            }
        }
        // Cost cap: worst-drift clusters keep the Mimic tier, ties to the
        // lower cluster index.
        let mut above: Vec<u32> = (0..n)
            .filter(|&c| self.managed[c] && want[c] == FidelityTier::Mimic)
            .map(|c| c as u32)
            .collect();
        if above.len() > self.budget.max_above_flow {
            above.sort_by(|&a, &b| {
                let da = excess[a as usize].unwrap_or(0.0);
                let db = excess[b as usize].unwrap_or(0.0);
                db.partial_cmp(&da).expect("finite drift scores").then(a.cmp(&b))
            });
            for &c in &above[self.budget.max_above_flow..] {
                want[c as usize] = FidelityTier::Flow;
                self.calm[c as usize] = 0;
            }
        }
        let mut switches = Vec::new();
        for (c, &to) in want.iter().enumerate() {
            if to != self.tiers[c] {
                switches.push(TierSwitch {
                    epoch,
                    cluster: c as u32,
                    from: self.tiers[c],
                    to,
                });
                self.tiers[c] = to;
            }
        }
        switches
    }

    /// Serialize the mutable accounting (tiers, calm counters).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.tiers.len() as u64);
        for c in 0..self.tiers.len() {
            w.put_u8(self.tiers[c].index() as u8);
            w.put_bool(self.managed[c]);
            w.put_u32(self.calm[c]);
        }
    }

    /// Restore accounting written by [`BudgetLedger::save_state`] on an
    /// identically-configured ledger.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let n = r.get_count(6)?;
        if n != self.tiers.len() {
            return Err(SnapshotError::Corrupt(format!(
                "budget ledger covers {} clusters, snapshot has {n}",
                self.tiers.len()
            )));
        }
        for c in 0..n {
            let t = r.get_u8()?;
            self.tiers[c] = FidelityTier::from_index(t as usize)
                .ok_or_else(|| SnapshotError::Corrupt(format!("bad FidelityTier {t}")))?;
            self.managed[c] = r.get_bool()?;
            self.calm[c] = r.get_u32()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalation_ladder() {
        let p = DegradationPolicy::default();
        assert_eq!(p.action_for(0.1), DegradationAction::Keep);
        assert_eq!(p.action_for(0.7), DegradationAction::Annotate);
        assert_eq!(p.action_for(1.5), DegradationAction::Widen);
        assert_eq!(p.action_for(5.0), DegradationAction::Fallback);
    }

    #[test]
    fn evaluate_maps_clusters_and_widens() {
        let p = DegradationPolicy::default();
        let r = p.evaluate(&[None, Some(0.1), Some(1.5), Some(3.0)]);
        assert_eq!(r.clusters.len(), 4);
        assert_eq!(r.clusters[0].action, DegradationAction::Keep);
        assert_eq!(r.clusters[1].action, DegradationAction::Keep);
        assert_eq!(r.clusters[2].action, DegradationAction::Widen);
        assert_eq!(r.clusters[3].action, DegradationAction::Fallback);
        assert_eq!(r.fallback_clusters(), vec![3]);
        assert!(r.degraded());
        assert!(r.uncertainty_factor > 1.0);
        assert_eq!(r.max_drift(), Some(3.0));
    }

    #[test]
    fn fallback_budget_keeps_worst() {
        let p = DegradationPolicy {
            max_fallbacks: 1,
            ..DegradationPolicy::default()
        };
        let r = p.evaluate(&[Some(2.5), Some(4.0), Some(3.0)]);
        assert_eq!(r.fallback_clusters(), vec![1]);
        // Demoted clusters still widen.
        assert_eq!(r.clusters[0].action, DegradationAction::Widen);
        assert_eq!(r.clusters[2].action, DegradationAction::Widen);
    }

    #[test]
    fn global_fallback_reverts_everything() {
        let p = DegradationPolicy {
            global_fallback_above: 3.0,
            max_fallbacks: 1,
            ..DegradationPolicy::default()
        };
        // One catastrophic cluster drags even unmonitored ones down to
        // packet level, ignoring the per-cluster budget.
        let r = p.evaluate(&[None, Some(0.1), Some(3.5)]);
        assert!(r
            .clusters
            .iter()
            .all(|c| c.action == DegradationAction::Fallback));
        assert_eq!(r.fallback_clusters().len(), 3);
        // Below the global bar the budget applies as usual.
        let r = p.evaluate(&[None, Some(0.1), Some(2.5)]);
        assert_eq!(r.fallback_clusters().len(), 1);
    }

    #[test]
    fn baseline_absorbs_scale_drift() {
        // Raw drift 2.2 would trigger fallback, but a calibrated baseline
        // of 2.0 (healthy scale shift) reveals only 0.2 of excess.
        let p = DegradationPolicy::default().with_baseline(vec![2.0, 2.0]);
        let r = p.evaluate(&[Some(2.2), Some(4.5)]);
        assert_eq!(r.clusters[0].action, DegradationAction::Keep);
        let excess = r.clusters[0].drift.expect("monitored");
        assert!((excess - 0.2).abs() < 1e-9, "excess {excess}");
        assert_eq!(r.clusters[1].action, DegradationAction::Fallback);
    }

    #[test]
    fn clean_run_is_untouched() {
        let p = DegradationPolicy::default();
        let r = p.evaluate(&[None, Some(0.0), Some(0.2)]);
        assert!(!r.degraded());
        assert_eq!(r.uncertainty_factor, 1.0);
        assert!(r.fallback_clusters().is_empty());
    }

    fn quiet_epochs(ledger: &mut BudgetLedger, drift: &[Option<f64>], from: u64, n: u64) -> Vec<TierSwitch> {
        let mut all = Vec::new();
        for e in from..from + n {
            all.extend(ledger.on_epoch(e, drift));
        }
        all
    }

    #[test]
    fn ledger_demotes_after_patience_and_promotes_on_drift() {
        let budget = AccuracyBudget {
            patience: 2,
            ..AccuracyBudget::default()
        };
        let mut ledger = BudgetLedger::new(budget, 3, &[1, 2]);
        assert_eq!(ledger.tier(0), FidelityTier::Packet);
        assert_eq!(ledger.tier(1), FidelityTier::Mimic);
        // One calm epoch is not enough; the second flips both managed
        // clusters to Flow.
        let calm = [None, Some(0.1), None];
        assert!(ledger.on_epoch(0, &calm).is_empty());
        let sw = ledger.on_epoch(1, &calm);
        assert_eq!(sw.len(), 2);
        assert!(sw
            .iter()
            .all(|s| s.from == FidelityTier::Mimic && s.to == FidelityTier::Flow && s.epoch == 1));
        assert_eq!(ledger.tier(2), FidelityTier::Flow);
        // Drift on cluster 2 promotes it immediately; cluster 1 stays Flow.
        let sw = ledger.on_epoch(2, &[None, Some(0.2), Some(1.7)]);
        assert_eq!(sw.len(), 1);
        assert_eq!(sw[0].cluster, 2);
        assert_eq!(sw[0].to, FidelityTier::Mimic);
        assert_eq!(ledger.tier(1), FidelityTier::Flow);
        // The unmanaged cluster never moves.
        assert_eq!(ledger.tier(0), FidelityTier::Packet);
    }

    #[test]
    fn ledger_noise_resets_patience() {
        let mut ledger = BudgetLedger::new(
            AccuracyBudget {
                patience: 3,
                ..AccuracyBudget::default()
            },
            1,
            &[0],
        );
        let calm = [Some(0.0)];
        let noisy = [Some(0.7)]; // above demote_below, below promote_above
        assert!(quiet_epochs(&mut ledger, &calm, 0, 2).is_empty());
        assert!(ledger.on_epoch(2, &noisy).is_empty());
        // Counter restarted: two more calm epochs still aren't enough.
        assert!(quiet_epochs(&mut ledger, &calm, 3, 2).is_empty());
        let sw = ledger.on_epoch(5, &calm);
        assert_eq!(sw.len(), 1);
        assert_eq!(sw[0].to, FidelityTier::Flow);
    }

    #[test]
    fn ledger_cap_keeps_worst_drift_deterministically() {
        let budget = AccuracyBudget {
            start: FidelityTier::Flow,
            max_above_flow: 2,
            ..AccuracyBudget::default()
        };
        let mut ledger = BudgetLedger::new(budget, 4, &[0, 1, 2, 3]);
        // All four want promotion, but only the two worst get it; the tie
        // between clusters 1 and 3 (same drift) goes to the lower index.
        let sw = ledger.on_epoch(0, &[Some(1.5), Some(2.0), Some(1.2), Some(2.0)]);
        assert_eq!(sw.len(), 2);
        let promoted: Vec<u32> = sw.iter().map(|s| s.cluster).collect();
        assert_eq!(promoted, vec![1, 3]);
        assert_eq!(ledger.tier(0), FidelityTier::Flow);
        assert_eq!(ledger.tier(2), FidelityTier::Flow);
        // Replaying the same inputs on a fresh ledger yields the identical
        // schedule — the decision is a pure function of its inputs.
        let mut replay = BudgetLedger::new(
            AccuracyBudget {
                start: FidelityTier::Flow,
                max_above_flow: 2,
                ..AccuracyBudget::default()
            },
            4,
            &[0, 1, 2, 3],
        );
        let sw2 = replay.on_epoch(0, &[Some(1.5), Some(2.0), Some(1.2), Some(2.0)]);
        assert_eq!(sw, sw2);
    }

    #[test]
    fn ledger_baseline_applies_to_promotion() {
        let budget = AccuracyBudget {
            start: FidelityTier::Flow,
            baseline: vec![2.0],
            ..AccuracyBudget::default()
        };
        let mut ledger = BudgetLedger::new(budget, 1, &[0]);
        // Raw 2.5 is only 0.5 over baseline: no promotion.
        assert!(ledger.on_epoch(0, &[Some(2.5)]).is_empty());
        let sw = ledger.on_epoch(1, &[Some(3.2)]);
        assert_eq!(sw.len(), 1);
        assert_eq!(sw[0].to, FidelityTier::Mimic);
    }

    #[test]
    fn ledger_state_round_trips_and_rejects_bad_tier() {
        use dcn_sim::snapshot::SnapReader;

        let mut ledger = BudgetLedger::new(AccuracyBudget::default(), 3, &[0, 2]);
        ledger.on_epoch(0, &[Some(0.0), None, Some(0.1)]);
        let mut w = SnapWriter::new();
        ledger.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = BudgetLedger::new(AccuracyBudget::default(), 3, &[0, 2]);
        let mut r = SnapReader::new(&bytes);
        restored.load_state(&mut r).expect("round trip");
        for c in 0..3 {
            assert_eq!(restored.tier(c), ledger.tier(c));
            assert_eq!(restored.calm[c as usize], ledger.calm[c as usize]);
        }

        // An out-of-range tier byte is a typed Corrupt error, not a panic.
        let mut bad = bytes.clone();
        bad[8] = 9; // first per-cluster tier byte follows the u64 count
        let mut r = SnapReader::new(&bad);
        let err = restored.load_state(&mut r).expect_err("bad tier byte");
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err:?}");

        // A cluster-count mismatch is also Corrupt.
        let mut small = BudgetLedger::new(AccuracyBudget::default(), 2, &[0]);
        let mut r = SnapReader::new(&bytes);
        let err = small.load_state(&mut r).expect_err("count mismatch");
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err:?}");
    }
}
