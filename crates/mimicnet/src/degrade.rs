//! Graceful degradation under drift (robustness layer over composition).
//!
//! MimicNet's accuracy rests on the Mimics seeing traffic like their
//! training traffic; the paper sidesteps violations by restricting itself
//! to failure-free networks (§4.2). This module handles the violation
//! instead of excluding it: when a deployed Mimic's drift score
//! ([`crate::drift`]) crosses policy thresholds, the estimate degrades
//! gracefully rather than silently returning garbage —
//!
//! 1. **Annotate** — the report flags the drifted clusters.
//! 2. **Widen** — headline percentiles gain an uncertainty factor scaled
//!    by the drift magnitude.
//! 3. **Fallback** — the worst clusters are swapped back to packet-level
//!    simulation and the estimate re-run, trading speed for fidelity
//!    exactly where the models stopped being trustworthy.

use serde::{Deserialize, Serialize};

/// Thresholds driving the escalation ladder. Scores come from
/// [`crate::drift::DriftMonitor::score`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DegradationPolicy {
    /// At or above this drift, a cluster is annotated as drifted.
    pub annotate_above: f64,
    /// At or above this drift, the report's uncertainty is widened.
    pub widen_above: f64,
    /// At or above this drift, the cluster is re-simulated at full
    /// fidelity.
    pub fallback_above: f64,
    /// Cap on how many clusters may fall back per estimate (bounds the
    /// cost of a pathological run; the observable cluster never counts).
    pub max_fallbacks: usize,
    /// At or above this excess drift on *any* cluster, every Mimic
    /// cluster falls back — including unmonitored ones. A drift this far
    /// out suggests a network-wide event (a fabric failure shifts traffic
    /// into every cluster, monitored or not), so per-cluster containment
    /// no longer applies; the estimate reverts to full packet-level
    /// simulation. Bypasses `max_fallbacks`. Default: infinity (off).
    pub global_fallback_above: f64,
    /// Per-cluster baseline drift, subtracted before thresholding.
    ///
    /// Even a healthy large composition drifts somewhat from the
    /// small-scale training distribution (more clusters shift the feature
    /// ranges); calibrating the baseline from a known-healthy shakedown
    /// run makes the thresholds measure *excess* drift — the part caused
    /// by events, not scale. Empty (the default) means a zero baseline.
    pub baseline: Vec<f64>,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy {
            annotate_above: 0.5,
            widen_above: 1.0,
            fallback_above: 2.0,
            max_fallbacks: 8,
            global_fallback_above: f64::INFINITY,
            baseline: Vec::new(),
        }
    }
}

/// What the policy decided for one cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradationAction {
    /// In distribution; keep the Mimic.
    Keep,
    /// Flag it in the report.
    Annotate,
    /// Flag it and widen the estimate's uncertainty.
    Widen,
    /// Replace it with packet-level simulation.
    Fallback,
}

/// Per-cluster outcome of applying a [`DegradationPolicy`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterDrift {
    pub cluster: u32,
    /// The drift the policy acted on — the monitor's score minus the
    /// policy's calibrated baseline (clamped at zero). `None` when the
    /// cluster is full fidelity or unmonitored.
    pub drift: Option<f64>,
    pub action: DegradationAction,
}

/// The policy's decision for a whole run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DegradationReport {
    pub clusters: Vec<ClusterDrift>,
    /// Multiplier (≥ 1) for the estimate's uncertainty band.
    pub uncertainty_factor: f64,
}

impl DegradationReport {
    /// Clusters the policy wants re-simulated at full fidelity.
    pub fn fallback_clusters(&self) -> Vec<u32> {
        self.clusters
            .iter()
            .filter(|c| c.action == DegradationAction::Fallback)
            .map(|c| c.cluster)
            .collect()
    }

    /// Any action beyond Keep anywhere?
    pub fn degraded(&self) -> bool {
        self.clusters
            .iter()
            .any(|c| c.action != DegradationAction::Keep)
    }

    /// Highest drift observed across clusters.
    pub fn max_drift(&self) -> Option<f64> {
        self.clusters
            .iter()
            .filter_map(|c| c.drift)
            .fold(None, |acc, d| Some(acc.map_or(d, |a: f64| a.max(d))))
    }
}

impl DegradationPolicy {
    /// Install a per-cluster drift baseline (see [`Self::baseline`]),
    /// typically `cluster_drift` from a known-healthy run with `None`
    /// entries zeroed.
    pub fn with_baseline(mut self, baseline: Vec<f64>) -> DegradationPolicy {
        self.baseline = baseline;
        self
    }

    /// Classify one drift score.
    pub fn action_for(&self, drift: f64) -> DegradationAction {
        if drift >= self.fallback_above {
            DegradationAction::Fallback
        } else if drift >= self.widen_above {
            DegradationAction::Widen
        } else if drift >= self.annotate_above {
            DegradationAction::Annotate
        } else {
            DegradationAction::Keep
        }
    }

    /// Apply the policy to a run's per-cluster drift vector (as produced
    /// in [`dcn_sim::instrument::Metrics::cluster_drift`]). When more
    /// than `max_fallbacks` clusters qualify, the worst ones win and the
    /// rest are demoted to [`DegradationAction::Widen`].
    pub fn evaluate(&self, cluster_drift: &[Option<f64>]) -> DegradationReport {
        let mut clusters: Vec<ClusterDrift> = cluster_drift
            .iter()
            .enumerate()
            .map(|(c, &drift)| {
                let excess =
                    drift.map(|d| (d - self.baseline.get(c).copied().unwrap_or(0.0)).max(0.0));
                ClusterDrift {
                    cluster: c as u32,
                    drift: excess,
                    action: excess.map_or(DegradationAction::Keep, |d| self.action_for(d)),
                }
            })
            .collect();
        // A cluster this far out signals a network-wide event: revert the
        // whole composition, unmonitored clusters included.
        if clusters
            .iter()
            .any(|c| c.drift.is_some_and(|d| d >= self.global_fallback_above))
        {
            for c in &mut clusters {
                c.action = DegradationAction::Fallback;
            }
            let worst = clusters.iter().filter_map(|c| c.drift).fold(0.0, f64::max);
            return DegradationReport {
                clusters,
                uncertainty_factor: 1.0
                    + (worst - self.widen_above).max(0.0) / self.widen_above.max(1e-9),
            };
        }
        // Enforce the fallback budget, keeping the worst offenders.
        let mut fallbacks: Vec<usize> = clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.action == DegradationAction::Fallback)
            .map(|(i, _)| i)
            .collect();
        if fallbacks.len() > self.max_fallbacks {
            fallbacks.sort_by(|&a, &b| {
                let da = clusters[a].drift.unwrap_or(0.0);
                let db = clusters[b].drift.unwrap_or(0.0);
                db.partial_cmp(&da).expect("finite drift scores")
            });
            for &i in &fallbacks[self.max_fallbacks..] {
                clusters[i].action = DegradationAction::Widen;
            }
        }
        let worst = clusters
            .iter()
            .filter(|c| {
                matches!(
                    c.action,
                    DegradationAction::Widen | DegradationAction::Fallback
                )
            })
            .filter_map(|c| c.drift)
            .fold(0.0f64, f64::max);
        // Linear widening in drift beyond the widen threshold; 1.0 when
        // nothing crossed it.
        let uncertainty_factor = if worst >= self.widen_above {
            1.0 + (worst - self.widen_above) / self.widen_above.max(1e-9)
        } else {
            1.0
        };
        DegradationReport {
            clusters,
            uncertainty_factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalation_ladder() {
        let p = DegradationPolicy::default();
        assert_eq!(p.action_for(0.1), DegradationAction::Keep);
        assert_eq!(p.action_for(0.7), DegradationAction::Annotate);
        assert_eq!(p.action_for(1.5), DegradationAction::Widen);
        assert_eq!(p.action_for(5.0), DegradationAction::Fallback);
    }

    #[test]
    fn evaluate_maps_clusters_and_widens() {
        let p = DegradationPolicy::default();
        let r = p.evaluate(&[None, Some(0.1), Some(1.5), Some(3.0)]);
        assert_eq!(r.clusters.len(), 4);
        assert_eq!(r.clusters[0].action, DegradationAction::Keep);
        assert_eq!(r.clusters[1].action, DegradationAction::Keep);
        assert_eq!(r.clusters[2].action, DegradationAction::Widen);
        assert_eq!(r.clusters[3].action, DegradationAction::Fallback);
        assert_eq!(r.fallback_clusters(), vec![3]);
        assert!(r.degraded());
        assert!(r.uncertainty_factor > 1.0);
        assert_eq!(r.max_drift(), Some(3.0));
    }

    #[test]
    fn fallback_budget_keeps_worst() {
        let p = DegradationPolicy {
            max_fallbacks: 1,
            ..DegradationPolicy::default()
        };
        let r = p.evaluate(&[Some(2.5), Some(4.0), Some(3.0)]);
        assert_eq!(r.fallback_clusters(), vec![1]);
        // Demoted clusters still widen.
        assert_eq!(r.clusters[0].action, DegradationAction::Widen);
        assert_eq!(r.clusters[2].action, DegradationAction::Widen);
    }

    #[test]
    fn global_fallback_reverts_everything() {
        let p = DegradationPolicy {
            global_fallback_above: 3.0,
            max_fallbacks: 1,
            ..DegradationPolicy::default()
        };
        // One catastrophic cluster drags even unmonitored ones down to
        // packet level, ignoring the per-cluster budget.
        let r = p.evaluate(&[None, Some(0.1), Some(3.5)]);
        assert!(r
            .clusters
            .iter()
            .all(|c| c.action == DegradationAction::Fallback));
        assert_eq!(r.fallback_clusters().len(), 3);
        // Below the global bar the budget applies as usual.
        let r = p.evaluate(&[None, Some(0.1), Some(2.5)]);
        assert_eq!(r.fallback_clusters().len(), 1);
    }

    #[test]
    fn baseline_absorbs_scale_drift() {
        // Raw drift 2.2 would trigger fallback, but a calibrated baseline
        // of 2.0 (healthy scale shift) reveals only 0.2 of excess.
        let p = DegradationPolicy::default().with_baseline(vec![2.0, 2.0]);
        let r = p.evaluate(&[Some(2.2), Some(4.5)]);
        assert_eq!(r.clusters[0].action, DegradationAction::Keep);
        let excess = r.clusters[0].drift.expect("monitored");
        assert!((excess - 0.2).abs() < 1e-9, "excess {excess}");
        assert_eq!(r.clusters[1].action, DegradationAction::Fallback);
    }

    #[test]
    fn clean_run_is_untouched() {
        let p = DegradationPolicy::default();
        let r = p.evaluate(&[None, Some(0.0), Some(0.2)]);
        assert!(!r.degraded());
        assert_eq!(r.uncertainty_factor, 1.0);
        assert!(r.fallback_clusters().is_empty());
    }
}
