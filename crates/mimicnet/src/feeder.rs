//! Feeder models: generative stand-ins for inter-Mimic traffic (paper §6).
//!
//! Internal models are trained on *all* external traffic of the modeled
//! cluster, but in a composition the Mimic-Mimic share of that traffic no
//! longer exists as packets. Feeders re-create its *effect*: from the
//! small-scale trace MimicNet derives "characteristic packet interarrival
//! distributions for all external flows, separated by their direction",
//! observing (as the paper and the self-similarity literature do) that
//! "simple log-normal or Pareto distributions produced reasonable
//! approximations". At composition time the feeder draws synthetic packets
//! from the fitted distribution — scaled by how much of the cluster's
//! demand is now invisible — passes their feature vectors through the
//! internal models to update the LSTM hidden state, "and immediately
//! discard[s] any output".

use crate::features::PacketView;
use dcn_sim::packet::{Ecn, PacketKind};
use dcn_sim::rng::SplitMix64;
use dcn_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Fitted interarrival + size model for one direction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DirFit {
    /// Log-normal parameters of interarrival times (seconds).
    pub mu: f64,
    pub sigma: f64,
    /// Observed boundary packet rate in the training trace, packets/s.
    pub rate_pps: f64,
    /// Wire-size quantiles (32 evenly spaced) for size sampling.
    pub size_quantiles: Vec<f64>,
}

impl DirFit {
    /// Fit from interarrival samples (seconds) and wire sizes (bytes).
    ///
    /// Log-normal fit by matching moments of `ln(dt)`; zero interarrivals
    /// (simultaneous boundary events) are clamped to 1 ns.
    pub fn fit(interarrivals: &[f64], sizes: &[f64]) -> DirFit {
        assert!(!interarrivals.is_empty(), "no interarrival samples");
        assert!(!sizes.is_empty(), "no size samples");
        let logs: Vec<f64> = interarrivals.iter().map(|&x| x.max(1e-9).ln()).collect();
        let mu = logs.iter().sum::<f64>() / logs.len() as f64;
        let var = logs.iter().map(|l| (l - mu) * (l - mu)).sum::<f64>() / logs.len() as f64;
        let sigma = var.sqrt().clamp(1e-6, 4.0);
        let total_t: f64 = interarrivals.iter().sum();
        let rate_pps = if total_t > 0.0 {
            interarrivals.len() as f64 / total_t
        } else {
            1.0
        };
        let mut sorted = sizes.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let size_quantiles = (0..32)
            .map(|i| sorted[(i * (sorted.len() - 1)) / 31])
            .collect();
        DirFit {
            mu,
            sigma,
            rate_pps,
            size_quantiles,
        }
    }

    /// Mean of the fitted log-normal, seconds.
    pub fn mean_interarrival(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Both directions' fits.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FeederFit {
    pub ingress: DirFit,
    pub egress: DirFit,
}

/// The fraction of a Mimic's external traffic that is invisible (and thus
/// feeder-supplied) in an `n`-cluster composition.
///
/// In the 2-cluster training run *all* inter-cluster traffic touches the
/// (future) observable cluster. At `n` clusters, destinations are uniform
/// over `n−1` remote clusters, so only `1/(n−1)` of the demand still
/// exists as real packets; the feeder supplies the other `(n−2)/(n−1)`.
pub fn invisible_fraction(n_clusters: u32) -> f64 {
    assert!(n_clusters >= 2);
    (n_clusters as f64 - 2.0) / (n_clusters as f64 - 1.0)
}

/// A running feeder for one direction of one Mimic.
#[derive(Clone, Debug)]
pub struct Feeder {
    fit: DirFit,
    /// Multiplier applied to sampled interarrivals so the synthetic rate
    /// equals `rate_pps × invisible_fraction`.
    dt_scale: f64,
    /// Next injection time; `None` when the feeder is disabled (n = 2).
    next: Option<SimTime>,
    rng: SplitMix64,
    /// Local topology dimensions for sampling endpoints.
    racks: u32,
    hosts_per_rack: u32,
    aggs: u32,
    cores: u32,
}

impl Feeder {
    /// Build for an `n_clusters` composition.
    pub fn new(
        fit: DirFit,
        n_clusters: u32,
        racks: u32,
        hosts_per_rack: u32,
        aggs: u32,
        cores: u32,
        seed: u64,
    ) -> Feeder {
        let frac = invisible_fraction(n_clusters);
        let mut rng = SplitMix64::derive(seed, 0xFEED);
        let (next, dt_scale) = if frac > 0.0 && fit.rate_pps > 0.0 {
            let target_mean = 1.0 / (fit.rate_pps * frac);
            let dt_scale = target_mean / fit.mean_interarrival();
            let first = fit_sample(&fit, dt_scale, &mut rng);
            (Some(SimTime::ZERO + SimDuration::from_secs_f64(first)), dt_scale)
        } else {
            (None, 1.0)
        };
        Feeder {
            fit,
            dt_scale,
            next,
            rng,
            racks,
            hosts_per_rack,
            aggs,
            cores,
        }
    }

    /// When this feeder next wants to inject.
    pub fn next_time(&self) -> Option<SimTime> {
        self.next
    }

    /// Serialize the feeder's mutable state (injection cursor and RNG) for
    /// a checkpoint; the fit and topology dimensions are configuration.
    pub fn save_state(&self, w: &mut dcn_sim::snapshot::SnapWriter) {
        w.put_opt_u64(self.next.map(SimTime::as_nanos));
        w.put_u64(self.rng.state());
    }

    /// Overwrite the feeder's mutable state from a checkpoint.
    pub fn load_state(
        &mut self,
        r: &mut dcn_sim::snapshot::SnapReader<'_>,
    ) -> Result<(), dcn_sim::snapshot::SnapshotError> {
        self.next = r.get_opt_u64()?.map(SimTime);
        self.rng.set_state(r.get_u64()?);
        Ok(())
    }

    /// If due at `now`, synthesize one packet view (stamped with its own
    /// due time, so interarrival features stay exact even when wakeups are
    /// batched) and schedule the next injection. Returns `None` when not
    /// due.
    pub fn fire(&mut self, now: SimTime) -> Option<PacketView> {
        let due = self.next?;
        if due > now {
            return None;
        }
        let dt = fit_sample(&self.fit, self.dt_scale, &mut self.rng);
        self.next = Some(due + SimDuration::from_secs_f64(dt.max(1e-9)));
        let size = self.fit.size_quantiles[self.rng.next_below(32) as usize];
        Some(PacketView {
            time: due,
            wire_bytes: size.max(40.0) as u32,
            rack: self.rng.next_below(self.racks as u64) as u32,
            server: self.rng.next_below(self.hosts_per_rack as u64) as u32,
            agg: self.rng.next_below(self.aggs as u64) as u32,
            core: self.rng.next_below(self.cores as u64) as u32,
            kind: PacketKind::Data,
            ecn: Ecn::Ect,
            prio: 0,
        })
    }
}

fn fit_sample(fit: &DirFit, dt_scale: f64, rng: &mut SplitMix64) -> f64 {
    rng.log_normal(fit.mu, fit.sigma) * dt_scale
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_fit() -> DirFit {
        // Interarrivals around 1 ms; sizes mixed.
        let inter: Vec<f64> = (0..1000).map(|i| 0.001 * (1.0 + 0.2 * ((i % 7) as f64 - 3.0) / 3.0)).collect();
        let sizes: Vec<f64> = (0..1000).map(|i| if i % 3 == 0 { 40.0 } else { 1500.0 }).collect();
        DirFit::fit(&inter, &sizes)
    }

    #[test]
    fn fit_recovers_rate() {
        let f = toy_fit();
        assert!((f.rate_pps - 1000.0).abs() / 1000.0 < 0.05, "rate {}", f.rate_pps);
        assert!((f.mean_interarrival() - 0.001).abs() < 2e-4);
    }

    #[test]
    fn lognormal_fit_on_lognormal_data() {
        let mut rng = SplitMix64::new(3);
        let data: Vec<f64> = (0..20_000).map(|_| rng.log_normal(-7.0, 0.5)).collect();
        let f = DirFit::fit(&data, &[1500.0]);
        assert!((f.mu + 7.0).abs() < 0.02, "mu {}", f.mu);
        assert!((f.sigma - 0.5).abs() < 0.02, "sigma {}", f.sigma);
    }

    #[test]
    fn invisible_fraction_matches_paper_analysis() {
        assert_eq!(invisible_fraction(2), 0.0);
        assert_eq!(invisible_fraction(3), 0.5);
        assert!((invisible_fraction(128) - 126.0 / 127.0).abs() < 1e-12);
    }

    #[test]
    fn feeder_disabled_at_two_clusters() {
        let f = Feeder::new(toy_fit(), 2, 2, 2, 2, 2, 1);
        assert!(f.next_time().is_none());
    }

    #[test]
    fn feeder_rate_scales_with_cluster_count() {
        // Count injections over simulated 10 s for n = 3 (half rate) vs
        // n = 128 (nearly full rate).
        let count = |n: u32| {
            let mut f = Feeder::new(toy_fit(), n, 2, 2, 2, 2, 5);
            let end = SimTime::from_secs_f64(10.0);
            let mut k = 0u64;
            while let Some(t) = f.next_time() {
                if t > end {
                    break;
                }
                assert!(f.fire(t).is_some());
                k += 1;
            }
            k as f64 / 10.0
        };
        let r3 = count(3);
        let r128 = count(128);
        assert!((r3 - 500.0).abs() / 500.0 < 0.15, "n=3 rate {r3}");
        assert!(
            (r128 - 1000.0 * 126.0 / 127.0).abs() / 1000.0 < 0.15,
            "n=128 rate {r128}"
        );
        assert!(r128 > r3 * 1.5);
    }

    #[test]
    fn feeder_views_are_in_local_ranges() {
        let mut f = Feeder::new(toy_fit(), 4, 2, 3, 2, 4, 9);
        for _ in 0..200 {
            let now = f.next_time().unwrap();
            let v = f.fire(now).unwrap();
            assert!(v.rack < 2);
            assert!(v.server < 3);
            assert!(v.agg < 2);
            assert!(v.core < 4);
            assert!(v.wire_bytes >= 40);
        }
    }

    #[test]
    fn fire_before_due_returns_none() {
        let mut f = Feeder::new(toy_fit(), 4, 2, 2, 2, 2, 9);
        let due = f.next_time().unwrap();
        assert!(f.fire(SimTime::ZERO).is_none() || due == SimTime::ZERO);
    }
}
