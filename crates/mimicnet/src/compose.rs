//! Composing Mimics into a large-scale simulation (paper §7.1).
//!
//! "An N-cluster MimicNet simulation consists of a single real cluster,
//! N−1 Mimic clusters, and a proportional number of Core switches. …
//! Aside from the number of clusters, all other parameters are kept
//! constant from the small-scale to the final simulation."

use crate::batch::BatchedMimicFleet;
use crate::degrade::AccuracyBudget;
use crate::error::{ComposeRunError, PipelineError};
use crate::mimic::{LearnedMimic, TrainedMimic};
use crate::tier::{AdaptiveFleet, CorrectionHead};
use dcn_sim::config::SimConfig;
use dcn_sim::instrument::Metrics;
use dcn_sim::mimic::BatchClusterModel;
use dcn_sim::pdes::{
    run_partitioned_opts, run_partitioned_setup, CheckpointPlan, PdesRunOpts, TierPlan,
};
use dcn_sim::simulator::Simulation;
use dcn_sim::topology::{FatTree, NodeId};
use dcn_transport::Protocol;
use std::path::Path;

/// Cluster index of the observable cluster in compositions.
pub const OBSERVABLE: u32 = 0;

/// The cluster a host belongs to, as a typed error instead of a panic
/// when the node is not a host (core switches have no cluster).
pub fn host_cluster(topo: &FatTree, node: NodeId) -> Result<u32, PipelineError> {
    topo.cluster_of(node)
        .ok_or_else(|| PipelineError::MalformedTopology {
            node,
            reason: "node belongs to no cluster (not a host/ToR/Agg)".into(),
        })
}

/// Build the `n_clusters` hybrid simulation: cluster [`OBSERVABLE`] (and
/// the cores) at full fidelity, every other cluster a [`LearnedMimic`].
///
/// `base` is the *small-scale* configuration used for training — only its
/// cluster count is changed, per the paper.
///
/// # Panics
/// On an invalid composition; use [`try_compose`] for a typed error.
pub fn compose(
    base: SimConfig,
    n_clusters: u32,
    protocol: Protocol,
    trained: &TrainedMimic,
) -> Simulation {
    try_compose(base, n_clusters, protocol, trained).expect("valid composition")
}

/// [`compose`], surfacing invalid input as [`PipelineError`].
pub fn try_compose(
    base: SimConfig,
    n_clusters: u32,
    protocol: Protocol,
    trained: &TrainedMimic,
) -> Result<Simulation, PipelineError> {
    try_compose_partial(base, n_clusters, protocol, trained, &[])
}

/// [`try_compose`] with selected clusters kept at full fidelity instead of
/// receiving a Mimic — the mechanism behind graceful degradation
/// ([`crate::degrade`]): drifted clusters fall back to packet-level
/// simulation while the rest stay cheap. Mimic seeds depend only on the
/// cluster index, so clusters that keep their Mimic behave identically to
/// the all-Mimic composition.
pub fn try_compose_partial(
    base: SimConfig,
    n_clusters: u32,
    protocol: Protocol,
    trained: &TrainedMimic,
    full_fidelity: &[u32],
) -> Result<Simulation, PipelineError> {
    if n_clusters < 2 {
        return Err(PipelineError::InvalidComposition {
            reason: format!("a composition needs at least two clusters, got {n_clusters}"),
        });
    }
    if let Some(&c) = full_fidelity.iter().find(|&&c| c >= n_clusters) {
        return Err(PipelineError::InvalidComposition {
            reason: format!(
                "full-fidelity cluster {c} is out of range for {n_clusters} clusters"
            ),
        });
    }
    let mut cfg = base;
    cfg.topo.clusters = n_clusters;
    cfg.queue = protocol.queue_setup(cfg.queue);
    cfg.validate()?;
    let mut sim = Simulation::with_transport(cfg, protocol.factory());
    for c in 0..n_clusters {
        if c == OBSERVABLE || full_fidelity.contains(&c) {
            continue;
        }
        let mimic = LearnedMimic::new(
            trained.clone(),
            cfg.topo,
            n_clusters,
            cfg.seed ^ (0xC0DE_0000 + c as u64),
        );
        sim.set_cluster_model(c, Box::new(mimic));
    }
    Ok(sim)
}

/// [`compose`] with the Mimics behind the engine's batched aggregation
/// point: one [`BatchedMimicFleet`] serves every non-observable cluster,
/// and boundary packets queued across an event window share weight sweeps
/// in batched LSTM forwards. Per-cluster seeds match [`compose`], so the
/// fleet's feeder streams are identical to the scalar composition's.
///
/// # Panics
/// On an invalid composition; use [`try_compose_batched`] for a typed
/// error.
pub fn compose_batched(
    base: SimConfig,
    n_clusters: u32,
    protocol: Protocol,
    trained: &TrainedMimic,
) -> Simulation {
    try_compose_batched(base, n_clusters, protocol, trained).expect("valid composition")
}

/// [`compose_batched`], surfacing invalid input as [`PipelineError`].
pub fn try_compose_batched(
    base: SimConfig,
    n_clusters: u32,
    protocol: Protocol,
    trained: &TrainedMimic,
) -> Result<Simulation, PipelineError> {
    let (cfg, mut sim) = composed_engine(base, n_clusters, protocol)?;
    sim.set_batch_model(Box::new(batched_fleet(&cfg, n_clusters, trained)));
    Ok(sim)
}

/// [`try_compose_batched`] with batched flushes overlapped onto a helper
/// thread ([`Simulation::set_batch_overlap`]): the helper runs the
/// previous chunk's `infer_batch` while the event thread processes the
/// current window's non-boundary events. Verdicts are chunking-invariant
/// and re-injected at `enqueue + latency`, so the run is bit-identical to
/// [`try_compose_batched`] (and to the scalar/PDES paths) — overlap is a
/// pure wall-clock optimization.
pub fn try_compose_batched_overlapped(
    base: SimConfig,
    n_clusters: u32,
    protocol: Protocol,
    trained: &TrainedMimic,
) -> Result<Simulation, PipelineError> {
    let mut sim = try_compose_batched(base, n_clusters, protocol, trained)?;
    sim.set_batch_overlap(true);
    Ok(sim)
}

/// [`compose_heterogeneous`] behind the batched aggregation point: lanes
/// batch within each bundle group. Seeds match the scalar heterogeneous
/// composition.
pub fn try_compose_heterogeneous_batched(
    base: SimConfig,
    n_clusters: u32,
    protocol: Protocol,
    bundles: &[TrainedMimic],
    assign: impl Fn(u32) -> usize,
) -> Result<Simulation, PipelineError> {
    if bundles.is_empty() {
        return Err(PipelineError::InvalidComposition {
            reason: "no trained bundles supplied".into(),
        });
    }
    let (cfg, mut sim) = composed_engine(base, n_clusters, protocol)?;
    let mut cluster_assign = Vec::new();
    for c in 0..n_clusters {
        if c == OBSERVABLE {
            continue;
        }
        let idx = assign(c);
        if idx >= bundles.len() {
            return Err(PipelineError::InvalidComposition {
                reason: format!(
                    "assignment for cluster {c} points at bundle {idx}, but only {} exist",
                    bundles.len()
                ),
            });
        }
        cluster_assign.push((c, idx, cfg.seed ^ (0x4E7E_0000 + c as u64)));
    }
    let fleet = BatchedMimicFleet::new_heterogeneous(
        bundles.to_vec(),
        cfg.topo,
        n_clusters,
        &cluster_assign,
    );
    sim.set_batch_model(Box::new(fleet));
    Ok(sim)
}

/// Run the batched composition across `partitions` PDES logical processes
/// and return the merged metrics. Every LP installs the full fleet (a
/// cluster's lane only advances on the LP that owns the cluster), and the
/// conservative window shrinks to `min(link latency, latency floor)` so
/// batched re-injections always land at or beyond the next barrier.
/// Bit-identical to the sequential [`compose_batched`] run (asserted by
/// the integration suite).
pub fn run_composed_partitioned(
    base: SimConfig,
    n_clusters: u32,
    protocol: Protocol,
    trained: &TrainedMimic,
    partitions: usize,
) -> Result<Metrics, PipelineError> {
    run_composed_partitioned_full(base, n_clusters, protocol, trained, partitions, false, false)
}

/// [`run_composed_partitioned`] with each LP's flushes overlapped onto its
/// own helper thread. Bit-identical to the synchronous partitioned run
/// (and to sequential) — asserted by the concurrency suite.
pub fn run_composed_partitioned_overlapped(
    base: SimConfig,
    n_clusters: u32,
    protocol: Protocol,
    trained: &TrainedMimic,
    partitions: usize,
) -> Result<Metrics, PipelineError> {
    run_composed_partitioned_full(base, n_clusters, protocol, trained, partitions, false, true)
}

/// [`run_composed_partitioned`] with optional engine tracing: when `trace`
/// is set, every LP records its observability report (window spans,
/// per-event-type wall time, flush batch sizes, barrier stalls, fleet lane
/// occupancy) and the reports arrive merged in `Metrics::obs`. Tracing
/// never changes the simulated trajectory.
pub fn run_composed_partitioned_obs(
    base: SimConfig,
    n_clusters: u32,
    protocol: Protocol,
    trained: &TrainedMimic,
    partitions: usize,
    trace: bool,
) -> Result<Metrics, PipelineError> {
    run_composed_partitioned_full(base, n_clusters, protocol, trained, partitions, trace, false)
}

/// [`run_composed_partitioned`] with crash resilience: optionally cut a
/// consistent cross-LP checkpoint every `checkpoint.every` of simulated
/// time, and/or resume from the committed cut in `resume_from`. A resumed
/// run's final metrics are bit-identical to an uninterrupted one — flush
/// chunking invariance means settling the fleet's pending batch at the
/// checkpoint barrier never changes a verdict. Works for sequential runs
/// too (`partitions == 1`).
#[allow(clippy::too_many_arguments)]
pub fn run_composed_partitioned_checkpointed(
    base: SimConfig,
    n_clusters: u32,
    protocol: Protocol,
    trained: &TrainedMimic,
    partitions: usize,
    overlap: bool,
    checkpoint: Option<&CheckpointPlan>,
    resume_from: Option<&Path>,
) -> Result<Metrics, ComposeRunError> {
    let opts = PdesRunOpts {
        checkpoint: checkpoint.cloned(),
        resume_from: resume_from.map(Path::to_path_buf),
        ..PdesRunOpts::default()
    };
    run_composed_partitioned_opts(base, n_clusters, protocol, trained, partitions, overlap, &opts)
}

/// [`run_composed_partitioned_checkpointed`] with the full option set:
/// state digests, flight recorder + SLO dumps, early stop, pinned-
/// generation resume, and the crash drill ([`PdesRunOpts`]). This is the
/// entry point `dcn diverge` replays through.
pub fn run_composed_partitioned_opts(
    base: SimConfig,
    n_clusters: u32,
    protocol: Protocol,
    trained: &TrainedMimic,
    partitions: usize,
    overlap: bool,
    opts: &PdesRunOpts,
) -> Result<Metrics, ComposeRunError> {
    let (cfg, _) = composed_engine(base, n_clusters, protocol)?;
    let floor = batched_fleet(&cfg, n_clusters, trained).latency_floor();
    let window = cfg.link.latency.min(floor);
    run_partitioned_opts(
        cfg,
        partitions,
        window,
        &|| protocol.factory(),
        &|sim| {
            sim.set_batch_model(Box::new(batched_fleet(&cfg, n_clusters, trained)));
            if overlap {
                sim.set_batch_overlap(true);
            }
        },
        opts,
    )
    .map_err(ComposeRunError::from)
}

/// Run an *adaptive* composition: the Mimic'ed clusters sit behind an
/// [`AdaptiveFleet`] whose [`AccuracyBudget`] promotes/demotes them
/// between the Mimic and Flow tiers at every `plan` epoch barrier, with
/// per-cluster drift exchanged across LPs so every partition applies the
/// identical tier schedule. Checkpoint/resume cuts compose with tier
/// transitions: the ledger and Flow-tier state are part of the snapshot,
/// and epochs fire *before* the checkpoint branch at the same barrier, so
/// a restored run never replays a decision.
#[allow(clippy::too_many_arguments)]
pub fn run_composed_adaptive_checkpointed(
    base: SimConfig,
    n_clusters: u32,
    protocol: Protocol,
    trained: &TrainedMimic,
    partitions: usize,
    overlap: bool,
    budget: &AccuracyBudget,
    plan: &TierPlan,
    correction: Option<&CorrectionHead>,
    checkpoint: Option<&CheckpointPlan>,
    resume_from: Option<&Path>,
) -> Result<Metrics, ComposeRunError> {
    let opts = PdesRunOpts {
        checkpoint: checkpoint.cloned(),
        resume_from: resume_from.map(Path::to_path_buf),
        ..PdesRunOpts::default()
    };
    run_composed_adaptive_opts(
        base, n_clusters, protocol, trained, partitions, overlap, budget, plan, correction, &opts,
    )
}

/// [`run_composed_adaptive_checkpointed`] with the full [`PdesRunOpts`]
/// set. `plan` overrides `opts.tiers` — an adaptive run always has tier
/// epochs.
#[allow(clippy::too_many_arguments)]
pub fn run_composed_adaptive_opts(
    base: SimConfig,
    n_clusters: u32,
    protocol: Protocol,
    trained: &TrainedMimic,
    partitions: usize,
    overlap: bool,
    budget: &AccuracyBudget,
    plan: &TierPlan,
    correction: Option<&CorrectionHead>,
    opts: &PdesRunOpts,
) -> Result<Metrics, ComposeRunError> {
    let (cfg, _) = composed_engine(base, n_clusters, protocol)?;
    let floor = adaptive_fleet(&cfg, n_clusters, trained, budget, correction).latency_floor();
    let window = cfg.link.latency.min(floor);
    let mut opts = opts.clone();
    opts.tiers = Some(*plan);
    run_partitioned_opts(
        cfg,
        partitions,
        window,
        &|| protocol.factory(),
        &|sim| {
            sim.set_batch_model(Box::new(adaptive_fleet(
                &cfg, n_clusters, trained, budget, correction,
            )));
            if overlap {
                sim.set_batch_overlap(true);
            }
        },
        &opts,
    )
    .map_err(ComposeRunError::from)
}

/// [`run_composed_adaptive_checkpointed`] without crash resilience.
#[allow(clippy::too_many_arguments)]
pub fn run_composed_adaptive(
    base: SimConfig,
    n_clusters: u32,
    protocol: Protocol,
    trained: &TrainedMimic,
    partitions: usize,
    budget: &AccuracyBudget,
    plan: &TierPlan,
    correction: Option<&CorrectionHead>,
) -> Result<Metrics, ComposeRunError> {
    run_composed_adaptive_checkpointed(
        base, n_clusters, protocol, trained, partitions, false, budget, plan, correction, None,
        None,
    )
}

fn run_composed_partitioned_full(
    base: SimConfig,
    n_clusters: u32,
    protocol: Protocol,
    trained: &TrainedMimic,
    partitions: usize,
    trace: bool,
    overlap: bool,
) -> Result<Metrics, PipelineError> {
    let (cfg, _) = composed_engine(base, n_clusters, protocol)?;
    let floor = batched_fleet(&cfg, n_clusters, trained).latency_floor();
    let window = cfg.link.latency.min(floor);
    Ok(run_partitioned_setup(
        cfg,
        partitions,
        window,
        &|| protocol.factory(),
        &|sim| {
            sim.set_batch_model(Box::new(batched_fleet(&cfg, n_clusters, trained)));
            if overlap {
                sim.set_batch_overlap(true);
            }
            if trace {
                sim.enable_obs();
            }
        },
    ))
}

/// Shared composition plumbing: scale the base config, validate it, and
/// build the bare engine.
pub(crate) fn composed_engine(
    base: SimConfig,
    n_clusters: u32,
    protocol: Protocol,
) -> Result<(SimConfig, Simulation), PipelineError> {
    if n_clusters < 2 {
        return Err(PipelineError::InvalidComposition {
            reason: format!("a composition needs at least two clusters, got {n_clusters}"),
        });
    }
    let mut cfg = base;
    cfg.topo.clusters = n_clusters;
    cfg.queue = protocol.queue_setup(cfg.queue);
    cfg.validate()?;
    let sim = Simulation::with_transport(cfg, protocol.factory());
    Ok((cfg, sim))
}

/// The adaptive fleet for `cfg`: the homogeneous Mimic fleet (seeded
/// exactly like [`compose`]) wrapped under `budget`.
pub fn adaptive_fleet(
    cfg: &SimConfig,
    n_clusters: u32,
    trained: &TrainedMimic,
    budget: &AccuracyBudget,
    correction: Option<&CorrectionHead>,
) -> AdaptiveFleet {
    AdaptiveFleet::new(
        batched_fleet(cfg, n_clusters, trained),
        cfg,
        budget.clone(),
        correction.copied(),
    )
}

/// The homogeneous fleet for `cfg`, seeded exactly like [`compose`].
pub(crate) fn batched_fleet(
    cfg: &SimConfig,
    n_clusters: u32,
    trained: &TrainedMimic,
) -> BatchedMimicFleet {
    let cluster_seeds: Vec<(u32, u64)> = (0..n_clusters)
        .filter(|&c| c != OBSERVABLE)
        .map(|c| (c, cfg.seed ^ (0xC0DE_0000 + c as u64)))
        .collect();
    BatchedMimicFleet::new(trained.clone(), cfg.topo, n_clusters, &cluster_seeds)
}

/// Heterogeneous composition (paper Appendix A's relaxation: "it may be
/// possible to relax the symmetry assumption by training distinct models
/// for different types of clusters, e.g., frontend clusters, Hadoop
/// clusters, and storage clusters"): each non-observable cluster `c` uses
/// `bundles[assign(c)]`.
///
/// # Panics
/// On an invalid composition (fewer than 2 clusters, no bundles, or an
/// out-of-range `assign` index); use [`try_compose_heterogeneous`] for a
/// typed error.
pub fn compose_heterogeneous(
    base: SimConfig,
    n_clusters: u32,
    protocol: Protocol,
    bundles: &[TrainedMimic],
    assign: impl Fn(u32) -> usize,
) -> Simulation {
    try_compose_heterogeneous(base, n_clusters, protocol, bundles, assign)
        .expect("valid composition")
}

/// [`compose_heterogeneous`], surfacing invalid input as
/// [`PipelineError`].
pub fn try_compose_heterogeneous(
    base: SimConfig,
    n_clusters: u32,
    protocol: Protocol,
    bundles: &[TrainedMimic],
    assign: impl Fn(u32) -> usize,
) -> Result<Simulation, PipelineError> {
    if n_clusters < 2 {
        return Err(PipelineError::InvalidComposition {
            reason: format!("a composition needs at least two clusters, got {n_clusters}"),
        });
    }
    if bundles.is_empty() {
        return Err(PipelineError::InvalidComposition {
            reason: "no trained bundles supplied".into(),
        });
    }
    let mut cfg = base;
    cfg.topo.clusters = n_clusters;
    cfg.queue = protocol.queue_setup(cfg.queue);
    cfg.validate()?;
    let mut sim = Simulation::with_transport(cfg, protocol.factory());
    for c in 0..n_clusters {
        if c == OBSERVABLE {
            continue;
        }
        let idx = assign(c);
        let bundle = bundles
            .get(idx)
            .ok_or_else(|| PipelineError::InvalidComposition {
                reason: format!(
                    "assignment for cluster {c} points at bundle {idx}, but only {} exist",
                    bundles.len()
                ),
            })?;
        let mimic = LearnedMimic::new(
            bundle.clone(),
            cfg.topo,
            n_clusters,
            cfg.seed ^ (0x4E7E_0000 + c as u64),
        );
        sim.set_cluster_model(c, Box::new(mimic));
    }
    Ok(sim)
}

/// Build the ground-truth (full-fidelity) simulation at `n_clusters` with
/// otherwise identical parameters and workload.
pub fn ground_truth(base: SimConfig, n_clusters: u32, protocol: Protocol) -> Simulation {
    let mut cfg = base;
    cfg.topo.clusters = n_clusters;
    cfg.queue = protocol.queue_setup(cfg.queue);
    Simulation::with_transport(cfg, protocol.factory())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate, DataGenConfig};
    use crate::internal_model::InternalModel;
    use mimic_ml::train::TrainConfig;

    fn quick_trained() -> (TrainedMimic, SimConfig) {
        let mut cfg = DataGenConfig::default();
        cfg.sim.duration_s = 0.3;
        cfg.sim.seed = 55;
        let td = generate(&cfg);
        let tc = TrainConfig {
            epochs: 1,
            window: 4,
            ..TrainConfig::default()
        };
        let (ing, _) = InternalModel::train_new(&td.ingress, td.ingress_disc, 8, &tc)
            .expect("valid training setup");
        let (eg, _) = InternalModel::train_new(&td.egress, td.egress_disc, 8, &tc)
            .expect("valid training setup");
        (
            TrainedMimic {
                ingress: ing,
                egress: eg,
                feature_cfg: td.feature_cfg,
                feeder: td.feeder,
                envelope: crate::drift::FeatureEnvelope::fit(&td.ingress.features),
            },
            cfg.sim,
        )
    }

    #[test]
    fn composed_simulation_completes_flows() {
        let (trained, mut base) = quick_trained();
        base.duration_s = 0.3;
        let mut sim = compose(base, 4, Protocol::NewReno, &trained);
        let m = sim.run();
        assert!(m.flows_completed() > 0, "no flows finished in composition");
        // Only flows touching the observable cluster exist.
        let topo = dcn_sim::topology::FatTree::new({
            let mut t = base.topo;
            t.clusters = 4;
            t
        });
        for f in m.flows.values() {
            let sc = host_cluster(&topo, f.src).expect("flow src is a host");
            let dc = host_cluster(&topo, f.dst).expect("flow dst is a host");
            assert!(sc == OBSERVABLE || dc == OBSERVABLE);
        }
    }

    #[test]
    fn composition_is_cheaper_than_ground_truth() {
        // The Mimic composition must process far fewer events than the
        // full simulation of the same size (the paper's core speedup
        // argument: T/N + Tp vs T).
        let (trained, mut base) = quick_trained();
        base.duration_s = 0.3;
        let m_mimic = compose(base, 6, Protocol::NewReno, &trained).run();
        let m_truth = ground_truth(base, 6, Protocol::NewReno).run();
        assert!(
            m_mimic.events_processed * 2 < m_truth.events_processed,
            "mimic {} vs truth {} events",
            m_mimic.events_processed,
            m_truth.events_processed
        );
    }

    #[test]
    fn heterogeneous_composition_runs_with_distinct_models() {
        let (trained_a, mut base) = quick_trained();
        // A second, differently-trained bundle (different seed/epochs).
        let mut cfg_b = DataGenConfig::default();
        cfg_b.sim.duration_s = 0.3;
        cfg_b.sim.seed = 56;
        let td = generate(&cfg_b);
        let tc = TrainConfig {
            epochs: 2,
            window: 4,
            ..TrainConfig::default()
        };
        let (ing, _) = InternalModel::train_new(&td.ingress, td.ingress_disc, 8, &tc)
            .expect("valid training setup");
        let (eg, _) = InternalModel::train_new(&td.egress, td.egress_disc, 8, &tc)
            .expect("valid training setup");
        let trained_b = TrainedMimic {
            ingress: ing,
            egress: eg,
            feature_cfg: td.feature_cfg,
            feeder: td.feeder,
            envelope: crate::drift::FeatureEnvelope::fit(&td.ingress.features),
        };
        base.duration_s = 0.2;
        let mut sim = compose_heterogeneous(
            base,
            5,
            Protocol::NewReno,
            &[trained_a, trained_b],
            |c| (c % 2) as usize,
        );
        let m = sim.run();
        assert!(m.flows_completed() > 0);
    }

    #[test]
    fn invalid_compositions_are_typed_errors() {
        let (trained, base) = quick_trained();
        // Too few clusters.
        let err = try_compose(base, 1, Protocol::NewReno, &trained).err().expect("composition should be rejected");
        assert!(matches!(err, PipelineError::InvalidComposition { .. }));
        // No bundles.
        let err =
            try_compose_heterogeneous(base, 4, Protocol::NewReno, &[], |_| 0).err().expect("composition should be rejected");
        assert!(matches!(err, PipelineError::InvalidComposition { .. }));
        // Out-of-range assignment: error, not panic.
        let err = try_compose_heterogeneous(
            base,
            4,
            Protocol::NewReno,
            std::slice::from_ref(&trained),
            |c| c as usize,
        )
        .err().expect("composition should be rejected");
        assert!(matches!(err, PipelineError::InvalidComposition { .. }));
        // Invalid base config propagates as a SimError.
        let mut bad = base;
        bad.link.loss_prob = 1.5;
        let err = try_compose(bad, 4, Protocol::NewReno, &trained).err().expect("composition should be rejected");
        assert!(matches!(err, PipelineError::Sim(_)));
        // Core switches have no cluster: typed error, not a panic.
        let topo = dcn_sim::topology::FatTree::new(base.topo);
        let core = topo.core(0, 0);
        assert!(matches!(
            host_cluster(&topo, core),
            Err(PipelineError::MalformedTopology { node, .. }) if node == core
        ));
    }

    #[test]
    fn observable_workload_identical_to_ground_truth() {
        // The observable cluster's *offered* flows must match the ground
        // truth exactly (same ids and sizes) — the RNG alignment property.
        let (trained, mut base) = quick_trained();
        base.duration_s = 0.2;
        let m_mimic = compose(base, 4, Protocol::NewReno, &trained).run();
        let m_truth = ground_truth(base, 4, Protocol::NewReno).run();
        let topo = dcn_sim::topology::FatTree::new({
            let mut t = base.topo;
            t.clusters = 4;
            t
        });
        let obs_flows = |m: &dcn_sim::instrument::Metrics| {
            let mut v: Vec<(u64, u64)> = m
                .flows
                .values()
                .filter(|f| {
                    topo.cluster_of(f.src) == Some(0) || topo.cluster_of(f.dst) == Some(0)
                })
                .map(|f| (f.flow.0, f.size_bytes))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(obs_flows(&m_mimic), obs_flows(&m_truth));
    }
}
