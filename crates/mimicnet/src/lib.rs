//! # mimicnet — fast performance estimates for data center networks
//!
//! A from-scratch Rust reproduction of *MimicNet: Fast Performance
//! Estimates for Data Center Networks with Machine Learning* (Zhang et
//! al., SIGCOMM 2021), built on the workspace's own substrates:
//! [`dcn_sim`] (packet-level simulation), [`dcn_transport`] (protocols),
//! [`mimic_ml`] (LSTMs + Bayesian optimization), and [`flow_sim`] (the
//! flow-level baseline).
//!
//! ## The idea
//!
//! Packet-level simulation of an `N`-cluster data center costs `O(N²)` in
//! traffic but most of that traffic never touches the part of the network
//! an experimenter can observe. MimicNet therefore simulates **one**
//! cluster (plus the core and all remote applications it talks to) in full
//! fidelity and replaces the other `N−1` clusters with *Mimics*: learned
//! models that predict, per boundary-crossing packet, whether the
//! cluster's network would have dropped it, how long it would have dwelt
//! inside, and whether it would emerge CE-marked.
//!
//! ## The workflow (paper Figure 3)
//!
//! 1. **Data generation** ([`datagen`]) — a full-fidelity 2-cluster
//!    simulation with one cluster instrumented at its core- and
//!    host-facing junctures ([`dcn_sim::instrument`]).
//! 2. **Pre-processing** ([`trace`]) — match packets entering/leaving the
//!    cluster; derive latency, drop, and ECN labels.
//! 3. **Feature extraction** ([`features`]) — *scalable* features only
//!    (§5.3): local indices, core switch, sizes, discretized interarrival
//!    + EWMA, and the 4-state congestion estimate (§5.5).
//! 4. **Model training** ([`internal_model`]) — per-direction LSTMs with
//!    the DCN-friendly losses of §5.4 (Huber latency, weighted-BCE drops).
//! 5. **Feeder fitting** ([`feeder`]) — log-normal interarrival models of
//!    inter-Mimic traffic, parameterized by the cluster count (§6).
//! 6. **Hyper-parameter tuning** ([`tuning`]) — Bayesian optimization of
//!    end-to-end, user-defined metrics (e.g. W1 of FCTs) across validation
//!    scales (§7.2).
//! 7. **Composition** ([`compose`]) — a large simulation with one real
//!    cluster and `N−1` [`mimic::LearnedMimic`]s (§7.1).
//!
//! [`pipeline`] packages steps 1–7 behind one call and reports the per-
//! phase wall-clock breakdown the paper's Table 2 shows.
//!
//! ## Quickstart
//!
//! ```no_run
//! use mimicnet::pipeline::{Pipeline, PipelineConfig};
//!
//! let cfg = PipelineConfig::default();
//! let mut pipe = Pipeline::new(cfg);
//! let trained = pipe.train();                  // small-scale sim + training
//! let report = pipe.estimate(&trained, 32);    // 32-cluster estimate
//! println!("p99 FCT ≈ {:.3}s", report.fct_p99);
//! ```

pub mod batch;
pub mod compose;
pub mod datagen;
pub mod degrade;
pub mod diverge;
pub mod drift;
pub mod error;
pub mod features;
pub mod feeder;
pub mod internal_model;
pub mod metrics;
pub mod mimic;
pub mod pipeline;
pub mod tier;
pub mod trace;
pub mod tuning;

pub use batch::BatchedMimicFleet;
pub use degrade::{AccuracyBudget, BudgetLedger, DegradationPolicy, DegradationReport};
pub use drift::{DriftMonitor, FeatureEnvelope};
pub use error::PipelineError;
pub use mimic::LearnedMimic;
pub use pipeline::{Pipeline, PipelineConfig};
pub use tier::{AdaptiveFleet, CorrectionHead};
