//! `mimicnet` — command-line driver for the MimicNet workflow.
//!
//! ```text
//! mimicnet train    [--duration S] [--seed N] [--protocol P] [--k K]
//!                   [--epochs E] [--hidden H] [--window W] [--workers W]
//!                   --out model.json
//! mimicnet estimate --model model.json --clusters N [--duration S] [--json]
//! mimicnet validate --model model.json --clusters N [--duration S]
//! mimicnet tune     [--evals E] [--scales 2,4] [--duration S] [--workers W]
//! ```
//!
//! Protocols: newreno (default), dctcp (with `--k`), vegas, westwood, homa.
//! All randomness derives from `--seed`; re-running a command reproduces
//! its outputs bit-for-bit — including `--workers W`, which parallelizes
//! training (per-direction models and gradient shards) without changing a
//! single bit of the result.
//!
//! Observability (train/estimate/validate): `--trace-out FILE` writes a
//! Chrome trace-event file (open in Perfetto or chrome://tracing),
//! `--obs-out FILE` writes the full JSON telemetry snapshot, `--report`
//! prints a human-readable summary to stderr. Tracing never changes the
//! results.
//!
//! Crash resilience: `train --checkpoint DIR` persists the full training
//! state after every epoch and resumes from it on restart;
//! `estimate`/`validate` accept `--checkpoint-every S` (simulated seconds,
//! checkpoints into `--checkpoint-dir`) and `--resume DIR` to restart an
//! interrupted composed run. Checkpointed, resumed, and uninterrupted
//! runs all produce bit-identical results. All file outputs are written
//! atomically (temp file + rename), so a crash never leaves a torn file.

use dcn_sim::mimic::FidelityTier;
use dcn_sim::pdes::{CheckpointPlan, TierPlan};
use dcn_sim::snapshot::atomic_write;
use dcn_sim::time::SimDuration;
use dcn_transport::Protocol;
use mimicnet::mimic::TrainedMimic;
use mimicnet::pipeline::{Pipeline, PipelineConfig};
use mimicnet::tuning::{tune, TuningConfig};
use mimicnet::{AccuracyBudget, CorrectionHead};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: mimicnet <train|estimate|validate|tune> [options]\n\
         \n\
         train    --out FILE [--duration S] [--seed N] [--protocol P] [--k K]\n\
         \u{20}        [--epochs E] [--hidden H] [--layers L] [--window W]\n\
         \u{20}        [--workers W] [--checkpoint DIR]\n\
         estimate --model FILE --clusters N [--duration S] [--json]\n\
         validate --model FILE --clusters N [--duration S]\n\
         tune     [--evals E] [--scales 2,4] [--duration S] [--seed N]\n\
         \u{20}        [--workers W]\n\
         \n\
         crash resilience (estimate/validate):\n\
         \u{20}        [--partitions P] [--checkpoint-every S]\n\
         \u{20}        [--checkpoint-dir DIR] [--resume DIR]\n\
         \n\
         adaptive fidelity tiers (estimate):\n\
         \u{20}        [--adaptive] [--tier-every WINDOWS] [--tier-start mimic|flow]\n\
         \u{20}        [--promote-above X] [--demote-below X] [--tier-patience N]\n\
         \u{20}        [--max-above-flow N] [--correction FILE]\n\
         (train: [--correction-out FILE] ridge-fits the Flow-tier head)\n\
         \n\
         observability (train/estimate/validate):\n\
         \u{20}        [--trace-out FILE] [--obs-out FILE] [--report]\n\
         \n\
         protocols: newreno dctcp vegas westwood homa"
    );
    exit(2);
}

fn parse_args(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(key) = args[i].strip_prefix("--") else {
            eprintln!("unexpected argument: {}", args[i]);
            usage();
        };
        if key == "json" || key == "report" || key == "adaptive" {
            map.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            eprintln!("missing value for --{key}");
            usage();
        };
        map.insert(key.to_string(), value.clone());
        i += 2;
    }
    map
}

fn protocol_from(opts: &HashMap<String, String>) -> Protocol {
    match opts.get("protocol").map(|s| s.as_str()).unwrap_or("newreno") {
        "newreno" => Protocol::NewReno,
        "dctcp" => Protocol::Dctcp {
            k: opts
                .get("k")
                .map(|v| v.parse().expect("--k must be an integer"))
                .unwrap_or(20),
        },
        "vegas" => Protocol::Vegas,
        "westwood" => Protocol::Westwood,
        "homa" => Protocol::Homa,
        other => {
            eprintln!("unknown protocol: {other}");
            usage();
        }
    }
}

fn pipeline_from(opts: &HashMap<String, String>) -> PipelineConfig {
    let mut cfg = PipelineConfig {
        protocol: protocol_from(opts),
        ..PipelineConfig::default()
    };
    if let Some(d) = opts.get("duration") {
        cfg.base.duration_s = d.parse().expect("--duration must be a number");
    }
    if let Some(s) = opts.get("seed") {
        cfg.base.seed = s.parse().expect("--seed must be an integer");
    }
    if let Some(e) = opts.get("epochs") {
        cfg.train.epochs = e.parse().expect("--epochs must be an integer");
    }
    if let Some(h) = opts.get("hidden") {
        cfg.hidden = h.parse().expect("--hidden must be an integer");
    }
    if let Some(l) = opts.get("layers") {
        cfg.layers = l.parse().expect("--layers must be an integer");
    }
    if let Some(w) = opts.get("window") {
        cfg.train.window = w.parse().expect("--window must be an integer");
    }
    if let Some(w) = opts.get("workers") {
        cfg.train.workers = w.parse().expect("--workers must be an integer");
    }
    cfg
}

fn load_model(opts: &HashMap<String, String>) -> TrainedMimic {
    let path = opts.get("model").unwrap_or_else(|| {
        eprintln!("--model is required");
        usage();
    });
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    TrainedMimic::from_json(&json).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1);
    })
}

fn clusters_from(opts: &HashMap<String, String>) -> u32 {
    let raw = opts.get("clusters").unwrap_or_else(|| {
        eprintln!("--clusters is required");
        usage();
    });
    let n: u32 = raw.parse().unwrap_or_else(|_| {
        eprintln!("error: --clusters must be an integer, got {raw:?}");
        std::process::exit(2);
    });
    if n < 2 {
        eprintln!("error: a composition needs at least two clusters, got {n}");
        std::process::exit(2);
    }
    n
}

/// Parse the crash-resilience flags shared by `estimate` and `validate`.
/// Returns `None` when none were given, which keeps the in-process engine
/// (with fault/obs support) on the default path.
fn resumable_from(
    opts: &HashMap<String, String>,
) -> Option<(usize, Option<CheckpointPlan>, Option<PathBuf>)> {
    if !opts.contains_key("partitions")
        && !opts.contains_key("checkpoint-every")
        && !opts.contains_key("resume")
    {
        return None;
    }
    let partitions: usize = opts
        .get("partitions")
        .map(|v| v.parse().expect("--partitions must be a positive integer"))
        .unwrap_or(1);
    let resume = opts.get("resume").map(PathBuf::from);
    let plan = opts.get("checkpoint-every").map(|s| {
        let secs: f64 = s
            .parse()
            .expect("--checkpoint-every must be a number of simulated seconds");
        // Checkpoints land next to whatever we resume from unless told
        // otherwise, so a crash-restart loop keeps using one directory.
        let dir = opts
            .get("checkpoint-dir")
            .map(PathBuf::from)
            .or_else(|| resume.clone())
            .unwrap_or_else(|| PathBuf::from("mimicnet-ckpt"));
        CheckpointPlan { dir, every: SimDuration::from_secs_f64(secs) }
    });
    Some((partitions.max(1), plan, resume))
}

/// Parse the adaptive-tier accuracy budget flags.
fn budget_from(opts: &HashMap<String, String>) -> AccuracyBudget {
    let mut b = AccuracyBudget::default();
    if let Some(v) = opts.get("promote-above") {
        b.promote_above = v.parse().expect("--promote-above must be a number");
    }
    if let Some(v) = opts.get("demote-below") {
        b.demote_below = v.parse().expect("--demote-below must be a number");
    }
    if let Some(v) = opts.get("tier-patience") {
        b.patience = v.parse().expect("--tier-patience must be an integer");
    }
    if let Some(v) = opts.get("max-above-flow") {
        b.max_above_flow = v.parse().expect("--max-above-flow must be an integer");
    }
    if let Some(v) = opts.get("tier-start") {
        b.start = match v.as_str() {
            "mimic" => FidelityTier::Mimic,
            "flow" => FidelityTier::Flow,
            other => {
                eprintln!("unknown --tier-start: {other} (use mimic or flow)");
                usage();
            }
        };
    }
    b
}

/// Load the optional Flow-tier correction head.
fn correction_from(opts: &HashMap<String, String>) -> Option<CorrectionHead> {
    let path = opts.get("correction")?;
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    Some(serde_json::from_str(&json).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1);
    }))
}

/// Whether any observability output was requested.
fn obs_requested(opts: &HashMap<String, String>) -> bool {
    opts.contains_key("trace-out") || opts.contains_key("obs-out") || opts.contains_key("report")
}

/// Drain the pipeline's telemetry and write/print whatever was asked for.
fn export_obs(pipe: &mut Pipeline, opts: &HashMap<String, String>) {
    let Some(report) = pipe.obs.take_report() else {
        return;
    };
    if let Some(path) = opts.get("trace-out") {
        atomic_write(path.as_ref(), report.to_chrome_trace().as_bytes()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        eprintln!("wrote Chrome trace to {path} (open in Perfetto or chrome://tracing)");
    }
    if let Some(path) = opts.get("obs-out") {
        atomic_write(path.as_ref(), report.to_json_string().as_bytes()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        eprintln!("wrote telemetry snapshot to {path}");
    }
    if opts.contains_key("report") {
        eprint!("{}", report.render_report());
    }
}

fn cmd_train(opts: HashMap<String, String>) {
    let out = opts.get("out").cloned().unwrap_or_else(|| {
        eprintln!("--out is required");
        usage();
    });
    let cfg = pipeline_from(&opts);
    eprintln!(
        "training {} on a {}-cluster x {:.2}s small-scale run (seed {})...",
        cfg.protocol.name(),
        cfg.base.topo.clusters,
        cfg.base.duration_s * cfg.datagen_duration_factor,
        cfg.base.seed
    );
    let mut pipe = Pipeline::new(cfg);
    if obs_requested(&opts) {
        pipe = pipe.with_obs();
    }
    let ckpt_dir = opts.get("checkpoint").map(PathBuf::from);
    if let Some(dir) = &ckpt_dir {
        eprintln!("checkpointing training state into {} after every epoch", dir.display());
    }
    let (trained, data) = pipe
        .try_train_with_data_checkpointed(ckpt_dir.as_deref())
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            exit(1);
        });
    atomic_write(out.as_ref(), trained.to_json().as_bytes()).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    if let Some(path) = opts.get("correction-out") {
        let mut dg_sim = pipe.cfg.base;
        dg_sim.duration_s *= pipe.cfg.datagen_duration_factor.max(1.0);
        match mimicnet::tier::fit_correction_head(&dg_sim, &data.metrics) {
            Some(head) => {
                let json = serde_json::to_string_pretty(&head).expect("serializable head");
                atomic_write(path.as_ref(), json.as_bytes()).unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    exit(1);
                });
                eprintln!("wrote Flow-tier correction head to {path}");
            }
            None => eprintln!("boundary trace too thin to fit a correction head; skipped {path}"),
        }
    }
    eprintln!(
        "wrote {out} ({} params/direction; sim {:?}, training {:?})",
        trained.ingress.model.param_count(),
        pipe.timings.small_scale_sim,
        pipe.timings.training
    );
    export_obs(&mut pipe, &opts);
}

fn cmd_estimate(opts: HashMap<String, String>) {
    let trained = load_model(&opts);
    let n = clusters_from(&opts);
    let mut pipe = Pipeline::new(pipeline_from(&opts));
    if obs_requested(&opts) {
        pipe = pipe.with_obs();
    }
    let est = if opts.contains_key("adaptive") {
        let budget = budget_from(&opts);
        let plan = TierPlan {
            every_windows: opts
                .get("tier-every")
                .map(|v| v.parse().expect("--tier-every must be a positive integer"))
                .unwrap_or(64),
        };
        // Adaptive runs honor the same crash-resilience flags as the
        // plain partitioned path (--partitions/--checkpoint-every/
        // --checkpoint-dir/--resume).
        let (partitions, ckpt, resume) =
            resumable_from(&opts).unwrap_or((1, None, None));
        let correction = correction_from(&opts);
        eprintln!(
            "adaptive tiers: start={:?}, epoch every {} windows, promote ≥{}, demote <{} after {} calm epochs",
            budget.start, plan.every_windows, budget.promote_above, budget.demote_below, budget.patience
        );
        if let Some(dir) = &resume {
            eprintln!("resuming from checkpoint {}...", dir.display());
        }
        let est = pipe
            .try_estimate_adaptive(
                &trained,
                n,
                partitions,
                &budget,
                &plan,
                correction.as_ref(),
                ckpt.as_ref(),
                resume.as_deref(),
            )
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            });
        eprintln!("tier switches: {}", est.metrics.tier_switches.len());
        est
    } else if let Some((partitions, plan, resume)) = resumable_from(&opts) {
        if let Some(dir) = &resume {
            eprintln!("resuming from checkpoint {}...", dir.display());
        }
        pipe.try_estimate_resumable(&trained, n, partitions, plan.as_ref(), resume.as_deref())
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            })
    } else {
        pipe.try_estimate(&trained, n, None).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    };
    if opts.contains_key("json") {
        let out = serde_json::json!({
            "clusters": n,
            "wall_seconds": est.wall.as_secs_f64(),
            "flows_completed": est.samples.fct.len(),
            "fct_p50": dcn_sim::stats::percentile(&est.samples.fct, 50.0),
            "fct_p90": dcn_sim::stats::percentile(&est.samples.fct, 90.0),
            "fct_p99": est.fct_p99,
            "throughput_p99": est.throughput_p99,
            "rtt_p50": dcn_sim::stats::percentile(&est.samples.rtt, 50.0),
            "rtt_p99": est.rtt_p99,
            "tier_switches": est.metrics.tier_switches.len(),
        });
        println!("{}", serde_json::to_string_pretty(&out).unwrap());
    } else {
        println!("{n}-cluster estimate ({:?} wall):", est.wall);
        println!("  flows completed: {}", est.samples.fct.len());
        println!("  FCT  p50 {:.4}s  p99 {:.4}s", dcn_sim::stats::percentile(&est.samples.fct, 50.0), est.fct_p99);
        println!("  RTT  p50 {:.4}s  p99 {:.4}s", dcn_sim::stats::percentile(&est.samples.rtt, 50.0), est.rtt_p99);
        println!("  tput p99 {:.0} B/s", est.throughput_p99);
    }
    export_obs(&mut pipe, &opts);
}

fn cmd_validate(opts: HashMap<String, String>) {
    let trained = load_model(&opts);
    let n = clusters_from(&opts);
    let mut pipe = Pipeline::new(pipeline_from(&opts));
    if obs_requested(&opts) {
        pipe = pipe.with_obs();
    }
    eprintln!("running MimicNet and full-fidelity at {n} clusters...");
    let (report, mimic_wall, truth_wall) =
        if let Some((partitions, plan, resume)) = resumable_from(&opts) {
            if let Some(dir) = &resume {
                eprintln!("resuming from checkpoint {}...", dir.display());
            }
            let est = pipe
                .try_estimate_resumable(&trained, n, partitions, plan.as_ref(), resume.as_deref())
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                });
            let (truth, _, truth_wall) = pipe.run_ground_truth(n);
            (mimicnet::metrics::compare(&truth, &est.samples), est.wall, truth_wall)
        } else {
            pipe.validate(&trained, n)
        };
    println!("W1(FCT)        = {:.5}", report.w1_fct);
    println!("W1(throughput) = {:.0}", report.w1_throughput);
    println!("W1(RTT)        = {:.6}", report.w1_rtt);
    println!(
        "p99 FCT: truth {:.4}s vs mimic {:.4}s ({:.1}% off)",
        report.fct_p99_truth,
        report.fct_p99_approx,
        report.fct_p99_rel_err() * 100.0
    );
    println!(
        "wall: mimic {:.3}s vs truth {:.3}s ({:.1}x)",
        mimic_wall.as_secs_f64(),
        truth_wall.as_secs_f64(),
        truth_wall.as_secs_f64() / mimic_wall.as_secs_f64().max(1e-9)
    );
    export_obs(&mut pipe, &opts);
}

fn cmd_tune(opts: HashMap<String, String>) {
    let cfg = pipeline_from(&opts);
    let tcfg = TuningConfig {
        evals: opts
            .get("evals")
            .map(|v| v.parse().expect("--evals must be an integer"))
            .unwrap_or(8),
        scales: opts
            .get("scales")
            .map(|v| {
                v.split(',')
                    .map(|s| s.parse().expect("--scales must be integers"))
                    .collect()
            })
            .unwrap_or_else(|| vec![2, 4]),
        seed: cfg.base.seed ^ 0x7A7E,
        workers: opts
            .get("workers")
            .map(|v| v.parse().expect("--workers must be an integer"))
            .unwrap_or(1),
    };
    eprintln!(
        "Bayesian-optimizing {} evaluations over scales {:?}...",
        tcfg.evals, tcfg.scales
    );
    let result = tune(&cfg, &tcfg);
    println!("best objective (sum of normalized W1(FCT)): {:.4}", result.best_objective);
    println!(
        "best params: wbce_w={:.3} huber_delta={:.3} lr={:.2e} hidden={} window={}",
        result.best.wbce_w,
        result.best.huber_delta,
        result.best.lr,
        result.best.hidden,
        result.best.window
    );
    for (i, (p, obj)) in result.history.iter().enumerate() {
        eprintln!(
            "  eval {i}: objective {obj:.4} (w={:.2}, delta={:.2}, lr={:.1e}, hidden={}, window={})",
            p.wbce_w, p.huber_delta, p.lr, p.hidden, p.window
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
    };
    let opts = parse_args(rest);
    match cmd.as_str() {
        "train" => cmd_train(opts),
        "estimate" => cmd_estimate(opts),
        "validate" => cmd_validate(opts),
        "tune" => cmd_tune(opts),
        _ => usage(),
    }
}
