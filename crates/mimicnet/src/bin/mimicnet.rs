//! `mimicnet` — command-line driver for the MimicNet workflow.
//!
//! ```text
//! mimicnet train    [--duration S] [--seed N] [--protocol P] [--k K]
//!                   [--epochs E] [--hidden H] [--window W] [--workers W]
//!                   --out model.json
//! mimicnet estimate --model model.json --clusters N [--duration S] [--json]
//! mimicnet validate --model model.json --clusters N [--duration S]
//! mimicnet tune     [--evals E] [--scales 2,4] [--duration S] [--workers W]
//! ```
//!
//! Protocols: newreno (default), dctcp (with `--k`), vegas, westwood, homa.
//! All randomness derives from `--seed`; re-running a command reproduces
//! its outputs bit-for-bit — including `--workers W`, which parallelizes
//! training (per-direction models and gradient shards) without changing a
//! single bit of the result.
//!
//! Observability (train/estimate/validate): `--trace-out FILE` writes a
//! Chrome trace-event file (open in Perfetto or chrome://tracing),
//! `--obs-out FILE` writes the full JSON telemetry snapshot, `--report`
//! prints a human-readable summary to stderr. Tracing never changes the
//! results.
//!
//! Crash resilience: `train --checkpoint DIR` persists the full training
//! state after every epoch and resumes from it on restart;
//! `estimate`/`validate` accept `--checkpoint-every S` (simulated seconds,
//! checkpoints into `--checkpoint-dir`) and `--resume DIR` to restart an
//! interrupted composed run. Checkpointed, resumed, and uninterrupted
//! runs all produce bit-identical results. All file outputs are written
//! atomically (temp file + rename), so a crash never leaves a torn file.

use dcn_sim::mimic::FidelityTier;
use dcn_sim::pdes::{CheckpointPlan, FlightPlan, PdesRunOpts, TierPlan};
use dcn_sim::snapshot::atomic_write;
use dcn_sim::time::{SimDuration, SimTime};
use dcn_transport::Protocol;
use mimicnet::diverge::{self, DigestTimeline, ReplayConfig, ReplaySide};
use mimicnet::mimic::TrainedMimic;
use mimicnet::pipeline::{Pipeline, PipelineConfig};
use mimicnet::tuning::{tune, TuningConfig};
use mimicnet::{AccuracyBudget, CorrectionHead};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: mimicnet <train|estimate|validate|tune|diverge|snap-flip> [options]\n\
         \n\
         train    --out FILE [--duration S] [--seed N] [--protocol P] [--k K]\n\
         \u{20}        [--epochs E] [--hidden H] [--layers L] [--window W]\n\
         \u{20}        [--workers W] [--checkpoint DIR]\n\
         estimate --model FILE --clusters N [--duration S] [--json]\n\
         validate --model FILE --clusters N [--duration S]\n\
         tune     [--evals E] [--scales 2,4] [--duration S] [--seed N]\n\
         \u{20}        [--workers W]\n\
         \n\
         diverge  --a A-obs.json --b B-obs.json [--out report.json]\n\
         \u{20}        [--a-ckpt DIR --b-ckpt DIR --model FILE --clusters N\n\
         \u{20}         [--partitions P] [--flight N] [estimate flags]]\n\
         \u{20}        (exit 0 = identical, 3 = divergence localized)\n\
         snap-flip --ckpt DIR --model FILE --clusters N [--part N]\n\
         \u{20}        [--generation GEN] [estimate flags]\n\
         \u{20}        (seed a divergence for testing)\n\
         \n\
         crash resilience (estimate/validate):\n\
         \u{20}        [--partitions P] [--checkpoint-every S]\n\
         \u{20}        [--checkpoint-dir DIR] [--resume DIR]\n\
         \u{20}        [--keep-generations N] [--resume-generation GEN]\n\
         \n\
         diagnostics (estimate/validate):\n\
         \u{20}        [--digests] [--digest-stride N] [--flight N]\n\
         \u{20}        [--flight-dump DIR] [--slo-events-per-sec X]\n\
         \u{20}        [--slo-max-drift X] [--stop-at S] [--crash-at-window N]\n\
         \n\
         adaptive fidelity tiers (estimate):\n\
         \u{20}        [--adaptive] [--tier-every WINDOWS] [--tier-start mimic|flow]\n\
         \u{20}        [--promote-above X] [--demote-below X] [--tier-patience N]\n\
         \u{20}        [--max-above-flow N] [--correction FILE]\n\
         (train: [--correction-out FILE] ridge-fits the Flow-tier head)\n\
         \n\
         observability (train/estimate/validate):\n\
         \u{20}        [--trace-out FILE] [--obs-out FILE] [--report]\n\
         \n\
         protocols: newreno dctcp vegas westwood homa"
    );
    exit(2);
}

fn parse_args(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(key) = args[i].strip_prefix("--") else {
            eprintln!("unexpected argument: {}", args[i]);
            usage();
        };
        if key == "json" || key == "report" || key == "adaptive" || key == "digests" {
            map.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            eprintln!("missing value for --{key}");
            usage();
        };
        map.insert(key.to_string(), value.clone());
        i += 2;
    }
    map
}

fn protocol_from(opts: &HashMap<String, String>) -> Protocol {
    match opts.get("protocol").map(|s| s.as_str()).unwrap_or("newreno") {
        "newreno" => Protocol::NewReno,
        "dctcp" => Protocol::Dctcp {
            k: opts
                .get("k")
                .map(|v| v.parse().expect("--k must be an integer"))
                .unwrap_or(20),
        },
        "vegas" => Protocol::Vegas,
        "westwood" => Protocol::Westwood,
        "homa" => Protocol::Homa,
        other => {
            eprintln!("unknown protocol: {other}");
            usage();
        }
    }
}

fn pipeline_from(opts: &HashMap<String, String>) -> PipelineConfig {
    let mut cfg = PipelineConfig {
        protocol: protocol_from(opts),
        ..PipelineConfig::default()
    };
    if let Some(d) = opts.get("duration") {
        cfg.base.duration_s = d.parse().expect("--duration must be a number");
    }
    if let Some(s) = opts.get("seed") {
        cfg.base.seed = s.parse().expect("--seed must be an integer");
    }
    if let Some(e) = opts.get("epochs") {
        cfg.train.epochs = e.parse().expect("--epochs must be an integer");
    }
    if let Some(h) = opts.get("hidden") {
        cfg.hidden = h.parse().expect("--hidden must be an integer");
    }
    if let Some(l) = opts.get("layers") {
        cfg.layers = l.parse().expect("--layers must be an integer");
    }
    if let Some(w) = opts.get("window") {
        cfg.train.window = w.parse().expect("--window must be an integer");
    }
    if let Some(w) = opts.get("workers") {
        cfg.train.workers = w.parse().expect("--workers must be an integer");
    }
    cfg
}

fn load_model(opts: &HashMap<String, String>) -> TrainedMimic {
    let path = opts.get("model").unwrap_or_else(|| {
        eprintln!("--model is required");
        usage();
    });
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    TrainedMimic::from_json(&json).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1);
    })
}

fn clusters_from(opts: &HashMap<String, String>) -> u32 {
    let raw = opts.get("clusters").unwrap_or_else(|| {
        eprintln!("--clusters is required");
        usage();
    });
    let n: u32 = raw.parse().unwrap_or_else(|_| {
        eprintln!("error: --clusters must be an integer, got {raw:?}");
        std::process::exit(2);
    });
    if n < 2 {
        eprintln!("error: a composition needs at least two clusters, got {n}");
        std::process::exit(2);
    }
    n
}

/// Parse the crash-resilience flags shared by `estimate` and `validate`.
/// Returns `None` when none were given, which keeps the in-process engine
/// (with fault/obs support) on the default path.
fn resumable_from(
    opts: &HashMap<String, String>,
) -> Option<(usize, Option<CheckpointPlan>, Option<PathBuf>)> {
    if !opts.contains_key("partitions")
        && !opts.contains_key("checkpoint-every")
        && !opts.contains_key("resume")
    {
        return None;
    }
    let partitions: usize = opts
        .get("partitions")
        .map(|v| v.parse().expect("--partitions must be a positive integer"))
        .unwrap_or(1);
    let resume = opts.get("resume").map(PathBuf::from);
    let plan = opts.get("checkpoint-every").map(|s| {
        let secs: f64 = s
            .parse()
            .expect("--checkpoint-every must be a number of simulated seconds");
        // Checkpoints land next to whatever we resume from unless told
        // otherwise, so a crash-restart loop keeps using one directory.
        let dir = opts
            .get("checkpoint-dir")
            .map(PathBuf::from)
            .or_else(|| resume.clone())
            .unwrap_or_else(|| PathBuf::from("mimicnet-ckpt"));
        let keep = opts
            .get("keep-generations")
            .map(|v| v.parse().expect("--keep-generations must be a positive integer"))
            .unwrap_or(1);
        CheckpointPlan { dir, every: SimDuration::from_secs_f64(secs), keep }
    });
    Some((partitions.max(1), plan, resume))
}

/// Parse the diagnostics flags (state digests, flight recorder, SLO
/// tripwires, early stop) into `o`. Returns whether any were given —
/// callers use that to route onto the full-options engine path.
fn diag_flags_into(o: &mut PdesRunOpts, opts: &HashMap<String, String>) -> bool {
    let mut any = false;
    if opts.contains_key("digests") || opts.contains_key("digest-stride") {
        o.digest_stride = Some(
            opts.get("digest-stride")
                .map(|v| v.parse().expect("--digest-stride must be a positive integer"))
                .unwrap_or(1),
        );
        any = true;
    }
    if ["flight", "flight-dump", "slo-events-per-sec", "slo-max-drift"]
        .iter()
        .any(|k| opts.contains_key(*k))
    {
        o.flight = Some(FlightPlan {
            capacity: opts
                .get("flight")
                .map(|v| v.parse().expect("--flight must be a positive integer"))
                .unwrap_or(4096),
            dump_dir: opts.get("flight-dump").map(PathBuf::from),
            min_events_per_sec: opts
                .get("slo-events-per-sec")
                .map(|v| v.parse().expect("--slo-events-per-sec must be a number")),
            max_drift: opts
                .get("slo-max-drift")
                .map(|v| v.parse().expect("--slo-max-drift must be a number")),
        });
        any = true;
    }
    if let Some(v) = opts.get("stop-at") {
        let secs: f64 = v.parse().expect("--stop-at must be simulated seconds");
        o.stop_at = Some(SimTime::from_secs_f64(secs));
        any = true;
    }
    if let Some(v) = opts.get("crash-at-window") {
        o.crash_at_window = Some(v.parse().expect("--crash-at-window must be an integer"));
        any = true;
    }
    if let Some(g) = opts.get("resume-generation") {
        o.resume_generation = Some(g.clone());
        any = true;
    }
    any
}

/// Print the error, flush whatever telemetry the pipeline gathered (so a
/// failed run still leaves its trace/obs artifacts behind), and exit.
fn die_with_obs(
    pipe: &mut Pipeline,
    opts: &HashMap<String, String>,
    e: impl std::fmt::Display,
    code: i32,
) -> ! {
    eprintln!("error: {e}");
    export_obs(pipe, opts);
    exit(code)
}

/// Parse the adaptive-tier accuracy budget flags.
fn budget_from(opts: &HashMap<String, String>) -> AccuracyBudget {
    let mut b = AccuracyBudget::default();
    if let Some(v) = opts.get("promote-above") {
        b.promote_above = v.parse().expect("--promote-above must be a number");
    }
    if let Some(v) = opts.get("demote-below") {
        b.demote_below = v.parse().expect("--demote-below must be a number");
    }
    if let Some(v) = opts.get("tier-patience") {
        b.patience = v.parse().expect("--tier-patience must be an integer");
    }
    if let Some(v) = opts.get("max-above-flow") {
        b.max_above_flow = v.parse().expect("--max-above-flow must be an integer");
    }
    if let Some(v) = opts.get("tier-start") {
        b.start = match v.as_str() {
            "mimic" => FidelityTier::Mimic,
            "flow" => FidelityTier::Flow,
            other => {
                eprintln!("unknown --tier-start: {other} (use mimic or flow)");
                usage();
            }
        };
    }
    b
}

/// Load the optional Flow-tier correction head.
fn correction_from(opts: &HashMap<String, String>) -> Option<CorrectionHead> {
    let path = opts.get("correction")?;
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    Some(serde_json::from_str(&json).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1);
    }))
}

/// Whether any observability output was requested.
fn obs_requested(opts: &HashMap<String, String>) -> bool {
    opts.contains_key("trace-out") || opts.contains_key("obs-out") || opts.contains_key("report")
}

/// Drain the pipeline's telemetry and write/print whatever was asked for.
fn export_obs(pipe: &mut Pipeline, opts: &HashMap<String, String>) {
    let Some(report) = pipe.obs.take_report() else {
        return;
    };
    if let Some(path) = opts.get("trace-out") {
        atomic_write(path.as_ref(), report.to_chrome_trace().as_bytes()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        eprintln!("wrote Chrome trace to {path} (open in Perfetto or chrome://tracing)");
    }
    if let Some(path) = opts.get("obs-out") {
        atomic_write(path.as_ref(), report.to_json_string().as_bytes()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        eprintln!("wrote telemetry snapshot to {path}");
    }
    if opts.contains_key("report") {
        eprint!("{}", report.render_report());
    }
}

fn cmd_train(opts: HashMap<String, String>) {
    let out = opts.get("out").cloned().unwrap_or_else(|| {
        eprintln!("--out is required");
        usage();
    });
    let cfg = pipeline_from(&opts);
    eprintln!(
        "training {} on a {}-cluster x {:.2}s small-scale run (seed {})...",
        cfg.protocol.name(),
        cfg.base.topo.clusters,
        cfg.base.duration_s * cfg.datagen_duration_factor,
        cfg.base.seed
    );
    let mut pipe = Pipeline::new(cfg);
    if obs_requested(&opts) {
        pipe = pipe.with_obs();
    }
    let ckpt_dir = opts.get("checkpoint").map(PathBuf::from);
    if let Some(dir) = &ckpt_dir {
        eprintln!("checkpointing training state into {} after every epoch", dir.display());
    }
    let (trained, data) = pipe
        .try_train_with_data_checkpointed(ckpt_dir.as_deref())
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            exit(1);
        });
    atomic_write(out.as_ref(), trained.to_json().as_bytes()).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    if let Some(path) = opts.get("correction-out") {
        let mut dg_sim = pipe.cfg.base;
        dg_sim.duration_s *= pipe.cfg.datagen_duration_factor.max(1.0);
        match mimicnet::tier::fit_correction_head(&dg_sim, &data.metrics) {
            Some(head) => {
                let json = serde_json::to_string_pretty(&head).expect("serializable head");
                atomic_write(path.as_ref(), json.as_bytes()).unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    exit(1);
                });
                eprintln!("wrote Flow-tier correction head to {path}");
            }
            None => eprintln!("boundary trace too thin to fit a correction head; skipped {path}"),
        }
    }
    eprintln!(
        "wrote {out} ({} params/direction; sim {:?}, training {:?})",
        trained.ingress.model.param_count(),
        pipe.timings.small_scale_sim,
        pipe.timings.training
    );
    export_obs(&mut pipe, &opts);
}

fn cmd_estimate(opts: HashMap<String, String>) {
    let trained = load_model(&opts);
    let n = clusters_from(&opts);
    let mut pipe = Pipeline::new(pipeline_from(&opts));
    if obs_requested(&opts) {
        pipe = pipe.with_obs();
    }
    let mut run_opts = PdesRunOpts::default();
    let diag = diag_flags_into(&mut run_opts, &opts);
    let resumable = resumable_from(&opts);
    let est = if opts.contains_key("adaptive") {
        let budget = budget_from(&opts);
        let plan = TierPlan {
            every_windows: opts
                .get("tier-every")
                .map(|v| v.parse().expect("--tier-every must be a positive integer"))
                .unwrap_or(64),
        };
        // Adaptive runs honor the same crash-resilience and diagnostics
        // flags as the plain partitioned path.
        let (partitions, ckpt, resume) = resumable.unwrap_or((1, None, None));
        run_opts.checkpoint = ckpt;
        run_opts.resume_from = resume;
        let correction = correction_from(&opts);
        eprintln!(
            "adaptive tiers: start={:?}, epoch every {} windows, promote ≥{}, demote <{} after {} calm epochs",
            budget.start, plan.every_windows, budget.promote_above, budget.demote_below, budget.patience
        );
        if let Some(dir) = &run_opts.resume_from {
            eprintln!("resuming from checkpoint {}...", dir.display());
        }
        let est = match pipe.try_estimate_adaptive_opts(
            &trained,
            n,
            partitions,
            &budget,
            &plan,
            correction.as_ref(),
            &run_opts,
        ) {
            Ok(est) => est,
            Err(e) => die_with_obs(&mut pipe, &opts, e, 2),
        };
        eprintln!("tier switches: {}", est.metrics.tier_switches.len());
        est
    } else if resumable.is_some() || diag {
        let (partitions, ckpt, resume) = resumable.unwrap_or((1, None, None));
        run_opts.checkpoint = ckpt;
        run_opts.resume_from = resume;
        if let Some(dir) = &run_opts.resume_from {
            eprintln!("resuming from checkpoint {}...", dir.display());
        }
        match pipe.try_estimate_opts(&trained, n, partitions, &run_opts) {
            Ok(est) => est,
            Err(e) => die_with_obs(&mut pipe, &opts, e, 2),
        }
    } else {
        match pipe.try_estimate(&trained, n, None) {
            Ok(est) => est,
            Err(e) => die_with_obs(&mut pipe, &opts, e, 2),
        }
    };
    if opts.contains_key("json") {
        let out = serde_json::json!({
            "clusters": n,
            "wall_seconds": est.wall.as_secs_f64(),
            "flows_completed": est.samples.fct.len(),
            "fct_p50": dcn_sim::stats::percentile(&est.samples.fct, 50.0),
            "fct_p90": dcn_sim::stats::percentile(&est.samples.fct, 90.0),
            "fct_p99": est.fct_p99,
            "throughput_p99": est.throughput_p99,
            "rtt_p50": dcn_sim::stats::percentile(&est.samples.rtt, 50.0),
            "rtt_p99": est.rtt_p99,
            "tier_switches": est.metrics.tier_switches.len(),
        });
        println!("{}", serde_json::to_string_pretty(&out).unwrap());
    } else {
        println!("{n}-cluster estimate ({:?} wall):", est.wall);
        println!("  flows completed: {}", est.samples.fct.len());
        println!("  FCT  p50 {:.4}s  p99 {:.4}s", dcn_sim::stats::percentile(&est.samples.fct, 50.0), est.fct_p99);
        println!("  RTT  p50 {:.4}s  p99 {:.4}s", dcn_sim::stats::percentile(&est.samples.rtt, 50.0), est.rtt_p99);
        println!("  tput p99 {:.0} B/s", est.throughput_p99);
    }
    export_obs(&mut pipe, &opts);
}

fn cmd_validate(opts: HashMap<String, String>) {
    let trained = load_model(&opts);
    let n = clusters_from(&opts);
    let mut pipe = Pipeline::new(pipeline_from(&opts));
    if obs_requested(&opts) {
        pipe = pipe.with_obs();
    }
    eprintln!("running MimicNet and full-fidelity at {n} clusters...");
    let mut run_opts = PdesRunOpts::default();
    let diag = diag_flags_into(&mut run_opts, &opts);
    let resumable = resumable_from(&opts);
    let (report, mimic_wall, truth_wall) = if resumable.is_some() || diag {
        let (partitions, ckpt, resume) = resumable.unwrap_or((1, None, None));
        run_opts.checkpoint = ckpt;
        run_opts.resume_from = resume;
        if let Some(dir) = &run_opts.resume_from {
            eprintln!("resuming from checkpoint {}...", dir.display());
        }
        let est = match pipe.try_estimate_opts(&trained, n, partitions, &run_opts) {
            Ok(est) => est,
            Err(e) => die_with_obs(&mut pipe, &opts, e, 2),
        };
        let (truth, _, truth_wall) = pipe.run_ground_truth(n);
        (mimicnet::metrics::compare(&truth, &est.samples), est.wall, truth_wall)
    } else {
        pipe.validate(&trained, n)
    };
    println!("W1(FCT)        = {:.5}", report.w1_fct);
    println!("W1(throughput) = {:.0}", report.w1_throughput);
    println!("W1(RTT)        = {:.6}", report.w1_rtt);
    println!(
        "p99 FCT: truth {:.4}s vs mimic {:.4}s ({:.1}% off)",
        report.fct_p99_truth,
        report.fct_p99_approx,
        report.fct_p99_rel_err() * 100.0
    );
    println!(
        "wall: mimic {:.3}s vs truth {:.3}s ({:.1}x)",
        mimic_wall.as_secs_f64(),
        truth_wall.as_secs_f64(),
        truth_wall.as_secs_f64() / mimic_wall.as_secs_f64().max(1e-9)
    );
    export_obs(&mut pipe, &opts);
}

/// `mimicnet diverge`: localize where two digested runs first disagree.
/// Digest-only with just `--a`/`--b`; with `--a-ckpt`/`--b-ckpt`/`--model`/
/// `--clusters` it also replays both sides from the nearest common
/// checkpoint with full tracing and reports the first diverging event.
/// Exit codes: 0 = timelines agree, 3 = divergence found, 1/2 = error.
fn cmd_diverge(opts: HashMap<String, String>) {
    let obs_path = |key: &str| -> String {
        opts.get(key).cloned().unwrap_or_else(|| {
            eprintln!("--{key} OBS.json is required (the run's --obs-out snapshot)");
            usage();
        })
    };
    let timeline = |path: &str| -> DigestTimeline {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1);
        });
        DigestTimeline::from_obs_json(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            exit(1);
        })
    };
    let (a_path, b_path) = (obs_path("a"), obs_path("b"));
    let (ta, tb) = (timeline(&a_path), timeline(&b_path));

    let replay_ready = opts.contains_key("a-ckpt") && opts.contains_key("b-ckpt");
    if (opts.contains_key("a-ckpt") || opts.contains_key("b-ckpt")) && !replay_ready {
        eprintln!("replay needs both --a-ckpt and --b-ckpt");
        usage();
    }
    let trained = replay_ready.then(|| load_model(&opts));
    let result = match &trained {
        Some(trained) => {
            let cfg = ReplayConfig {
                pipeline_cfg: pipeline_from(&opts),
                trained,
                n_clusters: clusters_from(&opts),
                partitions: opts
                    .get("partitions")
                    .map(|v| v.parse().expect("--partitions must be a positive integer"))
                    .unwrap_or(1),
                flight_capacity: opts
                    .get("flight")
                    .map(|v| v.parse().expect("--flight must be a positive integer"))
                    .unwrap_or(65_536),
                adaptive: opts.contains_key("adaptive").then(|| {
                    let plan = TierPlan {
                        every_windows: opts
                            .get("tier-every")
                            .map(|v| v.parse().expect("--tier-every must be a positive integer"))
                            .unwrap_or(64),
                    };
                    (budget_from(&opts), plan, correction_from(&opts))
                }),
            };
            let side_a = ReplaySide { ckpt_dir: Path::new(&opts["a-ckpt"]), label: "A" };
            let side_b = ReplaySide { ckpt_dir: Path::new(&opts["b-ckpt"]), label: "B" };
            eprintln!("comparing digest timelines, then replaying both sides with full tracing...");
            diverge::bisect(&ta, &tb, Some((&cfg, &side_a, &side_b)))
        }
        None => {
            eprintln!(
                "digest-only comparison; add --a-ckpt/--b-ckpt/--model/--clusters \
                 to replay and pinpoint the first diverging event"
            );
            diverge::bisect(&ta, &tb, None)
        }
    };
    match result {
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
        Ok(None) => {
            println!("no divergence: the two digest timelines agree over their whole overlap");
        }
        Ok(Some(report)) => {
            print!("{}", diverge::render_report(&report));
            if let Some(out) = opts.get("out") {
                let json = serde_json::to_string_pretty(&diverge::report_json(&report))
                    .expect("serializable report");
                atomic_write(out.as_ref(), json.as_bytes()).unwrap_or_else(|e| {
                    eprintln!("cannot write {out}: {e}");
                    exit(1);
                });
                eprintln!("wrote diff report to {out}");
            }
            exit(3);
        }
    }
}

/// `mimicnet snap-flip`: flip one restorable state bit in a checkpoint
/// snapshot (re-framed with a valid checksum) to seed a divergence.
fn cmd_snap_flip(opts: HashMap<String, String>) {
    let trained = load_model(&opts);
    let n = clusters_from(&opts);
    let ckpt = PathBuf::from(opts.get("ckpt").cloned().unwrap_or_else(|| {
        eprintln!("--ckpt DIR is required");
        usage();
    }));
    let part = opts
        .get("part")
        .map(|v| v.parse().expect("--part must be an integer"))
        .unwrap_or(0);
    let generation = opts.get("generation").map(String::as_str);
    match diverge::snap_flip(&pipeline_from(&opts), &trained, n, &ckpt, part, generation) {
        Ok(r) => println!(
            "flipped bit 0 of payload byte {} in {} (restored digest {:#018x} -> {:#018x})",
            r.offset,
            r.path.display(),
            r.digest_before,
            r.digest_after
        ),
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    }
}

fn cmd_tune(opts: HashMap<String, String>) {
    let cfg = pipeline_from(&opts);
    let tcfg = TuningConfig {
        evals: opts
            .get("evals")
            .map(|v| v.parse().expect("--evals must be an integer"))
            .unwrap_or(8),
        scales: opts
            .get("scales")
            .map(|v| {
                v.split(',')
                    .map(|s| s.parse().expect("--scales must be integers"))
                    .collect()
            })
            .unwrap_or_else(|| vec![2, 4]),
        seed: cfg.base.seed ^ 0x7A7E,
        workers: opts
            .get("workers")
            .map(|v| v.parse().expect("--workers must be an integer"))
            .unwrap_or(1),
    };
    eprintln!(
        "Bayesian-optimizing {} evaluations over scales {:?}...",
        tcfg.evals, tcfg.scales
    );
    let result = tune(&cfg, &tcfg);
    println!("best objective (sum of normalized W1(FCT)): {:.4}", result.best_objective);
    println!(
        "best params: wbce_w={:.3} huber_delta={:.3} lr={:.2e} hidden={} window={}",
        result.best.wbce_w,
        result.best.huber_delta,
        result.best.lr,
        result.best.hidden,
        result.best.window
    );
    for (i, (p, obj)) in result.history.iter().enumerate() {
        eprintln!(
            "  eval {i}: objective {obj:.4} (w={:.2}, delta={:.2}, lr={:.1e}, hidden={}, window={})",
            p.wbce_w, p.huber_delta, p.lr, p.hidden, p.window
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
    };
    let opts = parse_args(rest);
    match cmd.as_str() {
        "train" => cmd_train(opts),
        "estimate" => cmd_estimate(opts),
        "validate" => cmd_validate(opts),
        "tune" => cmd_tune(opts),
        "diverge" => cmd_diverge(opts),
        "snap-flip" => cmd_snap_flip(opts),
        _ => usage(),
    }
}
