//! Drift detection for deployed Mimics.
//!
//! A Mimic is only trustworthy while the traffic it sees resembles the
//! traffic it was trained on (the paper restricts itself to the
//! failure-free case precisely because failures shift the distribution,
//! §4.2). This module makes that assumption checkable at runtime: a
//! [`FeatureEnvelope`] records per-feature statistics of the training
//! set's ingress features, and a [`DriftMonitor`] scores a live feature
//! stream against it in fixed-size windows.
//!
//! The score combines two signals per window:
//!
//! * **Mean shift** — the average per-feature `|z|`-distance of the
//!   window's feature means from the training means.
//! * **Exceedance** — the fraction of observed feature values outside the
//!   training set's `[lo, hi]` quantile band.
//!
//! Windows are blended with an EWMA so a transient burst decays while a
//! sustained shift (a gray failure, a down link) accumulates. A drift of
//! zero means "indistinguishable from training"; scores are unitless but
//! monotone in distribution distance, which is all the degradation policy
//! ([`crate::degrade`]) needs.

use serde::{Deserialize, Serialize};

/// Per-feature summary of the training distribution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FeatureEnvelope {
    /// Per-feature training mean.
    pub mean: Vec<f64>,
    /// Per-feature training standard deviation (floored to avoid
    /// degenerate z-scores on constant features).
    pub std: Vec<f64>,
    /// Per-feature low quantile (default q=0.005).
    pub lo: Vec<f64>,
    /// Per-feature high quantile (default q=0.995).
    pub hi: Vec<f64>,
}

/// Smallest std used for z-scoring (constant features would otherwise
/// flag drift on any numerical noise).
const STD_FLOOR: f64 = 1e-6;

impl FeatureEnvelope {
    /// Fit an envelope over `rows` of feature vectors (one per packet).
    /// Returns `None` when there are no rows to fit.
    pub fn fit(rows: &[Vec<f32>]) -> Option<FeatureEnvelope> {
        Self::fit_quantiles(rows, 0.005)
    }

    /// Fit with an explicit tail quantile `q` (band is `[q, 1-q]`).
    pub fn fit_quantiles(rows: &[Vec<f32>], q: f64) -> Option<FeatureEnvelope> {
        let first = rows.first()?;
        let width = first.len();
        let n = rows.len();
        let mut mean = vec![0.0f64; width];
        for r in rows {
            for (m, &v) in mean.iter_mut().zip(r.iter()) {
                *m += v as f64;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut var = vec![0.0f64; width];
        for r in rows {
            for ((s, &v), m) in var.iter_mut().zip(r.iter()).zip(&mean) {
                let d = v as f64 - m;
                *s += d * d;
            }
        }
        let std: Vec<f64> = var
            .iter()
            .map(|s| (s / n as f64).sqrt().max(STD_FLOOR))
            .collect();
        let mut lo = Vec::with_capacity(width);
        let mut hi = Vec::with_capacity(width);
        let mut col: Vec<f64> = Vec::with_capacity(n);
        for k in 0..width {
            col.clear();
            col.extend(rows.iter().map(|r| r[k] as f64));
            col.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
            let idx = |p: f64| -> usize {
                ((p * (n - 1) as f64).round() as usize).min(n - 1)
            };
            lo.push(col[idx(q)]);
            hi.push(col[idx(1.0 - q)]);
        }
        Some(FeatureEnvelope { mean, std, lo, hi })
    }

    /// Number of features the envelope covers.
    pub fn width(&self) -> usize {
        self.mean.len()
    }
}

/// Excess of a live drift score over a calibrated per-cluster baseline,
/// clamped at zero — the quantity every drift-driven policy thresholds
/// on ([`crate::degrade::DegradationPolicy`]'s escalation ladder and the
/// tier [`crate::degrade::AccuracyBudget`]'s promote/demote decisions).
/// A missing baseline entry means zero (uncalibrated).
pub fn excess_score(score: f64, baseline: &[f64], cluster: usize) -> f64 {
    (score - baseline.get(cluster).copied().unwrap_or(0.0)).max(0.0)
}

/// Default observations per scoring window.
const DEFAULT_WINDOW: usize = 256;
/// EWMA weight of the newest window.
const EWMA_ALPHA: f64 = 0.3;
/// Minimum rows before a partial first window yields a provisional score.
pub const MIN_PARTIAL_ROWS: usize = 32;

/// Scores a live feature stream against a [`FeatureEnvelope`].
#[derive(Clone, Debug)]
pub struct DriftMonitor {
    env: FeatureEnvelope,
    window: usize,
    /// Running per-feature sums of the current window.
    sums: Vec<f64>,
    /// Out-of-band value count in the current window.
    exceed: u64,
    /// Total values (rows × features) in the current window.
    values: u64,
    /// Rows in the current window.
    rows: usize,
    /// EWMA of completed window scores; `None` until a window completes.
    score: Option<f64>,
    /// Total rows ever observed.
    observed: u64,
}

impl DriftMonitor {
    pub fn new(env: FeatureEnvelope) -> DriftMonitor {
        DriftMonitor::with_window(env, DEFAULT_WINDOW)
    }

    pub fn with_window(env: FeatureEnvelope, window: usize) -> DriftMonitor {
        let width = env.width();
        DriftMonitor {
            env,
            window: window.max(1),
            sums: vec![0.0; width],
            exceed: 0,
            values: 0,
            rows: 0,
            score: None,
            observed: 0,
        }
    }

    /// Feed one live feature vector (an ingress packet's features).
    pub fn observe(&mut self, features: &[f32]) {
        let width = self.env.width().min(features.len());
        for (k, &f) in features.iter().enumerate().take(width) {
            let v = f as f64;
            self.sums[k] += v;
            if v < self.env.lo[k] || v > self.env.hi[k] {
                self.exceed += 1;
            }
            self.values += 1;
        }
        self.rows += 1;
        self.observed += 1;
        if self.rows >= self.window {
            self.roll_window();
        }
    }

    /// Score of the (possibly partial) current window.
    fn window_score(&self) -> f64 {
        let n = self.rows as f64;
        let width = self.env.width();
        let mut shift = 0.0;
        for k in 0..width {
            let mean = self.sums[k] / n;
            shift += ((mean - self.env.mean[k]) / self.env.std[k]).abs();
        }
        shift /= width.max(1) as f64;
        let exceed = self.exceed as f64 / self.values.max(1) as f64;
        // Training data itself lands ~1% outside a 0.5% tail band;
        // subtract that baseline so in-distribution traffic scores ≈ 0.
        let exceed_excess = (exceed - 0.01).max(0.0);
        shift + 10.0 * exceed_excess
    }

    fn roll_window(&mut self) {
        let window_score = self.window_score();
        self.score = Some(match self.score {
            None => window_score,
            Some(prev) => (1.0 - EWMA_ALPHA) * prev + EWMA_ALPHA * window_score,
        });
        self.sums.iter_mut().for_each(|s| *s = 0.0);
        self.exceed = 0;
        self.values = 0;
        self.rows = 0;
    }

    /// The current drift score. Zero-ish means in-distribution; larger
    /// means further out. Before the first window completes, a
    /// provisional score over the partial window is returned once at
    /// least [`MIN_PARTIAL_ROWS`] packets have been seen (low-traffic
    /// Mimics would otherwise never report).
    pub fn score(&self) -> Option<f64> {
        if let Some(s) = self.score {
            return Some(s);
        }
        if self.rows >= MIN_PARTIAL_ROWS {
            return Some(self.window_score());
        }
        None
    }

    /// Total feature vectors observed.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Serialize the mutable window state for a checkpoint (the envelope
    /// itself is part of the bundle and rebuilt on restore).
    pub fn save_state(&self, w: &mut dcn_sim::snapshot::SnapWriter) {
        w.put_f64_slice(&self.sums);
        w.put_u64(self.exceed);
        w.put_u64(self.values);
        w.put_u64(self.rows as u64);
        w.put_opt_f64(self.score);
        w.put_u64(self.observed);
    }

    /// Overwrite the mutable window state from a checkpoint.
    pub fn load_state(
        &mut self,
        r: &mut dcn_sim::snapshot::SnapReader<'_>,
    ) -> Result<(), dcn_sim::snapshot::SnapshotError> {
        let sums = r.get_f64_vec()?;
        if sums.len() != self.sums.len() {
            return Err(dcn_sim::snapshot::SnapshotError::Corrupt(format!(
                "drift monitor width {} does not match snapshot ({})",
                self.sums.len(),
                sums.len()
            )));
        }
        self.sums = sums;
        self.exceed = r.get_u64()?;
        self.values = r.get_u64()?;
        self.rows = r.get_u64()? as usize;
        self.score = r.get_opt_f64()?;
        self.observed = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic "training set": feature 0 ~ U[0,1], feature 1 ~ U[2,3].
    fn rows(n: usize, shift: f64, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = dcn_sim::rng::SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                vec![
                    (rng.next_f64() + shift) as f32,
                    (2.0 + rng.next_f64() + shift) as f32,
                ]
            })
            .collect()
    }

    #[test]
    fn fit_captures_training_band() {
        let env = FeatureEnvelope::fit(&rows(2000, 0.0, 1)).unwrap();
        assert_eq!(env.width(), 2);
        assert!((env.mean[0] - 0.5).abs() < 0.05, "mean {:?}", env.mean);
        assert!((env.mean[1] - 2.5).abs() < 0.05);
        assert!(env.lo[0] >= 0.0 && env.hi[0] <= 1.0);
        assert!(env.lo[1] >= 2.0 && env.hi[1] <= 3.0);
    }

    #[test]
    fn fit_on_empty_is_none() {
        assert!(FeatureEnvelope::fit(&[]).is_none());
    }

    #[test]
    fn in_distribution_scores_near_zero() {
        let env = FeatureEnvelope::fit(&rows(2000, 0.0, 1)).unwrap();
        let mut mon = DriftMonitor::with_window(env, 128);
        for r in rows(1024, 0.0, 99) {
            mon.observe(&r);
        }
        let s = mon.score().expect("windows completed");
        assert!(s < 0.5, "in-distribution drift {s} too high");
    }

    #[test]
    fn shifted_distribution_scores_higher() {
        let env = FeatureEnvelope::fit(&rows(2000, 0.0, 1)).unwrap();
        let score_at = |shift: f64| {
            let mut mon = DriftMonitor::with_window(env.clone(), 128);
            for r in rows(1024, shift, 7) {
                mon.observe(&r);
            }
            mon.score().expect("windows completed")
        };
        let s0 = score_at(0.0);
        let s1 = score_at(0.5);
        let s2 = score_at(2.0);
        assert!(s1 > s0, "mild shift {s1} not above baseline {s0}");
        assert!(s2 > s1, "large shift {s2} not above mild {s1}");
    }

    #[test]
    fn no_score_before_first_window() {
        let env = FeatureEnvelope::fit(&rows(100, 0.0, 1)).unwrap();
        let mut mon = DriftMonitor::with_window(env, 64);
        for r in rows(10, 0.0, 2) {
            mon.observe(&r);
        }
        assert!(mon.score().is_none());
        assert_eq!(mon.observed(), 10);
    }

    #[test]
    fn partial_window_gives_provisional_score() {
        let env = FeatureEnvelope::fit(&rows(2000, 0.0, 1)).unwrap();
        let mut mon = DriftMonitor::with_window(env, 1024);
        for r in rows(MIN_PARTIAL_ROWS + 1, 2.0, 3) {
            mon.observe(&r);
        }
        // No window completed, but the shifted partial window reports.
        let s = mon.score().expect("provisional score");
        assert!(s > 1.0, "strong shift scored only {s}");
    }

    #[test]
    fn envelope_serializes() {
        let env = FeatureEnvelope::fit(&rows(100, 0.0, 1)).unwrap();
        let json = serde_json::to_string(&env).unwrap();
        let back: FeatureEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back.mean, env.mean);
        assert_eq!(back.lo, env.lo);
    }
}
