//! Hyper-parameter tuning with Bayesian optimization (paper §7.2).
//!
//! "For every tested parameter set, MimicNet trains a set of models and
//! runs validation tests to evaluate the resulting accuracy and its
//! scale-independence. Specifically, MimicNet runs an approximated and
//! full-fidelity simulation on a held-out validation workload in three
//! configurations: 2, 4, and 8 clusters. … The full-fidelity comparison
//! results are only gathered once."
//!
//! The objective is user-definable; the default mirrors the paper's FCT
//! use case: the sum over validation scales of `W1(FCT)` normalized by the
//! ground truth's mean FCT (normalization makes scales comparable).

use crate::metrics::{wasserstein1, ObservedSamples};
use crate::pipeline::{Pipeline, PipelineConfig};
use mimic_ml::bayesopt::{BayesOpt, ParamDim, ParamSpace};
use mimic_ml::loss::{ClsLoss, RegLoss};
use std::collections::HashMap;

/// The tunable hyper-parameters (a subset of the paper's list: "WBCE
/// weight, Huber loss δ, LSTM layers, hidden size, epochs, and learning
/// rate among others").
#[derive(Clone, Copy, Debug)]
pub struct TunedParams {
    pub wbce_w: f64,
    pub huber_delta: f64,
    pub lr: f64,
    pub hidden: usize,
    pub window: usize,
}

impl TunedParams {
    /// Apply to a pipeline configuration.
    pub fn apply(&self, cfg: &mut PipelineConfig) {
        cfg.train.loss.drop = ClsLoss::Wbce {
            w: self.wbce_w as f32,
        };
        cfg.train.loss.latency = RegLoss::Huber {
            delta: self.huber_delta as f32,
        };
        cfg.train.lr = self.lr as f32;
        cfg.hidden = self.hidden;
        cfg.train.window = self.window;
    }

    fn from_raw(raw: &[f64]) -> TunedParams {
        TunedParams {
            wbce_w: raw[0],
            huber_delta: raw[1],
            lr: raw[2],
            hidden: raw[3].round().max(4.0) as usize,
            window: raw[4].round().max(1.0) as usize,
        }
    }

    fn to_raw(self) -> Vec<f64> {
        vec![
            self.wbce_w,
            self.huber_delta,
            self.lr,
            self.hidden as f64,
            self.window as f64,
        ]
    }
}

/// Tuning-loop configuration.
#[derive(Clone, Debug)]
pub struct TuningConfig {
    /// Total (train + validate) evaluations.
    pub evals: usize,
    /// Validation cluster counts (paper: 2, 4, 8).
    pub scales: Vec<u32>,
    /// Seed for the BO proposals and the held-out validation workload.
    pub seed: u64,
    /// Worker budget handed to each trial's training fan-out. Trials
    /// themselves stay serial — Bayesian optimization is sequential by
    /// nature (each proposal conditions on every prior observation) — so
    /// the full budget goes to the per-direction/per-shard parallelism
    /// inside one trial. Training is bit-identical at any worker count,
    /// so the proposal stream and history are too.
    pub workers: usize,
}

impl Default for TuningConfig {
    fn default() -> Self {
        TuningConfig {
            evals: 8,
            scales: vec![2, 4],
            seed: 99,
            workers: 1,
        }
    }
}

/// Tuning outcome.
#[derive(Clone, Debug)]
pub struct TuningResult {
    pub best: TunedParams,
    pub best_objective: f64,
    /// `(params, objective)` per evaluation, in order.
    pub history: Vec<(TunedParams, f64)>,
}

/// The default search space.
pub fn default_space() -> ParamSpace {
    ParamSpace {
        dims: vec![
            ParamDim::linear("wbce_w", 0.5, 0.95),
            // Latency targets are normalized to [0,1]; the knee must sit
            // inside that range.
            ParamDim::log("huber_delta", 0.02, 1.0),
            ParamDim::log("lr", 5e-4, 2e-2),
            ParamDim::linear("hidden", 8.0, 48.0),
            ParamDim::linear("window", 4.0, 16.0),
        ],
    }
}

/// Run the tuning loop. Ground truths for each validation scale are
/// simulated once and cached across evaluations.
pub fn tune(base_cfg: &PipelineConfig, tcfg: &TuningConfig) -> TuningResult {
    // The held-out validation workload: same shape, different seed.
    let mut val_cfg = *base_cfg;
    val_cfg.base.seed = base_cfg.base.seed ^ 0x5EED_5EED;

    // Gather ground truths once.
    let mut truths: HashMap<u32, ObservedSamples> = HashMap::new();
    for &s in &tcfg.scales {
        let pipe = Pipeline::new(val_cfg);
        let (truth, _, _) = pipe.run_ground_truth(s);
        truths.insert(s, truth);
    }
    let truth_mean_fct: HashMap<u32, f64> = truths
        .iter()
        .map(|(&s, t)| (s, dcn_sim::stats::mean(&t.fct).max(1e-9)))
        .collect();
    let truth_mean_rtt: HashMap<u32, f64> = truths
        .iter()
        .map(|(&s, t)| (s, dcn_sim::stats::mean(&t.rtt).max(1e-9)))
        .collect();

    let mut bo = BayesOpt::new(default_space(), tcfg.seed);
    let mut history = Vec::with_capacity(tcfg.evals);
    for _ in 0..tcfg.evals {
        let raw = bo.propose();
        let params = TunedParams::from_raw(&raw);
        let mut cfg = val_cfg;
        params.apply(&mut cfg);
        cfg.train.workers = tcfg.workers.max(1);
        let mut pipe = Pipeline::new(cfg);
        let trained = pipe.train();
        // End-to-end objective across validation scales.
        let mut objective = 0.0;
        for &s in &tcfg.scales {
            // estimate() already filters to the observable cluster. The
            // objective is user-definable (§7.2); the default combines
            // FCT and RTT distribution errors, each normalized by the
            // truth's mean so scales and metrics are commensurate.
            let est = pipe.estimate(&trained, s);
            let w_fct = wasserstein1(&truths[&s].fct, &est.samples.fct);
            let w_fct = if w_fct.is_finite() { w_fct } else { 10.0 * truth_mean_fct[&s] };
            let w_rtt = wasserstein1(&truths[&s].rtt, &est.samples.rtt);
            let w_rtt = if w_rtt.is_finite() { w_rtt } else { 10.0 * truth_mean_rtt[&s] };
            objective += w_fct / truth_mean_fct[&s] + w_rtt / truth_mean_rtt[&s];
        }
        bo.observe(&params.to_raw(), objective);
        history.push((params, objective));
    }
    let (best_raw, best_objective) = bo.best().expect("evaluated at least once");
    TuningResult {
        best: TunedParams::from_raw(&best_raw),
        best_objective,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_roundtrip_and_apply() {
        let p = TunedParams {
            wbce_w: 0.7,
            huber_delta: 1.5,
            lr: 3e-3,
            hidden: 16,
            window: 8,
        };
        let p2 = TunedParams::from_raw(&p.to_raw());
        assert_eq!(p2.hidden, 16);
        assert_eq!(p2.window, 8);
        let mut cfg = PipelineConfig::default();
        p.apply(&mut cfg);
        assert_eq!(cfg.hidden, 16);
        assert_eq!(cfg.train.window, 8);
        match cfg.train.loss.drop {
            ClsLoss::Wbce { w } => assert!((w - 0.7).abs() < 1e-6),
            other => panic!("unexpected drop loss {other:?}"),
        }
    }

    #[test]
    fn space_denorm_within_bounds() {
        let space = default_space();
        for u in [0.0, 0.3, 0.99] {
            let raw = space.denorm(&vec![u; space.ndims()]);
            let p = TunedParams::from_raw(&raw);
            assert!((0.5..=0.95).contains(&p.wbce_w));
            assert!((0.02..=1.0).contains(&p.huber_delta));
            assert!((5e-4..=2e-2).contains(&p.lr));
            assert!((4..=48).contains(&p.hidden));
            assert!((1..=16).contains(&p.window));
        }
    }

    #[test]
    #[ignore = "minutes-long: trains models per evaluation (run with --ignored)"]
    fn tuning_loop_improves_or_matches_first_guess() {
        let mut cfg = PipelineConfig::default();
        cfg.base.duration_s = 0.25;
        cfg.train.epochs = 1;
        let tcfg = TuningConfig {
            evals: 3,
            scales: vec![2],
            seed: 5,
            ..TuningConfig::default()
        };
        let result = tune(&cfg, &tcfg);
        assert_eq!(result.history.len(), 3);
        let first = result.history[0].1;
        assert!(result.best_objective <= first);
        assert!(result.best_objective.is_finite());
    }

    #[test]
    fn tuning_worker_budget_is_trajectory_invariant() {
        // One cheap trial, run at worker budgets 1 and 4: training is
        // bit-identical at any worker count, so the proposal stream, the
        // per-trial objectives, and the winner must match exactly.
        let mut cfg = PipelineConfig::default();
        cfg.base.duration_s = 0.2;
        cfg.train.epochs = 1;
        cfg.train.window = 4;
        let mut results = Vec::new();
        for workers in [1usize, 4] {
            let tcfg = TuningConfig {
                evals: 1,
                scales: vec![2],
                seed: 5,
                workers,
            };
            results.push(tune(&cfg, &tcfg));
        }
        let (a, b) = (&results[0], &results[1]);
        assert_eq!(a.history.len(), b.history.len());
        for ((pa, oa), (pb, ob)) in a.history.iter().zip(&b.history) {
            assert_eq!(pa.to_raw(), pb.to_raw(), "proposal drifted with workers");
            assert_eq!(oa.to_bits(), ob.to_bits(), "objective drifted with workers");
        }
        assert_eq!(a.best_objective.to_bits(), b.best_objective.to_bits());
    }
}
