//! Automated divergence bisection (DESIGN.md §14).
//!
//! Two runs that should be bit-identical — same config, different
//! partition counts; a resumed run vs. an uninterrupted one; a run before
//! and after a suspect change — occasionally are not. Eyeballing final
//! metrics tells you *that* they diverged; this module tells you *where*:
//!
//! 1. **Coarse**: compare the two runs' per-window state-digest timelines
//!    (recorded by `--digests`, exported in the obs snapshot) and find the
//!    first window whose digests disagree.
//! 2. **Replay**: restore the newest checkpoint generation both sides
//!    share strictly before that barrier, re-run each side to the barrier
//!    with stride-1 digests and a full flight ring, and refine the first
//!    diverging window against the finer timelines.
//! 3. **Event diff**: merge-sort each side's flight events into the
//!    deterministic [`FlightEvent::sort_key`] order and report the first
//!    event where the two runs disagree, with a side-by-side excerpt.
//!
//! Also home to [`snap_flip`], the fault injector the CI divergence smoke
//! job uses: flip one state bit inside a checkpoint snapshot such that the
//! snapshot still restores cleanly but its state digest changes, then
//! re-frame it with a valid checksum. Resuming the corrupted checkpoint
//! yields a run that diverges at exactly the restored window — ground
//! truth for exercising the bisection end to end.

use crate::compose::{batched_fleet, composed_engine};
use crate::mimic::TrainedMimic;
use crate::pipeline::Pipeline;
use dcn_obs::{FlightEvent, ObsReport};
use dcn_sim::pdes::{partition_by_cluster, read_manifest, FlightPlan, PdesRunOpts, TierPlan};
use dcn_sim::snapshot::{read_snapshot_file, write_snapshot_file};
use dcn_sim::time::SimTime;
use dcn_sim::topology::FatTree;
use serde_json::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A run's digest timeline, as recorded by the engine (`--digests`) and
/// exported in the obs snapshot: entry `i` is the state digest at the
/// window-barrier with absolute index `first_window + i * stride`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DigestTimeline {
    /// Absolute window index of the first recorded digest.
    pub first_window: u64,
    /// Window-index stride between recorded digests.
    pub stride: u64,
    /// Conservative window length, nanoseconds.
    pub window_ns: u64,
    /// One digest per recorded barrier.
    pub digests: Vec<u64>,
}

impl DigestTimeline {
    /// Extract the timeline from an exported obs snapshot (`--obs-out`).
    pub fn from_obs_json(text: &str) -> Result<DigestTimeline, String> {
        let v: Value =
            serde_json::from_str(text).map_err(|e| format!("obs snapshot does not parse: {e}"))?;
        let root = v.as_object().ok_or("obs snapshot root is not an object")?;
        let get = |name: &str| root.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let gauges = get("gauges")
            .and_then(Value::as_object)
            .ok_or("obs snapshot has no gauges section")?;
        let gauge = |name: &str| {
            gauges
                .iter()
                .find(|(k, _)| k == name)
                .and_then(|(_, v)| v.as_u64())
        };
        let window_ns = gauge("digest.window_ns")
            .ok_or("no digest.window_ns gauge — was the run digested (--digests)?")?;
        let digests = get("digests")
            .and_then(Value::as_object)
            .and_then(|d| d.iter().find(|(k, _)| k == "digest.window"))
            .and_then(|(_, v)| v.as_array())
            .ok_or("no digest.window timeline — was the run digested (--digests)?")?
            .iter()
            .map(|x| x.as_u64().ok_or_else(|| "non-integer digest entry".to_string()))
            .collect::<Result<Vec<u64>, String>>()?;
        Ok(DigestTimeline {
            first_window: gauge("digest.first_window").unwrap_or(0),
            stride: gauge("digest.stride").unwrap_or(1).max(1),
            window_ns,
            digests,
        })
    }

    /// Extract the timeline from an in-process report (replay path).
    pub fn from_report(r: &ObsReport) -> Result<DigestTimeline, String> {
        let digests = r
            .digests
            .get("digest.window")
            .cloned()
            .ok_or("replay recorded no digest.window timeline")?;
        let gauge = |n: &str| r.gauges.get(n).map(|v| *v as u64);
        Ok(DigestTimeline {
            first_window: gauge("digest.first_window").unwrap_or(0),
            stride: gauge("digest.stride").unwrap_or(1).max(1),
            window_ns: gauge("digest.window_ns").ok_or("replay recorded no digest.window_ns")?,
            digests,
        })
    }

    /// The digest at absolute window index `w`, if recorded.
    fn at(&self, w: u64) -> Option<u64> {
        if w < self.first_window || !(w - self.first_window).is_multiple_of(self.stride) {
            return None;
        }
        let i = (w - self.first_window) / self.stride;
        self.digests.get(i as usize).copied()
    }

    /// One-past-the-last recorded absolute window index.
    fn end_window(&self) -> u64 {
        self.first_window + self.digests.len() as u64 * self.stride
    }
}

/// First window-barrier where two digest timelines disagree.
#[derive(Clone, Copy, Debug)]
pub struct WindowDivergence {
    /// Absolute window index of the first disagreement.
    pub window: u64,
    /// Simulated time of that barrier, nanoseconds.
    pub sim_ns: u64,
    /// Side A's digest there (`None` = not recorded on that side).
    pub a: Option<u64>,
    /// Side B's digest there.
    pub b: Option<u64>,
}

/// Compare two digest timelines over their overlapping extent and return
/// the first barrier where they disagree (`Ok(None)` = identical).
pub fn first_window_divergence(
    a: &DigestTimeline,
    b: &DigestTimeline,
) -> Result<Option<WindowDivergence>, String> {
    if a.window_ns != b.window_ns {
        return Err(format!(
            "the runs used different conservative windows ({} vs {} ns); their \
             digest timelines are not comparable",
            a.window_ns, b.window_ns
        ));
    }
    if a.stride != b.stride {
        return Err(format!(
            "the runs used different digest strides ({} vs {}); re-run both with \
             the same --digest-stride",
            a.stride, b.stride
        ));
    }
    let start = a.first_window.max(b.first_window);
    let end = a.end_window().min(b.end_window());
    if start >= end {
        return Err("the two digest timelines do not overlap".into());
    }
    let mut w = start;
    while w < end {
        let (da, db) = (a.at(w), b.at(w));
        if da != db {
            return Ok(Some(WindowDivergence {
                window: w,
                sim_ns: w.saturating_mul(a.window_ns),
                a: da,
                b: db,
            }));
        }
        w += a.stride;
    }
    Ok(None)
}

/// First flight-recorder event where two runs disagree, with context.
#[derive(Clone, Debug)]
pub struct EventDivergence {
    /// Side A's event at the diverging position (`None` = A's trace ended).
    pub a: Option<FlightEvent>,
    /// Side B's event at the diverging position.
    pub b: Option<FlightEvent>,
    /// A few events on each side around the divergence, in merge order.
    pub excerpt_a: Vec<FlightEvent>,
    pub excerpt_b: Vec<FlightEvent>,
}

/// Sort both sides into the deterministic cross-LP merge order and find
/// the first position where they disagree. `None` = the traces match.
pub fn first_event_divergence(a: &[FlightEvent], b: &[FlightEvent]) -> Option<EventDivergence> {
    let mut sa: Vec<FlightEvent> = a.to_vec();
    let mut sb: Vec<FlightEvent> = b.to_vec();
    sa.sort_by_key(FlightEvent::sort_key);
    sb.sort_by_key(FlightEvent::sort_key);
    let common = sa.len().min(sb.len());
    let mut i = 0;
    while i < common && sa[i] == sb[i] {
        i += 1;
    }
    if i == sa.len() && i == sb.len() {
        return None;
    }
    let lo = i.saturating_sub(3);
    let hi = i + 4;
    Some(EventDivergence {
        a: sa.get(i).copied(),
        b: sb.get(i).copied(),
        excerpt_a: sa[lo.min(sa.len())..hi.min(sa.len())].to_vec(),
        excerpt_b: sb[lo.min(sb.len())..hi.min(sb.len())].to_vec(),
    })
}

/// Everything one side of a replay needs.
pub struct ReplaySide<'a> {
    /// That run's checkpoint directory (the ladder of restore points).
    pub ckpt_dir: &'a Path,
    /// Short label for reports ("A"/"B").
    pub label: &'a str,
}

/// How to rebuild the runs for the replay phase: the same model, scale,
/// and engine options the original runs used.
pub struct ReplayConfig<'a> {
    pub pipeline_cfg: crate::pipeline::PipelineConfig,
    pub trained: &'a TrainedMimic,
    pub n_clusters: u32,
    pub partitions: usize,
    /// Flight-ring capacity per LP for the replay (events kept are the
    /// *last* `capacity`, which is the end of the replay — exactly where
    /// the divergence is).
    pub flight_capacity: usize,
    /// Replay adaptively when the original runs did.
    pub adaptive: Option<(crate::AccuracyBudget, TierPlan, Option<crate::CorrectionHead>)>,
}

/// One side's replay result.
pub struct ReplayOutcome {
    /// Generation restored, `None` = replayed from t=0.
    pub resumed_generation: Option<String>,
    pub timeline: DigestTimeline,
    pub flight: Vec<FlightEvent>,
}

/// The full bisection verdict.
pub struct BisectReport {
    /// First diverging window per the two runs' recorded timelines.
    pub coarse: WindowDivergence,
    /// First diverging window per the stride-1 replay timelines (present
    /// when the replay phase ran and reproduced the divergence).
    pub refined: Option<WindowDivergence>,
    /// First diverging event per the replay flight recorders.
    pub event: Option<EventDivergence>,
    /// Generation both replays restored (`None` = replayed from t=0).
    pub resumed_generation: Option<String>,
}

/// The checkpoint generations in `dir`, keyed by cut time (nanoseconds).
fn generation_times(dir: &Path) -> Result<BTreeMap<u64, String>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    let mut out = BTreeMap::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(ns) = name.strip_prefix("gen-").and_then(|s| s.parse::<u64>().ok()) {
            if entry.path().is_dir() {
                out.insert(ns, name.to_string());
            }
        }
    }
    Ok(out)
}

/// The newest generation *both* checkpoint ladders hold strictly before
/// `barrier_ns`. Restoring a common cut keeps the two replays' flight
/// traces aligned from their first event; `None` = no common cut, replay
/// both sides from t=0.
pub fn common_generation_before(
    a_dir: &Path,
    b_dir: &Path,
    barrier_ns: u64,
) -> Result<Option<String>, String> {
    let a = generation_times(a_dir)?;
    let b = generation_times(b_dir)?;
    Ok(a.range(..barrier_ns)
        .rev()
        .find(|(ns, _)| b.contains_key(ns))
        .map(|(_, name)| name.clone()))
}

/// Replay one side up to `stop_window`'s barrier with stride-1 digests
/// and a full flight ring, restoring `generation` from its checkpoint
/// ladder (or from t=0 when `None`).
fn replay_side(
    cfg: &ReplayConfig<'_>,
    side: &ReplaySide<'_>,
    generation: Option<&str>,
    stop_window: u64,
    window_ns: u64,
) -> Result<ReplayOutcome, String> {
    let barrier_ns = stop_window
        .checked_mul(window_ns)
        .ok_or("divergence window overflows simulated time")?;
    let opts = PdesRunOpts {
        obs: true,
        resume_from: generation.map(|_| side.ckpt_dir.to_path_buf()),
        resume_generation: generation.map(str::to_string),
        stop_at: Some(SimTime(barrier_ns)),
        digest_stride: Some(1),
        flight: Some(FlightPlan {
            capacity: cfg.flight_capacity,
            ..FlightPlan::default()
        }),
        ..PdesRunOpts::default()
    };
    // A fresh pipeline with its own recorder *off*: the engine report then
    // stays on the returned metrics for us to read directly.
    let mut pipe = Pipeline::new(cfg.pipeline_cfg);
    let est = match &cfg.adaptive {
        None => pipe.try_estimate_opts(cfg.trained, cfg.n_clusters, cfg.partitions, &opts),
        Some((budget, plan, correction)) => pipe.try_estimate_adaptive_opts(
            cfg.trained,
            cfg.n_clusters,
            cfg.partitions,
            budget,
            plan,
            correction.as_ref(),
            &opts,
        ),
    }
    .map_err(|e| format!("side {} replay failed: {e}", side.label))?;
    let report = est
        .metrics
        .obs
        .as_ref()
        .ok_or_else(|| format!("side {} replay produced no obs report", side.label))?;
    Ok(ReplayOutcome {
        resumed_generation: generation.map(str::to_string),
        timeline: DigestTimeline::from_report(report)?,
        flight: report.flight.clone(),
    })
}

/// Run the full bisection: coarse window localization from the two obs
/// snapshots, then (when `replay` is given) checkpoint-restore replay of
/// both sides with full tracing and the first-diverging-event diff.
pub fn bisect(
    a: &DigestTimeline,
    b: &DigestTimeline,
    replay: Option<(&ReplayConfig<'_>, &ReplaySide<'_>, &ReplaySide<'_>)>,
) -> Result<Option<BisectReport>, String> {
    let Some(coarse) = first_window_divergence(a, b)? else {
        return Ok(None);
    };
    let Some((cfg, side_a, side_b)) = replay else {
        return Ok(Some(BisectReport {
            coarse,
            refined: None,
            event: None,
            resumed_generation: None,
        }));
    };
    let generation = common_generation_before(side_a.ckpt_dir, side_b.ckpt_dir, coarse.sim_ns)?;
    let ra = replay_side(cfg, side_a, generation.as_deref(), coarse.window, a.window_ns)?;
    let rb = replay_side(cfg, side_b, generation.as_deref(), coarse.window, a.window_ns)?;
    // The replay runs stride-1, so this refinement can only tighten the
    // coarse window (or confirm it).
    let refined = first_window_divergence(&ra.timeline, &rb.timeline)?;
    let event = first_event_divergence(&ra.flight, &rb.flight);
    Ok(Some(BisectReport {
        coarse,
        refined,
        event,
        resumed_generation: generation,
    }))
}

fn fmt_digest(d: Option<u64>) -> String {
    match d {
        Some(d) => format!("{d:#018x}"),
        None => "(not recorded)".to_string(),
    }
}

fn fmt_event(e: &FlightEvent) -> String {
    format!(
        "lp {} t={}ns kind={}({}) pkt={} qdepth={}",
        e.lp,
        e.sim_ns,
        e.kind_name,
        e.kind,
        if e.packet_id == u64::MAX { "-".to_string() } else { e.packet_id.to_string() },
        e.queue_depth
    )
}

/// Render the verdict as the human report `mimicnet diverge` prints.
pub fn render_report(r: &BisectReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let w = &r.coarse;
    let _ = writeln!(
        out,
        "first diverging window (coarse): window {} @ {} ns\n  side A digest {}\n  side B digest {}",
        w.window,
        w.sim_ns,
        fmt_digest(w.a),
        fmt_digest(w.b)
    );
    match &r.resumed_generation {
        Some(g) => {
            let _ = writeln!(out, "replayed both sides from common checkpoint {g}");
        }
        None => {
            let _ = writeln!(out, "replayed both sides from t=0 (no common checkpoint before the divergence)");
        }
    }
    if let Some(w) = &r.refined {
        let _ = writeln!(
            out,
            "first diverging window (replay, stride 1): window {} @ {} ns\n  side A digest {}\n  side B digest {}",
            w.window,
            w.sim_ns,
            fmt_digest(w.a),
            fmt_digest(w.b)
        );
    }
    match &r.event {
        Some(ev) => {
            let _ = writeln!(out, "first diverging event:");
            let _ = writeln!(
                out,
                "  side A: {}",
                ev.a.as_ref().map(fmt_event).unwrap_or_else(|| "(trace ended)".into())
            );
            let _ = writeln!(
                out,
                "  side B: {}",
                ev.b.as_ref().map(fmt_event).unwrap_or_else(|| "(trace ended)".into())
            );
            let _ = writeln!(out, "  trace excerpt (merge order):");
            let rows = ev.excerpt_a.len().max(ev.excerpt_b.len());
            for i in 0..rows {
                let a = ev.excerpt_a.get(i).map(fmt_event).unwrap_or_default();
                let b = ev.excerpt_b.get(i).map(fmt_event).unwrap_or_default();
                let marker = if ev.excerpt_a.get(i) != ev.excerpt_b.get(i) { ">>" } else { "  " };
                let _ = writeln!(out, "  {marker} A {a:<58} | B {b}");
            }
        }
        None => {
            let _ = writeln!(
                out,
                "flight traces are identical — the divergence is inside a window's \
                 state evolution, not its event order (suspect model/RNG state)"
            );
        }
    }
    out
}

fn event_json(e: &FlightEvent) -> Value {
    serde_json::json!({
        "lp": e.lp,
        "sim_ns": e.sim_ns,
        "kind": e.kind,
        "kind_name": e.kind_name,
        "packet_id": e.packet_id,
        "queue_depth": e.queue_depth,
    })
}

fn window_json(w: &WindowDivergence) -> Value {
    serde_json::json!({
        "window": w.window,
        "sim_ns": w.sim_ns,
        "digest_a": w.a,
        "digest_b": w.b,
    })
}

/// Render the verdict as the machine-readable diff report (`--out`).
pub fn report_json(r: &BisectReport) -> Value {
    let event = match &r.event {
        None => Value::Null,
        Some(ev) => serde_json::json!({
            "a": ev.a.as_ref().map(event_json),
            "b": ev.b.as_ref().map(event_json),
            "excerpt_a": ev.excerpt_a.iter().map(event_json).collect::<Vec<Value>>(),
            "excerpt_b": ev.excerpt_b.iter().map(event_json).collect::<Vec<Value>>(),
        }),
    };
    serde_json::json!({
        "coarse": window_json(&r.coarse),
        "refined": r.refined.as_ref().map(window_json),
        "resumed_generation": r.resumed_generation.clone(),
        "event": event,
    })
}

/// Outcome of a [`snap_flip`] injection.
#[derive(Clone, Debug)]
pub struct SnapFlipReport {
    /// The snapshot file that was corrupted.
    pub path: PathBuf,
    /// Byte offset (within the snapshot payload) of the flipped bit.
    pub offset: usize,
    /// State digest of the partition before / after the flip.
    pub digest_before: u64,
    pub digest_after: u64,
}

/// Flip one bit of partition `part`'s snapshot in `ckpt_dir`'s current
/// generation such that the snapshot still restores cleanly but its
/// restored state digest changes, then rewrite the file (re-framed with a
/// valid checksum). The resumed run then diverges from the original at
/// exactly the restored window — a seeded divergence for testing
/// [`bisect`] end to end.
pub fn snap_flip(
    pipeline_cfg: &crate::pipeline::PipelineConfig,
    trained: &TrainedMimic,
    n_clusters: u32,
    ckpt_dir: &Path,
    part: usize,
    generation: Option<&str>,
) -> Result<SnapFlipReport, String> {
    let manifest = read_manifest(ckpt_dir).map_err(|e| e.to_string())?;
    // A mid-run generation (retained by `keep > 1`) can be targeted
    // instead of the manifest's current one; resuming it then needs
    // `--resume-generation`.
    let generation = generation.unwrap_or(&manifest.generation);
    if !ckpt_dir.join(generation).is_dir() {
        return Err(format!(
            "generation `{generation}` is not present in {}",
            ckpt_dir.display()
        ));
    }
    if part >= manifest.partitions as usize {
        return Err(format!(
            "partition {part} out of range (checkpoint has {})",
            manifest.partitions
        ));
    }
    let (cfg, _) = composed_engine(pipeline_cfg.base, n_clusters, pipeline_cfg.protocol)
        .map_err(|e| e.to_string())?;
    let fp = serde_json::to_string(&cfg).map_err(|e| e.to_string())?;
    if manifest.config != fp {
        return Err(
            "checkpoint belongs to a different simulation configuration (wrong \
             --clusters/--duration/--seed/--protocol?)"
                .into(),
        );
    }
    let owner = Arc::new(partition_by_cluster(
        &FatTree::new(cfg.topo),
        manifest.partitions as usize,
    ));
    // A fresh engine configured exactly as the checkpointing LP was; used
    // (repeatedly) to validate candidate flips by restoring them.
    let restore_digest = |payload: &[u8]| -> Option<u64> {
        let (_, mut sim) = composed_engine(pipeline_cfg.base, n_clusters, pipeline_cfg.protocol).ok()?;
        sim.set_batch_model(Box::new(batched_fleet(&cfg, n_clusters, trained)));
        sim.set_partition(owner.clone(), part as u8);
        sim.restore_snapshot(payload).ok()?;
        Some(sim.window_digest())
    };

    let path = ckpt_dir.join(generation).join(format!("part-{part}.snap"));
    let pristine = read_snapshot_file(&path).map_err(|e| e.to_string())?;
    let digest_before = restore_digest(&pristine)
        .ok_or("the pristine snapshot does not restore — checkpoint already corrupt?")?;

    // The payload opens with the config fingerprint (u64 length + bytes),
    // the partition byte, the initialized flag, and the now/end clocks;
    // flipping those breaks restore validation or the run's extent rather
    // than its state. The event queue comes right after — digest-covered
    // state where a low-bit flip (e.g. an event time off by 1 ns) is a
    // genuine trajectory perturbation — so walk forward from there until
    // a flip both restores cleanly and changes the digest.
    let header = 8 + fp.len() + 1 + 1 + 8 + 8;
    if pristine.len() <= header + 1 {
        return Err("snapshot payload too small to corrupt meaningfully".into());
    }
    let mut tried = 0usize;
    let mut unrestorable = 0usize;
    let mut digest_blind = 0usize;
    for off in header..pristine.len() {
        if tried >= 4096 {
            break;
        }
        tried += 1;
        let mut flipped = pristine.clone();
        flipped[off] ^= 1;
        match restore_digest(&flipped) {
            None => unrestorable += 1,
            Some(digest_after) if digest_after == digest_before => digest_blind += 1,
            Some(digest_after) => {
                write_snapshot_file(&path, &flipped).map_err(|e| e.to_string())?;
                return Ok(SnapFlipReport {
                    path,
                    offset: off,
                    digest_before,
                    digest_after,
                });
            }
        }
    }
    Err(format!(
        "no restorable digest-changing bit found in the snapshot \
         ({tried} candidates: {unrestorable} failed to restore, {digest_blind} \
         restored with an unchanged digest)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl(first: u64, stride: u64, digests: Vec<u64>) -> DigestTimeline {
        DigestTimeline { first_window: first, stride, window_ns: 1000, digests }
    }

    #[test]
    fn window_divergence_aligns_on_absolute_indices() {
        // B starts later (a resumed run) but overlaps A; they agree on the
        // overlap until window 12.
        let a = tl(0, 4, vec![1, 2, 3, 4, 5]); // windows 0,4,8,12,16
        let b = tl(8, 4, vec![3, 9, 5]); // windows 8,12,16
        let d = first_window_divergence(&a, &b).unwrap().expect("diverges");
        assert_eq!(d.window, 12);
        assert_eq!(d.sim_ns, 12_000);
        assert_eq!((d.a, d.b), (Some(4), Some(9)));

        // Identical timelines report no divergence.
        assert!(first_window_divergence(&a, &a).unwrap().is_none());
    }

    #[test]
    fn window_divergence_rejects_incomparable_timelines() {
        let a = tl(0, 1, vec![1, 2]);
        let mut b = a.clone();
        b.window_ns = 2000;
        assert!(first_window_divergence(&a, &b).is_err());
        let mut c = a.clone();
        c.stride = 2;
        assert!(first_window_divergence(&a, &c).is_err());
        // Disjoint extents are an error, not a silent "no divergence".
        let d = tl(10, 1, vec![1, 2]);
        assert!(first_window_divergence(&a, &d).is_err());
    }

    #[test]
    fn event_divergence_finds_first_mismatch_in_merge_order() {
        let ev = |sim_ns: u64, pkt: u64| FlightEvent {
            lp: 0,
            sim_ns,
            kind: 1,
            kind_name: "arrive",
            packet_id: pkt,
            queue_depth: 0,
        };
        // Same events, different arrival order per side: sorting must
        // align them, so only the genuinely different event diverges.
        let a = vec![ev(10, 1), ev(30, 3), ev(20, 2), ev(40, 4)];
        let b = vec![ev(20, 2), ev(10, 1), ev(30, 3), ev(40, 9)];
        let d = first_event_divergence(&a, &b).expect("diverges");
        assert_eq!(d.a.unwrap().packet_id, 4);
        assert_eq!(d.b.unwrap().packet_id, 9);
        assert!(!d.excerpt_a.is_empty() && !d.excerpt_b.is_empty());

        // Identical multisets in any order: no divergence.
        assert!(first_event_divergence(&a, &[ev(40, 4), ev(20, 2), ev(10, 1), ev(30, 3)]).is_none());

        // One side longer: the extra event is the divergence.
        let d = first_event_divergence(&a[..3], &a).expect("length mismatch diverges");
        assert!(d.a.is_none() && d.b.is_some());
    }

    #[test]
    fn obs_json_round_trips_the_timeline() {
        let mut r = ObsReport::default();
        r.gauges.insert("digest.window_ns".into(), 500_000.0);
        r.gauges.insert("digest.stride".into(), 4.0);
        r.gauges.insert("digest.first_window".into(), 8.0);
        r.digests
            .insert("digest.window".into(), vec![u64::MAX, 1, 0xDEAD_BEEF_CAFE_F00D]);
        let parsed = DigestTimeline::from_obs_json(&r.to_json_string()).expect("parses");
        assert_eq!(parsed, DigestTimeline::from_report(&r).expect("direct"));
        // Digests survive the JSON trip at full u64 precision.
        assert_eq!(parsed.digests, vec![u64::MAX, 1, 0xDEAD_BEEF_CAFE_F00D]);
        assert_eq!((parsed.first_window, parsed.stride, parsed.window_ns), (8, 4, 500_000));

        let undigested = ObsReport::default();
        assert!(DigestTimeline::from_obs_json(&undigested.to_json_string()).is_err());
    }

    #[test]
    fn common_generation_picks_newest_shared_cut() {
        let root = std::env::temp_dir().join(format!("diverge-gens-{}", std::process::id()));
        let a = root.join("a");
        let b = root.join("b");
        for (dir, gens) in [(&a, vec![100u64, 200, 300]), (&b, vec![100, 300, 400])] {
            for g in gens {
                std::fs::create_dir_all(dir.join(format!("gen-{g:020}"))).unwrap();
            }
        }
        // Newest shared cut strictly before the barrier.
        let g = common_generation_before(&a, &b, 350).unwrap();
        assert_eq!(g.as_deref(), Some("gen-00000000000000000300"));
        // 300 is not *strictly* before 300; 200 is A-only, so 100 wins.
        let g = common_generation_before(&a, &b, 300).unwrap();
        assert_eq!(g.as_deref(), Some("gen-00000000000000000100"));
        // Nothing shared before 100: replay from scratch.
        assert_eq!(common_generation_before(&a, &b, 100).unwrap(), None);
        std::fs::remove_dir_all(&root).ok();
    }
}
