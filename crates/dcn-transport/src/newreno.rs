//! TCP New Reno congestion control (the paper's base case).
//!
//! The New Reno-specific parts — fast recovery with partial acks — live in
//! the shared sender ([`crate::tcp::TcpSender`]); this controller supplies
//! the classic Reno window dynamics: slow start, AIMD congestion
//! avoidance, halving on fast retransmit, collapse on timeout.

use crate::cc::{reno_ack, reno_halve, reno_timeout, AckCtx, CongControl, Windows};
use dcn_sim::time::SimTime;

/// Classic Reno window dynamics.
pub struct RenoCc;

impl CongControl for RenoCc {
    fn name(&self) -> &'static str {
        "newreno"
    }

    fn on_ack(&mut self, ctx: &AckCtx, w: &mut Windows) {
        reno_ack(ctx.newly_acked, w);
    }

    fn on_fast_loss(&mut self, _now: SimTime, flight: u64, w: &mut Windows) {
        reno_halve(flight, w);
    }

    fn on_timeout(&mut self, _now: SimTime, flight: u64, w: &mut Windows) {
        reno_timeout(flight, w);
    }

    fn reset(&mut self) -> bool {
        true // stateless
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::time::SimDuration;

    fn ctx(newly: u64) -> AckCtx {
        AckCtx {
            newly_acked: newly,
            rtt_sample: Some(SimDuration::from_millis(2)),
            ece: false,
            now: SimTime::ZERO,
            snd_una: newly,
            snd_nxt: newly * 2,
            in_recovery: false,
        }
    }

    #[test]
    fn ignores_ece() {
        // Plain Reno does not react to ECN echoes.
        let mut cc = RenoCc;
        let mut w = Windows::new(1000, 4);
        w.ssthresh = 2_000.0;
        let mut c = ctx(1000);
        c.ece = true;
        let before = w.cwnd;
        cc.on_ack(&c, &mut w);
        assert!(w.cwnd > before, "window must still grow");
    }

    #[test]
    fn aimd_cycle() {
        let mut cc = RenoCc;
        let mut w = Windows::new(1000, 2);
        // Slow start to 16 KB.
        while w.cwnd < 16_000.0 {
            cc.on_ack(&ctx(1000), &mut w);
        }
        // Loss halves.
        cc.on_fast_loss(SimTime::ZERO, 16_000, &mut w);
        assert_eq!(w.cwnd, 8_000.0);
        assert!(!w.in_slow_start());
        // Timeout collapses to 1 MSS.
        cc.on_timeout(SimTime::ZERO, 8_000, &mut w);
        assert_eq!(w.cwnd, 1_000.0);
    }
}
