//! The shared TCP sender/receiver state machine.
//!
//! One loss-detection engine — cumulative acks, dup-ack counting, New Reno
//! fast retransmit/recovery with partial-ack retransmission, RFC 6298
//! timeouts with Karn backoff — hosts all four TCP variants through the
//! [`CongControl`] strategy interface. This mirrors the structure of the
//! INET stack the paper builds on, where TCP flavours share one connection
//! machine.

use crate::cc::{AckCtx, CongControl, Windows};
use crate::rto::RttEstimator;
use dcn_sim::packet::{Ecn, Packet, PacketKind};
use dcn_sim::snapshot::{SnapReader, SnapWriter, SnapshotError};
use dcn_sim::time::SimTime;
use dcn_sim::transport::{Actions, FlowSpec, Transport, TransportCtx, TransportFactory};

/// Parameters shared by all TCP variants.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Maximum segment size (bytes of payload per packet).
    pub mss: u32,
    /// Initial congestion window in segments.
    pub init_cwnd_pkts: u32,
    /// Dup-acks before fast retransmit.
    pub dupack_thresh: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: dcn_sim::packet::MSS_BYTES,
            init_cwnd_pkts: 2,
            dupack_thresh: 3,
        }
    }
}

/// Which congestion controller a [`TcpFactory`] instantiates.
#[derive(Clone, Copy, Debug)]
pub enum CcKind {
    Reno,
    Dctcp {
        /// EWMA gain for the marked fraction (paper value 1/16).
        g: f64,
    },
    Vegas {
        /// Lower/upper bounds on queued packets (classic 2 and 4).
        alpha_pkts: f64,
        beta_pkts: f64,
    },
    Westwood,
}

/// Factory producing TCP endpoints of a chosen flavour.
pub struct TcpFactory {
    pub cfg: TcpConfig,
    pub kind: CcKind,
}

impl TcpFactory {
    pub fn new_reno() -> TcpFactory {
        TcpFactory {
            cfg: TcpConfig::default(),
            kind: CcKind::Reno,
        }
    }

    pub fn dctcp() -> TcpFactory {
        TcpFactory {
            cfg: TcpConfig::default(),
            kind: CcKind::Dctcp { g: 1.0 / 16.0 },
        }
    }

    pub fn vegas() -> TcpFactory {
        TcpFactory {
            cfg: TcpConfig::default(),
            kind: CcKind::Vegas {
                alpha_pkts: 2.0,
                beta_pkts: 4.0,
            },
        }
    }

    pub fn westwood() -> TcpFactory {
        TcpFactory {
            cfg: TcpConfig::default(),
            kind: CcKind::Westwood,
        }
    }

    fn make_cc(&self) -> Box<dyn CongControl> {
        match self.kind {
            CcKind::Reno => Box::new(crate::newreno::RenoCc),
            CcKind::Dctcp { g } => Box::new(crate::dctcp::DctcpCc::new(g)),
            CcKind::Vegas {
                alpha_pkts,
                beta_pkts,
            } => Box::new(crate::vegas::VegasCc::new(alpha_pkts, beta_pkts)),
            CcKind::Westwood => Box::new(crate::westwood::WestwoodCc::new()),
        }
    }

    fn echo_ecn(&self) -> bool {
        matches!(self.kind, CcKind::Dctcp { .. })
    }
}

impl TransportFactory for TcpFactory {
    fn name(&self) -> &'static str {
        match self.kind {
            CcKind::Reno => "tcp-newreno",
            CcKind::Dctcp { .. } => "dctcp",
            CcKind::Vegas { .. } => "tcp-vegas",
            CcKind::Westwood => "tcp-westwood",
        }
    }

    fn sender(&self, flow: &FlowSpec) -> Box<dyn Transport> {
        Box::new(TcpSender::new(flow.clone(), self.cfg, self.make_cc()))
    }

    fn receiver(&self, flow: &FlowSpec) -> Box<dyn Transport> {
        Box::new(TcpReceiver::new(flow.clone(), self.echo_ecn()))
    }
}

/// The TCP sender state machine.
pub struct TcpSender {
    flow: FlowSpec,
    cfg: TcpConfig,
    cc: Box<dyn CongControl>,
    rtt: RttEstimator,
    w: Windows,
    /// First unacknowledged byte.
    snd_una: u64,
    /// Next byte to send.
    snd_nxt: u64,
    dup_acks: u32,
    /// Fast-recovery exit point, if in recovery.
    recover: Option<u64>,
    timer_gen: u64,
    completed: bool,
    /// Retransmissions performed (exposed for tests/instrumentation).
    pub retransmits: u64,
}

impl TcpSender {
    pub fn new(flow: FlowSpec, cfg: TcpConfig, cc: Box<dyn CongControl>) -> TcpSender {
        TcpSender {
            w: Windows::new(cfg.mss, cfg.init_cwnd_pkts),
            flow,
            cfg,
            cc,
            rtt: RttEstimator::dc_default(),
            snd_una: 0,
            snd_nxt: 0,
            dup_acks: 0,
            recover: None,
            timer_gen: 0,
            completed: false,
            retransmits: 0,
        }
    }

    /// Current congestion window in bytes (for tests).
    pub fn cwnd(&self) -> f64 {
        self.w.cwnd
    }

    fn make_segment(&self, seq: u64, ctx: &mut TransportCtx) -> Packet {
        let payload = (self.cfg.mss as u64).min(self.flow.size_bytes - seq) as u32;
        let mut p = Packet::data(
            ctx.ids.next(),
            self.flow.id,
            self.flow.src,
            self.flow.dst,
            seq,
            payload,
            self.cc.ecn_capable(),
            ctx.now,
        );
        p.flow_size = self.flow.size_bytes;
        if seq + payload as u64 >= self.flow.size_bytes {
            p.flags.fin = true;
        }
        p
    }

    fn send_available(&mut self, ctx: &mut TransportCtx, out: &mut Actions) {
        while self.snd_nxt < self.flow.size_bytes
            && ((self.snd_nxt - self.snd_una) as f64) < self.w.cwnd
        {
            let seg = self.make_segment(self.snd_nxt, ctx);
            self.snd_nxt += seg.payload as u64;
            out.sends.push(seg);
        }
    }

    fn retransmit_at(&mut self, seq: u64, ctx: &mut TransportCtx, out: &mut Actions) {
        let seg = self.make_segment(seq, ctx);
        self.retransmits += 1;
        out.sends.push(seg);
    }

    fn arm_timer(&mut self, out: &mut Actions) {
        self.timer_gen += 1;
        out.timers.push((self.rtt.rto(), self.timer_gen));
    }

    fn handle_new_ack(&mut self, pkt: &Packet, ctx: &mut TransportCtx, out: &mut Actions) {
        let newly = pkt.seq - self.snd_una;
        self.snd_una = pkt.seq;
        // If a timeout rewound snd_nxt and acks for the original (pre-RTO)
        // transmissions then arrive, snd_una can overtake snd_nxt.
        self.snd_nxt = self.snd_nxt.max(self.snd_una);
        self.dup_acks = 0;
        let rtt_sample = if pkt.echo > SimTime::ZERO {
            let s = ctx.now.since(pkt.echo);
            self.rtt.sample(s);
            out.rtt_samples.push(s);
            Some(s)
        } else {
            None
        };

        match self.recover {
            Some(rec) if self.snd_una < rec => {
                // Partial ack (New Reno): the next hole was also lost.
                // Retransmit it and deflate the inflated window.
                self.retransmit_at(self.snd_una, ctx, out);
                self.w.cwnd = (self.w.cwnd - newly as f64 + self.w.mss).max(self.w.mss);
            }
            Some(_) => {
                // Full ack: leave recovery.
                self.recover = None;
                self.w.cwnd = self.w.ssthresh;
                self.w.clamp();
            }
            None => {
                self.cc.on_ack(
                    &AckCtx {
                        newly_acked: newly,
                        rtt_sample,
                        ece: pkt.flags.ece,
                        now: ctx.now,
                        snd_una: self.snd_una,
                        snd_nxt: self.snd_nxt,
                        in_recovery: false,
                    },
                    &mut self.w,
                );
                self.w.clamp();
            }
        }

        if self.snd_una >= self.flow.size_bytes {
            self.completed = true;
            out.completed = true;
            return;
        }
        self.send_available(ctx, out);
        self.arm_timer(out);
    }

    fn handle_dup_ack(&mut self, ctx: &mut TransportCtx, out: &mut Actions) {
        self.dup_acks += 1;
        if self.recover.is_some() {
            // Window inflation during recovery keeps the pipe full.
            self.w.cwnd += self.w.mss;
            self.send_available(ctx, out);
        } else if self.dup_acks == self.cfg.dupack_thresh {
            let flight = self.snd_nxt - self.snd_una;
            self.cc.on_fast_loss(ctx.now, flight, &mut self.w);
            self.recover = Some(self.snd_nxt);
            // Inflate by the dup-acked segments that left the network.
            self.w.cwnd = self.w.ssthresh + self.cfg.dupack_thresh as f64 * self.w.mss;
            self.retransmit_at(self.snd_una, ctx, out);
            self.arm_timer(out);
        }
    }
}

impl Transport for TcpSender {
    fn on_start(&mut self, ctx: &mut TransportCtx, out: &mut Actions) {
        self.send_available(ctx, out);
        self.arm_timer(out);
    }

    fn on_packet(&mut self, pkt: &Packet, ctx: &mut TransportCtx, out: &mut Actions) {
        if pkt.kind != PacketKind::Ack || self.completed {
            return;
        }
        if pkt.seq > self.snd_una {
            self.handle_new_ack(pkt, ctx, out);
        } else if pkt.seq == self.snd_una && self.snd_nxt > self.snd_una {
            self.handle_dup_ack(ctx, out);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut TransportCtx, out: &mut Actions) {
        if token != self.timer_gen || self.completed {
            return;
        }
        // Retransmission timeout: collapse and go back to snd_una.
        let flight = self.snd_nxt - self.snd_una;
        self.rtt.on_timeout();
        self.cc.on_timeout(ctx.now, flight, &mut self.w);
        self.w.clamp();
        self.recover = None;
        self.dup_acks = 0;
        self.snd_nxt = self.snd_una;
        self.retransmits += 1;
        self.send_available(ctx, out);
        self.arm_timer(out);
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapshotError> {
        self.rtt.save_state(w);
        w.put_f64(self.w.cwnd);
        w.put_f64(self.w.ssthresh);
        w.put_f64(self.w.mss);
        w.put_u64(self.snd_una);
        w.put_u64(self.snd_nxt);
        w.put_u32(self.dup_acks);
        w.put_opt_u64(self.recover);
        w.put_u64(self.timer_gen);
        w.put_bool(self.completed);
        w.put_u64(self.retransmits);
        self.cc.save_state(w);
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.rtt.load_state(r)?;
        self.w.cwnd = r.get_f64()?;
        self.w.ssthresh = r.get_f64()?;
        self.w.mss = r.get_f64()?;
        self.snd_una = r.get_u64()?;
        self.snd_nxt = r.get_u64()?;
        self.dup_acks = r.get_u32()?;
        self.recover = r.get_opt_u64()?;
        self.timer_gen = r.get_u64()?;
        self.completed = r.get_bool()?;
        self.retransmits = r.get_u64()?;
        self.cc.load_state(r)
    }

    fn reset(&mut self, spec: &FlowSpec) -> bool {
        if !self.cc.reset() {
            return false;
        }
        // Mirror `TcpSender::new` field by field (`cfg` is configuration
        // and carries over — one factory per simulation).
        self.flow = spec.clone();
        self.w = Windows::new(self.cfg.mss, self.cfg.init_cwnd_pkts);
        self.rtt.reset();
        self.snd_una = 0;
        self.snd_nxt = 0;
        self.dup_acks = 0;
        self.recover = None;
        self.timer_gen = 0;
        self.completed = false;
        self.retransmits = 0;
        true
    }
}

/// The TCP receiver: cumulative acks over a range-merging reassembly
/// buffer; optional per-packet ECN echo (DCTCP's receiver behaviour).
pub struct TcpReceiver {
    flow: FlowSpec,
    /// Sorted disjoint received [start, end) ranges.
    ranges: Vec<(u64, u64)>,
    delivered: u64,
    echo_ecn: bool,
}

impl TcpReceiver {
    pub fn new(flow: FlowSpec, echo_ecn: bool) -> TcpReceiver {
        TcpReceiver {
            flow,
            ranges: Vec::new(),
            delivered: 0,
            echo_ecn,
        }
    }

    /// In-place range merge — no per-packet rebuild of the reassembly
    /// buffer (the receive path is an engine hot path; see
    /// `dcn-sim/tests/alloc_steady_state.rs`).
    fn insert(&mut self, start: u64, end: u64) {
        dcn_sim::transport::merge_range(&mut self.ranges, start, end);
    }

    fn cum_ack(&self) -> u64 {
        match self.ranges.first() {
            Some(&(0, e)) => e,
            _ => 0,
        }
    }
}

impl Transport for TcpReceiver {
    fn on_start(&mut self, _ctx: &mut TransportCtx, _out: &mut Actions) {}

    fn on_packet(&mut self, pkt: &Packet, ctx: &mut TransportCtx, out: &mut Actions) {
        if pkt.kind != PacketKind::Data {
            return;
        }
        self.insert(pkt.seq, pkt.seq + pkt.payload as u64);
        let cum = self.cum_ack();
        if cum > self.delivered {
            out.delivered = cum - self.delivered;
            self.delivered = cum;
        }
        let ece = self.echo_ecn && pkt.ecn == Ecn::Ce;
        out.sends.push(Packet::ack(
            ctx.ids.next(),
            self.flow.id,
            self.flow.dst,
            self.flow.src,
            cum,
            ece,
            pkt.sent_at,
            ctx.now,
        ));
        if self.delivered >= self.flow.size_bytes {
            out.completed = true;
        }
    }

    fn on_timer(&mut self, _token: u64, _ctx: &mut TransportCtx, _out: &mut Actions) {}

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapshotError> {
        w.put_u64(self.ranges.len() as u64);
        for &(s, e) in &self.ranges {
            w.put_u64(s);
            w.put_u64(e);
        }
        w.put_u64(self.delivered);
        w.put_bool(self.echo_ecn);
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let n = r.get_count(16)?;
        self.ranges.clear();
        for _ in 0..n {
            let s = r.get_u64()?;
            let e = r.get_u64()?;
            self.ranges.push((s, e));
        }
        self.delivered = r.get_u64()?;
        self.echo_ecn = r.get_bool()?;
        Ok(())
    }

    fn reset(&mut self, spec: &FlowSpec) -> bool {
        // `echo_ecn` is a factory parameter and carries over.
        self.flow = spec.clone();
        self.ranges.clear(); // keeps capacity
        self.delivered = 0;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::packet::{FlowId, MSS_BYTES};
    use dcn_sim::time::SimDuration;
    use dcn_sim::topology::NodeId;
    use dcn_sim::transport::PacketIdAlloc;

    pub(crate) fn spec(size: u64) -> FlowSpec {
        FlowSpec {
            id: FlowId(7),
            src: NodeId(0),
            dst: NodeId(1),
            size_bytes: size,
            start: SimTime::ZERO,
        }
    }

    fn ctx_at<'a>(ids: &'a mut PacketIdAlloc, t: f64) -> TransportCtx<'a> {
        TransportCtx {
            now: SimTime::from_secs_f64(t),
            ids,
        }
    }

    fn ack(seq: u64, echo: f64, now: f64, ece: bool) -> Packet {
        Packet::ack(
            999,
            FlowId(7),
            NodeId(1),
            NodeId(0),
            seq,
            ece,
            SimTime::from_secs_f64(echo),
            SimTime::from_secs_f64(now),
        )
    }

    #[test]
    fn initial_window_limits_burst() {
        let f = TcpFactory::new_reno();
        let mut s = f.sender(&spec(100 * MSS_BYTES as u64));
        let mut ids = PacketIdAlloc::new(NodeId(0));
        let mut out = Actions::default();
        s.on_start(&mut ctx_at(&mut ids, 0.0), &mut out);
        assert_eq!(out.sends.len(), 2, "initial cwnd is 2 segments");
    }

    #[test]
    fn slow_start_grows_exponentially() {
        let f = TcpFactory::new_reno();
        let mss = MSS_BYTES as u64;
        let mut s = TcpSender::new(spec(1000 * mss), f.cfg, f.make_cc());
        let mut ids = PacketIdAlloc::new(NodeId(0));
        let mut out = Actions::default();
        s.on_start(&mut ctx_at(&mut ids, 0.0), &mut out);
        out.clear();
        // Ack both initial segments.
        s.on_packet(&ack(2 * mss, 0.0, 0.002, false), &mut ctx_at(&mut ids, 0.002), &mut out);
        // cwnd grew 2 -> 3 segments on a 2-segment cumulative ack (growth
        // capped at 1 MSS per ack); window allows 3 in flight.
        assert_eq!(out.sends.len(), 3);
    }

    #[test]
    fn triple_dup_ack_triggers_fast_retransmit() {
        let f = TcpFactory::new_reno();
        let mss = MSS_BYTES as u64;
        let mut s = TcpSender::new(spec(100 * mss), f.cfg, f.make_cc());
        let mut ids = PacketIdAlloc::new(NodeId(0));
        let mut out = Actions::default();
        s.on_start(&mut ctx_at(&mut ids, 0.0), &mut out);
        // Grow the window a bit first.
        out.clear();
        s.on_packet(&ack(2 * mss, 0.0, 0.002, false), &mut ctx_at(&mut ids, 0.002), &mut out);
        out.clear();
        s.on_packet(&ack(4 * mss, 0.002, 0.004, false), &mut ctx_at(&mut ids, 0.004), &mut out);
        let cwnd_before = s.cwnd();
        // Segment at 4*mss lost: three dup acks.
        for i in 0..3 {
            out.clear();
            s.on_packet(
                &ack(4 * mss, 0.004, 0.005 + i as f64 * 0.001, false),
                &mut ctx_at(&mut ids, 0.005 + i as f64 * 0.001),
                &mut out,
            );
        }
        // The third dup ack retransmits the missing segment.
        assert_eq!(out.sends.len(), 1);
        assert_eq!(out.sends[0].seq, 4 * mss);
        assert_eq!(s.retransmits, 1);
        assert!(s.cwnd() < cwnd_before + 3.0 * mss as f64);
    }

    #[test]
    fn partial_ack_retransmits_next_hole() {
        let f = TcpFactory::new_reno();
        let mss = MSS_BYTES as u64;
        let mut s = TcpSender::new(spec(100 * mss), f.cfg, f.make_cc());
        let mut ids = PacketIdAlloc::new(NodeId(0));
        let mut out = Actions::default();
        s.on_start(&mut ctx_at(&mut ids, 0.0), &mut out);
        out.clear();
        // Open window, then force recovery at snd_una = 2 mss.
        s.on_packet(&ack(2 * mss, 0.0, 0.002, false), &mut ctx_at(&mut ids, 0.002), &mut out);
        for i in 0..3 {
            out.clear();
            s.on_packet(
                &ack(2 * mss, 0.0, 0.003 + i as f64 * 0.001, false),
                &mut ctx_at(&mut ids, 0.003 + i as f64 * 0.001),
                &mut out,
            );
        }
        assert_eq!(s.retransmits, 1);
        // Partial ack to 3 mss (recovery point is snd_nxt = 5 mss).
        out.clear();
        s.on_packet(&ack(3 * mss, 0.003, 0.006, false), &mut ctx_at(&mut ids, 0.006), &mut out);
        // New Reno retransmits the next hole immediately.
        assert!(out.sends.iter().any(|p| p.seq == 3 * mss));
        assert_eq!(s.retransmits, 2);
    }

    #[test]
    fn timeout_collapses_window_and_retransmits() {
        let f = TcpFactory::new_reno();
        let mss = MSS_BYTES as u64;
        let mut s = TcpSender::new(spec(100 * mss), f.cfg, f.make_cc());
        let mut ids = PacketIdAlloc::new(NodeId(0));
        let mut out = Actions::default();
        s.on_start(&mut ctx_at(&mut ids, 0.0), &mut out);
        out.clear();
        // RTO fires (token 1 is the armed one).
        s.on_timer(1, &mut ctx_at(&mut ids, 0.2), &mut out);
        assert_eq!(out.sends.len(), 1, "one segment at cwnd=1 mss");
        assert_eq!(out.sends[0].seq, 0);
        assert_eq!(s.cwnd(), mss as f64);
    }

    #[test]
    fn completion_on_final_ack() {
        let f = TcpFactory::new_reno();
        let size = 3 * MSS_BYTES as u64;
        let mut s = TcpSender::new(spec(size), f.cfg, f.make_cc());
        let mut ids = PacketIdAlloc::new(NodeId(0));
        let mut out = Actions::default();
        s.on_start(&mut ctx_at(&mut ids, 0.0), &mut out);
        out.clear();
        s.on_packet(&ack(size, 0.0, 0.01, false), &mut ctx_at(&mut ids, 0.01), &mut out);
        assert!(out.completed);
    }

    #[test]
    fn receiver_echoes_ecn_only_when_enabled() {
        let mut ids = PacketIdAlloc::new(NodeId(1));
        let mk_ce = |seq: u64| {
            let mut p = Packet::data(
                seq + 1,
                FlowId(7),
                NodeId(0),
                NodeId(1),
                seq,
                MSS_BYTES,
                true,
                SimTime::ZERO,
            );
            p.ecn = Ecn::Ce;
            p.flow_size = 10 * MSS_BYTES as u64;
            p
        };
        let mut out = Actions::default();
        let mut r = TcpReceiver::new(spec(10 * MSS_BYTES as u64), true);
        r.on_packet(&mk_ce(0), &mut ctx_at(&mut ids, 0.0), &mut out);
        assert!(out.sends[0].flags.ece, "DCTCP receiver echoes CE");
        out.clear();
        let mut r2 = TcpReceiver::new(spec(10 * MSS_BYTES as u64), false);
        r2.on_packet(&mk_ce(0), &mut ctx_at(&mut ids, 0.0), &mut out);
        assert!(!out.sends[0].flags.ece);
    }

    #[test]
    fn receiver_completes_at_full_delivery() {
        let mut ids = PacketIdAlloc::new(NodeId(1));
        let size = 2 * MSS_BYTES as u64;
        let mut r = TcpReceiver::new(spec(size), false);
        let mut out = Actions::default();
        let mk = |seq: u64| {
            let mut p = Packet::data(
                seq + 1,
                FlowId(7),
                NodeId(0),
                NodeId(1),
                seq,
                MSS_BYTES,
                false,
                SimTime::ZERO,
            );
            p.flow_size = size;
            p
        };
        r.on_packet(&mk(0), &mut ctx_at(&mut ids, 0.0), &mut out);
        assert!(!out.completed);
        out.clear();
        r.on_packet(&mk(MSS_BYTES as u64), &mut ctx_at(&mut ids, 0.001), &mut out);
        assert!(out.completed);
        assert_eq!(out.sends[0].seq, size);
    }

    #[test]
    fn duplicate_data_does_not_double_deliver() {
        let mut ids = PacketIdAlloc::new(NodeId(1));
        let size = 4 * MSS_BYTES as u64;
        let mut r = TcpReceiver::new(spec(size), false);
        let mut out = Actions::default();
        let mut p = Packet::data(1, FlowId(7), NodeId(0), NodeId(1), 0, MSS_BYTES, false, SimTime::ZERO);
        p.flow_size = size;
        r.on_packet(&p, &mut ctx_at(&mut ids, 0.0), &mut out);
        assert_eq!(out.delivered, MSS_BYTES as u64);
        out.clear();
        r.on_packet(&p, &mut ctx_at(&mut ids, 0.001), &mut out);
        assert_eq!(out.delivered, 0, "duplicate delivered again");
    }

    #[test]
    fn rto_timer_rearms_with_backoff() {
        let f = TcpFactory::new_reno();
        let mut s = TcpSender::new(spec(10 * MSS_BYTES as u64), f.cfg, f.make_cc());
        let mut ids = PacketIdAlloc::new(NodeId(0));
        let mut out = Actions::default();
        s.on_start(&mut ctx_at(&mut ids, 0.0), &mut out);
        let first_rto = out.timers[0].0;
        out.clear();
        s.on_timer(1, &mut ctx_at(&mut ids, 0.2), &mut out);
        let second_rto = out.timers[0].0;
        assert_eq!(second_rto, SimDuration::from_nanos(first_rto.as_nanos() * 2));
    }
}
