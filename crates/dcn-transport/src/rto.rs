//! RFC 6298 retransmission-timeout estimation.
//!
//! Shared by every TCP variant. RTT samples come from acknowledgment
//! timestamp echoes (so Karn's problem of retransmission ambiguity does not
//! arise: the echo always reflects the copy that actually triggered the
//! ack).

use dcn_sim::snapshot::{SnapReader, SnapWriter, SnapshotError};
use dcn_sim::time::SimDuration;

/// Smoothed RTT / RTO state per RFC 6298.
#[derive(Clone, Debug)]
pub struct RttEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    rto: f64,
    /// The configured pre-sample RTO, kept so [`RttEstimator::reset`] can
    /// return to the constructed state (not serialized: it is configuration,
    /// not mutable state).
    initial_rto: f64,
    min_rto: f64,
    max_rto: f64,
    backoff: u32,
    /// Lowest RTT ever observed (used by Vegas/Westwood).
    min_rtt: Option<f64>,
}

impl RttEstimator {
    /// `initial` is the RTO before any sample; `min`/`max` clamp the RTO.
    pub fn new(initial: SimDuration, min: SimDuration, max: SimDuration) -> RttEstimator {
        RttEstimator {
            srtt: None,
            rttvar: 0.0,
            rto: initial.as_secs_f64(),
            initial_rto: initial.as_secs_f64(),
            min_rto: min.as_secs_f64(),
            max_rto: max.as_secs_f64(),
            backoff: 0,
            min_rtt: None,
        }
    }

    /// Back to the as-constructed state, keeping the configured
    /// initial/min/max bounds (for endpoint recycling).
    pub fn reset(&mut self) {
        self.srtt = None;
        self.rttvar = 0.0;
        self.rto = self.initial_rto;
        self.backoff = 0;
        self.min_rtt = None;
    }

    /// Data-center-scaled defaults: 10 ms minimum RTO (as DC stacks use),
    /// 200 ms initial, 4 s cap.
    pub fn dc_default() -> RttEstimator {
        RttEstimator::new(
            SimDuration::from_millis(200),
            SimDuration::from_millis(10),
            SimDuration::from_secs_f64(4.0),
        )
    }

    /// Incorporate a new RTT sample.
    pub fn sample(&mut self, rtt: SimDuration) {
        let r = rtt.as_secs_f64();
        self.min_rtt = Some(self.min_rtt.map_or(r, |m: f64| m.min(r)));
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                // RFC 6298 with alpha = 1/8, beta = 1/4.
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - r).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * r);
            }
        }
        self.rto = (self.srtt.unwrap() + 4.0 * self.rttvar).clamp(self.min_rto, self.max_rto);
        self.backoff = 0;
    }

    /// Current RTO including exponential backoff.
    pub fn rto(&self) -> SimDuration {
        let v = (self.rto * (1u64 << self.backoff.min(16)) as f64).min(self.max_rto);
        SimDuration::from_secs_f64(v)
    }

    /// Double the RTO after a timeout (Karn backoff).
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
    }

    /// Smoothed RTT, if sampled.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt.map(SimDuration::from_secs_f64)
    }

    /// Minimum observed RTT (a proxy for the uncongested path RTT).
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_rtt.map(SimDuration::from_secs_f64)
    }

    /// Serialize the full estimator state for a checkpoint.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_opt_f64(self.srtt);
        w.put_f64(self.rttvar);
        w.put_f64(self.rto);
        w.put_f64(self.min_rto);
        w.put_f64(self.max_rto);
        w.put_u32(self.backoff);
        w.put_opt_f64(self.min_rtt);
    }

    /// Overwrite the estimator from a checkpoint.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.srtt = r.get_opt_f64()?;
        self.rttvar = r.get_f64()?;
        self.rto = r.get_f64()?;
        self.min_rto = r.get_f64()?;
        self.max_rto = r.get_f64()?;
        self.backoff = r.get_u32()?;
        self.min_rtt = r.get_opt_f64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::dc_default();
        assert!(e.srtt().is_none());
        e.sample(ms(4));
        assert_eq!(e.srtt().unwrap(), ms(4));
        // RTO = srtt + 4*rttvar = 4 + 8 = 12 ms.
        assert_eq!(e.rto(), ms(12));
    }

    #[test]
    fn smoothing_converges() {
        let mut e = RttEstimator::dc_default();
        for _ in 0..200 {
            e.sample(ms(5));
        }
        let srtt = e.srtt().unwrap().as_secs_f64();
        assert!((srtt - 0.005).abs() < 1e-4);
        // With zero variance the RTO clamps to the minimum (10 ms).
        assert_eq!(e.rto(), ms(10));
    }

    #[test]
    fn rto_floor_and_cap() {
        let mut e = RttEstimator::dc_default();
        e.sample(SimDuration::from_micros(100));
        assert!(e.rto() >= ms(10), "floor violated");
        for _ in 0..20 {
            e.on_timeout();
        }
        assert!(e.rto() <= SimDuration::from_secs_f64(4.0), "cap violated");
    }

    #[test]
    fn backoff_doubles_until_sample_resets() {
        let mut e = RttEstimator::dc_default();
        e.sample(ms(20));
        let base = e.rto();
        e.on_timeout();
        assert_eq!(e.rto().as_nanos(), base.as_nanos() * 2);
        e.on_timeout();
        assert_eq!(e.rto().as_nanos(), base.as_nanos() * 4);
        // A fresh sample resets the backoff (and shrinks the variance term,
        // so the RTO lands at or below the pre-backoff value).
        e.sample(ms(20));
        assert!(e.rto() <= base);
    }

    #[test]
    fn min_rtt_tracks_minimum() {
        let mut e = RttEstimator::dc_default();
        e.sample(ms(8));
        e.sample(ms(3));
        e.sample(ms(12));
        assert_eq!(e.min_rtt().unwrap(), ms(3));
    }

    #[test]
    fn variance_raises_rto() {
        let mut e = RttEstimator::dc_default();
        for i in 0..100 {
            e.sample(if i % 2 == 0 { ms(2) } else { ms(20) });
        }
        // Noisy RTTs should give an RTO well above the mean RTT.
        assert!(e.rto() > ms(20));
    }
}
