//! A simplified Homa (Montazeri et al., SIGCOMM 2018).
//!
//! Homa is receiver-driven: a sender blindly transmits one `RTT_bytes`
//! window of *unscheduled* data, then sends further (*scheduled*) data only
//! as the receiver grants it. Packet priorities are assigned from message
//! sizes — short messages preempt long ones in the switch fabric's strict
//! priority queues (configure switches with 8 bands via
//! [`crate::Protocol::queue_setup`]).
//!
//! The paper uses Homa because "packets can be reordered — a challenging
//! extra feature for MimicNet" (§9.4.2): priorities let later short
//! messages overtake earlier long ones inside a cluster, which the Mimic
//! must reproduce statistically.
//!
//! Simplifications vs. the full protocol (documented per DESIGN.md):
//! per-message (not per-packet) priorities, grants paced per received
//! packet rather than per priority level, and timeout-driven RESENDs
//! expressed as non-increasing grants.
//!
//! Wire encoding on top of [`Packet`]: grants use `kind = Grant` with
//! `seq` = grant target, `meta` = receiver's cumulative prefix, and
//! `flags.syn` marking a RESEND request. Completion is an `Ack` with
//! `seq = flow_size`.

use dcn_sim::packet::{Packet, PacketKind, MSS_BYTES};
use dcn_sim::snapshot::{SnapReader, SnapWriter, SnapshotError};
use dcn_sim::time::{SimDuration, SimTime};
use dcn_sim::transport::{Actions, FlowSpec, Transport, TransportCtx, TransportFactory};

/// Factory for Homa endpoints.
pub struct HomaFactory {
    /// Unscheduled window / grant overcommitment, bytes (≈ one BDP).
    pub rtt_bytes: u64,
    /// Gap-detection timeout at receivers and stall timeout at senders.
    pub resend_timeout: SimDuration,
    /// Segment payload size.
    pub mss: u32,
}

impl Default for HomaFactory {
    fn default() -> Self {
        HomaFactory {
            // ~10 full segments: one BDP of the scaled-down network.
            rtt_bytes: 15_000,
            resend_timeout: SimDuration::from_millis(20),
            mss: MSS_BYTES,
        }
    }
}

impl TransportFactory for HomaFactory {
    fn name(&self) -> &'static str {
        "homa"
    }

    fn sender(&self, flow: &FlowSpec) -> Box<dyn Transport> {
        Box::new(HomaSender {
            flow: flow.clone(),
            rtt_bytes: self.rtt_bytes,
            mss: self.mss,
            resend_timeout: self.resend_timeout,
            snd_nxt: 0,
            granted: 0,
            completed: false,
            timer_gen: 0,
            retransmits: 0,
        })
    }

    fn receiver(&self, flow: &FlowSpec) -> Box<dyn Transport> {
        Box::new(HomaReceiver {
            flow: flow.clone(),
            rtt_bytes: self.rtt_bytes,
            resend_timeout: self.resend_timeout,
            ranges: Vec::new(),
            delivered: 0,
            granted_sent: 0,
            timer_gen: 0,
            completed: false,
        })
    }
}

/// Priority of an *unscheduled* packet, from total message size
/// (smaller message → higher priority). Band 0 is reserved for control.
fn unscheduled_prio(msg_bytes: u64, mss: u32) -> u8 {
    let m = mss as u64;
    if msg_bytes <= m {
        1
    } else if msg_bytes <= 4 * m {
        2
    } else {
        3
    }
}

/// Priority of a *scheduled* packet, from remaining bytes (SRPT-style).
fn scheduled_prio(remaining: u64, mss: u32) -> u8 {
    let m = mss as u64;
    if remaining <= 8 * m {
        4
    } else if remaining <= 32 * m {
        5
    } else if remaining <= 128 * m {
        6
    } else {
        7
    }
}

/// The sending side of a Homa message.
pub struct HomaSender {
    flow: FlowSpec,
    rtt_bytes: u64,
    mss: u32,
    resend_timeout: SimDuration,
    snd_nxt: u64,
    granted: u64,
    completed: bool,
    timer_gen: u64,
    /// Retransmitted segments (tests/instrumentation).
    pub retransmits: u64,
}

impl HomaSender {
    fn make_segment(&self, seq: u64, unscheduled: bool, ctx: &mut TransportCtx) -> Packet {
        let payload = (self.mss as u64).min(self.flow.size_bytes - seq) as u32;
        let mut p = Packet::data(
            ctx.ids.next(),
            self.flow.id,
            self.flow.src,
            self.flow.dst,
            seq,
            payload,
            false,
            ctx.now,
        );
        p.flow_size = self.flow.size_bytes;
        p.prio = if unscheduled {
            unscheduled_prio(self.flow.size_bytes, self.mss)
        } else {
            scheduled_prio(self.flow.size_bytes - seq, self.mss)
        };
        if seq + payload as u64 >= self.flow.size_bytes {
            p.flags.fin = true;
        }
        p
    }

    fn send_up_to_grant(&mut self, ctx: &mut TransportCtx, out: &mut Actions) {
        let unscheduled_limit = self.rtt_bytes.min(self.flow.size_bytes);
        while self.snd_nxt < self.granted {
            let unscheduled = self.snd_nxt < unscheduled_limit;
            let seg = self.make_segment(self.snd_nxt, unscheduled, ctx);
            self.snd_nxt += seg.payload as u64;
            out.sends.push(seg);
        }
    }

    fn arm_timer(&mut self, out: &mut Actions) {
        self.timer_gen += 1;
        out.timers.push((self.resend_timeout, self.timer_gen));
    }
}

impl Transport for HomaSender {
    fn on_start(&mut self, ctx: &mut TransportCtx, out: &mut Actions) {
        self.granted = self.rtt_bytes.min(self.flow.size_bytes);
        self.send_up_to_grant(ctx, out);
        self.arm_timer(out);
    }

    fn on_packet(&mut self, pkt: &Packet, ctx: &mut TransportCtx, out: &mut Actions) {
        if self.completed {
            return;
        }
        match pkt.kind {
            PacketKind::Grant => {
                if pkt.echo > SimTime::ZERO {
                    out.rtt_samples.push(ctx.now.since(pkt.echo));
                }
                self.granted = self.granted.max(pkt.seq.min(self.flow.size_bytes));
                if pkt.flags.syn {
                    // RESEND request: rewind to the receiver's prefix.
                    if pkt.meta < self.snd_nxt {
                        self.retransmits += 1;
                        self.snd_nxt = pkt.meta;
                    }
                }
                self.send_up_to_grant(ctx, out);
                self.arm_timer(out);
            }
            PacketKind::Ack => {
                if pkt.echo > SimTime::ZERO {
                    out.rtt_samples.push(ctx.now.since(pkt.echo));
                }
                if pkt.seq >= self.flow.size_bytes {
                    self.completed = true;
                    out.completed = true;
                }
            }
            PacketKind::Data => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut TransportCtx, out: &mut Actions) {
        if token != self.timer_gen || self.completed {
            return;
        }
        // Stall: nudge the receiver with the first segment (covers the case
        // where every unscheduled packet — or the receiver's response —
        // was lost). The receiver's own gap timer requests precise resends.
        let seg = self.make_segment(0, true, ctx);
        self.retransmits += 1;
        out.sends.push(seg);
        self.arm_timer(out);
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapshotError> {
        w.put_u64(self.snd_nxt);
        w.put_u64(self.granted);
        w.put_bool(self.completed);
        w.put_u64(self.timer_gen);
        w.put_u64(self.retransmits);
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.snd_nxt = r.get_u64()?;
        self.granted = r.get_u64()?;
        self.completed = r.get_bool()?;
        self.timer_gen = r.get_u64()?;
        self.retransmits = r.get_u64()?;
        Ok(())
    }

    fn reset(&mut self, spec: &FlowSpec) -> bool {
        // `rtt_bytes`/`mss`/`resend_timeout` are factory parameters and
        // carry over; everything else mirrors `HomaFactory::sender`.
        self.flow = spec.clone();
        self.snd_nxt = 0;
        self.granted = 0;
        self.completed = false;
        self.timer_gen = 0;
        self.retransmits = 0;
        true
    }
}

/// The receiving side of a Homa message: reassembly, grant pacing, and
/// timeout-driven RESENDs.
pub struct HomaReceiver {
    flow: FlowSpec,
    rtt_bytes: u64,
    resend_timeout: SimDuration,
    ranges: Vec<(u64, u64)>,
    delivered: u64,
    granted_sent: u64,
    timer_gen: u64,
    completed: bool,
}

impl HomaReceiver {
    /// In-place range merge — no per-packet rebuild of the reassembly
    /// buffer (the receive path is an engine hot path; see
    /// `dcn-sim/tests/alloc_steady_state.rs`).
    fn insert(&mut self, start: u64, end: u64) {
        dcn_sim::transport::merge_range(&mut self.ranges, start, end);
    }

    fn cum(&self) -> u64 {
        match self.ranges.first() {
            Some(&(0, e)) => e,
            _ => 0,
        }
    }

    fn grant_packet(&self, target: u64, resend: bool, echo: SimTime, ctx: &mut TransportCtx) -> Packet {
        let mut p = Packet::ack(
            ctx.ids.next(),
            self.flow.id,
            self.flow.dst,
            self.flow.src,
            target,
            false,
            echo,
            ctx.now,
        );
        p.kind = PacketKind::Grant;
        p.meta = self.cum();
        p.flags.syn = resend;
        p.prio = 0; // control traffic rides the highest band
        p
    }

    fn arm_timer(&mut self, out: &mut Actions) {
        self.timer_gen += 1;
        out.timers.push((self.resend_timeout, self.timer_gen));
    }
}

impl Transport for HomaReceiver {
    fn on_start(&mut self, _ctx: &mut TransportCtx, _out: &mut Actions) {}

    fn on_packet(&mut self, pkt: &Packet, ctx: &mut TransportCtx, out: &mut Actions) {
        if pkt.kind != PacketKind::Data || self.completed {
            return;
        }
        self.insert(pkt.seq, pkt.seq + pkt.payload as u64);
        let cum = self.cum();
        if cum > self.delivered {
            out.delivered = cum - self.delivered;
            self.delivered = cum;
        }
        if cum >= self.flow.size_bytes {
            // Complete: final ack doubles as the FCT signal.
            let mut ack = Packet::ack(
                ctx.ids.next(),
                self.flow.id,
                self.flow.dst,
                self.flow.src,
                self.flow.size_bytes,
                false,
                pkt.sent_at,
                ctx.now,
            );
            ack.prio = 0;
            out.sends.push(ack);
            self.completed = true;
            out.completed = true;
            return;
        }
        // Grant pacing: keep one rtt_bytes of data granted beyond the
        // received prefix.
        let target = (cum + self.rtt_bytes).min(self.flow.size_bytes);
        if target > self.granted_sent {
            self.granted_sent = target;
            let g = self.grant_packet(target, false, pkt.sent_at, ctx);
            out.sends.push(g);
        }
        self.arm_timer(out);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut TransportCtx, out: &mut Actions) {
        if token != self.timer_gen || self.completed {
            return;
        }
        // Gap/stall: ask for a resend from our prefix, re-granting up to
        // the usual window.
        let target = (self.cum() + self.rtt_bytes).min(self.flow.size_bytes);
        self.granted_sent = self.granted_sent.max(target);
        let g = self.grant_packet(self.granted_sent, true, SimTime::ZERO, ctx);
        out.sends.push(g);
        self.arm_timer(out);
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapshotError> {
        w.put_u64(self.ranges.len() as u64);
        for &(s, e) in &self.ranges {
            w.put_u64(s);
            w.put_u64(e);
        }
        w.put_u64(self.delivered);
        w.put_u64(self.granted_sent);
        w.put_u64(self.timer_gen);
        w.put_bool(self.completed);
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let n = r.get_count(16)?;
        self.ranges.clear();
        for _ in 0..n {
            let s = r.get_u64()?;
            let e = r.get_u64()?;
            self.ranges.push((s, e));
        }
        self.delivered = r.get_u64()?;
        self.granted_sent = r.get_u64()?;
        self.timer_gen = r.get_u64()?;
        self.completed = r.get_bool()?;
        Ok(())
    }

    fn reset(&mut self, spec: &FlowSpec) -> bool {
        // `rtt_bytes`/`resend_timeout` are factory parameters and carry
        // over; everything else mirrors `HomaFactory::receiver`.
        self.flow = spec.clone();
        self.ranges.clear(); // keeps capacity
        self.delivered = 0;
        self.granted_sent = 0;
        self.timer_gen = 0;
        self.completed = false;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::packet::FlowId;
    use dcn_sim::topology::NodeId;
    use dcn_sim::transport::PacketIdAlloc;

    fn spec(size: u64) -> FlowSpec {
        FlowSpec {
            id: FlowId(3),
            src: NodeId(0),
            dst: NodeId(1),
            size_bytes: size,
            start: SimTime::ZERO,
        }
    }

    fn ctx<'a>(ids: &'a mut PacketIdAlloc, t: f64) -> TransportCtx<'a> {
        TransportCtx {
            now: SimTime::from_secs_f64(t),
            ids,
        }
    }

    #[test]
    fn priorities_order_by_size() {
        assert!(unscheduled_prio(500, 1460) < unscheduled_prio(10_000, 1460));
        assert!(scheduled_prio(1_000, 1460) < scheduled_prio(1_000_000, 1460));
        // Control band is strictly higher than any data band.
        assert!(unscheduled_prio(1, 1460) > 0);
    }

    #[test]
    fn short_message_is_all_unscheduled() {
        let f = HomaFactory::default();
        let mut s = f.sender(&spec(4_000));
        let mut ids = PacketIdAlloc::new(NodeId(0));
        let mut out = Actions::default();
        s.on_start(&mut ctx(&mut ids, 0.0), &mut out);
        // 4000 B < rtt_bytes: all sent immediately.
        let sent: u64 = out.sends.iter().map(|p| p.payload as u64).sum();
        assert_eq!(sent, 4_000);
        assert!(out.sends.iter().all(|p| p.prio == 2)); // <= 4 MSS class
        assert!(out.sends.last().unwrap().flags.fin);
    }

    #[test]
    fn long_message_waits_for_grants() {
        let f = HomaFactory::default();
        let size = 100_000;
        let mut s = f.sender(&spec(size));
        let mut ids = PacketIdAlloc::new(NodeId(0));
        let mut out = Actions::default();
        s.on_start(&mut ctx(&mut ids, 0.0), &mut out);
        let sent: u64 = out.sends.iter().map(|p| p.payload as u64).sum();
        assert!(sent <= 15_000 + MSS_BYTES as u64, "unscheduled window only");
        // A grant extends transmission with scheduled priority.
        out.clear();
        let mut grant = Packet::ack(9, FlowId(3), NodeId(1), NodeId(0), 30_000, false, SimTime::ZERO, SimTime::ZERO);
        grant.kind = PacketKind::Grant;
        grant.meta = 15_000;
        s.on_packet(&grant, &mut ctx(&mut ids, 0.005), &mut out);
        assert!(!out.sends.is_empty());
        assert!(out.sends.iter().all(|p| p.prio >= 4), "scheduled bands");
        let sent2: u64 = out.sends.iter().map(|p| p.payload as u64).sum();
        assert!(sent + sent2 <= 30_000 + MSS_BYTES as u64);
    }

    #[test]
    fn receiver_grants_and_completes() {
        let f = HomaFactory::default();
        let size = 30_000u64;
        let mut r = f.receiver(&spec(size));
        let mut ids = PacketIdAlloc::new(NodeId(1));
        let mut out = Actions::default();
        let mk = |seq: u64, payload: u32| {
            let mut p = Packet::data(seq + 1, FlowId(3), NodeId(0), NodeId(1), seq, payload, false, SimTime::from_secs_f64(0.001));
            p.flow_size = size;
            p
        };
        r.on_packet(&mk(0, 1460), &mut ctx(&mut ids, 0.002), &mut out);
        // Receiver should emit a grant beyond the unscheduled window.
        let grants: Vec<&Packet> = out.sends.iter().filter(|p| p.kind == PacketKind::Grant).collect();
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].seq, 1460 + 15_000);
        assert_eq!(grants[0].meta, 1460);
        assert!(!grants[0].flags.syn);
        // Deliver the rest in order; final packet triggers the ack.
        let mut seq = 1460u64;
        let mut completed = false;
        while seq < size {
            out.clear();
            let payload = 1460.min(size - seq) as u32;
            r.on_packet(&mk(seq, payload), &mut ctx(&mut ids, 0.003), &mut out);
            seq += payload as u64;
            if out.completed {
                completed = true;
                assert!(out
                    .sends
                    .iter()
                    .any(|p| p.kind == PacketKind::Ack && p.seq == size));
            }
        }
        assert!(completed);
    }

    #[test]
    fn receiver_gap_timer_requests_resend() {
        let f = HomaFactory::default();
        let size = 30_000u64;
        let mut r = f.receiver(&spec(size));
        let mut ids = PacketIdAlloc::new(NodeId(1));
        let mut out = Actions::default();
        // Packet at offset 2920 arrives but 0..2920 is missing.
        let mut p = Packet::data(5, FlowId(3), NodeId(0), NodeId(1), 2920, 1460, false, SimTime::ZERO);
        p.flow_size = size;
        r.on_packet(&p, &mut ctx(&mut ids, 0.001), &mut out);
        let armed = out.timers.last().unwrap().1;
        out.clear();
        r.on_timer(armed, &mut ctx(&mut ids, 0.03), &mut out);
        let g = out.sends.iter().find(|p| p.kind == PacketKind::Grant).unwrap();
        assert!(g.flags.syn, "gap timer sends a RESEND grant");
        assert_eq!(g.meta, 0, "prefix is empty");
    }

    #[test]
    fn sender_rewinds_on_resend_grant() {
        let f = HomaFactory::default();
        let mut s = f.sender(&spec(30_000));
        let mut ids = PacketIdAlloc::new(NodeId(0));
        let mut out = Actions::default();
        s.on_start(&mut ctx(&mut ids, 0.0), &mut out);
        out.clear();
        let mut g = Packet::ack(9, FlowId(3), NodeId(1), NodeId(0), 16_460, false, SimTime::ZERO, SimTime::ZERO);
        g.kind = PacketKind::Grant;
        g.meta = 0;
        g.flags.syn = true; // resend everything
        s.on_packet(&g, &mut ctx(&mut ids, 0.03), &mut out);
        assert_eq!(out.sends[0].seq, 0, "rewound to receiver prefix");
        let sent: u64 = out.sends.iter().map(|p| p.payload as u64).sum();
        assert!(sent >= 15_000);
    }

    #[test]
    fn sender_completes_on_final_ack() {
        let f = HomaFactory::default();
        let mut s = f.sender(&spec(4_000));
        let mut ids = PacketIdAlloc::new(NodeId(0));
        let mut out = Actions::default();
        s.on_start(&mut ctx(&mut ids, 0.0), &mut out);
        out.clear();
        let ack = Packet::ack(9, FlowId(3), NodeId(1), NodeId(0), 4_000, false, SimTime::from_secs_f64(0.001), SimTime::from_secs_f64(0.004));
        s.on_packet(&ack, &mut ctx(&mut ids, 0.004), &mut out);
        assert!(out.completed);
        assert_eq!(out.rtt_samples.len(), 1);
    }

    #[test]
    fn sender_stall_timer_nudges() {
        let f = HomaFactory::default();
        let mut s = f.sender(&spec(100_000));
        let mut ids = PacketIdAlloc::new(NodeId(0));
        let mut out = Actions::default();
        s.on_start(&mut ctx(&mut ids, 0.0), &mut out);
        let tok = out.timers.last().unwrap().1;
        out.clear();
        s.on_timer(tok, &mut ctx(&mut ids, 0.02), &mut out);
        assert_eq!(out.sends.len(), 1);
        assert_eq!(out.sends[0].seq, 0);
        // Stale token is ignored.
        out.clear();
        s.on_timer(tok, &mut ctx(&mut ids, 0.04), &mut out);
        assert!(out.sends.is_empty());
    }
}
