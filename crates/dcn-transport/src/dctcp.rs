//! DCTCP congestion control (Alizadeh et al., SIGCOMM 2010).
//!
//! Switch queues CE-mark ECN-capable packets once occupancy exceeds `K`
//! (see [`dcn_sim::queue::QueueConfig::ecn`]); the receiver echoes marks
//! per packet; the sender maintains an EWMA `α` of the marked fraction and
//! cuts its window by `α/2` at most once per window of data:
//!
//! ```text
//! α ← (1 − g)·α + g·F        (F = marked fraction of the last window)
//! cwnd ← cwnd · (1 − α/2)    (once per window when marks were seen)
//! ```
//!
//! The ECN marking threshold `K` is the configuration parameter the
//! paper's §9.4.1 use case tunes with MimicNet (Figure 13).

use crate::cc::{reno_ack, reno_halve, reno_timeout, AckCtx, CongControl, Windows};
use dcn_sim::time::SimTime;

/// DCTCP sender state.
pub struct DctcpCc {
    /// EWMA gain `g` (paper value 1/16).
    g: f64,
    /// Smoothed marked fraction `α`.
    alpha: f64,
    /// Bytes acked in the current observation window.
    acked_bytes: u64,
    /// Bytes acked with ECE in the current observation window.
    marked_bytes: u64,
    /// `snd_una` at which the current observation window ends.
    window_end: u64,
    /// `snd_una` until which further reductions are suppressed (one cut per
    /// window, like TCP's CWR state).
    cwr_end: u64,
}

impl DctcpCc {
    pub fn new(g: f64) -> DctcpCc {
        assert!(g > 0.0 && g <= 1.0);
        DctcpCc {
            g,
            alpha: 1.0, // start conservative, as the original
            acked_bytes: 0,
            marked_bytes: 0,
            window_end: 0,
            cwr_end: 0,
        }
    }

    /// Current α estimate.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl CongControl for DctcpCc {
    fn name(&self) -> &'static str {
        "dctcp"
    }

    fn on_ack(&mut self, ctx: &AckCtx, w: &mut Windows) {
        self.acked_bytes += ctx.newly_acked;
        if ctx.ece {
            self.marked_bytes += ctx.newly_acked;
        }
        // End of an observation window: fold the marked fraction into α.
        if ctx.snd_una >= self.window_end {
            if self.acked_bytes > 0 {
                let f = self.marked_bytes as f64 / self.acked_bytes as f64;
                self.alpha = (1.0 - self.g) * self.alpha + self.g * f;
            }
            self.acked_bytes = 0;
            self.marked_bytes = 0;
            self.window_end = ctx.snd_nxt;
        }

        if ctx.ece {
            // Proportional reduction, at most once per window of data.
            if ctx.snd_una >= self.cwr_end {
                w.cwnd *= 1.0 - self.alpha / 2.0;
                w.clamp();
                w.ssthresh = w.cwnd;
                self.cwr_end = ctx.snd_nxt;
            }
        } else {
            reno_ack(ctx.newly_acked, w);
        }
    }

    fn on_fast_loss(&mut self, _now: SimTime, flight: u64, w: &mut Windows) {
        reno_halve(flight, w);
    }

    fn on_timeout(&mut self, _now: SimTime, flight: u64, w: &mut Windows) {
        reno_timeout(flight, w);
    }

    fn ecn_capable(&self) -> bool {
        true
    }

    fn reset(&mut self) -> bool {
        // `g` is configuration; everything else back to `DctcpCc::new`.
        self.alpha = 1.0;
        self.acked_bytes = 0;
        self.marked_bytes = 0;
        self.window_end = 0;
        self.cwr_end = 0;
        true
    }

    fn save_state(&self, w: &mut dcn_sim::snapshot::SnapWriter) {
        w.put_f64(self.g);
        w.put_f64(self.alpha);
        w.put_u64(self.acked_bytes);
        w.put_u64(self.marked_bytes);
        w.put_u64(self.window_end);
        w.put_u64(self.cwr_end);
    }

    fn load_state(
        &mut self,
        r: &mut dcn_sim::snapshot::SnapReader<'_>,
    ) -> Result<(), dcn_sim::snapshot::SnapshotError> {
        self.g = r.get_f64()?;
        self.alpha = r.get_f64()?;
        self.acked_bytes = r.get_u64()?;
        self.marked_bytes = r.get_u64()?;
        self.window_end = r.get_u64()?;
        self.cwr_end = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::time::SimDuration;

    fn ctx(newly: u64, una: u64, nxt: u64, ece: bool) -> AckCtx {
        AckCtx {
            newly_acked: newly,
            rtt_sample: Some(SimDuration::from_millis(1)),
            ece,
            now: SimTime::ZERO,
            snd_una: una,
            snd_nxt: nxt,
            in_recovery: false,
        }
    }

    #[test]
    fn marks_packets_ecn_capable() {
        assert!(DctcpCc::new(1.0 / 16.0).ecn_capable());
    }

    #[test]
    fn alpha_decays_without_marks() {
        let mut cc = DctcpCc::new(0.5);
        let mut w = Windows::new(1000, 10);
        let mut una = 0;
        for i in 0..10 {
            una = (i + 1) * 10_000;
            cc.on_ack(&ctx(10_000, una, una + 10_000, false), &mut w);
        }
        assert!(cc.alpha() < 0.01, "alpha = {}", cc.alpha());
        let _ = una;
    }

    #[test]
    fn alpha_rises_with_full_marking() {
        let mut cc = DctcpCc::new(0.5);
        cc.alpha = 0.0;
        let mut w = Windows::new(1000, 10);
        for i in 0..10u64 {
            let una = (i + 1) * 10_000;
            cc.on_ack(&ctx(10_000, una, una + 10_000, true), &mut w);
        }
        assert!(cc.alpha() > 0.9, "alpha = {}", cc.alpha());
    }

    #[test]
    fn reduction_is_proportional_to_alpha() {
        let g = 1.0 / 16.0;
        let mut cc = DctcpCc::new(g);
        cc.alpha = 0.4;
        let mut w = Windows::new(1000, 10);
        w.cwnd = 20_000.0;
        // The ack closes the first observation window (fully marked), so
        // alpha folds in F = 1 first, then the cut applies.
        let alpha_after = (1.0 - g) * 0.4 + g * 1.0;
        cc.on_ack(&ctx(1000, 1000, 21_000, true), &mut w);
        assert!((cc.alpha() - alpha_after).abs() < 1e-12);
        let expect = 20_000.0 * (1.0 - alpha_after / 2.0);
        assert!((w.cwnd - expect).abs() < 1.0, "cwnd {}", w.cwnd);
    }

    #[test]
    fn at_most_one_cut_per_window() {
        let mut cc = DctcpCc::new(1.0 / 16.0);
        cc.alpha = 1.0;
        let mut w = Windows::new(1000, 20);
        w.cwnd = 20_000.0;
        cc.on_ack(&ctx(1000, 1000, 21_000, true), &mut w);
        let after_first = w.cwnd;
        // Second marked ack inside the same window: no further cut.
        cc.on_ack(&ctx(1000, 2000, 21_000, true), &mut w);
        assert_eq!(w.cwnd, after_first);
        // After passing cwr_end (21 000), cuts are allowed again.
        cc.on_ack(&ctx(20_000, 22_000, 40_000, true), &mut w);
        assert!(w.cwnd < after_first);
    }

    #[test]
    fn unmarked_acks_grow_like_reno() {
        let mut cc = DctcpCc::new(1.0 / 16.0);
        let mut w = Windows::new(1000, 2);
        let before = w.cwnd;
        cc.on_ack(&ctx(1000, 1000, 3000, false), &mut w);
        assert_eq!(w.cwnd, before + 1000.0);
    }
}
