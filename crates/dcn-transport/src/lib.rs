//! # dcn-transport — transport protocols for `dcn-sim`
//!
//! The five protocols the MimicNet paper evaluates (§9), implemented as
//! event-driven state machines behind `dcn-sim`'s
//! [`dcn_sim::transport::Transport`] trait:
//!
//! * **TCP New Reno** (the paper's base case) — slow start, AIMD congestion
//!   avoidance, fast retransmit/recovery with partial-ACK handling, and
//!   RFC 6298 retransmission timeouts.
//! * **DCTCP** — ECN-fraction estimation (α) with proportional window
//!   reduction; pairs with switch queues configured to CE-mark above a
//!   threshold `K`.
//! * **TCP Vegas** — delay-based congestion avoidance, a stand-in for the
//!   paper's "protocols that are very sensitive to small changes in
//!   latency".
//! * **TCP Westwood** — sender-side bandwidth estimation used to set the
//!   post-loss window.
//! * **Homa** — a simplified receiver-driven, priority-based protocol:
//!   unscheduled window + grants, with packet priorities derived from
//!   message sizes (stressing MimicNet with reordering and priorities).
//!
//! All TCP variants share one sender/receiver state machine
//! ([`tcp::TcpSender`]/[`tcp::TcpReceiver`]) parameterized by a
//! [`cc::CongControl`] strategy, mirroring how the INET TCP stack hosts
//! multiple flavours.

pub mod cc;
pub mod dctcp;
pub mod homa;
pub mod newreno;
pub mod rto;
pub mod tcp;
pub mod vegas;
pub mod westwood;

use dcn_sim::config::QueueSetup;
use dcn_sim::transport::TransportFactory;

/// The protocols available to experiments.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Protocol {
    /// TCP New Reno over DropTail queues (the paper's base configuration).
    NewReno,
    /// DCTCP with the given switch ECN marking threshold `K` (packets).
    Dctcp { k: u32 },
    /// Delay-based TCP Vegas.
    Vegas,
    /// Rate-estimating TCP Westwood.
    Westwood,
    /// Receiver-driven Homa with 8 priority levels.
    Homa,
}

impl Protocol {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::NewReno => "tcp-newreno",
            Protocol::Dctcp { .. } => "dctcp",
            Protocol::Vegas => "tcp-vegas",
            Protocol::Westwood => "tcp-westwood",
            Protocol::Homa => "homa",
        }
    }

    /// Build the transport factory for this protocol.
    pub fn factory(&self) -> Box<dyn TransportFactory> {
        match *self {
            Protocol::NewReno => Box::new(tcp::TcpFactory::new_reno()),
            Protocol::Dctcp { .. } => Box::new(tcp::TcpFactory::dctcp()),
            Protocol::Vegas => Box::new(tcp::TcpFactory::vegas()),
            Protocol::Westwood => Box::new(tcp::TcpFactory::westwood()),
            Protocol::Homa => Box::new(homa::HomaFactory::default()),
        }
    }

    /// Adjust a queue configuration to what this protocol expects at
    /// switches (DCTCP: ECN marking; Homa: priority bands).
    pub fn queue_setup(&self, mut base: QueueSetup) -> QueueSetup {
        match *self {
            Protocol::Dctcp { k } => {
                base.ecn_k = Some(k);
            }
            Protocol::Homa => {
                base.bands = 8;
            }
            _ => {}
        }
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_factories() {
        for p in [
            Protocol::NewReno,
            Protocol::Dctcp { k: 20 },
            Protocol::Vegas,
            Protocol::Westwood,
            Protocol::Homa,
        ] {
            let f = p.factory();
            assert_eq!(f.name(), p.name());
        }
    }

    #[test]
    fn queue_setup_adjustments() {
        let base = QueueSetup::default();
        let d = Protocol::Dctcp { k: 17 }.queue_setup(base);
        assert_eq!(d.ecn_k, Some(17));
        let h = Protocol::Homa.queue_setup(base);
        assert_eq!(h.bands, 8);
        let n = Protocol::NewReno.queue_setup(base);
        assert_eq!(n.ecn_k, None);
        assert_eq!(n.bands, 1);
    }
}
