//! The congestion-control strategy interface shared by all TCP variants.
//!
//! The loss-detection machinery (dup-acks, fast retransmit, RTO) lives in
//! [`crate::tcp::TcpSender`]; what differs between New Reno, DCTCP, Vegas,
//! and Westwood is *how the window reacts* to acknowledgments, ECN echoes,
//! and losses. That reaction is factored into [`CongControl`].

use dcn_sim::snapshot::{SnapReader, SnapWriter, SnapshotError};
use dcn_sim::time::{SimDuration, SimTime};

/// Sender window state manipulated by congestion controllers.
#[derive(Clone, Copy, Debug)]
pub struct Windows {
    /// Congestion window in bytes.
    pub cwnd: f64,
    /// Slow-start threshold in bytes.
    pub ssthresh: f64,
    /// Maximum segment size in bytes.
    pub mss: f64,
}

impl Windows {
    pub fn new(mss: u32, init_cwnd_pkts: u32) -> Windows {
        Windows {
            cwnd: (mss * init_cwnd_pkts) as f64,
            ssthresh: f64::INFINITY,
            mss: mss as f64,
        }
    }

    /// True while in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Clamp cwnd to at least one segment.
    pub fn clamp(&mut self) {
        if self.cwnd < self.mss {
            self.cwnd = self.mss;
        }
    }
}

/// Context for an acknowledgment that advanced `snd_una`.
#[derive(Clone, Copy, Debug)]
pub struct AckCtx {
    /// Bytes newly acknowledged.
    pub newly_acked: u64,
    /// RTT sample from the ack's timestamp echo.
    pub rtt_sample: Option<SimDuration>,
    /// ECN-echo flag (receiver saw CE).
    pub ece: bool,
    /// Current time.
    pub now: SimTime,
    /// Highest cumulative ack (== new snd_una).
    pub snd_una: u64,
    /// Next byte to be sent.
    pub snd_nxt: u64,
    /// Whether the sender is inside fast recovery.
    pub in_recovery: bool,
}

/// A congestion-control strategy.
pub trait CongControl: Send {
    /// Human-readable variant name.
    fn name(&self) -> &'static str;

    /// React to an ack that advanced the window (not called in recovery).
    fn on_ack(&mut self, ctx: &AckCtx, w: &mut Windows);

    /// Multiplicative decrease on fast retransmit (3 dup acks).
    fn on_fast_loss(&mut self, now: SimTime, flight: u64, w: &mut Windows);

    /// Collapse after a retransmission timeout.
    fn on_timeout(&mut self, now: SimTime, flight: u64, w: &mut Windows);

    /// Whether data packets should be marked ECN-capable.
    fn ecn_capable(&self) -> bool {
        false
    }

    /// Serialize controller-private state for a checkpoint. Stateless
    /// controllers (New Reno) keep the no-op default; stateful ones
    /// (DCTCP's α, Vegas's epoch, Westwood's BWE) must override both
    /// hooks or a restored sender would silently reset their estimators.
    fn save_state(&self, _w: &mut SnapWriter) {}

    /// Overwrite controller-private state from a checkpoint.
    fn load_state(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        Ok(())
    }

    /// Re-initialize for a new flow so the owning sender's box can be
    /// recycled (see [`dcn_sim::transport::Transport::reset`]). Returning
    /// `true` promises the controller is now behaviorally identical to one
    /// fresh out of its constructor — estimators cleared, configuration
    /// (gains, thresholds) retained. The default opts out, which disables
    /// endpoint pooling for the whole sender; all in-tree controllers opt
    /// in.
    fn reset(&mut self) -> bool {
        false
    }
}

/// Standard Reno ack processing: slow start below ssthresh, AIMD above.
/// Shared by New Reno, DCTCP (when unmarked), and Westwood.
pub fn reno_ack(newly_acked: u64, w: &mut Windows) {
    if w.in_slow_start() {
        // One MSS per MSS acked.
        w.cwnd += (newly_acked as f64).min(w.mss);
    } else {
        // ~One MSS per RTT.
        w.cwnd += w.mss * w.mss / w.cwnd;
    }
}

/// Standard Reno halving used by fast retransmit.
pub fn reno_halve(flight: u64, w: &mut Windows) {
    w.ssthresh = (flight as f64 / 2.0).max(2.0 * w.mss);
    w.cwnd = w.ssthresh;
    w.clamp();
}

/// Standard timeout collapse: ssthresh = flight/2, cwnd = 1 MSS.
pub fn reno_timeout(flight: u64, w: &mut Windows) {
    w.ssthresh = (flight as f64 / 2.0).max(2.0 * w.mss);
    w.cwnd = w.mss;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut w = Windows::new(1000, 2);
        assert!(w.in_slow_start());
        // Ack a full window: cwnd grows by one MSS per MSS acked.
        reno_ack(1000, &mut w);
        reno_ack(1000, &mut w);
        assert_eq!(w.cwnd, 4000.0);
    }

    #[test]
    fn congestion_avoidance_is_linear() {
        let mut w = Windows::new(1000, 10);
        w.ssthresh = 5_000.0;
        let before = w.cwnd;
        // Ack one full window worth of segments -> ~1 MSS growth.
        for _ in 0..10 {
            reno_ack(1000, &mut w);
        }
        let growth = w.cwnd - before;
        assert!((growth - 1000.0).abs() < 60.0, "growth {growth}");
    }

    #[test]
    fn halving_and_floor() {
        let mut w = Windows::new(1000, 10);
        reno_halve(10_000, &mut w);
        assert_eq!(w.ssthresh, 5_000.0);
        assert_eq!(w.cwnd, 5_000.0);
        reno_halve(1000, &mut w);
        assert_eq!(w.cwnd, 2_000.0, "floor of 2 MSS");
    }

    #[test]
    fn timeout_collapses_to_one_mss() {
        let mut w = Windows::new(1000, 10);
        reno_timeout(8_000, &mut w);
        assert_eq!(w.cwnd, 1000.0);
        assert_eq!(w.ssthresh, 4_000.0);
        assert!(w.in_slow_start());
    }
}
