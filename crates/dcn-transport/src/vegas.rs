//! TCP Vegas congestion control (Brakmo & Peterson, 1994).
//!
//! Vegas is delay-based: once per RTT it compares the *expected* rate
//! (`cwnd / base_rtt`) with the *actual* rate (`cwnd / observed_rtt`) and
//! converts the difference into an estimate of packets queued in the
//! network:
//!
//! ```text
//! diff = (expected − actual) · base_rtt     [bytes queued]
//! diff < α·mss  → cwnd += mss   (too little queueing: speed up)
//! diff > β·mss  → cwnd -= mss   (too much queueing: back off)
//! ```
//!
//! The paper uses Vegas as a stand-in for "the recent trend of protocols
//! that are very sensitive to small changes in latency" (§9.4.2) — which
//! makes it a stress test for MimicNet's latency predictions.

use crate::cc::{reno_ack, reno_halve, reno_timeout, AckCtx, CongControl, Windows};
use dcn_sim::time::SimTime;

/// Vegas sender state.
pub struct VegasCc {
    /// Grow when fewer than `alpha` packets are queued.
    alpha_pkts: f64,
    /// Shrink when more than `beta` packets are queued.
    beta_pkts: f64,
    /// Leave slow start when more than `gamma` packets are queued.
    gamma_pkts: f64,
    /// Lowest RTT ever seen (propagation estimate), seconds.
    base_rtt: Option<f64>,
    /// Lowest RTT in the current epoch, seconds.
    epoch_min_rtt: Option<f64>,
    /// `snd_una` at which the current epoch (≈ one RTT) ends.
    epoch_end: u64,
}

impl VegasCc {
    pub fn new(alpha_pkts: f64, beta_pkts: f64) -> VegasCc {
        assert!(alpha_pkts <= beta_pkts);
        VegasCc {
            alpha_pkts,
            beta_pkts,
            gamma_pkts: 1.0,
            base_rtt: None,
            epoch_min_rtt: None,
            epoch_end: 0,
        }
    }

    /// Current estimate of queued bytes given the epoch measurements.
    fn queued_bytes(&self, w: &Windows) -> Option<f64> {
        let base = self.base_rtt?;
        let cur = self.epoch_min_rtt?;
        if cur <= 0.0 || base <= 0.0 {
            return None;
        }
        let expected = w.cwnd / base;
        let actual = w.cwnd / cur;
        Some((expected - actual) * base)
    }
}

impl CongControl for VegasCc {
    fn name(&self) -> &'static str {
        "vegas"
    }

    fn on_ack(&mut self, ctx: &AckCtx, w: &mut Windows) {
        if let Some(rtt) = ctx.rtt_sample {
            let r = rtt.as_secs_f64();
            self.base_rtt = Some(self.base_rtt.map_or(r, |b: f64| b.min(r)));
            self.epoch_min_rtt = Some(self.epoch_min_rtt.map_or(r, |b: f64| b.min(r)));
        }
        if ctx.snd_una < self.epoch_end {
            // Mid-epoch: in slow start, grow like Reno; in CA, hold.
            if w.in_slow_start() {
                reno_ack(ctx.newly_acked, w);
            }
            return;
        }
        // Epoch boundary: apply the Vegas adjustment.
        let queued = self.queued_bytes(w);
        self.epoch_end = ctx.snd_nxt;
        self.epoch_min_rtt = None;
        let Some(queued) = queued else {
            if w.in_slow_start() {
                reno_ack(ctx.newly_acked, w);
            }
            return;
        };
        if w.in_slow_start() {
            if queued > self.gamma_pkts * w.mss {
                // Leave slow start once queueing builds.
                w.ssthresh = w.cwnd;
            } else {
                reno_ack(ctx.newly_acked, w);
            }
            return;
        }
        if queued < self.alpha_pkts * w.mss {
            w.cwnd += w.mss;
        } else if queued > self.beta_pkts * w.mss {
            w.cwnd -= w.mss;
            w.clamp();
        }
        // else: within [alpha, beta] — hold.
    }

    fn on_fast_loss(&mut self, _now: SimTime, flight: u64, w: &mut Windows) {
        reno_halve(flight, w);
    }

    fn on_timeout(&mut self, _now: SimTime, flight: u64, w: &mut Windows) {
        reno_timeout(flight, w);
    }

    fn reset(&mut self) -> bool {
        // `alpha`/`beta`/`gamma` are configuration; estimators back to
        // `VegasCc::new`.
        self.base_rtt = None;
        self.epoch_min_rtt = None;
        self.epoch_end = 0;
        true
    }

    fn save_state(&self, w: &mut dcn_sim::snapshot::SnapWriter) {
        w.put_f64(self.alpha_pkts);
        w.put_f64(self.beta_pkts);
        w.put_f64(self.gamma_pkts);
        w.put_opt_f64(self.base_rtt);
        w.put_opt_f64(self.epoch_min_rtt);
        w.put_u64(self.epoch_end);
    }

    fn load_state(
        &mut self,
        r: &mut dcn_sim::snapshot::SnapReader<'_>,
    ) -> Result<(), dcn_sim::snapshot::SnapshotError> {
        self.alpha_pkts = r.get_f64()?;
        self.beta_pkts = r.get_f64()?;
        self.gamma_pkts = r.get_f64()?;
        self.base_rtt = r.get_opt_f64()?;
        self.epoch_min_rtt = r.get_opt_f64()?;
        self.epoch_end = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::time::SimDuration;

    fn ctx(newly: u64, una: u64, nxt: u64, rtt_us: u64) -> AckCtx {
        AckCtx {
            newly_acked: newly,
            rtt_sample: Some(SimDuration::from_micros(rtt_us)),
            ece: false,
            now: SimTime::ZERO,
            snd_una: una,
            snd_nxt: nxt,
            in_recovery: false,
        }
    }

    #[test]
    fn grows_when_uncongested() {
        let mut cc = VegasCc::new(2.0, 4.0);
        let mut w = Windows::new(1000, 4);
        w.ssthresh = w.cwnd; // force CA
        // Establish base RTT = 1 ms in epoch 0.
        cc.on_ack(&ctx(1000, 1000, 5000, 1000), &mut w);
        let before = w.cwnd;
        // Next epoch boundary with RTT still ~1 ms -> no queueing -> grow.
        cc.on_ack(&ctx(1000, 6000, 10_000, 1005), &mut w);
        assert_eq!(w.cwnd, before + 1000.0);
    }

    #[test]
    fn shrinks_when_rtt_inflates() {
        let mut cc = VegasCc::new(2.0, 4.0);
        let mut w = Windows::new(1000, 10);
        w.ssthresh = w.cwnd;
        // Base RTT = 1 ms.
        cc.on_ack(&ctx(1000, 1000, 11_000, 1000), &mut w);
        let before = w.cwnd;
        // RTT doubled: queued = cwnd * (2-1)/2 = 5000 B > beta*mss.
        cc.on_ack(&ctx(1000, 12_000, 22_000, 2000), &mut w);
        assert_eq!(w.cwnd, before - 1000.0);
    }

    #[test]
    fn holds_in_band() {
        let mut cc = VegasCc::new(2.0, 4.0);
        let mut w = Windows::new(1000, 10);
        w.ssthresh = w.cwnd;
        cc.on_ack(&ctx(1000, 1000, 11_000, 1000), &mut w);
        let before = w.cwnd;
        // Queued = cwnd*(1 - 1/1.3) ≈ 2.3 KB, between alpha (2 KB) and
        // beta (4 KB): hold.
        cc.on_ack(&ctx(1000, 12_000, 22_000, 1300), &mut w);
        assert_eq!(w.cwnd, before);
    }

    #[test]
    fn exits_slow_start_on_queueing() {
        let mut cc = VegasCc::new(2.0, 4.0);
        let mut w = Windows::new(1000, 10);
        assert!(w.in_slow_start());
        cc.on_ack(&ctx(1000, 1000, 11_000, 1000), &mut w);
        // Strong RTT inflation at the next epoch.
        cc.on_ack(&ctx(1000, 12_000, 22_000, 3000), &mut w);
        assert!(!w.in_slow_start(), "should have left slow start");
    }

    #[test]
    fn loss_reactions_are_reno() {
        let mut cc = VegasCc::new(2.0, 4.0);
        let mut w = Windows::new(1000, 10);
        cc.on_fast_loss(SimTime::ZERO, 10_000, &mut w);
        assert_eq!(w.cwnd, 5_000.0);
        cc.on_timeout(SimTime::ZERO, 10_000, &mut w);
        assert_eq!(w.cwnd, 1_000.0);
    }
}
