//! TCP Westwood congestion control (Mascolo et al., MOBICOM 2001).
//!
//! Westwood is "a sender-optimized TCP that measures the end-to-end
//! connection rate to maximize throughput" (paper §9.4.2). The sender
//! keeps a bandwidth estimate (BWE) from the rate of returning acks and,
//! after a loss, sets its window to the estimated pipe size
//! `BWE × RTT_min` instead of blindly halving — "faster recovery" on
//! underutilized paths.

use crate::cc::{reno_ack, AckCtx, CongControl, Windows};
use dcn_sim::time::SimTime;

/// Westwood sender state.
pub struct WestwoodCc {
    /// Smoothed bandwidth estimate, bytes/second.
    bwe: f64,
    /// Time of the last ack (for rate samples).
    last_ack: Option<SimTime>,
    /// Minimum observed RTT, seconds.
    min_rtt: Option<f64>,
    /// EWMA gain for bandwidth samples.
    gain: f64,
}

impl WestwoodCc {
    pub fn new() -> WestwoodCc {
        WestwoodCc {
            bwe: 0.0,
            last_ack: None,
            min_rtt: None,
            gain: 0.2,
        }
    }

    /// Current bandwidth estimate, bytes/second.
    pub fn bwe(&self) -> f64 {
        self.bwe
    }

    /// The post-loss window: estimated pipe size, floored at 2 MSS.
    fn pipe_bytes(&self, w: &Windows) -> f64 {
        match self.min_rtt {
            Some(rtt) if self.bwe > 0.0 => (self.bwe * rtt).max(2.0 * w.mss),
            _ => (w.cwnd / 2.0).max(2.0 * w.mss), // fall back to Reno
        }
    }
}

impl Default for WestwoodCc {
    fn default() -> Self {
        WestwoodCc::new()
    }
}

impl CongControl for WestwoodCc {
    fn name(&self) -> &'static str {
        "westwood"
    }

    fn on_ack(&mut self, ctx: &AckCtx, w: &mut Windows) {
        if let Some(rtt) = ctx.rtt_sample {
            let r = rtt.as_secs_f64();
            self.min_rtt = Some(self.min_rtt.map_or(r, |m: f64| m.min(r)));
        }
        // Bandwidth sample: bytes acknowledged per inter-ack interval.
        if let Some(last) = self.last_ack {
            let dt = ctx.now.since(last).as_secs_f64();
            if dt > 0.0 {
                let sample = ctx.newly_acked as f64 / dt;
                self.bwe = if self.bwe == 0.0 {
                    sample
                } else {
                    (1.0 - self.gain) * self.bwe + self.gain * sample
                };
            }
        }
        self.last_ack = Some(ctx.now);
        reno_ack(ctx.newly_acked, w);
    }

    fn on_fast_loss(&mut self, _now: SimTime, _flight: u64, w: &mut Windows) {
        // Faster recovery: window = estimated pipe size.
        w.ssthresh = self.pipe_bytes(w);
        w.cwnd = w.ssthresh;
        w.clamp();
    }

    fn on_timeout(&mut self, _now: SimTime, _flight: u64, w: &mut Windows) {
        w.ssthresh = self.pipe_bytes(w);
        w.cwnd = w.mss;
    }

    fn reset(&mut self) -> bool {
        // `gain` is configuration; estimators back to `WestwoodCc::new`.
        self.bwe = 0.0;
        self.last_ack = None;
        self.min_rtt = None;
        true
    }

    fn save_state(&self, w: &mut dcn_sim::snapshot::SnapWriter) {
        w.put_f64(self.bwe);
        w.put_opt_u64(self.last_ack.map(SimTime::as_nanos));
        w.put_opt_f64(self.min_rtt);
        w.put_f64(self.gain);
    }

    fn load_state(
        &mut self,
        r: &mut dcn_sim::snapshot::SnapReader<'_>,
    ) -> Result<(), dcn_sim::snapshot::SnapshotError> {
        self.bwe = r.get_f64()?;
        self.last_ack = r.get_opt_u64()?.map(SimTime);
        self.min_rtt = r.get_opt_f64()?;
        self.gain = r.get_f64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::time::SimDuration;

    fn ctx_at(newly: u64, t_ms: u64, rtt_ms: u64) -> AckCtx {
        AckCtx {
            newly_acked: newly,
            rtt_sample: Some(SimDuration::from_millis(rtt_ms)),
            ece: false,
            now: SimTime::ZERO + SimDuration::from_millis(t_ms),
            snd_una: 0,
            snd_nxt: 0,
            in_recovery: false,
        }
    }

    #[test]
    fn bandwidth_estimate_converges() {
        let mut cc = WestwoodCc::new();
        let mut w = Windows::new(1000, 4);
        // 1000 B per 1 ms = 1 MB/s.
        for t in 0..200u64 {
            cc.on_ack(&ctx_at(1000, t, 2), &mut w);
        }
        assert!(
            (cc.bwe() - 1_000_000.0).abs() / 1_000_000.0 < 0.05,
            "bwe = {}",
            cc.bwe()
        );
    }

    #[test]
    fn loss_sets_window_to_pipe_size() {
        let mut cc = WestwoodCc::new();
        let mut w = Windows::new(1000, 32);
        for t in 0..100u64 {
            cc.on_ack(&ctx_at(1000, t, 4), &mut w);
        }
        // Pipe = 1 MB/s * 4 ms = 4000 B.
        cc.on_fast_loss(SimTime::ZERO, 32_000, &mut w);
        assert!((w.cwnd - 4_000.0).abs() < 300.0, "cwnd {}", w.cwnd);
        // A Reno sender would have halved flight to 16 000 — Westwood is
        // deliberately different here.
        assert!(w.cwnd < 16_000.0);
    }

    #[test]
    fn timeout_keeps_pipe_ssthresh_but_one_mss_cwnd() {
        let mut cc = WestwoodCc::new();
        let mut w = Windows::new(1000, 32);
        for t in 0..100u64 {
            cc.on_ack(&ctx_at(1000, t, 4), &mut w);
        }
        cc.on_timeout(SimTime::ZERO, 32_000, &mut w);
        assert_eq!(w.cwnd, 1000.0);
        assert!(w.ssthresh > 3_000.0);
    }

    #[test]
    fn falls_back_to_reno_before_estimates() {
        let mut cc = WestwoodCc::new();
        let mut w = Windows::new(1000, 10);
        cc.on_fast_loss(SimTime::ZERO, 10_000, &mut w);
        assert_eq!(w.cwnd, 5_000.0, "Reno fallback");
    }
}
